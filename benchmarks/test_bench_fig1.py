"""Benchmarks regenerating Figure 1 (scenario A, LIA vs optimum)."""

from conftest import record_table

from repro.experiments import scenario_a
from repro.experiments.results import ResultTable


def test_fig1b(benchmark):
    """Fig. 1(b): normalized throughputs, analysis + measured LIA points."""
    table = benchmark.pedantic(
        lambda: scenario_a.figure1_table(
            n1_values=(10, 20, 30), c1_over_c2=(0.75, 1.0, 1.5),
            simulate_lia=True, duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig1b", table)
    type2 = table.column("type2 LIA")
    # Problem P1 shape: type2 throughput decreases with N1/N2.
    assert type2[0] > type2[2]


def test_fig1c(benchmark):
    """Fig. 1(c): loss probability p2 at the shared AP."""
    full = benchmark.pedantic(
        lambda: scenario_a.figure1_table(
            n1_values=(10, 20, 30), c1_over_c2=(0.75, 1.0, 1.5)),
        rounds=1, iterations=1)
    table = ResultTable("Fig. 1(c) - Scenario A: loss probability p2",
                        ["C1/C2", "N1/N2", "p2 LIA", "p2 opt"])
    for row in full.rows:
        index = {c: i for i, c in enumerate(full.columns)}
        table.add_row(row[index["C1/C2"]], row[index["N1/N2"]],
                      row[index["p2 LIA"]], row[index["p2 opt"]])
    record_table(benchmark, "fig1c", table)
    p2 = table.column("p2 LIA")
    assert p2[2] > p2[0]  # congestion grows with N1/N2
