"""Benchmarks regenerating Figure 5 (scenario C)."""

from conftest import record_table

from repro.experiments import scenario_c
from repro.experiments.results import ResultTable


def test_fig5b(benchmark):
    """Fig. 5(b): analytical LIA vs optimum over C1/C2 (N1=N2)."""
    table = benchmark.pedantic(
        lambda: scenario_c.figure5b_table(
            c1_over_c2=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5)),
        rounds=1, iterations=1)
    record_table(benchmark, "fig5b", table)
    # Problem P2 shape: above C2/3, LIA multipath exceeds the fair share.
    for ratio, mp_lia in zip(table.column("C1/C2"), table.column("mp LIA")):
        if ratio >= 1.0:
            assert mp_lia > 1.0


def test_fig5c(benchmark):
    """Fig. 5(c): normalized throughputs vs N1/N2 with measured points."""
    table = benchmark.pedantic(
        lambda: scenario_c.figure5cd_table(
            n1_values=(5, 10, 20, 30), c1_over_c2=(1.0, 2.0),
            simulate_lia=True, duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig5c", table)
    sp = table.column("sp LIA")
    assert sp[0] > sp[3]  # single-path throughput decreasing in N1


def test_fig5d(benchmark):
    """Fig. 5(d): loss probability p2 at AP2 grows with N1/N2."""
    full = benchmark.pedantic(
        lambda: scenario_c.figure5cd_table(
            n1_values=(5, 10, 20, 30), c1_over_c2=(1.0, 2.0)),
        rounds=1, iterations=1)
    table = ResultTable("Fig. 5(d) - Scenario C: loss probability p2",
                        ["C1/C2", "N1/N2", "p2 LIA", "p2 opt"])
    index = {c: i for i, c in enumerate(full.columns)}
    for row in full.rows:
        table.add_row(row[index["C1/C2"]], row[index["N1/N2"]],
                      row[index["p2 LIA"]], row[index["p2 opt"]])
    record_table(benchmark, "fig5d", table)
    p2 = table.column("p2 LIA")
    assert p2[3] > p2[0]
