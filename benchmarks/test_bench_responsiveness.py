"""Benchmarks for the fluid responsiveness/stability experiments.

These quantify two claims the paper makes but does not measure directly:
OLIA is "as responsive as LIA", and its fixed points are stable (the
conclusion leaves stability/convergence to future work).
"""

import math

from conftest import record_table

from repro.experiments import responsiveness


def test_capacity_drop_settling(benchmark):
    """Settling time after AP1's capacity drops by 4x."""
    table = benchmark.pedantic(
        lambda: responsiveness.capacity_drop_settling_table(
            algorithms=("olia", "lia", "coupled")),
        rounds=1, iterations=1)
    record_table(benchmark, "responsiveness", table)
    rows = {row[0]: row[1] for row in table.rows}
    assert all(math.isfinite(v) for v in rows.values())
    # OLIA is at least as responsive as LIA (paper's claim).
    assert rows["olia"] <= 3.0 * max(rows["lia"], 1.0)


def test_stability_under_perturbation(benchmark):
    """Perturbed trajectories return to the same equilibrium."""
    def run():
        return (responsiveness.stability_table(algorithm="olia"),
                responsiveness.stability_table(algorithm="lia"))

    olia_table, lia_table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(benchmark, "stability_olia", olia_table)
    record_table(benchmark, "stability_lia", lia_table)
    for table in (olia_table, lia_table):
        for deviation in table.column("max relative deviation at t_end"):
            assert deviation < 0.1
