#!/usr/bin/env python
"""CI gate: the algorithm registry stays the single dispatch path.

The legacy per-layer factories — ``repro.fluid.dynamics.
make_fluid_algorithm`` and ``repro.fluid.equilibrium.allocation_rule``
— are deprecating wrappers kept only for backwards compatibility; every
name→algorithm resolution must go through ``repro.core.registry``.
This script greps the package for *call sites* of the wrappers outside
``core/`` (and outside the two modules that define them) and exits
non-zero when it finds any, with a ruff-style ``path:line:`` report.
It runs in the CI lint job next to ``ruff check``.

Usage::

    python benchmarks/check_registry_gate.py [SRC_DIR]

``SRC_DIR`` defaults to the repo's ``src/repro``; passing a directory
makes the gate testable against synthetic trees.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

#: Legacy factory names whose call sites are banned outside core/.
#: Word-boundary anchored, so ``make_allocation_rule(`` (the registry
#: API) does not match ``allocation_rule(``; the lookbehind spares
#: calls explicitly qualified through the registry module
#: (``registry.make_fluid_algorithm(...)``).
BANNED_CALLS = re.compile(
    r"(?<!registry\.)\b(make_fluid_algorithm|allocation_rule)\s*\(")

#: Importing the wrappers from the fluid layer is banned too — an
#: import is a call site in waiting.  Scanned over the whole file text
#: (DOTALL for the parenthesized form) so multi-line imports and
#: ``as``-aliases cannot slip through the line scan.
BANNED_IMPORTS = re.compile(
    r"from\s+\S*(?:\bdynamics\b|\bequilibrium\b|\bfluid\b)\S*\s+import\s*"
    r"(?:\(([^)]*)\)|([^\n]+))", re.S)
_BANNED_NAMES = re.compile(r"\b(make_fluid_algorithm|allocation_rule)\b")

#: Names imported *from the registry* (possibly parenthesized over
#: several lines) are the sanctioned dispatch path: bare calls to them
#: are fine.  ``make_fluid_algorithm`` is both a registry function and
#: a legacy wrapper name, so provenance decides.
REGISTRY_IMPORTS = re.compile(
    r"from\s+\S*core(?:\.registry)?\s+import\s+"
    r"(?:\(([^)]*)\)|([^\n]+))")

#: Modules allowed to mention the legacy names: everything under
#: ``core/`` (the registry itself), the two wrapper definition modules,
#: and the fluid package __init__ that re-exports them for backwards
#: compatibility.
ALLOWED = ("core/", "fluid/dynamics.py", "fluid/equilibrium.py",
           "fluid/__init__.py")


def _registry_imported_names(text: str) -> set:
    names = set()
    for group_a, group_b in REGISTRY_IMPORTS.findall(text):
        for token in (group_a or group_b).split(","):
            token = token.strip()
            if token:
                names.add(token.split(" as ")[-1].strip())
    return names


def scan(src: pathlib.Path) -> List[Tuple[pathlib.Path, int, str]]:
    """All banned call sites under ``src`` as (path, line, text)."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        relative = path.relative_to(src).as_posix()
        if any(relative == allowed or relative.startswith(allowed)
               for allowed in ALLOWED):
            continue
        text = path.read_text()
        sanctioned = _registry_imported_names(text)
        flagged_lines = set()
        # Text-level import scan: parenthesized imports span lines.
        for match in BANNED_IMPORTS.finditer(text):
            imported = match.group(1) or match.group(2)
            if _BANNED_NAMES.search(imported):
                flagged_lines.add(text.count("\n", 0, match.start()) + 1)
        for lineno, line in enumerate(text.splitlines(), start=1):
            stripped = line.lstrip()
            if stripped.startswith("#"):
                continue
            banned = [match for match in BANNED_CALLS.finditer(line)
                      if match.group(1) not in sanctioned]
            if banned or lineno in flagged_lines:
                violations.append((path, lineno, stripped))
                flagged_lines.discard(lineno)
        for lineno in sorted(flagged_lines):   # import on a comment line
            violations.append((path, lineno,
                               text.splitlines()[lineno - 1].lstrip()))
    return violations


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) > 1:
        print("usage: check_registry_gate.py [SRC_DIR]", file=sys.stderr)
        return 2
    src = pathlib.Path(argv[0]) if argv else \
        pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    if not src.is_dir():
        print(f"no such source directory: {src}", file=sys.stderr)
        return 2
    violations = scan(src)
    for path, lineno, text in violations:
        print(f"{path}:{lineno}: legacy algorithm factory call outside "
              f"core/ — resolve through repro.core.registry instead: "
              f"{text}", file=sys.stderr)
    if violations:
        print(f"FAIL registry gate: {len(violations)} legacy dispatch "
              "site(s); repro.core.registry is the single dispatch path",
              file=sys.stderr)
        return 1
    print(f"registry gate OK: no legacy algorithm dispatch outside "
          f"core/ in {src}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
