#!/usr/bin/env python
"""CI gate: the registry stays the single dispatch path on both axes.

The legacy per-layer factories — ``repro.fluid.dynamics.
make_fluid_algorithm`` and ``repro.fluid.equilibrium.allocation_rule``
— are deprecating wrappers kept only for backwards compatibility; every
name→algorithm resolution must go through ``repro.core.registry``.
The packet-scheduler axis has the same contract from day one: concrete
policy classes (``MinRttScheduler`` and friends) are constructed only
by the registry's :func:`~repro.core.registry.make_scheduler`; call
sites name schedulers by string.  This script greps the package for
*call sites* of either kind outside ``core/`` (and outside the modules
that define/re-export them) and exits non-zero when it finds any, with
a ruff-style ``path:line:`` report.  It runs in the CI lint job next to
``ruff check``.

Usage::

    python benchmarks/check_registry_gate.py [SRC_DIR]

``SRC_DIR`` defaults to the repo's ``src/repro``; passing a directory
makes the gate testable against synthetic trees.
"""

from __future__ import annotations

import pathlib
import re
import sys
from typing import List, Tuple

#: Legacy factory names whose call sites are banned outside core/.
#: Word-boundary anchored, so ``make_allocation_rule(`` (the registry
#: API) does not match ``allocation_rule(``; the lookbehind spares
#: calls explicitly qualified through the registry module
#: (``registry.make_fluid_algorithm(...)``).
BANNED_CALLS = re.compile(
    r"(?<!registry\.)\b(make_fluid_algorithm|allocation_rule)\s*\(")

#: Importing the wrappers from the fluid layer is banned too — an
#: import is a call site in waiting.  Scanned over the whole file text
#: (DOTALL for the parenthesized form) so multi-line imports and
#: ``as``-aliases cannot slip through the line scan.
BANNED_IMPORTS = re.compile(
    r"from\s+\S*(?:\bdynamics\b|\bequilibrium\b|\bfluid\b)\S*\s+import\s*"
    r"(?:\(([^)]*)\)|([^\n]+))", re.S)
_BANNED_NAMES = re.compile(r"\b(make_fluid_algorithm|allocation_rule)\b")

#: Names imported *from the registry* (possibly parenthesized over
#: several lines) are the sanctioned dispatch path: bare calls to them
#: are fine.  ``make_fluid_algorithm`` is both a registry function and
#: a legacy wrapper name, so provenance decides.
REGISTRY_IMPORTS = re.compile(
    r"from\s+\S*core(?:\.registry)?\s+import\s+"
    r"(?:\(([^)]*)\)|([^\n]+))")

#: Modules allowed to mention the legacy names: everything under
#: ``core/`` (the registry itself), the two wrapper definition modules,
#: and the fluid package __init__ that re-exports them for backwards
#: compatibility.
ALLOWED = ("core/", "fluid/dynamics.py", "fluid/equilibrium.py",
           "fluid/__init__.py")

#: Concrete packet-scheduler policy classes: constructing (or
#: importing) one outside core/ bypasses ``make_scheduler`` and with it
#: alias resolution and parameter validation.  The abstract
#: ``PacketScheduler`` base stays importable everywhere — type
#: annotations and ``isinstance`` checks are not dispatch.
_SCHEDULER_CLASSES = (r"MinRttScheduler|RoundRobinScheduler|"
                      r"RedundantScheduler|QueueAwareScheduler")
SCHEDULER_BANNED_CALLS = re.compile(
    rf"\b({_SCHEDULER_CLASSES})\s*\(")
SCHEDULER_BANNED_IMPORTS = re.compile(
    r"from\s+\S*(?:\bpacket_scheduler\b|\bsim\b)\S*\s+import\s*"
    r"(?:\(([^)]*)\)|([^\n]+))", re.S)
_SCHEDULER_NAMES = re.compile(rf"\b({_SCHEDULER_CLASSES})\b")

#: Modules allowed to name the concrete scheduler classes: the registry
#: (its factory table), the defining module, and the sim package
#: __init__ that re-exports them.
SCHEDULER_ALLOWED = ("core/", "sim/packet_scheduler.py",
                     "sim/__init__.py")


def _registry_imported_names(text: str) -> set:
    names = set()
    for group_a, group_b in REGISTRY_IMPORTS.findall(text):
        for token in (group_a or group_b).split(","):
            token = token.strip()
            if token:
                names.add(token.split(" as ")[-1].strip())
    return names


def _scan_rule(path, text, *, calls, imports, names, sanctioned):
    """Violations of one banned-name rule in one file's text."""
    violations = []
    flagged_lines = set()
    # Text-level import scan: parenthesized imports span lines.
    for match in imports.finditer(text):
        imported = match.group(1) or match.group(2)
        if names.search(imported):
            flagged_lines.add(text.count("\n", 0, match.start()) + 1)
    for lineno, line in enumerate(text.splitlines(), start=1):
        stripped = line.lstrip()
        if stripped.startswith("#"):
            continue
        banned = [match for match in calls.finditer(line)
                  if match.group(1) not in sanctioned]
        if banned or lineno in flagged_lines:
            violations.append((path, lineno, stripped))
            flagged_lines.discard(lineno)
    for lineno in sorted(flagged_lines):   # import on a comment line
        violations.append((path, lineno,
                           text.splitlines()[lineno - 1].lstrip()))
    return violations


def scan(src: pathlib.Path) -> List[Tuple[pathlib.Path, int, str]]:
    """All banned call sites under ``src`` as (path, line, text)."""
    violations = []
    for path in sorted(src.rglob("*.py")):
        relative = path.relative_to(src).as_posix()
        text = None
        file_hits = []
        for allowed, kwargs in (
                (ALLOWED, dict(calls=BANNED_CALLS,
                               imports=BANNED_IMPORTS,
                               names=_BANNED_NAMES)),
                (SCHEDULER_ALLOWED, dict(calls=SCHEDULER_BANNED_CALLS,
                                         imports=SCHEDULER_BANNED_IMPORTS,
                                         names=_SCHEDULER_NAMES))):
            if any(relative == entry or relative.startswith(entry)
                   for entry in allowed):
                continue
            if text is None:
                text = path.read_text()
            # Registry imports sanction bare calls for both rules: the
            # scheduler rule never matches them (the registry exports
            # make_scheduler, not the concrete classes), so sharing the
            # set is harmless there.
            file_hits.extend(_scan_rule(
                path, text, sanctioned=_registry_imported_names(text),
                **kwargs))
        violations.extend(sorted(file_hits, key=lambda hit: hit[1]))
    return violations


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) > 1:
        print("usage: check_registry_gate.py [SRC_DIR]", file=sys.stderr)
        return 2
    src = pathlib.Path(argv[0]) if argv else \
        pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    if not src.is_dir():
        print(f"no such source directory: {src}", file=sys.stderr)
        return 2
    violations = scan(src)
    for path, lineno, text in violations:
        print(f"{path}:{lineno}: algorithm/scheduler dispatch outside "
              f"core/ — resolve through repro.core.registry instead: "
              f"{text}", file=sys.stderr)
    if violations:
        print(f"FAIL registry gate: {len(violations)} out-of-registry "
              "dispatch site(s); repro.core.registry is the single "
              "dispatch path for both axes", file=sys.stderr)
        return 1
    print(f"registry gate OK: no out-of-registry algorithm or "
          f"scheduler dispatch outside core/ in {src}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
