"""Micro-benchmarks of the simulation engine itself.

These are conventional pytest-benchmark timings (multiple rounds) that
track the event-processing rate of the core engine and the cost of one
TCP bulk-transfer second — useful when optimising the simulator.
"""

from repro.sim import DropTailQueue, Link, Simulator, single_path_tcp


def test_event_throughput(benchmark):
    """Schedule-and-run throughput of the bare event loop."""
    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < 20_000:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run_until_empty()
        return counter[0]

    events = benchmark(run)
    assert events == 20_000


def test_tcp_second_of_simulation(benchmark):
    """One simulated second of a 10 Mb/s TCP bulk transfer."""
    def run():
        sim = Simulator()
        link = Link(sim, rate_bps=10e6, delay=0.005,
                    queue=DropTailQueue(limit=100))
        flow = single_path_tcp(sim, (link,), reverse_delay=0.005)
        flow.start(0.0)
        sim.run(until=1.0)
        return flow.acked_packets

    packets = benchmark(run)
    assert packets > 100
