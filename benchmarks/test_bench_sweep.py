"""Benchmarks of the batched sweep machinery itself.

Unlike the figure benchmarks (which regenerate paper tables), these
track the *speed* of the two execution backends so regressions in the
hot paths show up in ``pytest benchmarks/`` timings:

* the batched fluid integrator vs the point-by-point loop, on the same
  sweep shape the ``BENCH_sweep.json`` report uses;
* the batched fixed-point solver vs point-by-point solving;
* the DES engine event loop (free-list + pre-bound heap entries).

``REPRO_BENCH_SMOKE=1`` caps the sweep sizes so tier-1 test runs stay
fast.
"""

from __future__ import annotations

import numpy as np

from repro.benchreport import smoke_mode, sweep_networks
from repro.fluid import (
    integrate,
    integrate_batch,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from repro.sim import Simulator

N_POINTS = 8 if smoke_mode() else 32
T_END = 0.5 if smoke_mode() else 1.0
DT = 2e-3
RULES = {0: "olia", 1: "tcp", 2: "tcp", 3: "tcp"}


def test_fluid_sweep_loop_backend(benchmark):
    """Point-by-point integration: the pre-batching baseline."""
    networks = sweep_networks(N_POINTS)

    def run():
        return [integrate(net, RULES, t_end=T_END, dt=DT)
                for net in networks]

    trajectories = benchmark(run)
    assert len(trajectories) == N_POINTS
    benchmark.extra_info["points"] = N_POINTS


def test_fluid_sweep_batch_backend(benchmark):
    """All sweep points stacked into one (K, n_routes) state matrix."""
    networks = sweep_networks(N_POINTS)

    def run():
        return integrate_batch(networks, RULES, t_end=T_END, dt=DT)

    batch = benchmark(run)
    assert batch.n_points == N_POINTS
    benchmark.extra_info["points"] = N_POINTS


def test_batch_matches_loop_bitwise(benchmark):
    """The two backends must agree bitwise (benchmarked on the batch)."""
    networks = sweep_networks(N_POINTS)
    sequential = [integrate(net, RULES, t_end=T_END, dt=DT)
                  for net in networks]
    batch = benchmark(lambda: integrate_batch(networks, RULES,
                                              t_end=T_END, dt=DT))
    for k in range(N_POINTS):
        assert np.array_equal(sequential[k].rates,
                              batch.trajectory(k).rates)


def test_equilibrium_sweep_loop_backend(benchmark):
    """Point-by-point fixed-point solving: the pre-batching baseline."""
    networks = sweep_networks(N_POINTS)

    def run():
        return [solve_fixed_point(net, RULES, floor_packets=1.0)
                for net in networks]

    results = benchmark(run)
    assert len(results) == N_POINTS
    benchmark.extra_info["points"] = N_POINTS


def test_equilibrium_sweep_batch_backend(benchmark):
    """All sweep points solved in one lock-step batched iteration."""
    networks = sweep_networks(N_POINTS)
    sequential = [solve_fixed_point(net, RULES, floor_packets=1.0)
                  for net in networks]
    batch = benchmark(lambda: solve_fixed_point_batch(
        networks, RULES, floor_packets=1.0))
    for k in range(N_POINTS):
        assert np.array_equal(sequential[k].rates, batch.rates[k])
    benchmark.extra_info["points"] = N_POINTS


def test_engine_event_throughput(benchmark):
    """Free-list engine: schedule-and-run event loop throughput."""
    n_events = 5_000 if smoke_mode() else 50_000

    def run():
        sim = Simulator()
        counter = [0]

        def tick():
            counter[0] += 1
            if counter[0] < n_events:
                sim.schedule(1e-6, tick)

        sim.schedule(0.0, tick)
        sim.run_until_empty()
        return counter[0]

    events = benchmark(run)
    assert events == n_events
