#!/usr/bin/env python
"""Fail CI when a bench report regresses against the committed baseline.

Usage::

    REPRO_BENCH_SMOKE=1 python -m repro bench --output BENCH_smoke.json
    python benchmarks/check_bench.py BENCH_smoke.json \
        --baseline BENCH_sweep.json [--factor 2.0]

What is checked (and why it survives CI-runner variance):

* ``bitwise_equal`` must be true for the fluid and equilibrium sweeps —
  the batch backends are only allowed to be *faster*, never different.
* The **speedup ratios** (batch vs loop, optimised engine vs seed
  engine — including the loaded-engine and timer-churn microbenches
  that track the wheel scheduler and Timer API) are compared, not
  absolute points/sec: both sides of each ratio run in the same process
  on the same machine, so the ratio is stable across hardware while a
  >2x drop still means a real regression (e.g. batching silently
  falling back to the scalar path, or the wheel degenerating to heap
  behaviour).
* When the new report's workload size matches the baseline's, the bound
  is ``new_speedup >= baseline_speedup / factor``.  A smoke report
  (``REPRO_BENCH_SMOKE=1``) uses smaller workloads where batching pays
  off less, so against a full-size baseline the scaled bound is replaced
  by documented absolute floors (:data:`SMOKE_FLOORS`).

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List

#: Minimum acceptable speedups when the new report's workload size
#: differs from the baseline's (the CI smoke case).  Chosen from the
#: smoke-mode measurements in docs/PERFORMANCE.md with >2x headroom.
#:
#: The ``engine`` floor dropped from 1.0 to 0.8 in PR 3 *by design*:
#: the wheel scheduler trades bare-chain constants (the ``engine``
#: workload, ~1.1-1.4x vs seed across runs, previously ~1.5x on the
#: heap) for cost that is flat in the pending population.  0.8 still
#: rejects an engine meaningfully slower than the seed on the bare
#: chain, while the two sections added alongside it — ``engine_loaded``
#: (~2.8x vs seed full-size) and ``timer_churn`` (~5.8x) — catch the
#: wheel or the Timer degenerating to heap/churn behaviour long before
#: the bare chain would.  See docs/PERFORMANCE.md "Engine hot path".
SMOKE_FLOORS = {
    "fluid_sweep": 2.0,
    "equilibrium_sweep": 1.5,
    "engine": 0.8,
    "engine_loaded": 1.2,
    "timer_churn": 2.0,
}

#: Per-section key that defines "same workload size".
SIZE_KEYS = {
    "fluid_sweep": "n_points",
    "equilibrium_sweep": "n_points",
    "engine": "n_events",
    "engine_loaded": "n_events",
    "timer_churn": "n_ticks",
}


def check_report(new: Dict, baseline: Dict,
                 factor: float = 2.0) -> List[str]:
    """Return a list of failure messages (empty when the report passes)."""
    failures: List[str] = []
    for section in ("fluid_sweep", "equilibrium_sweep"):
        data = new.get(section)
        if data is not None and not data.get("bitwise_equal", False):
            failures.append(
                f"{section}: batch backend is no longer bitwise-equal "
                "to the loop backend")

    for section, size_key in SIZE_KEYS.items():
        data = new.get(section)
        base = baseline.get(section)
        if data is None or "speedup" not in data:
            # A tracked section vanishing from the report is itself a
            # regression — the gate must not pass by omission.
            failures.append(
                f"{section}: missing from the new report")
            continue
        if base is None or "speedup" not in base:
            # Baseline predates this section; only the smoke floor holds.
            bound, origin = SMOKE_FLOORS[section], "smoke floor"
        elif data.get(size_key) == base.get(size_key):
            bound = base["speedup"] / factor
            origin = (f"baseline {base['speedup']}x / {factor} "
                      f"(same {size_key}={data.get(size_key)})")
        else:
            bound, origin = SMOKE_FLOORS[section], (
                f"smoke floor ({size_key} {data.get(size_key)} != "
                f"baseline {base.get(size_key)})")
        if data["speedup"] < bound:
            failures.append(
                f"{section}: speedup {data['speedup']}x below {bound:g}x "
                f"[{origin}]")
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Check a BENCH report for performance regressions")
    parser.add_argument("report", help="freshly generated BENCH json")
    parser.add_argument("--baseline", default="BENCH_sweep.json",
                        help="committed baseline (default: "
                             "./BENCH_sweep.json)")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed speedup shrink factor (default: 2.0, "
                             "i.e. fail on >2x regression)")
    args = parser.parse_args(argv)

    with open(args.report) as fh:
        new = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)

    failures = check_report(new, baseline, factor=args.factor)
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    print(f"bench check OK: {args.report} within {args.factor}x of "
          f"{args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
