#!/usr/bin/env python
"""Fail CI when a bench report regresses against the committed baseline.

Usage::

    REPRO_BENCH_SMOKE=1 python -m repro bench --output BENCH_smoke.json
    python benchmarks/check_bench.py BENCH_smoke.json \
        --baseline BENCH_sweep.json [--factor 2.0] \
        [--scale BENCH_scale.json] [--serve BENCH_serve_smoke.json]
    python benchmarks/check_bench.py --scale BENCH_scale.json   # scale only
    python benchmarks/check_bench.py --serve BENCH_serve.json   # serve only

What is checked (and why it survives CI-runner variance):

* ``bitwise_equal`` must be true for the fluid and equilibrium sweeps —
  the batch backends are only allowed to be *faster*, never different.
* The **speedup ratios** (batch vs loop, optimised engine vs seed
  engine — including the loaded-engine, adaptive-scheduler and
  timer-churn microbenches that track the wheel scheduler, the auto
  backend and the Timer API) are compared, not absolute points/sec:
  both sides of each ratio run in the same process on the same
  machine, so the ratio is stable across hardware while a >2x drop
  still means a real regression (e.g. batching silently falling back
  to the scalar path, or the wheel degenerating to heap behaviour).
* When the new report's workload size matches the baseline's, the bound
  is ``new_speedup >= baseline_speedup / factor``.  A smoke report
  (``REPRO_BENCH_SMOKE=1``) uses smaller workloads where batching pays
  off less, so against a full-size baseline the scaled bound is replaced
  by documented absolute floors (:data:`SMOKE_FLOORS`).
* Every compared metric must be a *finite* number.  ``NaN`` poisons
  every comparison into ``False`` — i.e. a NaN speedup would sail past
  a ``speedup < bound`` check — so missing or non-finite metrics fail
  the gate outright instead of silently passing it.
* With ``--scale``, a ``BENCH_scale.json`` written by ``python -m
  repro scale`` is validated too: every recorded run must have finite
  positive events/sec and coherent counters, and where both the auto
  and the fixed wheel backend ran the same preset, auto must stay
  within :data:`SCALE_AUTO_FLOOR` of the wheel (the adaptive backend's
  whole point is to cost ~nothing at scale).

When ``$GITHUB_STEP_SUMMARY`` is set (any GitHub Actions job), a
markdown before/after table of every checked section is appended to it,
so the numbers land on the run's summary page whether or not the gate
fails.

Exit status: 0 when every check passes, 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, List, Optional

#: Minimum acceptable speedups when the new report's workload size
#: differs from the baseline's (the CI smoke case).  Chosen from the
#: smoke-mode measurements in docs/PERFORMANCE.md with >2x headroom.
#:
#: The ``engine`` floor dropped from 1.0 to 0.8 in PR 3 *by design*:
#: the wheel scheduler trades bare-chain constants (the ``engine``
#: workload, ~1.1-1.4x vs seed across runs, previously ~1.5x on the
#: heap) for cost that is flat in the pending population.  0.8 still
#: rejects an engine meaningfully slower than the seed on the bare
#: chain, while the two sections added alongside it — ``engine_loaded``
#: (~2.8x vs seed full-size) and ``timer_churn`` (~5.8x) — catch the
#: wheel or the Timer degenerating to heap/churn behaviour long before
#: the bare chain would.  See docs/PERFORMANCE.md "Engine hot path".
#:
#: ``engine_auto`` measures the adaptive backend against the fixed
#: wheel on the loaded chain, where it must have promoted: ~0.85-0.95x
#: (chunk bookkeeping plus one amortised O(n) migration; parity on
#: real scenarios, where callbacks dominate).  0.7 rejects the auto
#: machinery eating the wheel's win — e.g. a mis-calibrated crossover
#: leaving it thrashing or parked on the heap.
#:
#: ``engine_compiled`` measures the C EngineCore against the pure loop
#: on the loaded chain: ~7-8x full-size, still several-x at smoke
#: sizes.  1.3 rejects the extension degenerating to interpreter speed
#: (e.g. silently bouncing every call through a Python shim) without
#: tripping on runner noise.  Skipped — not failed — when the report
#: records ``available: false`` (see :data:`AVAILABILITY_SECTIONS`).
SMOKE_FLOORS = {
    "fluid_sweep": 2.0,
    "equilibrium_sweep": 1.5,
    "fluid_sweep_balia": 2.0,
    "equilibrium_sweep_balia": 1.5,
    "engine": 0.8,
    "engine_loaded": 1.2,
    "engine_auto": 0.7,
    "engine_compiled": 1.3,
    "timer_churn": 2.0,
}

#: Per-section key that defines "same workload size".
SIZE_KEYS = {
    "fluid_sweep": "n_points",
    "equilibrium_sweep": "n_points",
    "fluid_sweep_balia": "n_points",
    "equilibrium_sweep_balia": "n_points",
    "engine": "n_events",
    "engine_loaded": "n_events",
    "engine_auto": "n_events",
    "engine_compiled": "n_events",
    "timer_churn": "n_ticks",
}

#: Sections that track an *optional* build artefact.  When the report
#: itself records ``available: false`` (a pure-python checkout: the
#: ``repro.sim._kernels`` extension was never built) the section is
#: legitimately unchecked — the fallback lane in CI runs exactly this
#: configuration on purpose.  A section that is missing *entirely*
#: still fails: that means the bench stopped emitting it.
AVAILABILITY_SECTIONS = ("engine_compiled",)

#: Sections whose batch backend must stay bitwise-equal to the loop.
BITWISE_SECTIONS = ("fluid_sweep", "equilibrium_sweep",
                    "fluid_sweep_balia", "equilibrium_sweep_balia")

#: Scale-report bound: auto events/sec relative to the fixed wheel on
#: the same preset.  Generous against CI noise; the committed local
#: measurement sits at ~1.0 (docs/PERFORMANCE.md "Scale harness").
SCALE_AUTO_FLOOR = 0.7

#: Absolute floors for a full-size BENCH_serve report (the ISSUE's
#: acceptance bar): batching must beat the sequential baseline ≥ 5x on
#: a cold store, and the warm (memoized) replay must improve p50 ≥ 10x.
#: Both are within-process ratios, stable across machines.
SERVE_FLOORS = {
    "cold_speedup": 5.0,
    "warm_p50_improvement": 10.0,
}

#: Floors for a smoke-size serve report (``REPRO_BENCH_SMOKE=1``): the
#: smoke cold phase is 4 shallow batches where one stagnant-equilibrium
#: straggler dominates, so the batching win is structurally smaller —
#: 1.5x still proves batching beats sequential.  Memoized p50 wins are
#: scale-independent (a store hit skips the solve entirely), so the
#: warm floor stays at the full bar.
SERVE_SMOKE_FLOORS = {
    "cold_speedup": 1.5,
    "warm_p50_improvement": 10.0,
}

#: Serve-report ratio metrics compared against a baseline report (when
#: the workload sizes match): path into the report, human name.
SERVE_RATIOS = (
    (("cold", "speedup_vs_sequential"), "cold_speedup"),
    (("warm", "p50_improvement"), "warm_p50_improvement"),
    (("replay", "speedup_vs_sequential"), "replay_speedup"),
)

#: Serve-report metrics that must be finite and positive.
SERVE_POSITIVE_METRICS = (
    ("sequential_baseline", "qps"),
    ("cold", "qps"), ("cold", "p50_ms"), ("cold", "p99_ms"),
    ("warm", "qps"), ("warm", "p50_ms"),
    ("replay", "qps"), ("replay", "p50_ms"),
)

#: Per-run metrics of a BENCH_scale entry that must be finite (and,
#: for the first two, positive).
SCALE_RUN_METRICS = ("events_per_sec", "wall_seconds", "events",
                     "peak_pending", "n_flows", "goodput_mean_pps",
                     "goodput_p50_pps")

#: Distributed-sweep floors (full-size BENCH_dist, the ISSUE's
#: acceptance bar): two workers must deliver >= 1.6x the points/s of
#: one.  Skipped — never failed — for a run flagged ``core_limited``
#: (the machine has fewer cores than workers, so the ratio measures the
#: hardware, not the fabric; the committed BENCH_dist.json from the
#: 1-core dev container carries this flag, CI's multi-core runners do
#: not) or ``scaling_stale`` (cache-warm wall clocks, mirroring
#: ``auto_vs_wheel_stale``).
DIST_FLOORS = {"scaling_2": 1.6}

#: Smoke grid (96 points): per-point cost is milliseconds, so lease
#: round trips and worker startup eat into the ratio — 1.1x still
#: proves the second worker contributes instead of contending.
DIST_SMOKE_FLOORS = {"scaling_2": 1.1}


def _finite(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and math.isfinite(value)


def check_report(new: Dict, baseline: Dict,
                 factor: float = 2.0) -> List[str]:
    """Return a list of failure messages (empty when the report passes)."""
    failures: List[str] = []
    for section in BITWISE_SECTIONS:
        data = new.get(section)
        if data is not None and not data.get("bitwise_equal", False):
            failures.append(
                f"{section}: batch backend is no longer bitwise-equal "
                "to the loop backend")

    for section, size_key in SIZE_KEYS.items():
        data = new.get(section)
        base = baseline.get(section)
        if section in AVAILABILITY_SECTIONS and data is not None \
                and data.get("available") is False:
            continue
        if data is None or "speedup" not in data:
            # A tracked section vanishing from the report is itself a
            # regression — the gate must not pass by omission.
            failures.append(
                f"{section}: missing from the new report")
            continue
        if not _finite(data["speedup"]):
            # NaN compares False against any bound, which would turn
            # a broken benchmark into a silent pass.
            failures.append(
                f"{section}: speedup is {data['speedup']!r}, not a "
                "finite number")
            continue
        if base is None or "speedup" not in base \
                or not _finite(base["speedup"]):
            # Baseline predates this section; only the smoke floor holds.
            bound, origin = SMOKE_FLOORS[section], "smoke floor"
        elif data.get(size_key) == base.get(size_key):
            bound = base["speedup"] / factor
            origin = (f"baseline {base['speedup']}x / {factor} "
                      f"(same {size_key}={data.get(size_key)})")
        else:
            bound, origin = SMOKE_FLOORS[section], (
                f"smoke floor ({size_key} {data.get(size_key)} != "
                f"baseline {base.get(size_key)})")
        if data["speedup"] < bound:
            failures.append(
                f"{section}: speedup {data['speedup']}x below {bound:g}x "
                f"[{origin}]")
    return failures


def check_scale_report(report: Dict) -> List[str]:
    """Validate a ``BENCH_scale.json`` written by ``repro scale``."""
    failures: List[str] = []
    if not isinstance(report, dict):
        return [f"scale: report is {type(report).__name__}, not a JSON "
                "object"]
    presets = report.get("presets")
    if not isinstance(presets, dict) or not presets:
        return ["scale: report contains no presets (empty or truncated "
                "BENCH_scale.json)"]
    for preset, entry in presets.items():
        if not isinstance(entry, dict):
            # A truncated/partially-written report must FAIL cleanly,
            # not die with a traceback before any message is printed.
            failures.append(
                f"scale[{preset}]: entry is {entry!r}, not a mapping "
                "(truncated BENCH_scale.json?)")
            continue
        runs = entry.get("backends")
        if not isinstance(runs, dict) or not runs:
            failures.append(
                f"scale[{preset}]: no engine-backend runs recorded")
            continue
        for backend, run in runs.items():
            where = f"scale[{preset}/{backend}]"
            if not isinstance(run, dict):
                failures.append(
                    f"{where}: run record is {run!r}, not a mapping")
                continue
            for metric in SCALE_RUN_METRICS:
                if metric not in run:
                    failures.append(f"{where}: metric {metric!r} missing")
                elif not _finite(run[metric]):
                    failures.append(
                        f"{where}: metric {metric!r} is "
                        f"{run[metric]!r}, not a finite number")
            for metric in ("events_per_sec", "wall_seconds"):
                if _finite(run.get(metric, None)) and run[metric] <= 0:
                    failures.append(
                        f"{where}: {metric} must be positive, got "
                        f"{run[metric]!r}")
        ratio = entry.get("auto_vs_wheel")
        if "auto" in runs and "wheel" in runs \
                and not entry.get("auto_vs_wheel_stale"):
            # With a cached (possibly other-machine) cell on either
            # side, the report legitimately carries no ratio — wall
            # clocks are only comparable within one run on one host.
            if not _finite(ratio):
                failures.append(
                    f"scale[{preset}]: auto_vs_wheel is {ratio!r}, not "
                    "a finite number")
            elif ratio < SCALE_AUTO_FLOOR:
                failures.append(
                    f"scale[{preset}]: auto backend at {ratio}x of the "
                    f"fixed wheel, below the {SCALE_AUTO_FLOOR}x floor")
    failures.extend(_check_scale_families(report))
    return failures


def _check_scale_families(report: Dict) -> List[str]:
    """Validate the optional families (packet-scheduler) section.

    Every (family, scheduler, algorithm) cell must have finished all of
    its finite transfers, and any reported completion-time percentile
    must be a positive finite number — NaN/Infinity survive a JSON
    round-trip through Python and must not read as a silent pass.
    """
    failures: List[str] = []
    families = report.get("families")
    if families is None:
        return failures         # section is optional (preset-only runs)
    if not isinstance(families, dict):
        return [f"scale: families section is {families!r}, not a mapping"]
    for family, entry in families.items():
        cells = entry.get("schedulers") if isinstance(entry, dict) else None
        if not isinstance(cells, dict) or not cells:
            failures.append(
                f"scale[{family}]: no packet-scheduler runs recorded")
            continue
        for scheduler, by_algo in cells.items():
            if not isinstance(by_algo, dict) or not by_algo:
                failures.append(
                    f"scale[{family}/{scheduler}]: no algorithm runs "
                    "recorded")
                continue
            for algorithm, run in by_algo.items():
                where = f"scale[{family}/{scheduler}/{algorithm}]"
                if not isinstance(run, dict):
                    failures.append(
                        f"{where}: run record is {run!r}, not a mapping")
                    continue
                total = run.get("transfers_total")
                done = run.get("transfers_completed")
                if not isinstance(total, int) or total < 1:
                    failures.append(
                        f"{where}: transfers_total is {total!r}, "
                        "expected a positive integer")
                elif done != total:
                    failures.append(
                        f"{where}: only {done!r} of {total} transfers "
                        "completed within the horizon")
                for metric in ("transfer_mean_s", "transfer_p50_s",
                               "transfer_p90_s"):
                    value = run.get(metric)
                    if value is None:
                        continue   # legitimately absent: nothing done
                    if not _finite(value) or value <= 0:
                        failures.append(
                            f"{where}: {metric} is {value!r}, not a "
                            "positive finite number")
    return failures


def _serve_get(report: Dict, path) -> object:
    value: object = report
    for key in path:
        if not isinstance(value, dict):
            return None
        value = value.get(key)
    return value


def check_serve_report(report: Dict,
                       baseline: Optional[Dict] = None,
                       factor: float = 2.0) -> List[str]:
    """Validate a ``BENCH_serve.json`` written by ``repro serve --loadgen``.

    Absolute floors (:data:`SERVE_FLOORS`, or the documented smoke
    floors for a ``REPRO_BENCH_SMOKE=1`` report) always apply; with a
    ``baseline`` of the *same* workload size, the measured ratios must
    additionally stay within ``factor`` of the baseline's.
    """
    failures: List[str] = []
    if not isinstance(report, dict):
        return [f"serve: report is {type(report).__name__}, not a JSON "
                "object"]
    if report.get("benchmark") != "serve":
        return [f"serve: benchmark is {report.get('benchmark')!r}, "
                "expected 'serve' (wrong file?)"]
    if not report.get("bitwise_equal", False):
        failures.append(
            "serve: served results are no longer bitwise-equal to "
            "sequential solve_fixed_point")
    for path in SERVE_POSITIVE_METRICS:
        value = _serve_get(report, path)
        where = ".".join(path)
        if not _finite(value):
            failures.append(
                f"serve: {where} is {value!r}, not a finite number")
        elif value <= 0:
            failures.append(
                f"serve: {where} must be positive, got {value!r}")
    for phase in ("warm", "replay"):
        rate = _serve_get(report, (phase, "hit_rate"))
        if not _finite(rate) or not 0.0 <= rate <= 1.0:
            failures.append(
                f"serve: {phase}.hit_rate is {rate!r}, not in [0, 1]")
    rate = _serve_get(report, ("warm", "hit_rate"))
    if _finite(rate) and rate < 0.99:
        # The warm phase replays the identical stream against the
        # store the cold phase just filled: anything below ~every
        # query hitting means persistence is broken.
        failures.append(
            f"serve: warm.hit_rate {rate} below 0.99 — the persistent "
            "store is not serving the replayed stream")

    floors = SERVE_SMOKE_FLOORS if report.get("smoke") else SERVE_FLOORS
    same_size = isinstance(baseline, dict) and all(
        _serve_get(report, ("config", key))
        == _serve_get(baseline, ("config", key))
        for key in ("queries", "latency_queries", "concurrency"))
    for path, name in SERVE_RATIOS:
        value = _serve_get(report, path)
        if not _finite(value):
            failures.append(
                f"serve: {name} is {value!r}, not a finite number")
            continue
        bound, origin = floors.get(name), "absolute floor"
        if same_size:
            base_value = _serve_get(baseline, path)
            if _finite(base_value):
                scaled = base_value / factor
                if bound is None or scaled > bound:
                    bound = scaled
                    origin = f"baseline {base_value}x / {factor}"
        if bound is not None and value < bound:
            failures.append(
                f"serve: {name} {value}x below {bound:g}x [{origin}]")
    return failures


def check_dist_report(report: Dict) -> List[str]:
    """Validate a ``BENCH_dist.json`` written by ``repro sweep bench``.

    The non-negotiables: merged distributed results bitwise-equal to
    the single-host reference, every fabric run complete (all grid
    points accounted for), every wall clock/throughput a positive
    finite number, counters coherent.  The 2-worker scaling floor
    applies unless the run is ``core_limited`` or ``scaling_stale``
    (see :data:`DIST_FLOORS`).
    """
    failures: List[str] = []
    if not isinstance(report, dict):
        return [f"dist: report is {type(report).__name__}, not a JSON "
                "object"]
    if report.get("benchmark") != "dist":
        return [f"dist: benchmark is {report.get('benchmark')!r}, "
                "expected 'dist' (wrong file?)"]
    if not report.get("bitwise_equal", False):
        failures.append(
            "dist: merged distributed results are no longer "
            "bitwise-equal to the single-host reference")
    points = (report.get("grid") or {}).get("points")
    if not isinstance(points, int) or points < 1:
        failures.append(
            f"dist: grid.points is {points!r}, expected a positive "
            "integer")
        points = None
    reference = report.get("reference") or {}
    for metric in ("wall_seconds", "points_per_sec"):
        value = reference.get(metric)
        if not _finite(value) or value <= 0:
            failures.append(
                f"dist: reference.{metric} is {value!r}, not a "
                "positive finite number")
    runs = report.get("workers")
    if not isinstance(runs, dict) or not runs:
        failures.append(
            "dist: no fabric runs recorded (empty or truncated "
            "BENCH_dist.json)")
        return failures
    for count, run in runs.items():
        where = f"dist[{count} worker(s)]"
        if not isinstance(run, dict):
            failures.append(f"{where}: run record is {run!r}, not a "
                            "mapping")
            continue
        if not run.get("bitwise_equal", False):
            failures.append(
                f"{where}: merged results are not bitwise-equal to the "
                "reference")
        for metric in ("wall_seconds", "points_per_sec"):
            value = run.get(metric)
            if not _finite(value) or value <= 0:
                failures.append(
                    f"{where}: {metric} is {value!r}, not a positive "
                    "finite number")
        if points is not None and run.get("completed") != points:
            failures.append(
                f"{where}: {run.get('completed')!r} of {points} points "
                "completed — the fabric lost work")
        for counter in ("reassigned_points", "duplicate_results",
                        "dead_workers", "leases_granted"):
            value = run.get(counter)
            if not isinstance(value, int) or isinstance(value, bool) \
                    or value < 0:
                failures.append(
                    f"{where}: counter {counter} is {value!r}, expected "
                    "a non-negative integer")
    floors = DIST_SMOKE_FLOORS if report.get("smoke") else DIST_FLOORS
    two = runs.get("2")
    if isinstance(two, dict) and "1" in runs:
        if two.get("core_limited") or two.get("scaling_stale"):
            # The ratio measures hardware (or a warm cache), not the
            # fabric — same skip-not-fail contract as
            # auto_vs_wheel_stale in the scale report.
            pass
        else:
            scaling = two.get("scaling_vs_1")
            bound = floors["scaling_2"]
            if not _finite(scaling):
                failures.append(
                    f"dist: 2-worker scaling_vs_1 is {scaling!r}, not a "
                    "finite number")
            elif scaling < bound:
                failures.append(
                    f"dist: 2 workers deliver {scaling}x the points/s "
                    f"of 1, below the {bound}x floor")
    return failures


# -- markdown step summary --------------------------------------------------

def summary_markdown(new: Optional[Dict], baseline: Optional[Dict],
                     scale: Optional[Dict] = None,
                     serve: Optional[Dict] = None,
                     dist: Optional[Dict] = None) -> str:
    """Before/after markdown tables for $GITHUB_STEP_SUMMARY."""
    lines: List[str] = []
    if new is not None and baseline is not None:
        lines += ["## Bench check", "",
                  "| section | baseline speedup | new speedup |",
                  "|---|---|---|"]
        for section in SIZE_KEYS:
            base = (baseline.get(section) or {}).get("speedup", "—")
            now = (new.get(section) or {}).get("speedup", "—")
            lines.append(f"| {section} | {base} | {now} |")
    if isinstance(serve, dict):
        lines += ["", "## Allocation service", "",
                  "| phase | queries | qps | p50 ms | p99 ms | ratio |",
                  "|---|---|---|---|---|---|"]
        rows = (
            ("cold", "speedup_vs_sequential", "x vs sequential"),
            ("warm", "p50_improvement", "x p50 vs cold"),
            ("replay", "speedup_vs_sequential", "x vs sequential"),
        )
        for phase, ratio_key, suffix in rows:
            data = serve.get(phase) or {}
            ratio = data.get(ratio_key)
            ratio = (f"{ratio:.1f}{suffix}" if _finite(ratio)
                     else repr(ratio))
            lines.append(
                f"| {phase} | {data.get('queries')} "
                f"| {data.get('qps')} | {data.get('p50_ms')} "
                f"| {data.get('p99_ms')} | {ratio} |")
    if isinstance(dist, dict):
        grid = dist.get("grid") or {}
        lines += ["", "## Distributed sweep fabric", "",
                  f"grid: {grid.get('points')} points, bitwise_equal: "
                  f"{dist.get('bitwise_equal')}, cpu_count: "
                  f"{dist.get('cpu_count')}", "",
                  "| workers | points/s | scaling vs 1 | reassigned | "
                  "flags |",
                  "|---|---|---|---|---|"]
        ref = dist.get("reference") or {}
        pps = ref.get("points_per_sec")
        pps = round(pps, 1) if _finite(pps) else pps
        lines.append(f"| reference (in-memory) | {pps} |  |  |  |")
        for count in sorted((dist.get("workers") or {}),
                            key=lambda c: (len(c), c)):
            run = dist["workers"][count]
            if not isinstance(run, dict):
                continue   # check_dist_report reports the failure
            pps = run.get("points_per_sec")
            pps = round(pps, 1) if _finite(pps) else pps
            scaling = run.get("scaling_vs_1")
            scaling = (f"{scaling:.2f}x" if _finite(scaling) else "")
            flags = ", ".join(
                flag for flag in ("core_limited", "scaling_stale")
                if run.get(flag))
            lines.append(
                f"| {count} | {pps} | {scaling} "
                f"| {run.get('reassigned_points')} | {flags} |")
    if isinstance(scale, dict):
        lines += ["", "## Scale harness", "",
                  "| preset | backend | flows | events/s | "
                  "peak pending | migrations |",
                  "|---|---|---|---|---|---|"]
        for preset, entry in (scale.get("presets") or {}).items():
            if not isinstance(entry, dict):
                continue   # check_scale_report reports the failure
            for backend, run in (entry.get("backends") or {}).items():
                if not isinstance(run, dict):
                    continue
                eps = run.get("events_per_sec")
                eps = round(eps) if _finite(eps) else eps
                lines.append(
                    f"| {preset} | {backend} | {run.get('n_flows')} "
                    f"| {eps} | {run.get('peak_pending')} "
                    f"| {run.get('migrations')} |")
            ratio = entry.get("auto_vs_wheel")
            if ratio is not None:
                lines.append(
                    f"| {preset} | *auto vs wheel* |  | {ratio}x |  |  |")
        families = scale.get("families")
        if isinstance(families, dict) and families:
            lines += ["", "## Scenario families", "",
                      "| family | scheduler | algorithm | done | "
                      "mean s | p90 s |",
                      "|---|---|---|---|---|---|"]
            for family, entry in families.items():
                if not isinstance(entry, dict):
                    continue
                for scheduler, by_algo in (
                        entry.get("schedulers") or {}).items():
                    if not isinstance(by_algo, dict):
                        continue
                    for algorithm, run in by_algo.items():
                        if not isinstance(run, dict):
                            continue
                        done = (f"{run.get('transfers_completed')}/"
                                f"{run.get('transfers_total')}")
                        lines.append(
                            f"| {family} | {scheduler} | {algorithm} "
                            f"| {done} | {run.get('transfer_mean_s')} "
                            f"| {run.get('transfer_p90_s')} |")
    return "\n".join(lines) + "\n"


def write_step_summary(markdown: str) -> None:
    """Append to $GITHUB_STEP_SUMMARY when running under Actions."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    try:
        with open(path, "a") as fh:
            fh.write(markdown)
    except OSError as exc:  # summary is best-effort, never fails the gate
        print(f"warning: could not write step summary: {exc}",
              file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Check BENCH reports for performance regressions")
    parser.add_argument("report", nargs="?", default=None,
                        help="freshly generated BENCH json (optional "
                             "when only --scale is being validated)")
    parser.add_argument("--baseline", default="BENCH_sweep.json",
                        help="committed baseline (default: "
                             "./BENCH_sweep.json)")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed speedup shrink factor (default: 2.0, "
                             "i.e. fail on >2x regression)")
    parser.add_argument("--scale", metavar="PATH", default=None,
                        help="also (or only) validate a BENCH_scale.json "
                             "written by 'python -m repro scale'")
    parser.add_argument("--serve", metavar="PATH", default=None,
                        help="also (or only) validate a BENCH_serve.json "
                             "written by 'python -m repro serve "
                             "--loadgen'")
    parser.add_argument("--serve-baseline", metavar="PATH",
                        default="BENCH_serve.json",
                        help="committed serve baseline (default: "
                             "./BENCH_serve.json; silently skipped when "
                             "absent — absolute floors still apply)")
    parser.add_argument("--dist", metavar="PATH", default=None,
                        help="also (or only) validate a BENCH_dist.json "
                             "written by 'python -m repro sweep bench'")
    args = parser.parse_args(argv)
    if args.report is None and args.scale is None and args.serve is None \
            and args.dist is None:
        parser.error("nothing to check: give a BENCH report, --scale, "
                     "--serve, --dist, or a combination")

    new = baseline = None
    if args.report is not None:
        with open(args.report) as fh:
            new = json.load(fh)
        with open(args.baseline) as fh:
            baseline = json.load(fh)
    scale = None
    if args.scale is not None:
        with open(args.scale) as fh:
            scale = json.load(fh)
    serve = serve_baseline = None
    if args.serve is not None:
        with open(args.serve) as fh:
            serve = json.load(fh)
        try:
            with open(args.serve_baseline) as fh:
                serve_baseline = json.load(fh)
        except OSError:
            serve_baseline = None   # floors-only mode
    dist = None
    if args.dist is not None:
        with open(args.dist) as fh:
            dist = json.load(fh)

    failures: List[str] = []
    if new is not None:
        failures += check_report(new, baseline, factor=args.factor)
    if scale is not None:
        failures += check_scale_report(scale)
    if serve is not None:
        failures += check_serve_report(serve, serve_baseline,
                                       factor=args.factor)
    if dist is not None:
        failures += check_dist_report(dist)
    write_step_summary(summary_markdown(new, baseline, scale, serve, dist))
    if failures:
        for failure in failures:
            print(f"FAIL {failure}", file=sys.stderr)
        return 1
    checked = [path for path in (args.report, args.scale, args.serve,
                                 args.dist)
               if path is not None]
    print(f"bench check OK: {', '.join(checked)} pass"
          + (f" within {args.factor}x of {args.baseline}"
         if new is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
