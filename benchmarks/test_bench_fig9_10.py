"""Benchmarks regenerating Figures 9 and 10 (scenario A, OLIA vs LIA)."""

from conftest import record_table

from repro.experiments import scenario_a


def test_fig9(benchmark):
    """Fig. 9: measured type2 throughput, LIA vs OLIA vs optimum."""
    table = benchmark.pedantic(
        lambda: scenario_a.figure9_10_table(
            n1_values=(10, 30), c1_over_c2=(0.75, 1.5),
            duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig9", table)
    for lia_val, olia_val in zip(table.column("type2 LIA"),
                                 table.column("type2 OLIA")):
        assert olia_val > lia_val  # OLIA always better for type2


def test_fig10(benchmark):
    """Fig. 10: measured p2, OLIA below LIA everywhere."""
    table = benchmark.pedantic(
        lambda: scenario_a.figure9_10_table(
            n1_values=(10, 30), c1_over_c2=(1.0,),
            duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig10", table)
    for lia_p2, olia_p2 in zip(table.column("p2 LIA"),
                               table.column("p2 OLIA")):
        assert olia_p2 < lia_p2
