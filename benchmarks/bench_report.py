#!/usr/bin/env python
"""Emit ``BENCH_sweep.json``: fluid batch-vs-loop sweep throughput and
DES engine events/sec before/after the free-list optimisation.

Thin wrapper over :mod:`repro.benchreport` so the report can be produced
either from the source tree (``python benchmarks/bench_report.py``) or
via the CLI (``python -m repro bench``).  ``REPRO_BENCH_SMOKE=1`` caps
the sizes for quick smoke runs.
"""

from __future__ import annotations

import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.benchreport import format_report, run_bench  # noqa: E402


def main() -> int:
    output = sys.argv[1] if len(sys.argv) > 1 \
        else str(REPO_ROOT / "BENCH_sweep.json")
    report = run_bench(output)
    print(format_report(report))
    print(f"[report written to {output}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
