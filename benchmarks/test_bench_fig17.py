"""Benchmark regenerating Figure 17 (probing-cost RTT sensitivity)."""

from conftest import record_table

from repro.experiments import scenario_b


def test_fig17(benchmark):
    """Fig. 17: the optimum's upgrade penalty scales as 1/RTT."""
    table = benchmark.pedantic(
        lambda: scenario_b.figure17_table(rtts=(0.025, 0.1, 0.15)),
        rounds=1, iterations=1)
    record_table(benchmark, "fig17", table)
    drops = table.column("aggregate drop (Mbps)")
    assert drops[0] > drops[1] > drops[2]
