"""Benchmarks verifying Theorems 1, 3 and 4 on the fluid model."""

import numpy as np
from conftest import record_table

from repro.experiments.results import ResultTable
from repro.fluid import (
    FluidNetwork,
    PowerLoss,
    integrate,
    kkt_report,
    solve_fixed_point,
    v_utility,
    verify_theorem1,
)


def _scenario_net():
    """Multipath user (two APs) + three TCP users on the second AP."""
    net = FluidNetwork()
    l1 = net.add_link(PowerLoss(capacity=800.0, p_at_capacity=0.02))
    l2 = net.add_link(PowerLoss(capacity=800.0, p_at_capacity=0.02))
    mp = net.add_user("mp")
    net.add_route(mp, [l1], rtt=0.1)
    net.add_route(mp, [l2], rtt=0.1)
    rules = {mp: "olia"}
    for i in range(3):
        user = net.add_user(f"tcp{i}")
        net.add_route(user, [l2], rtt=0.1)
        rules[user] = "tcp"
    return net, rules


def test_theorem1(benchmark):
    """Theorem 1: OLIA uses only best paths; total = best-path TCP rate."""
    def run():
        net, rules = _scenario_net()
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        checks = verify_theorem1(net, result.rates)
        return net, result, checks

    net, result, checks = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable("Theorem 1 - OLIA fixed-point properties",
                        ["property", "holds"])
    for name, value in checks.items():
        table.add_row(name, value)
    record_table(benchmark, "theorem1", table)
    assert all(checks.values())


def test_theorem3(benchmark):
    """Theorem 3: the KKT certificate of V* holds at OLIA's fixed point
    and fails at LIA's."""
    def run():
        net, rules = _scenario_net()
        olia_fp = solve_fixed_point(net, rules, floor_packets=1.0)
        olia_report = kkt_report(net, olia_fp.rates, tol=0.1)
        lia_rules = dict(rules)
        lia_rules[0] = "lia"
        lia_fp = solve_fixed_point(net, lia_rules, floor_packets=1.0)
        lia_report = kkt_report(net, lia_fp.rates, tol=0.1)
        return olia_report, lia_report

    olia_report, lia_report = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    table = ResultTable("Theorem 3 - Pareto-optimality certificate (KKT)",
                        ["algorithm", "max violation",
                         "max complementarity", "pareto-optimal"])
    table.add_row("olia", olia_report.max_violation,
                  olia_report.max_complementarity,
                  olia_report.is_pareto_optimal)
    table.add_row("lia", lia_report.max_violation,
                  lia_report.max_complementarity,
                  lia_report.is_pareto_optimal)
    record_table(benchmark, "theorem3", table)
    assert olia_report.is_pareto_optimal
    assert not lia_report.is_pareto_optimal


def test_theorem4(benchmark):
    """Theorem 4: V(x(t)) is non-decreasing along the OLIA dynamics."""
    def run():
        net, rules = _scenario_net()
        traj = integrate(net, rules, t_end=40.0, dt=2e-3,
                         floor_packets=0.0,
                         x0=np.full(net.n_routes, 5.0))
        return net, [v_utility(net, x) for x in traj.rates]

    net, values = benchmark.pedantic(run, rounds=1, iterations=1)
    table = ResultTable("Theorem 4 - V(x(t)) along the OLIA trajectory",
                        ["t index", "V(x)"])
    step = max(len(values) // 8, 1)
    for i in range(0, len(values), step):
        table.add_row(i, values[i])
    record_table(benchmark, "theorem4", table)
    diffs = np.diff(values)
    tol = 1e-3 * max(abs(v) for v in values)
    assert np.all(diffs >= -tol)
    assert values[-1] > values[0]
