"""Benchmarks regenerating Figure 13 (FatTree, paper Section VI-B.1).

The paper runs k=8 (128 hosts, 80 switches) at 100 Mb/s; we keep the
full k=8 topology but scale links to 10 Mb/s and shorten the runs so the
pure-Python simulation completes in minutes.  Percent-of-optimal is
scale-free.
"""

from conftest import record_table

from repro.experiments import fattree


def test_fig13a(benchmark):
    """Fig. 13(a): aggregate throughput vs number of subflows."""
    table = benchmark.pedantic(
        lambda: fattree.figure13a_table(
            k=8, link_mbps=10.0, duration=2.0, warmup=0.75,
            subflow_counts=(2, 4, 8)),
        rounds=1, iterations=1)
    record_table(benchmark, "fig13a", table)
    tcp = table.column("TCP")[0]
    for algorithm in ("LIA", "OLIA"):
        best = max(table.column(algorithm))
        assert best > 80.0        # MPTCP uses the available capacity
        assert best > tcp + 20.0  # and clearly beats single-path TCP


def test_fig13b(benchmark):
    """Fig. 13(b): ranked per-flow throughput at 8 subflows."""
    table = benchmark.pedantic(
        lambda: fattree.figure13b_table(
            k=8, link_mbps=10.0, duration=2.0, warmup=0.75,
            n_subflows=8),
        rounds=1, iterations=1)
    record_table(benchmark, "fig13b", table)
    # Fairness: MPTCP's 10th-percentile flow beats TCP's.
    row10 = table.rows[0]
    lia10 = row10[table.columns.index("LIA")]
    olia10 = row10[table.columns.index("OLIA")]
    tcp10 = row10[table.columns.index("TCP")]
    assert lia10 > tcp10
    assert olia10 > tcp10
