"""Ablation benchmarks for the design choices DESIGN.md calls out."""

from conftest import record_table

from repro.experiments import ablation


def test_epsilon_family(benchmark):
    """The epsilon trade-off of Section II on the scenario C network."""
    table = benchmark.pedantic(
        lambda: ablation.epsilon_sweep_table(
            epsilons=(0.0, 0.5, 1.0, 1.5, 2.0)),
        rounds=1, iterations=1)
    record_table(benchmark, "ablation_epsilon", table)
    shares = table.column("mp share of AP2 (%)")
    assert shares == sorted(shares)  # monotone in epsilon


def test_alpha_term_flappiness(benchmark):
    """OLIA minus alpha (fully coupled) is flappier on symmetric paths."""
    table = benchmark.pedantic(
        lambda: ablation.flappiness_table(duration=90.0),
        rounds=1, iterations=1)
    record_table(benchmark, "ablation_alpha", table)
    rows = {row[0]: row for row in table.rows}
    # One-sided fraction: share of time one path is starved (>60/40).
    assert rows["coupled"][4] > rows["olia"][4]


def test_queue_discipline(benchmark):
    """The OLIA > LIA ordering survives RED vs drop-tail queues."""
    table = benchmark.pedantic(
        lambda: ablation.queue_discipline_table(duration=15.0,
                                                warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "ablation_queue", table)
    by_key = {(row[0], row[1]): row[2] for row in table.rows}
    for queue in ("red", "droptail"):
        assert by_key[(queue, "olia")] > by_key[(queue, "lia")]
