"""Benchmarks regenerating Figure 4 (scenario B analytical curves)."""

from conftest import record_table

from repro.experiments import scenario_b


def test_fig4a(benchmark):
    """Fig. 4(a): LIA — upgrading Red lowers everyone for all CX/CT."""
    table = benchmark.pedantic(
        lambda: scenario_b.figure4_table(
            cx_over_ct=(0.3, 0.5, 0.75, 1.0, 1.25, 1.5)),
        rounds=1, iterations=1)
    record_table(benchmark, "fig4a", table)
    for blue_sp, blue_mp in zip(table.column("blue LIA sp"),
                                table.column("blue LIA mp")):
        assert blue_mp <= blue_sp + 1e-9
    for red_sp, red_mp in zip(table.column("red LIA sp"),
                              table.column("red LIA mp")):
        assert red_mp <= red_sp + 1e-9


def test_fig4b(benchmark):
    """Fig. 4(b): the optimum loses only probing traffic on upgrade."""
    table = benchmark.pedantic(
        lambda: scenario_b.figure4_table(
            cx_over_ct=(0.3, 0.5, 0.75, 1.0, 1.25, 1.5)),
        rounds=1, iterations=1)
    record_table(benchmark, "fig4b", table)
    for blue_sp, blue_mp in zip(table.column("blue opt sp"),
                                table.column("blue opt mp")):
        drop = 1.0 - blue_mp / blue_sp
        assert drop < 0.06  # paper: ~3%
