"""Benchmarks regenerating Figures 7 and 8 (window/alpha traces)."""

from conftest import record_table

from repro.experiments import traces
from repro.experiments.results import ResultTable


def test_fig7(benchmark):
    """Fig. 7: symmetric two-path — both algorithms use both paths."""
    def run():
        table = ResultTable(
            "Fig. 7 - symmetric two-path traces",
            ["algorithm", "w1", "w2", "imbalance", "flips"])
        results = {}
        for algorithm in ("olia", "lia"):
            trace = traces.run_two_path_trace(
                algorithm, competing=(5, 5), duration=90.0)
            w1, w2 = trace.mean_windows
            table.add_row(algorithm, w1, w2, trace.window_imbalance(),
                          trace.flip_count())
            results[algorithm] = trace
        return table, results

    table, results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(benchmark, "fig7", table)
    for trace in results.values():
        w1, w2 = trace.mean_windows
        assert w1 > 3.0 and w2 > 3.0  # no path abandoned


def test_fig8(benchmark):
    """Fig. 8: asymmetric — OLIA retreats from the congested path."""
    def run():
        table = ResultTable(
            "Fig. 8 - asymmetric two-path traces (path 2 congested)",
            ["algorithm", "w1", "w2", "imbalance", "flips"])
        results = {}
        for algorithm in ("olia", "lia"):
            trace = traces.run_two_path_trace(
                algorithm, competing=(5, 10), duration=90.0)
            w1, w2 = trace.mean_windows
            table.add_row(algorithm, w1, w2, trace.window_imbalance(),
                          trace.flip_count())
            results[algorithm] = trace
        return table, results

    table, results = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(benchmark, "fig8", table)
    assert results["olia"].mean_windows[1] < results["lia"].mean_windows[1]
