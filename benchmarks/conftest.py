"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and both
prints it and writes it under ``benchmarks/output/`` so a full
``pytest benchmarks/ --benchmark-only`` run leaves the reproduced
tables on disk.
"""

from __future__ import annotations

import pathlib

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


def record_table(benchmark, name: str, table) -> None:
    """Print ``table``, persist it, and attach a summary to the report."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    text = str(table)
    print(f"\n{text}")
    (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n")
    benchmark.extra_info["table"] = name
    benchmark.extra_info["rows"] = len(table.rows)
