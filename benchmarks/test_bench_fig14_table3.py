"""Benchmarks regenerating Figure 14 and Table III (dynamic short flows)."""

from conftest import record_table

from repro.experiments import shortflows


def test_table3(benchmark):
    """Table III: FCT mean/std and core utilization per algorithm."""
    table = benchmark.pedantic(
        lambda: shortflows.table3(k=4, duration=12.0, warmup=1.0),
        rounds=1, iterations=1)
    record_table(benchmark, "table3", table)
    rows = {row[0]: row for row in table.rows}
    util_index = table.columns.index("core utilization (%)")
    fct_index = table.columns.index("FCT mean (ms)")
    # TCP: fastest short flows but clearly lower utilization.
    assert rows["Regular TCP"][util_index] < rows["LIA"][util_index] - 5
    assert rows["Regular TCP"][fct_index] < rows["LIA"][fct_index] * 1.1
    # OLIA keeps LIA-level utilization.
    assert abs(rows["OLIA"][util_index] - rows["LIA"][util_index]) < 10


def test_fig14(benchmark):
    """Fig. 14: distribution of short-flow completion times."""
    table = benchmark.pedantic(
        lambda: shortflows.figure14_table(k=4, duration=12.0, warmup=1.0,
                                          bin_ms=50.0, max_ms=500.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig14", table)
    for name in ("LIA", "OLIA", "TCP"):
        assert sum(table.column(name)) > 0.99  # a full distribution
