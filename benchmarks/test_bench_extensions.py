"""Benchmarks for the extension experiments: RTT heterogeneity (Remark 3)
and the square-root-law calibration of the packet simulator."""

from conftest import record_table

from repro.experiments import calibration, rtt_heterogeneity


def test_rtt_heterogeneity_sweep(benchmark):
    """Remark 3: path preference and collateral damage under RTT skew."""
    def run():
        return (rtt_heterogeneity.rtt_sweep_table(algorithm="olia"),
                rtt_heterogeneity.rtt_sweep_table(algorithm="lia"))

    olia_table, lia_table = benchmark.pedantic(run, rounds=1, iterations=1)
    record_table(benchmark, "rtt_sweep_olia", olia_table)
    record_table(benchmark, "rtt_sweep_lia", lia_table)
    tcp_ap1 = olia_table.column("tcp@AP1 rate")
    assert tcp_ap1[0] < tcp_ap1[-1]  # short-RTT path users squeezed


def test_best_path_criterion(benchmark):
    """The sqrt(2/p)/rtt crossover table."""
    table = benchmark.pedantic(
        lambda: rtt_heterogeneity.best_path_criterion_table(),
        rounds=1, iterations=1)
    record_table(benchmark, "rtt_criterion", table)
    assert "path1" in table.column("best path")
    assert "path2" in table.column("best path")


def test_calibration_square_root_law(benchmark):
    """Packet TCP vs sqrt(2/p)/rtt across capacities and flow counts."""
    table = benchmark.pedantic(
        lambda: calibration.formula_validation_table(
            capacities_mbps=(1.0, 2.0, 5.0), flow_counts=(2, 5),
            duration=40.0, warmup=15.0),
        rounds=1, iterations=1)
    record_table(benchmark, "calibration", table)
    for ratio in table.column("ratio"):
        assert 0.5 < ratio < 2.0
