"""Benchmarks regenerating Figures 11 and 12 (scenario C, OLIA vs LIA)."""

from conftest import record_table

from repro.experiments import scenario_c


def test_fig11(benchmark):
    """Fig. 11: single-path users gain with OLIA."""
    table = benchmark.pedantic(
        lambda: scenario_c.figure11_12_table(
            n1_values=(10, 30), c1_over_c2=(1.0, 2.0),
            duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig11", table)
    for lia_val, olia_val in zip(table.column("sp LIA"),
                                 table.column("sp OLIA")):
        assert olia_val > lia_val


def test_fig12(benchmark):
    """Fig. 12: p2 lower with OLIA (paper: 4-6x at N1=3N2)."""
    table = benchmark.pedantic(
        lambda: scenario_c.figure11_12_table(
            n1_values=(30,), c1_over_c2=(1.0, 2.0),
            duration=15.0, warmup=8.0),
        rounds=1, iterations=1)
    record_table(benchmark, "fig12", table)
    for lia_p2, olia_p2 in zip(table.column("p2 LIA"),
                               table.column("p2 OLIA")):
        assert olia_p2 < lia_p2
