"""Benchmarks regenerating Tables I and II (scenario B, measured)."""

from conftest import record_table

from repro.experiments import scenario_b


def test_table1_lia(benchmark):
    """Table I: LIA — upgrading Red drops the aggregate by ~13%."""
    table = benchmark.pedantic(
        lambda: scenario_b.table_1_2("lia", duration=20.0, warmup=10.0),
        rounds=1, iterations=1)
    record_table(benchmark, "table1", table)
    aggregates = table.column("Aggregate (Mbps)")
    drop = 1.0 - aggregates[1] / aggregates[0]
    assert 0.05 < drop < 0.25  # paper: 13%


def test_table2_olia(benchmark):
    """Table II: OLIA — the drop shrinks to probing overhead (~3.5%)."""
    table = benchmark.pedantic(
        lambda: scenario_b.table_1_2("olia", duration=20.0, warmup=10.0),
        rounds=1, iterations=1)
    record_table(benchmark, "table2", table)
    aggregates = table.column("Aggregate (Mbps)")
    drop = 1.0 - aggregates[1] / aggregates[0]
    assert drop < 0.1
