"""MPTCP connections: several subflows coupled by one controller.

An :class:`MptcpConnection` opens one :class:`~repro.sim.tcp.TcpSubflow`
per path and binds them all to a single shared
:class:`~repro.core.base.MultipathController` (LIA, OLIA, ...), which is
where the congestion coupling happens.  Following the paper's Linux
implementation (Section IV-B), subflows of a multi-path connection use a
minimum ssthresh of 1 MSS so that congested paths fall out of slow start
immediately.

Long-lived connections model Iperf bulk transfers: every subflow always
has data to send, so the MPTCP packet scheduler (which subflow carries
the next packet) has nothing to decide and is never consulted.  A
*finite* transfer (``size_packets``) is different: the connection
installs a :class:`_SchedulerGate` that partitions (or, for the
redundant policy, duplicates) the stream across subflows according to a
:class:`~repro.sim.packet_scheduler.PacketScheduler` resolved through
the registry's scheduler axis (``scheduler=`` accepts a name, a
:class:`~repro.core.registry.SchedulerSpec`, or a policy instance;
``None`` means the default ``minrtt``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.base import MultipathController
from ..core.registry import make_controller, make_scheduler
from .engine import Simulator
from .packet_scheduler import PacketScheduler
from .tcp import TcpSubflow


@dataclass(frozen=True)
class PathSpec:
    """Forward path (tuple of links) plus the reverse-direction delay."""

    links: tuple
    reverse_delay: float

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path needs at least one link")
        if self.reverse_delay < 0:
            raise ValueError("reverse delay cannot be negative")


class _SchedulerGate:
    """Stripes one finite stream across subflows via a scheduler policy.

    The gate implements the *grant-on-ask* contract documented in
    :mod:`repro.sim.packet_scheduler`: a subflow with window space asks
    :meth:`has_data`, the gate builds the ready set, consults the
    policy, and either grants the asker one packet or denies it (and
    pokes the subflow the policy preferred instead).  Packet-count
    bookkeeping — not per-sequence maps — is all that partitioning
    needs, because subflow-local sequence spaces make stream packets
    fungible.

    For a duplicating policy (``redundant``) every subflow carries its
    own full copy of the stream and the gate instead tracks the
    *receiver-side union*: the transfer completes when the in-order
    prefix over all copies covers the stream.  A subflow added
    mid-transfer restarts its copy from zero; its packets still count
    toward the union.
    """

    __slots__ = ("sim", "connection", "policy", "size", "on_complete",
                 "duplicates", "completed", "start_time", "elapsed",
                 "granted", "assigned", "delivered",
                 "union_nxt", "_union_ooo", "_kicking")

    def __init__(self, sim: Simulator, connection: "MptcpConnection",
                 policy: PacketScheduler, size: int,
                 on_complete: Optional[Callable[[float], None]]) -> None:
        self.sim = sim
        self.connection = connection
        self.policy = policy
        self.size = size
        self.on_complete = on_complete
        self.duplicates = policy.duplicates
        self.completed = False
        self.start_time: Optional[float] = None
        self.elapsed: Optional[float] = None
        # Partition mode: per-subflow grant counters.
        self.granted: dict = {}
        self.assigned = 0
        self.delivered = 0
        # Duplicate mode: receiver-side union prefix over all copies.
        self.union_nxt = 0
        self._union_ooo: set = set()
        self._kicking = False

    # -- sender side ------------------------------------------------------------
    @staticmethod
    def _has_space(sf: TcpSubflow) -> bool:
        window = int(sf.state.cwnd)
        if sf.rcv_wnd_packets is not None:
            window = min(window, sf.rcv_wnd_packets)
        return sf.in_flight < window

    def note_start(self) -> None:
        """First subflow came up: the transfer clock starts now."""
        if self.start_time is None:
            self.start_time = self.sim.now

    def has_data(self, sf: TcpSubflow) -> bool:
        """Does ``sf`` have a packet to send?  May grant one.

        Called from the subflow's send loop.  A grant is consumed
        immediately by that loop (the asker is only eligible while it
        has window space), so ``granted[key]`` never runs ahead of what
        the subflow can actually put on the wire.
        """
        if self.completed:
            return False
        if self.duplicates:
            # Each subflow streams its own full copy; completion is
            # tracked receiver-side (and per-copy by the subflow).
            return sf.snd_nxt < self.size
        if sf.snd_nxt < self.granted.get(sf.key, 0):
            return True  # a granted packet not yet transmitted
        if self.assigned >= self.size:
            return False
        ready = [s for s in self.connection.subflows
                 if s.started and not s.completed and self._has_space(s)]
        if not ready:
            return False
        chosen = self.policy.choose(ready)
        if chosen is sf:
            self.granted[sf.key] = self.granted.get(sf.key, 0) + 1
            self.assigned += 1
            self.policy.on_grant(sf)
            return True
        # The policy prefers a sibling: make sure it actually sends
        # (it has window space, so it will be granted when it asks).
        if not self._kicking:
            self._kicking = True
            try:
                chosen._try_send()
            finally:
                self._kicking = False
        return False

    def kick(self) -> None:
        """Poke every subflow's send loop (new grants may be possible)."""
        if self.completed or self._kicking:
            return
        self._kicking = True
        try:
            for sf in list(self.connection.subflows):
                if sf.started and not sf.completed:
                    sf._try_send()
        finally:
            self._kicking = False

    # -- progress tracking ------------------------------------------------------
    def on_ack(self, sf: TcpSubflow, newly: int) -> bool:
        """Record ``newly`` cumulatively-acked packets on ``sf``.

        Returns ``True`` when this ack completed the whole transfer (the
        caller should stop processing the ack).
        """
        if self.completed or self.duplicates:
            return False
        self.delivered += newly
        if self.delivered >= self.size:
            self._finish()
            return True
        return False

    def on_received(self, sf: TcpSubflow, seq: int) -> None:
        """Receiver saw ``seq`` on ``sf`` (duplicate mode union prefix)."""
        if self.completed or not self.duplicates:
            return
        if seq == self.union_nxt:
            self.union_nxt += 1
            ooo = self._union_ooo
            while self.union_nxt in ooo:
                ooo.discard(self.union_nxt)
                self.union_nxt += 1
        elif seq > self.union_nxt:
            self._union_ooo.add(seq)
        if self.union_nxt >= self.size:
            self._finish()

    def on_subflow_removed(self, sf: TcpSubflow) -> None:
        """Reclaim grants a departing subflow will never deliver.

        Packets are fungible (subflow-local sequence spaces), so a
        count-based reclaim is exact: everything granted to the subflow
        beyond what it got acknowledged — unsent grants and abandoned
        in-flight packets alike — goes back to the unassigned pool.
        """
        self.policy.on_subflow_removed(sf.key)
        if self.duplicates or self.completed:
            return
        unfulfilled = self.granted.pop(sf.key, 0) - sf.snd_una
        if unfulfilled > 0:
            self.assigned -= unfulfilled
        self.kick()

    def cancel(self) -> None:
        """Connection torn down externally: never report completion."""
        self.completed = True

    def _finish(self) -> None:
        self.completed = True
        start = self.start_time if self.start_time is not None else 0.0
        self.elapsed = self.sim.now - start
        for sf in list(self.connection.subflows):
            sf.stop()
        if self.on_complete is not None:
            self.on_complete(self.elapsed)


class MptcpConnection:
    """A multipath connection running a coupled congestion controller."""

    def __init__(self, sim: Simulator, algorithm, paths: Sequence[PathSpec],
                 *, scheduler=None, size_packets: Optional[int] = None,
                 on_complete: Optional[Callable[[float], None]] = None,
                 name: str = "mptcp") -> None:
        if not paths:
            raise ValueError("an MPTCP connection needs at least one path")
        if on_complete is not None and size_packets is None:
            raise ValueError("on_complete needs a finite transfer "
                             "(pass size_packets)")
        if size_packets is not None and size_packets < 1:
            raise ValueError("size_packets must be at least 1")
        self.sim = sim
        self.name = name
        if isinstance(algorithm, MultipathController):
            self.controller = algorithm
        else:
            # A name string or AlgorithmSpec, resolved through the
            # cross-layer registry (the single dispatch path).
            self.controller = make_controller(algorithm)
        # Resolve the scheduler axis even when no gate is installed so
        # that a bad name fails loudly for bulk connections too.
        if isinstance(scheduler, PacketScheduler):
            policy = scheduler
        else:
            policy = make_scheduler(scheduler)
        self.scheduler = policy
        self.gate: Optional[_SchedulerGate] = None
        if size_packets is not None:
            self.gate = _SchedulerGate(sim, self, policy, size_packets,
                                       on_complete)
        multipath = len(paths) > 1
        self.subflows: List[TcpSubflow] = []
        self._next_key = 0
        self._started = False
        self._closed_acked = 0
        for spec in paths:
            self._make_subflow(spec, multipath)

    def _make_subflow(self, spec: PathSpec, multipath: bool) -> TcpSubflow:
        key = self._next_key
        self._next_key += 1
        gate = self.gate
        # Duplicating policies give every subflow its own full copy of
        # the stream (per-copy completion stays subflow-local).
        size = gate.size if gate is not None and gate.duplicates else None
        subflow = TcpSubflow(
            self.sim, spec.links, spec.reverse_delay, self.controller,
            key=key,
            min_ssthresh=1.0 if multipath else 2.0,
            size_packets=size,
            gate=gate,
            name=f"{self.name}.sf{key}")
        self.subflows.append(subflow)
        return subflow

    def start(self, at: float | None = None) -> None:
        """Start every subflow at time ``at`` (defaults to now)."""
        self._started = True
        for subflow in self.subflows:
            subflow.start(at)

    # -- dynamic path management ------------------------------------------------
    def add_subflow(self, spec: PathSpec) -> TcpSubflow:
        """Open an extra subflow mid-connection (a new path appeared).

        The new subflow joins the shared controller and, if the
        connection is already running, starts immediately.
        """
        subflow = self._make_subflow(spec, multipath=True)
        if self._started:
            subflow.start()
        return subflow

    def remove_subflow(self, subflow: TcpSubflow) -> None:
        """Close one subflow (path failure / interface removal)."""
        if subflow not in self.subflows:
            raise ValueError("subflow does not belong to this connection")
        subflow.stop()
        self.subflows.remove(subflow)
        self._closed_acked += subflow.acked_packets
        if self.gate is not None:
            self.gate.on_subflow_removed(subflow)

    def stop(self) -> None:
        """Tear the whole connection down (all paths at once).

        Stops every subflow, which disarms its RTO timer and detaches it
        from the shared controller; in-flight packets are abandoned.
        The connection keeps its acked-packet history for monitors.
        """
        if self.gate is not None:
            self.gate.cancel()
        for subflow in self.subflows:
            subflow.stop()
        self._closed_acked += sum(sf.acked_packets for sf in self.subflows)
        self.subflows.clear()

    @property
    def complete(self) -> bool:
        """Whether a finite transfer has fully completed."""
        return self.gate is not None and self.gate.elapsed is not None

    @property
    def transfer_time(self) -> Optional[float]:
        """Completion time of a finite transfer (``None`` while running)."""
        return self.gate.elapsed if self.gate is not None else None

    @property
    def acked_packets(self) -> int:
        """Total packets acknowledged across subflows (closed included)."""
        return (sum(sf.acked_packets for sf in self.subflows)
                + self._closed_acked)

    def windows(self) -> List[float]:
        """Current congestion windows, one per subflow."""
        return [sf.cwnd for sf in self.subflows]

    def alphas(self) -> List[float]:
        """OLIA's current alpha values (zeros for other algorithms)."""
        if hasattr(self.controller, "alphas"):
            alpha_map = self.controller.alphas()
            return [alpha_map.get(sf.key, 0.0) for sf in self.subflows]
        return [0.0] * len(self.subflows)
