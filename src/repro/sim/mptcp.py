"""MPTCP connections: several subflows coupled by one controller.

An :class:`MptcpConnection` opens one :class:`~repro.sim.tcp.TcpSubflow`
per path and binds them all to a single shared
:class:`~repro.core.base.MultipathController` (LIA, OLIA, ...), which is
where the congestion coupling happens.  Following the paper's Linux
implementation (Section IV-B), subflows of a multi-path connection use a
minimum ssthresh of 1 MSS so that congested paths fall out of slow start
immediately.

Long-lived connections model Iperf bulk transfers: every subflow always
has data to send, so the MPTCP scheduler (packet striping) is irrelevant
to throughput and is not modelled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..core.base import MultipathController
from ..core.registry import make_controller
from .engine import Simulator
from .tcp import TcpSubflow


@dataclass(frozen=True)
class PathSpec:
    """Forward path (tuple of links) plus the reverse-direction delay."""

    links: tuple
    reverse_delay: float

    def __post_init__(self) -> None:
        if not self.links:
            raise ValueError("a path needs at least one link")
        if self.reverse_delay < 0:
            raise ValueError("reverse delay cannot be negative")


class MptcpConnection:
    """A multipath connection running a coupled congestion controller."""

    def __init__(self, sim: Simulator, algorithm, paths: Sequence[PathSpec],
                 *, name: str = "mptcp") -> None:
        if not paths:
            raise ValueError("an MPTCP connection needs at least one path")
        self.sim = sim
        self.name = name
        if isinstance(algorithm, MultipathController):
            self.controller = algorithm
        else:
            # A name string or AlgorithmSpec, resolved through the
            # cross-layer registry (the single dispatch path).
            self.controller = make_controller(algorithm)
        multipath = len(paths) > 1
        self.subflows: List[TcpSubflow] = []
        self._next_key = 0
        self._started = False
        self._closed_acked = 0
        for spec in paths:
            self._make_subflow(spec, multipath)

    def _make_subflow(self, spec: PathSpec, multipath: bool) -> TcpSubflow:
        key = self._next_key
        self._next_key += 1
        subflow = TcpSubflow(
            self.sim, spec.links, spec.reverse_delay, self.controller,
            key=key,
            min_ssthresh=1.0 if multipath else 2.0,
            name=f"{self.name}.sf{key}")
        self.subflows.append(subflow)
        return subflow

    def start(self, at: float | None = None) -> None:
        """Start every subflow at time ``at`` (defaults to now)."""
        self._started = True
        for subflow in self.subflows:
            subflow.start(at)

    # -- dynamic path management ------------------------------------------------
    def add_subflow(self, spec: PathSpec) -> TcpSubflow:
        """Open an extra subflow mid-connection (a new path appeared).

        The new subflow joins the shared controller and, if the
        connection is already running, starts immediately.
        """
        subflow = self._make_subflow(spec, multipath=True)
        if self._started:
            subflow.start()
        return subflow

    def remove_subflow(self, subflow: TcpSubflow) -> None:
        """Close one subflow (path failure / interface removal)."""
        if subflow not in self.subflows:
            raise ValueError("subflow does not belong to this connection")
        subflow.stop()
        self.subflows.remove(subflow)
        self._closed_acked += subflow.acked_packets

    def stop(self) -> None:
        """Tear the whole connection down (all paths at once).

        Stops every subflow, which disarms its RTO timer and detaches it
        from the shared controller; in-flight packets are abandoned.
        The connection keeps its acked-packet history for monitors.
        """
        for subflow in self.subflows:
            subflow.stop()
        self._closed_acked += sum(sf.acked_packets for sf in self.subflows)
        self.subflows.clear()

    @property
    def acked_packets(self) -> int:
        """Total packets acknowledged across subflows (closed included)."""
        return (sum(sf.acked_packets for sf in self.subflows)
                + self._closed_acked)

    def windows(self) -> List[float]:
        """Current congestion windows, one per subflow."""
        return [sf.cwnd for sf in self.subflows]

    def alphas(self) -> List[float]:
        """OLIA's current alpha values (zeros for other algorithms)."""
        if hasattr(self.controller, "alphas"):
            alpha_map = self.controller.alphas()
            return [alpha_map.get(sf.key, 0.0) for sf in self.subflows]
        return [0.0] * len(self.subflows)
