"""Traffic applications: bulk transfers, short flows, background noise.

``BulkTransfer`` models the paper's Iperf sessions (long-lived flows that
always have data).  ``ShortFlowSource`` models the dynamic workload of
Section VI-B.2: a host sends fixed-size transfers (70 KB by default) with
exponential inter-arrival times (mean 200 ms), each as a brand-new regular
TCP connection, and records flow completion times.  ``BackgroundTraffic``
injects unresponsive (UDP-like) packets — the "background traffic" factor
the paper's conclusion earmarks for further experiments.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Tuple

from ..units import MSS_BYTES, bytes_to_packets
from .engine import Simulator
from .mptcp import MptcpConnection, PathSpec
from .packet import Packet
from .tcp import TcpSubflow, single_path_tcp

#: A path provider returns (links, reverse_delay) for a new flow.
PathProvider = Callable[[], Tuple[tuple, float]]


class BulkTransfer:
    """A long-lived flow: single-path TCP or MPTCP, started with jitter.

    Passing ``size_packets`` turns it into a *finite* transfer: MPTCP
    connections then stripe the stream through the packet ``scheduler``
    (a registry name, spec, or policy instance; default ``minrtt``) and
    call ``on_complete(elapsed)`` when done.  Long-lived flows ignore
    the scheduler — with unlimited data every subflow is always busy.
    """

    def __init__(self, sim: Simulator, algorithm: str,
                 paths: List[PathSpec], *, start_time: float = 0.0,
                 scheduler=None,
                 size_packets: Optional[int] = None,
                 on_complete: Optional[Callable[[float], None]] = None,
                 name: str = "bulk") -> None:
        self.sim = sim
        self.name = name
        self.start_time = start_time
        if algorithm in ("tcp", "reno") and len(paths) == 1:
            self._tcp: Optional[TcpSubflow] = single_path_tcp(
                sim, paths[0].links, paths[0].reverse_delay,
                size_packets=size_packets, on_complete=on_complete,
                name=name)
            self._mptcp: Optional[MptcpConnection] = None
        else:
            self._tcp = None
            self._mptcp = MptcpConnection(
                sim, algorithm, paths, scheduler=scheduler,
                size_packets=size_packets, on_complete=on_complete,
                name=name)

    def start(self) -> None:
        if self._tcp is not None:
            self._tcp.start(self.start_time)
        else:
            self._mptcp.start(self.start_time)

    @property
    def connection(self):
        """The underlying transport object (TcpSubflow or MptcpConnection)."""
        return self._tcp if self._tcp is not None else self._mptcp

    @property
    def acked_packets(self) -> int:
        return self.connection.acked_packets

    def goodput_pps(self, since: float, now: float,
                    acked_at_since: int = 0) -> float:
        """Mean goodput in packets/s between ``since`` and ``now``."""
        elapsed = now - since
        if elapsed <= 0:
            return 0.0
        return (self.acked_packets - acked_at_since) / elapsed


class ShortFlowSource:
    """Poisson arrivals of fixed-size TCP transfers with FCT recording."""

    def __init__(self, sim: Simulator, rng: random.Random,
                 path_provider: PathProvider, *,
                 mean_interarrival: float = 0.2,
                 flow_bytes: int = 70_000,
                 name: str = "short") -> None:
        if mean_interarrival <= 0:
            raise ValueError("mean inter-arrival time must be positive")
        if flow_bytes <= 0:
            raise ValueError("flow size must be positive")
        self.sim = sim
        self.rng = rng
        self.path_provider = path_provider
        self.mean_interarrival = mean_interarrival
        self.flow_packets = bytes_to_packets(flow_bytes)
        self.name = name
        self.completion_times: List[float] = []
        self.flows_started = 0
        self._running = False
        self._flow_counter = 0
        # One rearmable spawn timer drives the whole arrival process.
        self._spawn_timer = sim.timer(self._spawn_flow)

    def start(self, at: float | None = None) -> None:
        """Begin generating flows at ``at`` (defaults to now)."""
        self._running = True
        when = self.sim.now if at is None else at
        self._spawn_timer.arm_at(when + self._next_gap())

    def stop(self) -> None:
        """Stop creating new flows (in-flight flows run to completion)."""
        self._running = False
        self._spawn_timer.cancel()

    def _next_gap(self) -> float:
        return self.rng.expovariate(1.0 / self.mean_interarrival)

    def _spawn_flow(self) -> None:
        if not self._running:
            return
        links, reverse_delay = self.path_provider()
        self._flow_counter += 1
        self.flows_started += 1
        flow = single_path_tcp(
            self.sim, links, reverse_delay,
            size_packets=self.flow_packets,
            on_complete=self.completion_times.append,
            name=f"{self.name}.{self._flow_counter}")
        flow.start()
        self._spawn_timer.arm(self._next_gap())

    def mean_fct(self) -> float:
        """Mean completion time of finished flows (seconds)."""
        if not self.completion_times:
            return float("nan")
        return sum(self.completion_times) / len(self.completion_times)


class BackgroundTraffic:
    """Unresponsive (UDP-like) traffic over a fixed path.

    Emits MSS-sized packets at ``rate_pps``, either with deterministic
    spacing (CBR) or with exponential gaps (Poisson, the default).  The
    packets do not react to loss, so they act as pure background load on
    the congestion-controlled flows sharing the path.
    """

    def __init__(self, sim: Simulator, path: tuple, rate_pps: float, *,
                 rng: Optional[random.Random] = None,
                 poisson: bool = True, name: str = "bg") -> None:
        if not path:
            raise ValueError("path must contain at least one link")
        if rate_pps <= 0:
            raise ValueError("rate must be positive")
        self.sim = sim
        self.path = tuple(path)
        self.rate_pps = rate_pps
        self.rng = rng
        self.poisson = poisson
        self.name = name
        if poisson and rng is None:
            raise ValueError("Poisson background traffic needs an rng")
        self.packets_sent = 0
        self.packets_delivered = 0
        self._running = False
        self._seq = 0
        # Pacing tick: one rearmable timer instead of an event per packet.
        self._pacer = sim.timer(self._emit)

    def start(self, at: float | None = None) -> None:
        self._running = True
        when = self.sim.now if at is None else at
        self._pacer.arm_at(when + self._gap())

    def stop(self) -> None:
        self._running = False
        self._pacer.cancel()

    def _gap(self) -> float:
        if self.poisson:
            return self.rng.expovariate(self.rate_pps)
        return 1.0 / self.rate_pps

    def _emit(self) -> None:
        if not self._running:
            return
        packet = Packet(self, self._seq, self.path, MSS_BYTES,
                        sent_time=self.sim.now)
        self._seq += 1
        self.packets_sent += 1
        self.path[0].receive(packet)
        self._pacer.arm(self._gap())

    def on_data(self, packet: Packet) -> None:
        """Terminal endpoint: count the delivery, nothing to ACK."""
        self.packets_delivered += 1

    @property
    def delivery_ratio(self) -> float:
        """Fraction of emitted packets that survived the path."""
        if self.packets_sent == 0:
            return 1.0
        return self.packets_delivered / self.packets_sent
