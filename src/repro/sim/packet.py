"""Packet representation for the discrete-event simulator.

A packet knows its forward path (a tuple of :class:`~repro.sim.link.Link`
objects), its current hop index, and the endpoint object that receives it
at the end of the path.  ACKs are not modelled as packets: the paper's
scenarios never bottleneck the reverse direction, so receivers deliver
ACK notifications to senders after a fixed reverse propagation delay
(documented in DESIGN.md).
"""

from __future__ import annotations

from ..units import MSS_BYTES


class Packet:
    """One data segment in flight."""

    __slots__ = ("endpoint", "seq", "size_bytes", "path", "hop",
                 "sent_time", "retransmitted")

    def __init__(self, endpoint, seq: int, path: tuple,
                 size_bytes: int = MSS_BYTES, sent_time: float = 0.0,
                 retransmitted: bool = False) -> None:
        self.endpoint = endpoint        # delivered to endpoint.on_data(...)
        self.seq = seq
        self.size_bytes = size_bytes
        self.path = path
        self.hop = 0
        self.sent_time = sent_time
        self.retransmitted = retransmitted

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Packet(seq={self.seq}, hop={self.hop}/{len(self.path)}, "
                f"size={self.size_bytes})")
