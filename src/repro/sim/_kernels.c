/* Compiled DES hot-path kernels.
 *
 * Optional CPython extension backing `repro.sim`: the three measured
 * hot paths of the pure-python engine — the timer-wheel slot scan /
 * cascade, the fused pop_due+advance for both backends, and the
 * engine's per-event dispatch loop — reimplemented in C behind the
 * exact same contracts:
 *
 *   - HeapKernel / WheelKernel speak the Scheduler protocol of
 *     `repro.sim.scheduler` (push / pop_due / pop_next / dump /
 *     refill / __len__) over the engine's `(time, seq, fn, args,
 *     event)` entry tuples, popping in exact `(time, seq)` order;
 *
 *   - EngineCore fuses scheduler and dispatch loop: entries live as C
 *     structs (no per-event tuple at all), Event handles are a C type
 *     recycled through a C free list, and run()/run_until_empty()
 *     dispatch callbacks without touching the Python interpreter
 *     between events.  Its observable behaviour — dispatch order,
 *     clock updates, cancellation, the trace hook, error messages —
 *     is bit-identical to `repro.sim.engine.Simulator`'s pure loop,
 *     which the scenario-A trace-identity suite enforces.
 *
 * The pure-python implementations remain the reference; this module
 * is an optional extra (`python setup.py build_ext --inplace`) and
 * everything degrades to the pure paths when the import fails.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>
#include "structmember.h"
#include <stdint.h>

/* ---------------------------------------------------------------- */
/* kentry: one pending event, unpacked.                             */
/*                                                                  */
/* Tuple-mode (HeapKernel/WheelKernel): fn holds the entry tuple,   */
/* args/ev are NULL.  Engine-mode (EngineCore): fn/args/ev hold the */
/* callback, its argument tuple and the Event handle — no tuple is  */
/* ever built.  (time, seq) is the unique sort key in both modes.   */
/* ---------------------------------------------------------------- */

typedef struct {
    double time;
    long long seq;
    PyObject *fn;    /* owned */
    PyObject *args;  /* owned or NULL */
    PyObject *ev;    /* owned or NULL */
} kentry;

static inline void
kentry_release(kentry *e)
{
    Py_XDECREF(e->fn);
    Py_XDECREF(e->args);
    Py_XDECREF(e->ev);
}

static inline int
kless(const kentry *a, const kentry *b)
{
    return a->time < b->time || (a->time == b->time && a->seq < b->seq);
}

/* ---------------------------------------------------------------- */
/* karray: growable kentry array, doubling capacity.                */
/* ---------------------------------------------------------------- */

typedef struct {
    kentry *items;
    Py_ssize_t len, cap;
} karray;

static void
karr_init(karray *a)
{
    a->items = NULL;
    a->len = a->cap = 0;
}

static int
karr_grow(karray *a)
{
    Py_ssize_t cap = a->cap ? a->cap * 2 : 8;
    kentry *items = PyMem_Realloc(a->items, (size_t)cap * sizeof(kentry));
    if (items == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    a->items = items;
    a->cap = cap;
    return 0;
}

static inline int
karr_append(karray *a, kentry e)
{
    if (a->len == a->cap && karr_grow(a) < 0)
        return -1;
    a->items[a->len++] = e;
    return 0;
}

static int
karr_traverse(karray *a, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < a->len; i++) {
        Py_VISIT(a->items[i].fn);
        Py_VISIT(a->items[i].args);
        Py_VISIT(a->items[i].ev);
    }
    return 0;
}

static void
karr_clear_entries(karray *a)
{
    /* Zero the length first: a DECREF may run arbitrary Python code
     * (GC, __del__) that re-enters traverse on this container. */
    Py_ssize_t n = a->len;
    a->len = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        kentry_release(&a->items[i]);
}

static void
karr_free(karray *a)
{
    karr_clear_entries(a);
    PyMem_Free(a->items);
    a->items = NULL;
    a->cap = 0;
}

/* ---------------------------------------------------------------- */
/* Binary heap over a karray, keyed (time, seq).  Same pop order as */
/* heapq over entry tuples: keys are unique, so any valid heap pops */
/* in sorted order.                                                 */
/* ---------------------------------------------------------------- */

static int
kheap_push(karray *h, kentry e)
{
    if (karr_append(h, e) < 0)
        return -1;
    kentry *it = h->items;
    Py_ssize_t i = h->len - 1;
    while (i > 0) {
        Py_ssize_t p = (i - 1) >> 1;
        if (!kless(&it[i], &it[p]))
            break;
        kentry tmp = it[i];
        it[i] = it[p];
        it[p] = tmp;
        i = p;
    }
    return 0;
}

static void
ksift_down(karray *h, Py_ssize_t i)
{
    kentry *it = h->items;
    Py_ssize_t n = h->len;
    for (;;) {
        Py_ssize_t l = 2 * i + 1, smallest = i;
        if (l < n && kless(&it[l], &it[smallest]))
            smallest = l;
        if (l + 1 < n && kless(&it[l + 1], &it[smallest]))
            smallest = l + 1;
        if (smallest == i)
            break;
        kentry tmp = it[i];
        it[i] = it[smallest];
        it[smallest] = tmp;
        i = smallest;
    }
}

static kentry
kheap_pop(karray *h)
{
    kentry top = h->items[0];
    Py_ssize_t n = --h->len;
    if (n > 0) {
        h->items[0] = h->items[n];
        ksift_down(h, 0);
    }
    return top;
}

static void
kheapify(karray *h)
{
    for (Py_ssize_t i = h->len / 2 - 1; i >= 0; i--)
        ksift_down(h, i);
}

/* ---------------------------------------------------------------- */
/* wheelcore: the three-level hierarchical timer wheel of           */
/* repro.sim.scheduler.WheelScheduler, ported field for field (see  */
/* that module's docstring for the geometry and invariants).  The   */
/* 256-slot occupancy masks become 4x uint64 words scanned with     */
/* __builtin_ctzll.                                                 */
/* ---------------------------------------------------------------- */

#define W_SLOT_BITS 8
#define W_SLOTS 256
#define W_MASK 255
#define W_L1_SPAN (1LL << 16)
#define W_L2_SPAN (1LL << 24)

typedef struct {
    double tick, inv_tick;
    karray l0[W_SLOTS], l1[W_SLOTS], l2[W_SLOTS];
    uint64_t occ0[4], occ1[4], occ2[4];
    karray overflow;            /* heap-ordered */
    karray due;                 /* heap-ordered */
    long long next_tick;
    Py_ssize_t count;           /* all pending entries */
    Py_ssize_t wheel_count;     /* entries parked in the slot levels */
    long long block_end, span1_end, span2_end;
} wheelcore;

static inline void
occ_set(uint64_t occ[4], int s)
{
    occ[s >> 6] |= (uint64_t)1 << (s & 63);
}

static inline void
occ_clear_bit(uint64_t occ[4], int s)
{
    occ[s >> 6] &= ~((uint64_t)1 << (s & 63));
}

static inline int
occ_test(const uint64_t occ[4], int s)
{
    return (occ[s >> 6] >> (s & 63)) & 1;
}

static inline int
occ_any(const uint64_t occ[4])
{
    return (occ[0] | occ[1] | occ[2] | occ[3]) != 0;
}

/* First set bit at index >= from, or -1.  Mirrors the pure wheel's
 * `bits = occ >> from; slot = from + ctz(bits)` arbitrary-int idiom. */
static inline int
occ_first_from(const uint64_t occ[4], int from)
{
    if (from >= W_SLOTS)
        return -1;
    int word = from >> 6, bit = from & 63;
    uint64_t w = occ[word] >> bit;
    if (w)
        return from + __builtin_ctzll(w);
    for (int i = word + 1; i < 4; i++)
        if (occ[i])
            return (i << 6) + __builtin_ctzll(occ[i]);
    return -1;
}

/* Quantize an absolute time to a tick index.  Python's int() and the
 * C cast both truncate toward zero; the clamp keeps astronomically
 * far timestamps (beyond any horizon the wheel compares against) out
 * of undefined-cast territory without changing any routing decision. */
static inline long long
time_to_tick(double t, double inv_tick)
{
    double p = t * inv_tick;
    if (p >= 9.0e18)
        return 9000000000000000000LL;
    if (p <= -9.0e18)
        return -9000000000000000000LL;
    if (p != p)
        return 0;
    return (long long)p;
}

static void
wheel_init(wheelcore *w, double tick)
{
    memset(w, 0, sizeof(*w));
    w->tick = tick;
    w->inv_tick = 1.0 / tick;
}

/* Reset to the state of a freshly constructed wheel (cursor at tick
 * 0, all windows unopened).  Only valid when empty — the adaptive
 * engine promotes into a fresh wheel, exactly like the pure
 * AdaptiveScheduler building a new WheelScheduler. */
static void
wheel_reset_empty(wheelcore *w)
{
    memset(w->occ0, 0, sizeof(w->occ0));
    memset(w->occ1, 0, sizeof(w->occ1));
    memset(w->occ2, 0, sizeof(w->occ2));
    w->next_tick = 0;
    w->count = 0;
    w->wheel_count = 0;
    w->block_end = w->span1_end = w->span2_end = 0;
}

static int
wheel_traverse(wheelcore *w, visitproc visit, void *arg)
{
    int rc;
    if ((rc = karr_traverse(&w->due, visit, arg)))
        return rc;
    if ((rc = karr_traverse(&w->overflow, visit, arg)))
        return rc;
    for (int s = 0; s < W_SLOTS; s++) {
        if ((rc = karr_traverse(&w->l0[s], visit, arg)))
            return rc;
        if ((rc = karr_traverse(&w->l1[s], visit, arg)))
            return rc;
        if ((rc = karr_traverse(&w->l2[s], visit, arg)))
            return rc;
    }
    return 0;
}

static void
wheel_clear_entries(wheelcore *w)
{
    karr_clear_entries(&w->due);
    karr_clear_entries(&w->overflow);
    for (int s = 0; s < W_SLOTS; s++) {
        karr_clear_entries(&w->l0[s]);
        karr_clear_entries(&w->l1[s]);
        karr_clear_entries(&w->l2[s]);
    }
    wheel_reset_empty(w);
}

static void
wheel_free(wheelcore *w)
{
    karr_free(&w->due);
    karr_free(&w->overflow);
    for (int s = 0; s < W_SLOTS; s++) {
        karr_free(&w->l0[s]);
        karr_free(&w->l1[s]);
        karr_free(&w->l2[s]);
    }
}

/* Re-place a cascaded/overflow entry (count already included). */
static int
wheel_place(wheelcore *w, kentry e)
{
    long long it = time_to_tick(e.time, w->inv_tick);
    long long delta = it - w->next_tick;
    w->wheel_count++;
    if (delta < W_SLOTS) {
        int slot = (int)(it & W_MASK);
        occ_set(w->occ0, slot);
        return karr_append(&w->l0[slot], e);
    }
    else if (delta < W_L1_SPAN) {
        int slot = (int)((it >> W_SLOT_BITS) & W_MASK);
        occ_set(w->occ1, slot);
        return karr_append(&w->l1[slot], e);
    }
    else {
        int slot = (int)((it >> (2 * W_SLOT_BITS)) & W_MASK);
        occ_set(w->occ2, slot);
        return karr_append(&w->l2[slot], e);
    }
}

static int
wheel_push(wheelcore *w, kentry e)
{
    w->count++;
    long long it = time_to_tick(e.time, w->inv_tick);
    long long delta = it - w->next_tick;
    if (delta < 0)
        return kheap_push(&w->due, e);   /* behind the cursor */
    w->wheel_count++;
    if (delta < W_SLOTS) {
        int slot = (int)(it & W_MASK);
        occ_set(w->occ0, slot);
        return karr_append(&w->l0[slot], e);
    }
    else if (delta < W_L1_SPAN) {
        int slot = (int)((it >> W_SLOT_BITS) & W_MASK);
        occ_set(w->occ1, slot);
        return karr_append(&w->l1[slot], e);
    }
    else if (delta < W_L2_SPAN) {
        int slot = (int)((it >> (2 * W_SLOT_BITS)) & W_MASK);
        occ_set(w->occ2, slot);
        return karr_append(&w->l2[slot], e);
    }
    else {
        w->wheel_count--;
        return kheap_push(&w->overflow, e);
    }
}

/* Pull overflow entries inside the cursor's level-2 span. */
static int
wheel_refill_overflow(wheelcore *w)
{
    long long horizon = w->next_tick + W_L2_SPAN;
    while (w->overflow.len &&
           time_to_tick(w->overflow.items[0].time, w->inv_tick) < horizon) {
        if (wheel_place(w, kheap_pop(&w->overflow)) < 0)
            return -1;
    }
    return 0;
}

/* Cascade parent slots when the cursor enters a new block.  Outer
 * windows first, exactly like WheelScheduler._enter_block. */
static int
wheel_enter_block(wheelcore *w, long long base)
{
    if (base >= w->span2_end) {
        w->span2_end = ((base >> (3 * W_SLOT_BITS)) + 1) << (3 * W_SLOT_BITS);
        if (wheel_refill_overflow(w) < 0)
            return -1;
    }
    if (base >= w->span1_end) {
        w->span1_end = ((base >> (2 * W_SLOT_BITS)) + 1) << (2 * W_SLOT_BITS);
        int slot2 = (int)((base >> (2 * W_SLOT_BITS)) & W_MASK);
        if (occ_test(w->occ2, slot2)) {
            karray bucket = w->l2[slot2];
            karr_init(&w->l2[slot2]);
            occ_clear_bit(w->occ2, slot2);
            w->wheel_count -= bucket.len;
            for (Py_ssize_t i = 0; i < bucket.len; i++) {
                if (wheel_place(w, bucket.items[i]) < 0) {
                    PyMem_Free(bucket.items);
                    return -1;
                }
            }
            PyMem_Free(bucket.items);
        }
    }
    w->block_end = ((base >> W_SLOT_BITS) + 1) << W_SLOT_BITS;
    int slot1 = (int)((base >> W_SLOT_BITS) & W_MASK);
    if (occ_test(w->occ1, slot1)) {
        karray bucket = w->l1[slot1];
        karr_init(&w->l1[slot1]);
        occ_clear_bit(w->occ1, slot1);
        w->wheel_count -= bucket.len;
        for (Py_ssize_t i = 0; i < bucket.len; i++) {
            if (wheel_place(w, bucket.items[i]) < 0) {
                PyMem_Free(bucket.items);
                return -1;
            }
        }
        PyMem_Free(bucket.items);
    }
    return 0;
}

/* Move the next populated tick's slot into the due heap.  Only
 * called with due empty and count > 0.  Port of
 * WheelScheduler._advance, including every cursor-jump branch. */
static int
wheel_advance(wheelcore *w)
{
    for (;;) {
        long long base = w->next_tick;
        if (base >= w->block_end && wheel_enter_block(w, base) < 0)
            return -1;
        int rel = (int)(base & W_MASK);
        int slot = occ_first_from(w->occ0, rel);
        if (slot >= 0) {
            w->next_tick = (base - rel) + slot + 1;
            /* Swap the slot bucket into `due` (due is empty; its
             * spare capacity moves into the emptied slot, so steady
             * draining recycles the same two buffers). */
            karray tmp = w->due;
            w->due = w->l0[slot];
            w->l0[slot] = tmp;
            occ_clear_bit(w->occ0, slot);
            w->wheel_count -= w->due.len;
            kheapify(&w->due);
            return 0;
        }
        /* The rest of this 256-tick block is empty. */
        if (w->wheel_count == 0) {
            /* Wheel dry: jump the cursor to the overflow head. */
            w->next_tick = time_to_tick(w->overflow.items[0].time,
                                        w->inv_tick);
            if (wheel_refill_overflow(w) < 0)
                return -1;
        }
        else if (occ_any(w->occ0)) {
            w->next_tick = w->block_end;
        }
        else if (w->block_end >= w->span1_end) {
            w->next_tick = w->block_end;
        }
        else {
            long long nb = w->block_end;
            int s1 = (int)((nb >> W_SLOT_BITS) & W_MASK);
            int idx1 = occ_first_from(w->occ1, s1);
            if (idx1 >= 0) {
                long long block = (nb >> W_SLOT_BITS) + (idx1 - s1);
                w->next_tick = block << W_SLOT_BITS;
            }
            else if (occ_any(w->occ1)) {
                w->next_tick = w->span1_end;
            }
            else {
                int s2 = (int)((nb >> (2 * W_SLOT_BITS)) & W_MASK);
                int idx2 = occ_first_from(w->occ2, s2 + 1);
                if (idx2 >= 0) {
                    long long window = (nb >> (2 * W_SLOT_BITS))
                        + (idx2 - s2);
                    w->next_tick = window << (2 * W_SLOT_BITS);
                }
                else {
                    w->next_tick = w->span2_end;
                }
            }
        }
    }
}

/* Fused pop_due + advance: -1 error, 0 nothing due, 1 entry out. */
static inline int
wheel_pop_due(wheelcore *w, double until, kentry *out)
{
    if (w->due.len == 0) {
        if (w->count == 0)
            return 0;
        if (wheel_advance(w) < 0)
            return -1;
    }
    if (w->due.items[0].time > until)
        return 0;
    w->count--;
    *out = kheap_pop(&w->due);
    return 1;
}

static inline int
wheel_pop_next(wheelcore *w, kentry *out)
{
    if (w->due.len == 0) {
        if (w->count == 0)
            return 0;
        if (wheel_advance(w) < 0)
            return -1;
    }
    w->count--;
    *out = kheap_pop(&w->due);
    return 1;
}

/* Dump every pending entry into `out` in arbitrary order, leaving
 * the wheel empty but keeping its cursor (like WheelScheduler.dump). */
static int
wheel_dump_into(wheelcore *w, karray *out)
{
    karray *arrays[2] = { &w->due, &w->overflow };
    for (int k = 0; k < 2; k++) {
        karray *a = arrays[k];
        for (Py_ssize_t i = 0; i < a->len; i++)
            if (karr_append(out, a->items[i]) < 0)
                return -1;
        a->len = 0;
    }
    for (int s = 0; s < W_SLOTS; s++) {
        karray *levels[3] = { &w->l0[s], &w->l1[s], &w->l2[s] };
        for (int k = 0; k < 3; k++) {
            karray *a = levels[k];
            for (Py_ssize_t i = 0; i < a->len; i++)
                if (karr_append(out, a->items[i]) < 0)
                    return -1;
            a->len = 0;
        }
    }
    memset(w->occ0, 0, sizeof(w->occ0));
    memset(w->occ1, 0, sizeof(w->occ1));
    memset(w->occ2, 0, sizeof(w->occ2));
    w->count = 0;
    w->wheel_count = 0;
    return 0;
}

/* ---------------------------------------------------------------- */
/* Tuple-entry helpers shared by HeapKernel / WheelKernel.          */
/* ---------------------------------------------------------------- */

/* Unpack `(time, seq, ...)` into a kentry that owns the tuple. */
static int
kentry_from_tuple(PyObject *entry, kentry *out)
{
    if (!PyTuple_Check(entry) || PyTuple_GET_SIZE(entry) < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "scheduler entry must be a (time, seq, ...) tuple");
        return -1;
    }
    double t = PyFloat_AsDouble(PyTuple_GET_ITEM(entry, 0));
    if (t == -1.0 && PyErr_Occurred())
        return -1;
    long long seq = PyLong_AsLongLong(PyTuple_GET_ITEM(entry, 1));
    if (seq == -1 && PyErr_Occurred())
        return -1;
    out->time = t;
    out->seq = seq;
    out->fn = Py_NewRef(entry);
    out->args = NULL;
    out->ev = NULL;
    return 0;
}

static PyObject *
karray_to_list_steal(karray *a)
{
    PyObject *list = PyList_New(a->len);
    if (list == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < a->len; i++) {
        /* Transfer the tuple ref; drop the (NULL) args/ev slots. */
        PyList_SET_ITEM(list, i, a->items[i].fn);
        Py_XDECREF(a->items[i].args);
        Py_XDECREF(a->items[i].ev);
    }
    a->len = 0;
    return list;
}

/* ---------------------------------------------------------------- */
/* HeapKernel                                                       */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    karray heap;
} HeapKernel;

static PyObject *
heapkernel_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    HeapKernel *self = (HeapKernel *)type->tp_alloc(type, 0);
    if (self != NULL)
        karr_init(&self->heap);
    return (PyObject *)self;
}

static int
heapkernel_traverse(HeapKernel *self, visitproc visit, void *arg)
{
    return karr_traverse(&self->heap, visit, arg);
}

static int
heapkernel_clear(HeapKernel *self)
{
    karr_clear_entries(&self->heap);
    return 0;
}

static void
heapkernel_dealloc(HeapKernel *self)
{
    PyObject_GC_UnTrack(self);
    karr_free(&self->heap);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
heapkernel_len(HeapKernel *self)
{
    return self->heap.len;
}

static PyObject *
heapkernel_push(HeapKernel *self, PyObject *entry)
{
    kentry e;
    if (kentry_from_tuple(entry, &e) < 0)
        return NULL;
    if (kheap_push(&self->heap, e) < 0) {
        kentry_release(&e);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
heapkernel_pop_due(HeapKernel *self, PyObject *arg)
{
    double until = PyFloat_AsDouble(arg);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    if (self->heap.len && self->heap.items[0].time <= until)
        return kheap_pop(&self->heap).fn;
    Py_RETURN_NONE;
}

static PyObject *
heapkernel_pop_next(HeapKernel *self, PyObject *Py_UNUSED(ignored))
{
    if (self->heap.len)
        return kheap_pop(&self->heap).fn;
    Py_RETURN_NONE;
}

static PyObject *
heapkernel_dump(HeapKernel *self, PyObject *Py_UNUSED(ignored))
{
    return karray_to_list_steal(&self->heap);
}

static PyObject *
heapkernel_refill(HeapKernel *self, PyObject *entries)
{
    PyObject *it = PyObject_GetIter(entries);
    if (it == NULL)
        return NULL;
    PyObject *entry;
    while ((entry = PyIter_Next(it)) != NULL) {
        kentry e;
        int rc = kentry_from_tuple(entry, &e);
        Py_DECREF(entry);
        if (rc < 0 || kheap_push(&self->heap, e) < 0) {
            if (rc == 0)
                kentry_release(&e);
            Py_DECREF(it);
            return NULL;
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef heapkernel_methods[] = {
    {"push", (PyCFunction)heapkernel_push, METH_O,
     "push(entry): insert a (time, seq, ...) entry tuple."},
    {"pop_due", (PyCFunction)heapkernel_pop_due, METH_O,
     "pop_due(until): earliest entry with time <= until, else None."},
    {"pop_next", (PyCFunction)heapkernel_pop_next, METH_NOARGS,
     "pop_next(): earliest entry regardless of time, else None."},
    {"dump", (PyCFunction)heapkernel_dump, METH_NOARGS,
     "dump(): all entries in arbitrary order, emptying the kernel."},
    {"refill", (PyCFunction)heapkernel_refill, METH_O,
     "refill(entries): bulk-load entries into an empty kernel."},
    {NULL, NULL, 0, NULL}
};

static PySequenceMethods heapkernel_as_sequence = {
    .sq_length = (lenfunc)heapkernel_len,
};

static PyTypeObject HeapKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._kernels.HeapKernel",
    .tp_basicsize = sizeof(HeapKernel),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled binary-heap scheduler (Scheduler contract).",
    .tp_new = heapkernel_new,
    .tp_dealloc = (destructor)heapkernel_dealloc,
    .tp_traverse = (traverseproc)heapkernel_traverse,
    .tp_clear = (inquiry)heapkernel_clear,
    .tp_methods = heapkernel_methods,
    .tp_as_sequence = &heapkernel_as_sequence,
};

/* ---------------------------------------------------------------- */
/* WheelKernel                                                      */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    wheelcore wheel;
} WheelKernel;

static PyObject *
wheelkernel_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"tick", NULL};
    double tick = 1e-3;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|d:WheelKernel",
                                     kwlist, &tick))
        return NULL;
    if (tick <= 0.0) {
        PyErr_SetString(PyExc_ValueError, "wheel tick must be positive");
        return NULL;
    }
    WheelKernel *self = (WheelKernel *)type->tp_alloc(type, 0);
    if (self != NULL)
        wheel_init(&self->wheel, tick);
    return (PyObject *)self;
}

static int
wheelkernel_traverse(WheelKernel *self, visitproc visit, void *arg)
{
    return wheel_traverse(&self->wheel, visit, arg);
}

static int
wheelkernel_clear(WheelKernel *self)
{
    wheel_clear_entries(&self->wheel);
    return 0;
}

static void
wheelkernel_dealloc(WheelKernel *self)
{
    PyObject_GC_UnTrack(self);
    wheel_free(&self->wheel);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
wheelkernel_len(WheelKernel *self)
{
    return self->wheel.count;
}

static PyObject *
wheelkernel_push(WheelKernel *self, PyObject *entry)
{
    kentry e;
    if (kentry_from_tuple(entry, &e) < 0)
        return NULL;
    if (wheel_push(&self->wheel, e) < 0) {
        kentry_release(&e);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
wheelkernel_pop_due(WheelKernel *self, PyObject *arg)
{
    double until = PyFloat_AsDouble(arg);
    if (until == -1.0 && PyErr_Occurred())
        return NULL;
    kentry e;
    int got = wheel_pop_due(&self->wheel, until, &e);
    if (got < 0)
        return NULL;
    if (got == 0)
        Py_RETURN_NONE;
    return e.fn;
}

static PyObject *
wheelkernel_pop_next(WheelKernel *self, PyObject *Py_UNUSED(ignored))
{
    kentry e;
    int got = wheel_pop_next(&self->wheel, &e);
    if (got < 0)
        return NULL;
    if (got == 0)
        Py_RETURN_NONE;
    return e.fn;
}

static PyObject *
wheelkernel_dump(WheelKernel *self, PyObject *Py_UNUSED(ignored))
{
    karray out;
    karr_init(&out);
    if (wheel_dump_into(&self->wheel, &out) < 0) {
        karr_free(&out);
        return NULL;
    }
    PyObject *list = karray_to_list_steal(&out);
    PyMem_Free(out.items);
    return list;
}

static PyObject *
wheelkernel_refill(WheelKernel *self, PyObject *entries)
{
    PyObject *it = PyObject_GetIter(entries);
    if (it == NULL)
        return NULL;
    PyObject *entry;
    while ((entry = PyIter_Next(it)) != NULL) {
        kentry e;
        int rc = kentry_from_tuple(entry, &e);
        Py_DECREF(entry);
        if (rc < 0 || wheel_push(&self->wheel, e) < 0) {
            if (rc == 0)
                kentry_release(&e);
            Py_DECREF(it);
            return NULL;
        }
    }
    Py_DECREF(it);
    if (PyErr_Occurred())
        return NULL;
    Py_RETURN_NONE;
}

static PyMethodDef wheelkernel_methods[] = {
    {"push", (PyCFunction)wheelkernel_push, METH_O,
     "push(entry): insert a (time, seq, ...) entry tuple."},
    {"pop_due", (PyCFunction)wheelkernel_pop_due, METH_O,
     "pop_due(until): earliest entry with time <= until, else None."},
    {"pop_next", (PyCFunction)wheelkernel_pop_next, METH_NOARGS,
     "pop_next(): earliest entry regardless of time, else None."},
    {"dump", (PyCFunction)wheelkernel_dump, METH_NOARGS,
     "dump(): all entries in arbitrary order, emptying the kernel."},
    {"refill", (PyCFunction)wheelkernel_refill, METH_O,
     "refill(entries): bulk-load entries into an empty kernel."},
    {NULL, NULL, 0, NULL}
};

static PySequenceMethods wheelkernel_as_sequence = {
    .sq_length = (lenfunc)wheelkernel_len,
};

static PyTypeObject WheelKernelType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._kernels.WheelKernel",
    .tp_basicsize = sizeof(WheelKernel),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Compiled 3-level timer wheel (Scheduler contract).",
    .tp_new = wheelkernel_new,
    .tp_dealloc = (destructor)wheelkernel_dealloc,
    .tp_traverse = (traverseproc)wheelkernel_traverse,
    .tp_clear = (inquiry)wheelkernel_clear,
    .tp_methods = wheelkernel_methods,
    .tp_as_sequence = &wheelkernel_as_sequence,
};

/* ---------------------------------------------------------------- */
/* Event: the compiled engine's recycled callback handle.  Same     */
/* lifetime contract as repro.sim.engine.Event.                     */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject_HEAD
    double time;
    PyObject *fn;    /* owned or NULL (reads as None) */
    PyObject *args;  /* owned or NULL (reads as None) */
    char cancelled;
} KEvent;

static PyObject *
kevent_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    KEvent *self = (KEvent *)type->tp_alloc(type, 0);
    if (self != NULL) {
        self->time = 0.0;
        self->fn = NULL;
        self->args = NULL;
        self->cancelled = 0;
    }
    return (PyObject *)self;
}

static int
kevent_init(KEvent *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"time", "fn", "args", NULL};
    double time;
    PyObject *fn, *argt;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "dOO:Event", kwlist,
                                     &time, &fn, &argt))
        return -1;
    self->time = time;
    Py_XSETREF(self->fn, Py_NewRef(fn));
    Py_XSETREF(self->args, Py_NewRef(argt));
    self->cancelled = 0;
    return 0;
}

static int
kevent_traverse(KEvent *self, visitproc visit, void *arg)
{
    Py_VISIT(self->fn);
    Py_VISIT(self->args);
    return 0;
}

static int
kevent_clear(KEvent *self)
{
    Py_CLEAR(self->fn);
    Py_CLEAR(self->args);
    return 0;
}

static void
kevent_dealloc(KEvent *self)
{
    PyObject_GC_UnTrack(self);
    kevent_clear(self);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static PyObject *
kevent_cancel(KEvent *self, PyObject *Py_UNUSED(ignored))
{
    self->cancelled = 1;
    Py_RETURN_NONE;
}

static PyMethodDef kevent_methods[] = {
    {"cancel", (PyCFunction)kevent_cancel, METH_NOARGS,
     "Mark the event so the engine skips it (lazy deletion)."},
    {NULL, NULL, 0, NULL}
};

static PyMemberDef kevent_members[] = {
    {"time", T_DOUBLE, offsetof(KEvent, time), READONLY,
     "Scheduled dispatch time (seconds)."},
    {"fn", T_OBJECT, offsetof(KEvent, fn), READONLY,
     "Pending callback (None once dispatched/recycled)."},
    {"args", T_OBJECT, offsetof(KEvent, args), READONLY,
     "Pending callback arguments (None once dispatched/recycled)."},
    {"cancelled", T_BOOL, offsetof(KEvent, cancelled), 0,
     "True once cancel() was called."},
    {NULL, 0, 0, 0, NULL}
};

static PyTypeObject KEventType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._kernels.Event",
    .tp_basicsize = sizeof(KEvent),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "A scheduled callback handle; cancel() for lazy deletion.",
    .tp_new = kevent_new,
    .tp_init = (initproc)kevent_init,
    .tp_dealloc = (destructor)kevent_dealloc,
    .tp_traverse = (traverseproc)kevent_traverse,
    .tp_clear = (inquiry)kevent_clear,
    .tp_methods = kevent_methods,
    .tp_members = kevent_members,
};

/* ---------------------------------------------------------------- */
/* EngineCore: scheduler + dispatch loop, fused.                    */
/* ---------------------------------------------------------------- */

#define MODE_HEAP 0
#define MODE_WHEEL 1
#define MODE_AUTO 2

typedef struct {
    PyObject_HEAD
    int mode;
    int wheel_active;           /* auto mode: which store is live */
    karray heap;
    wheelcore wheel;
    double now;
    long long counter;
    long long processed;
    long long migrations;
    long long promote, demote, period, countdown;
    PyObject *trace;            /* owned or NULL */
    PyObject **free_items;      /* owned KEvent refs */
    Py_ssize_t free_len, free_cap;
} EngineCore;

static inline int
core_wheel_live(EngineCore *self)
{
    return self->mode == MODE_WHEEL
        || (self->mode == MODE_AUTO && self->wheel_active);
}

static inline Py_ssize_t
core_pending(EngineCore *self)
{
    return core_wheel_live(self) ? self->wheel.count : self->heap.len;
}

static PyObject *
enginecore_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"name", "tick", "promote", "demote",
                             "period", "trace", NULL};
    const char *name;
    double tick = 1e-3;
    long long promote = 2048, demote = 512, period = 256;
    PyObject *trace = Py_None;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "s|dLLLO:EngineCore",
                                     kwlist, &name, &tick, &promote,
                                     &demote, &period, &trace))
        return NULL;
    int mode;
    if (strcmp(name, "heap") == 0)
        mode = MODE_HEAP;
    else if (strcmp(name, "wheel") == 0)
        mode = MODE_WHEEL;
    else if (strcmp(name, "auto") == 0)
        mode = MODE_AUTO;
    else {
        PyErr_Format(PyExc_ValueError,
                     "unknown EngineCore backend %s "
                     "(expected 'auto', 'wheel' or 'heap')", name);
        return NULL;
    }
    if (tick <= 0.0) {
        PyErr_SetString(PyExc_ValueError, "wheel tick must be positive");
        return NULL;
    }
    if (!(0 <= demote && demote < promote)) {
        PyErr_Format(PyExc_ValueError,
                     "need 0 <= demote < promote for hysteresis, got "
                     "demote=%lld, promote=%lld", demote, promote);
        return NULL;
    }
    if (period < 1) {
        PyErr_SetString(PyExc_ValueError, "sample period must be >= 1");
        return NULL;
    }
    EngineCore *self = (EngineCore *)type->tp_alloc(type, 0);
    if (self == NULL)
        return NULL;
    self->mode = mode;
    self->wheel_active = 0;
    karr_init(&self->heap);
    wheel_init(&self->wheel, tick);
    self->now = 0.0;
    self->counter = 0;
    self->processed = 0;
    self->migrations = 0;
    self->promote = promote;
    self->demote = demote;
    self->period = period;
    self->countdown = period;
    self->trace = (trace == Py_None) ? NULL : Py_NewRef(trace);
    self->free_items = NULL;
    self->free_len = self->free_cap = 0;
    return (PyObject *)self;
}

static int
enginecore_traverse(EngineCore *self, visitproc visit, void *arg)
{
    int rc;
    Py_VISIT(self->trace);
    if ((rc = karr_traverse(&self->heap, visit, arg)))
        return rc;
    if ((rc = wheel_traverse(&self->wheel, visit, arg)))
        return rc;
    for (Py_ssize_t i = 0; i < self->free_len; i++)
        Py_VISIT(self->free_items[i]);
    return 0;
}

static int
enginecore_clear(EngineCore *self)
{
    Py_CLEAR(self->trace);
    karr_clear_entries(&self->heap);
    wheel_clear_entries(&self->wheel);
    Py_ssize_t n = self->free_len;
    self->free_len = 0;
    for (Py_ssize_t i = 0; i < n; i++)
        Py_DECREF(self->free_items[i]);
    return 0;
}

static void
enginecore_dealloc(EngineCore *self)
{
    PyObject_GC_UnTrack(self);
    enginecore_clear(self);
    karr_free(&self->heap);
    wheel_free(&self->wheel);
    PyMem_Free(self->free_items);
    Py_TYPE(self)->tp_free((PyObject *)self);
}

static Py_ssize_t
enginecore_len(EngineCore *self)
{
    return core_pending(self);
}

/* Heap <-> wheel migration, auto mode.  Promotion fills a fresh
 * wheel (cursor 0, windows unopened — exactly the pure scheduler's
 * new WheelScheduler); demotion dumps the wheel and heapifies. */
static int
core_promote(EngineCore *self)
{
    wheel_reset_empty(&self->wheel);
    kentry *items = self->heap.items;
    Py_ssize_t n = self->heap.len;
    self->heap.len = 0;
    for (Py_ssize_t i = 0; i < n; i++) {
        if (wheel_push(&self->wheel, items[i]) < 0)
            return -1;
    }
    self->wheel_active = 1;
    self->migrations++;
    return 0;
}

static int
core_demote(EngineCore *self)
{
    if (wheel_dump_into(&self->wheel, &self->heap) < 0)
        return -1;
    kheapify(&self->heap);
    self->wheel_active = 0;
    self->migrations++;
    return 0;
}

static int
core_sample(EngineCore *self)
{
    self->countdown = self->period;
    if (self->wheel_active) {
        if (self->wheel.count <= self->demote)
            return core_demote(self);
    }
    else if (self->heap.len >= self->promote) {
        return core_promote(self);
    }
    return 0;
}

/* Recycle a dispatched (or cancelled-and-popped) entry: strip the
 * handle and park it on the free list, drop the entry's refs. */
static void
core_recycle(EngineCore *self, kentry *e)
{
    KEvent *ev = (KEvent *)e->ev;
    Py_CLEAR(ev->fn);
    Py_CLEAR(ev->args);
    Py_DECREF(e->fn);
    Py_DECREF(e->args);
    if (self->free_len == self->free_cap) {
        Py_ssize_t cap = self->free_cap ? self->free_cap * 2 : 16;
        PyObject **items = PyMem_Realloc(self->free_items,
                                         (size_t)cap * sizeof(PyObject *));
        if (items == NULL) {
            Py_DECREF(ev);      /* free list full: just drop it */
            return;
        }
        self->free_items = items;
        self->free_cap = cap;
    }
    self->free_items[self->free_len++] = (PyObject *)ev;
}

static PyObject *
core_schedule_common(EngineCore *self, double time, PyObject *fn,
                     PyObject *const *rest, Py_ssize_t nrest)
{
    PyObject *argt = PyTuple_New(nrest);
    if (argt == NULL)
        return NULL;
    for (Py_ssize_t i = 0; i < nrest; i++)
        PyTuple_SET_ITEM(argt, i, Py_NewRef(rest[i]));

    KEvent *ev;
    if (self->free_len > 0) {
        ev = (KEvent *)self->free_items[--self->free_len];
    }
    else {
        ev = PyObject_GC_New(KEvent, &KEventType);
        if (ev == NULL) {
            Py_DECREF(argt);
            return NULL;
        }
        ev->fn = NULL;
        ev->args = NULL;
        PyObject_GC_Track((PyObject *)ev);
    }
    ev->time = time;
    ev->cancelled = 0;
    ev->fn = Py_NewRef(fn);
    ev->args = Py_NewRef(argt);

    self->counter++;
    kentry e = { time, self->counter, Py_NewRef(fn), argt,
                 (PyObject *)ev };
    int rc = core_wheel_live(self)
        ? wheel_push(&self->wheel, e)
        : kheap_push(&self->heap, e);
    if (rc < 0) {
        kentry_release(&e);
        return NULL;
    }
    return Py_NewRef((PyObject *)ev);
}

static PyObject *
core_schedule(EngineCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule(delay, fn, *args) takes at least "
                        "2 arguments");
        return NULL;
    }
    double delay = PyFloat_AsDouble(args[0]);
    if (delay == -1.0 && PyErr_Occurred())
        return NULL;
    if (delay < 0.0) {
        PyErr_Format(PyExc_ValueError,
                     "cannot schedule in the past (delay=%R)", args[0]);
        return NULL;
    }
    return core_schedule_common(self, self->now + delay, args[1],
                                args + 2, nargs - 2);
}

static PyObject *
core_schedule_at(EngineCore *self, PyObject *const *args, Py_ssize_t nargs)
{
    if (nargs < 2) {
        PyErr_SetString(PyExc_TypeError,
                        "schedule_at(time, fn, *args) takes at least "
                        "2 arguments");
        return NULL;
    }
    double time = PyFloat_AsDouble(args[0]);
    if (time == -1.0 && PyErr_Occurred())
        return NULL;
    if (time < self->now) {
        PyObject *nowf = PyFloat_FromDouble(self->now);
        if (nowf == NULL)
            return NULL;
        PyErr_Format(PyExc_ValueError,
                     "cannot schedule at %R before now (%R)",
                     args[0], nowf);
        Py_DECREF(nowf);
        return NULL;
    }
    return core_schedule_common(self, time, args[1], args + 2, nargs - 2);
}

/* One dispatched event: clock, counters, trace hook, the call, the
 * recycle.  Returns -1 with an exception set when the callback (or
 * the trace hook) raised. */
static inline int
core_dispatch(EngineCore *self, kentry *e)
{
    KEvent *ev = (KEvent *)e->ev;
    if (ev->cancelled) {
        core_recycle(self, e);
        return 1;               /* skipped: not a dispatched event */
    }
    self->now = e->time;
    self->processed++;
    if (self->trace != NULL) {
        PyObject *r = PyObject_CallFunction(self->trace, "dOO",
                                            e->time, e->fn, e->args);
        if (r == NULL) {
            kentry_release(e);
            return -1;
        }
        Py_DECREF(r);
    }
    PyObject *res = PyObject_CallObject(e->fn, e->args);
    if (res == NULL) {
        kentry_release(e);
        return -1;
    }
    Py_DECREF(res);
    core_recycle(self, e);
    return 0;
}

static PyObject *
core_run(EngineCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"until", NULL};
    double until;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "d:run", kwlist, &until))
        return NULL;
    int is_auto = self->mode == MODE_AUTO;
    for (;;) {
        if (is_auto && --self->countdown <= 0 && core_sample(self) < 0)
            return NULL;
        kentry e;
        int got = core_wheel_live(self)
            ? wheel_pop_due(&self->wheel, until, &e)
            : (self->heap.len && self->heap.items[0].time <= until
               ? (e = kheap_pop(&self->heap), 1) : 0);
        if (got < 0)
            return NULL;
        if (got == 0)
            break;
        if (core_dispatch(self, &e) < 0)
            return NULL;
    }
    self->now = until;
    Py_RETURN_NONE;
}

static PyObject *
core_run_until_empty(EngineCore *self, PyObject *args, PyObject *kwds)
{
    static char *kwlist[] = {"max_events", NULL};
    long long max_events = 10000000;
    if (!PyArg_ParseTupleAndKeywords(args, kwds, "|L:run_until_empty",
                                     kwlist, &max_events))
        return NULL;
    int is_auto = self->mode == MODE_AUTO;
    long long budget = max_events;
    while (budget > 0) {
        if (is_auto && --self->countdown <= 0 && core_sample(self) < 0)
            return NULL;
        kentry e;
        int got = core_wheel_live(self)
            ? wheel_pop_next(&self->wheel, &e)
            : (self->heap.len ? (e = kheap_pop(&self->heap), 1) : 0);
        if (got < 0)
            return NULL;
        if (got == 0)
            Py_RETURN_NONE;
        int rc = core_dispatch(self, &e);
        if (rc < 0)
            return NULL;
        if (rc == 0)
            budget--;           /* cancelled pops don't consume budget */
    }
    if (core_pending(self) > 0) {
        PyErr_Format(PyExc_RuntimeError,
                     "run_until_empty exceeded %lld events", max_events);
        return NULL;
    }
    Py_RETURN_NONE;
}

static PyObject *
core_get_now(EngineCore *self, void *closure)
{
    return PyFloat_FromDouble(self->now);
}

static PyObject *
core_get_backend_name(EngineCore *self, void *closure)
{
    if (self->mode == MODE_HEAP)
        return PyUnicode_FromString("heap");
    if (self->mode == MODE_WHEEL)
        return PyUnicode_FromString("wheel");
    return PyUnicode_FromString(self->wheel_active ? "wheel" : "heap");
}

static PyGetSetDef enginecore_getset[] = {
    {"now", (getter)core_get_now, NULL,
     "Current simulation time in seconds.", NULL},
    {"backend_name", (getter)core_get_backend_name, NULL,
     "The event store in use right now, 'heap' or 'wheel'.", NULL},
    {NULL, NULL, NULL, NULL, NULL}
};

static PyMemberDef enginecore_members[] = {
    {"events_processed", T_LONGLONG, offsetof(EngineCore, processed),
     READONLY, "Number of events executed so far."},
    {"migrations", T_LONGLONG, offsetof(EngineCore, migrations),
     READONLY, "Backend switches performed so far (0 when fixed)."},
    {"promote_threshold", T_LONGLONG, offsetof(EngineCore, promote),
     READONLY, "Pending population that promotes heap -> wheel."},
    {"demote_threshold", T_LONGLONG, offsetof(EngineCore, demote),
     READONLY, "Pending population that demotes wheel -> heap."},
    {NULL, 0, 0, 0, NULL}
};

static PyMethodDef enginecore_methods[] = {
    {"schedule", (PyCFunction)(void (*)(void))core_schedule,
     METH_FASTCALL,
     "schedule(delay, fn, *args): run fn(*args) after delay seconds."},
    {"schedule_at", (PyCFunction)(void (*)(void))core_schedule_at,
     METH_FASTCALL,
     "schedule_at(time, fn, *args): run fn(*args) at absolute time."},
    {"run", (PyCFunction)(void (*)(void))core_run,
     METH_VARARGS | METH_KEYWORDS,
     "run(until): process events in order until the clock reaches "
     "until."},
    {"run_until_empty", (PyCFunction)(void (*)(void))core_run_until_empty,
     METH_VARARGS | METH_KEYWORDS,
     "run_until_empty(max_events=10_000_000): process every queued "
     "event (bounded by max_events)."},
    {NULL, NULL, 0, NULL}
};

static PySequenceMethods enginecore_as_sequence = {
    .sq_length = (lenfunc)enginecore_len,
};

static PyTypeObject EngineCoreType = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._kernels.EngineCore",
    .tp_basicsize = sizeof(EngineCore),
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Fused compiled scheduler + dispatch loop for Simulator.",
    .tp_new = enginecore_new,
    .tp_dealloc = (destructor)enginecore_dealloc,
    .tp_traverse = (traverseproc)enginecore_traverse,
    .tp_clear = (inquiry)enginecore_clear,
    .tp_methods = enginecore_methods,
    .tp_members = enginecore_members,
    .tp_getset = enginecore_getset,
    .tp_as_sequence = &enginecore_as_sequence,
};

/* ---------------------------------------------------------------- */
/* Module                                                           */
/* ---------------------------------------------------------------- */

static struct PyModuleDef kernels_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._kernels",
    .m_doc = "Compiled DES hot-path kernels (optional extra; the\n"
             "pure-python scheduler/engine remain the reference).",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__kernels(void)
{
    PyObject *m = PyModule_Create(&kernels_module);
    if (m == NULL)
        return NULL;
    PyTypeObject *types[] = { &HeapKernelType, &WheelKernelType,
                              &KEventType, &EngineCoreType };
    const char *names[] = { "HeapKernel", "WheelKernel", "Event",
                            "EngineCore" };
    for (int i = 0; i < 4; i++) {
        if (PyType_Ready(types[i]) < 0) {
            Py_DECREF(m);
            return NULL;
        }
        if (PyModule_AddObjectRef(m, names[i], (PyObject *)types[i]) < 0) {
            Py_DECREF(m);
            return NULL;
        }
    }
    return m;
}
