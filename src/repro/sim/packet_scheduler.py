"""Packet schedulers: which subflow carries the next packet.

MPTCP has two largely independent control knobs.  Congestion control
decides *how much* each subflow may have in flight — that is the axis
the paper argues about, dispatched through the algorithm side of
:mod:`repro.core.registry`.  The packet scheduler decides *which*
subflow carries the next data packet of a finite transfer — and the
wild-measurement literature (Shreedhar et al., "More Than The Sum Of
Its Parts"; Dimopoulos et al. on scheduler x CC grids over
heterogeneous networks, both in PAPERS.md) finds this second knob
moves real-workload outcomes as much as the first.  This module is the
scheduler axis: small, stateless-where-possible policy objects that
:class:`~repro.sim.mptcp.MptcpConnection` consults through its
scheduler gate whenever a subflow has window space for one more
packet.

The contract is *grant-on-ask*: the gate calls
:meth:`PacketScheduler.choose` with the subflows currently able to
send (window space, not completed, in stable key order) and grants the
next unsent connection packet to the chosen one.  A policy therefore
never moves packets itself — it only ranks ready subflows — which
keeps every policy trivially compatible with the DES engine's replay
and trace guarantees.

Policies are registered as :class:`~repro.core.registry.SchedulerSpec`
entries; resolve names through
:func:`repro.core.registry.make_scheduler`, not by instantiating these
classes at call sites (``benchmarks/check_registry_gate.py`` enforces
this outside ``core/``).

Note the deliberate asymmetry with bulk (unbounded) flows: a bulk
MPTCP connection has data for every subflow at all times, so there is
nothing to schedule — every subflow streams at its own window and the
scheduler is never consulted.  ``minrtt`` is the *named default* for
finite transfers because preferring the lowest-srtt ready subflow is
exactly what the unbounded case degenerates to when every window has
room.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..units import MSS_BYTES

__all__ = [
    "PacketScheduler",
    "MinRttScheduler",
    "RoundRobinScheduler",
    "RedundantScheduler",
    "QueueAwareScheduler",
]


class PacketScheduler:
    """Base policy: rank the subflows ready to carry the next packet.

    Subclasses implement :meth:`choose`; the connection's scheduler
    gate handles grant bookkeeping, loss reclamation and completion.
    ``duplicates`` flips the gate from stream *partitioning* (each
    packet granted to exactly one subflow) to stream *duplication*
    (every subflow carries every packet, first copy to arrive wins).
    """

    #: Registry name of the policy (informational; the registry is the
    #: source of truth for resolution).
    name = "?"
    #: True when every packet is sent on every subflow (first-ack
    #: wins) instead of the stream being partitioned across subflows.
    duplicates = False

    def choose(self, ready: Sequence) -> object:
        """The subflow from ``ready`` that should carry the next packet.

        ``ready`` is a non-empty sequence of
        :class:`~repro.sim.tcp.TcpSubflow` in ascending ``key`` order,
        each with window space and data pending.  Must return one of
        them; determinism (same choice for the same observable state)
        is required for trace reproducibility.
        """
        raise NotImplementedError

    def on_grant(self, subflow) -> None:
        """Hook: the gate granted the next packet to ``subflow``."""

    def on_subflow_removed(self, key) -> None:
        """Hook: subflow ``key`` left the connection (e.g. handover)."""


class MinRttScheduler(PacketScheduler):
    """Prefer the lowest-srtt ready subflow (MPTCP's default policy).

    Ties break towards the lowest subflow key, which makes the choice
    deterministic before the first RTT sample (all subflows then report
    their configured base RTT).
    """

    name = "minrtt"

    def choose(self, ready: Sequence) -> object:
        return min(ready, key=lambda sf: (sf.srtt, sf.key))


class RoundRobinScheduler(PacketScheduler):
    """Cycle through ready subflows in key order, one packet each.

    The cursor remembers the last *granted* key and starts the next
    search strictly after it, so a fast subflow cannot starve a slow
    one of its turn — the classic fairness/latency trade against
    ``minrtt`` (Dimopoulos et al. measure it across heterogeneous
    paths).
    """

    name = "roundrobin"

    def __init__(self) -> None:
        self._last_key: Optional[object] = None

    def choose(self, ready: Sequence) -> object:
        if self._last_key is not None:
            for sf in ready:
                if sf.key > self._last_key:
                    return sf
        return ready[0]

    def on_grant(self, subflow) -> None:
        self._last_key = subflow.key

    def on_subflow_removed(self, key) -> None:
        if self._last_key == key:
            self._last_key = None


class RedundantScheduler(PacketScheduler):
    """Send every packet on every subflow; the first copy to arrive wins.

    Trades goodput for latency/robustness: on lossy or time-varying
    paths the transfer completes as soon as the receiver has assembled
    a full copy from *any* mix of subflows, so it can never deliver
    later than the best single path.  The gate implements the
    duplication (``duplicates = True``); :meth:`choose` is never
    consulted.
    """

    name = "redundant"
    duplicates = True

    def choose(self, ready: Sequence) -> object:  # pragma: no cover
        return ready[0]


class QueueAwareScheduler(PacketScheduler):
    """Cross-layer policy: srtt plus the first-hop queue drain time.

    Shreedhar et al. show a scheduler that can see below the transport
    layer — here, each path's first-hop egress backlog — avoids the
    head-of-line blocking that srtt alone only notices an RTT later.
    The score is the subflow's srtt plus the time the first-hop link
    needs to drain its current queue (``queued packets x MSS /
    rate``); lowest score wins, ties to the lowest key.
    """

    name = "qaware"

    def choose(self, ready: Sequence) -> object:
        def score(sf):
            head = sf.path[0]
            drain = len(head.queue) * MSS_BYTES * 8.0 / head.rate_bps
            return (sf.srtt + drain, sf.key)
        return min(ready, key=score)


def builtin_schedulers() -> List[type]:
    """The builtin policy classes, in registry order."""
    return [MinRttScheduler, RoundRobinScheduler, RedundantScheduler,
            QueueAwareScheduler]
