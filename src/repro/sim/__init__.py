"""Packet-level discrete-event simulator (testbed / htsim substitute)."""

from .apps import BackgroundTraffic, BulkTransfer, ShortFlowSource
from .engine import Event, Simulator, Timer
from .link import Link, LinkStats
from .scheduler import AdaptiveScheduler, HeapScheduler, WheelScheduler
from .monitors import FlowMeter, WindowTracer
from .mptcp import MptcpConnection, PathSpec
from .packet import Packet
from .packet_scheduler import (
    MinRttScheduler,
    PacketScheduler,
    QueueAwareScheduler,
    RedundantScheduler,
    RoundRobinScheduler,
)
from .queues import DropTailQueue, REDQueue
from .tcp import TcpSubflow, single_path_tcp

__all__ = [
    "Simulator",
    "Event",
    "Timer",
    "AdaptiveScheduler",
    "HeapScheduler",
    "WheelScheduler",
    "Packet",
    "DropTailQueue",
    "REDQueue",
    "Link",
    "LinkStats",
    "TcpSubflow",
    "single_path_tcp",
    "MptcpConnection",
    "PathSpec",
    "PacketScheduler",
    "MinRttScheduler",
    "RoundRobinScheduler",
    "RedundantScheduler",
    "QueueAwareScheduler",
    "BulkTransfer",
    "ShortFlowSource",
    "BackgroundTraffic",
    "FlowMeter",
    "WindowTracer",
]
