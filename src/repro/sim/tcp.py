"""Packet-level TCP: one subflow with NewReno-style loss recovery.

A :class:`TcpSubflow` is both the sender and the receiver endpoint of one
path (the reverse direction carries only ACK notifications after a fixed
``reverse_delay``; see DESIGN.md).  The congestion-avoidance *increase* is
delegated to a :class:`~repro.core.base.MultipathController`, so the same
transport code runs regular TCP (Reno controller), LIA, OLIA, and the
baselines.  Loss behaviour is common to all algorithms in the paper:
halving on fast retransmit, window of 1 and slow start on timeout.

Implemented mechanisms:

* slow start with configurable minimum ssthresh (the paper's OLIA
  implementation uses 1 MSS for multipath subflows, Section IV-B);
* cumulative ACKs with out-of-order buffering at the receiver;
* fast retransmit on 3 duplicate ACKs, NewReno partial-ACK retransmission
  without re-halving during one recovery episode;
* retransmission timeout with exponential backoff and Karn's algorithm
  (no RTT samples from retransmitted segments);
* Jacobson/Karels smoothed RTT driving both the RTO and the coupled
  controllers' RTT compensation.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..core.base import MultipathController, SubflowState
from ..core.reno import RenoController
from ..core.rtt import RttEstimator
from ..units import MSS_BYTES
from .engine import Simulator
from .packet import Packet

_INITIAL_SSTHRESH = 1e9


class TcpSubflow:
    """One TCP connection / MPTCP subflow over an explicit path."""

    def __init__(self, sim: Simulator, path: tuple, reverse_delay: float,
                 controller: MultipathController, key: int, *,
                 size_packets: Optional[int] = None,
                 initial_cwnd: float = 2.0,
                 min_ssthresh: float = 2.0,
                 rcv_wnd_packets: Optional[int] = None,
                 on_complete: Optional[Callable[[float], None]] = None,
                 gate=None,
                 name: str = "flow") -> None:
        if not path:
            raise ValueError("path must contain at least one link")
        if reverse_delay < 0:
            raise ValueError("reverse delay cannot be negative")
        if rcv_wnd_packets is not None and rcv_wnd_packets < 1:
            raise ValueError("receive window must be at least 1 packet")
        self.sim = sim
        self.path = tuple(path)
        self.reverse_delay = reverse_delay
        self.controller = controller
        self.key = key
        self.size_packets = size_packets
        self.min_ssthresh = min_ssthresh
        self.rcv_wnd_packets = rcv_wnd_packets
        self.on_complete = on_complete
        # Optional scheduler gate (finite MPTCP transfers): the gate
        # answers _has_data via the grant-on-ask contract and tracks
        # connection-level completion across subflows.
        self.gate = gate
        self.name = name

        base_rtt = sum(link.delay for link in self.path) + reverse_delay
        self.state = SubflowState(cwnd=initial_cwnd,
                                  rtt=max(base_rtt, 1e-6))
        controller.register_subflow(key, self.state)
        self.rtt_estimator = RttEstimator()

        # Sender state.
        self.snd_una = 0
        self.snd_nxt = 0
        self.ssthresh = _INITIAL_SSTHRESH
        self.dupacks = 0
        self.in_recovery = False
        self.recover = -1
        self._rtx_high = -1
        self.backoff = 1
        self.started = False
        self.completed = False
        self.start_time = 0.0
        # Classic "timed segment" RTT sampling: at most one segment is
        # timed at a time, and any retransmission cancels the measurement
        # (conservative Karn's algorithm) so hole-filling cumulative ACKs
        # can never produce bogus multi-second samples.
        self._timed_seq: Optional[int] = None
        self._timed_at = 0.0
        # Retransmission timer: one rearmable engine Timer for the whole
        # connection.  Every transmission/ACK pushes its deadline out
        # (two attribute writes, no scheduler traffic); only genuine
        # expiry reaches _on_rto.
        self._rto_timer = sim.timer(self._on_rto)

        # Receiver state.
        self.rcv_nxt = 0
        self._out_of_order: set[int] = set()

        # Counters for monitors (newly acknowledged packets).
        self.acked_packets = 0
        self.retransmits = 0
        self.timeouts = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self, at: float | None = None) -> None:
        """Begin transmitting at time ``at`` (defaults to now)."""
        when = self.sim.now if at is None else at
        self.sim.schedule_at(when, self._begin)

    def _begin(self) -> None:
        self.started = True
        self.start_time = self.sim.now
        if self.gate is not None:
            self.gate.note_start()
        self._try_send()

    @property
    def cwnd(self) -> float:
        """Congestion window in packets."""
        return self.state.cwnd

    @property
    def srtt(self) -> float:
        """Smoothed RTT (falls back to the initial path estimate)."""
        return self.rtt_estimator.srtt or self.state.rtt

    @property
    def in_flight(self) -> int:
        return self.snd_nxt - self.snd_una

    # -- sending ---------------------------------------------------------------
    def _has_data(self) -> bool:
        if self.gate is not None:
            # Scheduler-gated finite transfer: the gate decides (and may
            # grant this subflow a packet, or poke a preferred sibling).
            return self.gate.has_data(self)
        if self.size_packets is None:
            return True
        return self.snd_nxt < self.size_packets

    def _try_send(self) -> None:
        window = int(self.state.cwnd)
        if self.rcv_wnd_packets is not None:
            # Flow control: never exceed the receiver's advertised window.
            window = min(window, self.rcv_wnd_packets)
        while (not self.completed and self._has_data()
               and self.in_flight < window):
            self._transmit(self.snd_nxt, retransmitted=False)
            self.snd_nxt += 1

    def _transmit(self, seq: int, retransmitted: bool) -> None:
        if retransmitted:
            # Conservative Karn: a retransmission makes any in-progress
            # RTT measurement ambiguous, so drop it.
            self._timed_seq = None
            self.retransmits += 1
        elif self._timed_seq is None:
            self._timed_seq = seq
            self._timed_at = self.sim.now
        packet = Packet(self, seq, self.path, MSS_BYTES,
                        sent_time=self.sim.now,
                        retransmitted=retransmitted)
        self.path[0].receive(packet)
        self._arm_timer()

    # -- receiver --------------------------------------------------------------
    def on_data(self, packet: Packet) -> None:
        """A data packet reached the end of the forward path."""
        seq = packet.seq
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            while self.rcv_nxt in self._out_of_order:
                self._out_of_order.discard(self.rcv_nxt)
                self.rcv_nxt += 1
        elif seq > self.rcv_nxt:
            self._out_of_order.add(seq)
        if self.gate is not None:
            # Redundant scheduling completes at the receiver: any copy
            # of a stream packet advances the cross-subflow union.
            self.gate.on_received(self, seq)
            if self.completed:
                return  # union covered the stream; no more ACKs needed
        # ACK (cumulative) returns over the uncongested reverse direction.
        self.sim.schedule(self.reverse_delay, self.on_ack, self.rcv_nxt)

    # -- ACK processing ----------------------------------------------------------
    def on_ack(self, ack: int) -> None:
        if self.completed or not self.started:
            return
        if ack > self.snd_una:
            self._on_new_ack(ack)
        elif ack == self.snd_una and self.in_flight > 0:
            self._on_dupack()

    def _on_new_ack(self, ack: int) -> None:
        newly = ack - self.snd_una
        if self._timed_seq is not None and ack > self._timed_seq:
            self.state.rtt = self.rtt_estimator.update(
                self.sim.now - self._timed_at)
            self._timed_seq = None
        self.snd_una = ack
        self.dupacks = 0
        self.backoff = 1
        self.acked_packets += newly

        if self.in_recovery:
            if ack > self.recover:
                self.in_recovery = False
            else:
                # Partial ACK: repair the remaining holes without another
                # halving.  The receiver's out-of-order set stands in for
                # SACK blocks (both endpoints live in this object), so we
                # retransmit every missing segment of the recovery window
                # in one cwnd-limited burst instead of NewReno's
                # one-hole-per-RTT crawl.
                self._retransmit_holes()
        if not self.in_recovery:
            if self.state.cwnd < self.ssthresh:
                # Slow start grows one MSS per ACKed packet; the
                # inter-loss counters still see the ACKed bytes.
                self.state.record_ack(newly * MSS_BYTES)
                self.state.cwnd = min(self.state.cwnd + newly,
                                      max(self.ssthresh, 1.0))
            else:
                self.controller.increase_on_ack(self.key,
                                                acked_packets=newly)

        if self.gate is not None and self.gate.on_ack(self, newly):
            return  # this ACK completed the whole multipath transfer
        if self.size_packets is not None and ack >= self.size_packets:
            self._complete()
            return
        self._arm_timer()
        self._try_send()
        if self.gate is not None:
            # Freed window/updated RTT may change the policy's choice:
            # let idle siblings ask again.
            self.gate.kick()

    #: Retransmissions allowed per arriving partial ACK.  Two per ACK
    #: grows the repair rate exponentially (like slow start) while
    #: keeping retransmission bursts ACK-clocked, so a large loss event
    #: cannot re-overflow the bottleneck queue with retransmissions.
    RTX_PER_ACK = 2

    def _retransmit_holes(self) -> None:
        """SACK-style recovery: resend missing segments of the recovery
        window, ACK-clocked.

        ``_rtx_high`` is the highest sequence retransmitted in this
        recovery episode, so later partial ACKs do not resend the same
        holes (a retransmission that is itself lost falls back to RTO).
        """
        sent = 0
        seq = max(self.snd_una, self._rtx_high + 1)
        while seq <= self.recover and sent < self.RTX_PER_ACK:
            if seq not in self._out_of_order:
                self._transmit(seq, retransmitted=True)
                sent += 1
            self._rtx_high = seq
            seq += 1

    def _on_dupack(self) -> None:
        self.dupacks += 1
        if self.dupacks == 3 and not self.in_recovery:
            self.in_recovery = True
            self.recover = self.snd_nxt - 1
            self._rtx_high = self.snd_una
            # Unmodified TCP decrease: halve (controller also rolls the
            # inter-loss counters used by OLIA).
            self.controller.decrease_on_loss(self.key)
            self.ssthresh = max(self.state.cwnd, self.min_ssthresh)
            self._transmit(self.snd_una, retransmitted=True)

    # -- retransmission timer ------------------------------------------------------
    def _rto(self) -> float:
        return self.rtt_estimator.rto * self.backoff

    def _arm_timer(self) -> None:
        self._rto_timer.arm_at(self.sim.now + self._rto())

    def _on_rto(self) -> None:
        # The Timer already filtered deadline-moved wakeups; only a
        # genuinely expired RTO lands here.
        if self.completed or self.in_flight == 0:
            return
        self._on_timeout()

    def _on_timeout(self) -> None:
        self.timeouts += 1
        self.backoff = min(self.backoff * 2, 64)
        self.ssthresh = max(self.state.cwnd / 2.0, self.min_ssthresh)
        self.state.record_loss()
        self.state.cwnd = 1.0
        self.dupacks = 0
        # Stay in (or enter) recovery until everything outstanding at the
        # time of the timeout is acknowledged: partial ACKs then repair
        # the remaining holes immediately instead of waiting one RTO per
        # hole.  The watermark resets so post-timeout holes (including
        # lost retransmissions) are eligible again.
        self.in_recovery = True
        self.recover = self.snd_nxt - 1
        self._rtx_high = self.snd_una
        self._transmit(self.snd_una, retransmitted=True)

    def stop(self) -> None:
        """Cease transmitting and detach from the controller.

        Used for path removal (e.g. an interface going away); in-flight
        packets are abandoned and no completion callback fires.
        """
        if self.completed:
            return
        self.completed = True
        self._rto_timer.cancel()
        self.controller.remove_subflow(self.key)

    def _complete(self) -> None:
        self.stop()
        if self.on_complete is not None:
            self.on_complete(self.sim.now - self.start_time)


def single_path_tcp(sim: Simulator, path: tuple, reverse_delay: float, *,
                    size_packets: Optional[int] = None,
                    on_complete: Optional[Callable[[float], None]] = None,
                    name: str = "tcp") -> TcpSubflow:
    """A regular TCP connection (fresh Reno controller, one path)."""
    controller = RenoController()
    return TcpSubflow(sim, path, reverse_delay, controller, key=0,
                      size_packets=size_packets, on_complete=on_complete,
                      name=name)
