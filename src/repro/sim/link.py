"""Store-and-forward link with an egress queue and per-link statistics.

A :class:`Link` transmits one packet at a time at its configured rate,
then hands the packet to the next hop of its path after the propagation
delay.  Arriving packets go through the queue discipline when the
transmitter is busy; queue drops are the (only) loss mechanism in the
simulator, exactly as in the paper's testbed.
"""

from __future__ import annotations

from typing import Optional

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue


class LinkStats:
    """Arrival/drop/throughput counters with warmup reset support."""

    __slots__ = ("arrivals", "drops", "bytes_sent", "since")

    def __init__(self) -> None:
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = 0.0

    def reset(self, now: float) -> None:
        """Forget everything before ``now`` (end of warmup)."""
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = now

    @property
    def loss_probability(self) -> float:
        """Fraction of arrivals dropped since the last reset."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def utilization(self, now: float, rate_bps: float) -> float:
        """Fraction of the link capacity used since the last reset."""
        elapsed = now - self.since
        if elapsed <= 0:
            return 0.0
        return (self.bytes_sent * 8.0) / (rate_bps * elapsed)


class Link:
    """Unidirectional link: rate (bits/s), propagation delay, queue."""

    __slots__ = ("sim", "rate_bps", "delay", "queue", "stats", "name",
                 "_busy")

    def __init__(self, sim: Simulator, rate_bps: float, delay: float,
                 queue: Optional[DropTailQueue] = None,
                 name: str = "link") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue()
        self.stats = LinkStats()
        self.name = name
        self._busy = False

    def receive(self, packet: Packet) -> None:
        """Packet arrives at this link's ingress."""
        self.stats.arrivals += 1
        if self._busy:
            if not self.queue.try_enqueue(packet):
                self.stats.drops += 1
            return
        # Transmitter idle: RED still sees the (empty) queue arrival.
        if not self.queue.try_enqueue(packet):
            self.stats.drops += 1
            return
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        service_time = packet.size_bytes * 8.0 / self.rate_bps
        self.sim.schedule(service_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self.stats.bytes_sent += packet.size_bytes
        self.sim.schedule(self.delay, self._deliver, packet)
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)
        else:
            self._busy = False

    def _deliver(self, packet: Packet) -> None:
        packet.hop += 1
        if packet.hop < len(packet.path):
            packet.path[packet.hop].receive(packet)
        else:
            packet.endpoint.on_data(packet)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, "
                f"{self.delay * 1e3:.1f} ms)")
