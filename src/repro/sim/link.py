"""Store-and-forward link with an egress queue and per-link statistics.

A :class:`Link` transmits one packet at a time at its configured rate,
then hands the packet to the next hop of its path after the propagation
delay.  Arriving packets go through the queue discipline when the
transmitter is busy; queue drops are the (only) loss mechanism in the
simulator, exactly as in the paper's testbed.

Scheduling shape: a link is a *self-scheduling service loop*.  However
many packets are queued or propagating, it keeps at most **two** pending
events in the engine — one wakeup for the transmission currently on the
wire, and one for the head of the propagation pipe (a FIFO of
``(deliver_time, packet)`` pairs; propagation delay is constant per
link, so completion order is arrival order).  The seed engine instead
held one pending event per packet in flight, which on a long-delay link
is a bandwidth-delay product's worth of heap entries per link; the
service-loop shape keeps the scheduler's pending set proportional to
the number of *links*, not packets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue


class LinkStats:
    """Arrival/drop/throughput counters with warmup reset support."""

    __slots__ = ("arrivals", "drops", "bytes_sent", "since")

    def __init__(self) -> None:
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = 0.0

    def reset(self, now: float) -> None:
        """Forget everything before ``now`` (end of warmup)."""
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = now

    @property
    def loss_probability(self) -> float:
        """Fraction of arrivals dropped since the last reset."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def utilization(self, now: float, rate_bps: float) -> float:
        """Fraction of the link capacity used since the last reset."""
        elapsed = now - self.since
        if elapsed <= 0:
            return 0.0
        return (self.bytes_sent * 8.0) / (rate_bps * elapsed)


class Link:
    """Unidirectional link: rate (bits/s), propagation delay, queue."""

    __slots__ = ("sim", "rate_bps", "delay", "queue", "stats", "name",
                 "_busy", "_pipe", "_pipe_idle")

    def __init__(self, sim: Simulator, rate_bps: float, delay: float,
                 queue: Optional[DropTailQueue] = None,
                 name: str = "link") -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue()
        self.stats = LinkStats()
        self.name = name
        self._busy = False
        # Packets on the wire: (delivery_time, packet), delivery order ==
        # transmission order because the propagation delay is constant.
        self._pipe: Deque[Tuple[float, Packet]] = deque()
        self._pipe_idle = True

    def receive(self, packet: Packet) -> None:
        """Packet arrives at this link's ingress."""
        self.stats.arrivals += 1
        if self._busy:
            if not self.queue.try_enqueue(packet):
                self.stats.drops += 1
            return
        # Transmitter idle: RED still sees the (empty) queue arrival.
        if not self.queue.try_enqueue(packet):
            self.stats.drops += 1
            return
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        service_time = packet.size_bytes * 8.0 / self.rate_bps
        self.sim.schedule(service_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self.stats.bytes_sent += packet.size_bytes
        now = self.sim.now
        self._pipe.append((now + self.delay, packet))
        if self._pipe_idle:
            # First packet on an idle wire: start the delivery loop.
            self._pipe_idle = False
            self.sim.schedule(self.delay, self._deliver)
        # Drain the queue: keep the service loop going with the next
        # packet (one pending service event per busy link).
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)
        else:
            self._busy = False

    def _deliver(self) -> None:
        """Deliver every packet whose propagation has completed.

        One wakeup per delivery in the common case, but a single pending
        event however many packets are mid-flight: after handing over
        the due packets, the loop re-arms itself for the new pipe head.
        """
        pipe = self._pipe
        now = self.sim.now
        while pipe and pipe[0][0] <= now:
            packet = pipe.popleft()[1]
            packet.hop += 1
            if packet.hop < len(packet.path):
                packet.path[packet.hop].receive(packet)
            else:
                packet.endpoint.on_data(packet)
        if pipe:
            self.sim.schedule_at(pipe[0][0], self._deliver)
        else:
            self._pipe_idle = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, "
                f"{self.delay * 1e3:.1f} ms)")
