"""Store-and-forward link with an egress queue and per-link statistics.

A :class:`Link` transmits one packet at a time at its configured rate,
then hands the packet to the next hop of its path after the propagation
delay.  Arriving packets go through the queue discipline when the
transmitter is busy; queue drops are the (only) loss mechanism in the
simulator, exactly as in the paper's testbed.

Scheduling shape: a link is a *self-scheduling service loop*.  However
many packets are queued or propagating, it keeps at most **two** pending
events in the engine — one wakeup for the transmission currently on the
wire, and one for the head of the propagation pipe (a FIFO of
``(deliver_time, packet)`` pairs; propagation delay is constant per
link, so completion order is arrival order).  The seed engine instead
held one pending event per packet in flight, which on a long-delay link
is a bandwidth-delay product's worth of heap entries per link; the
service-loop shape keeps the scheduler's pending set proportional to
the number of *links*, not packets.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional, Tuple

from .engine import Simulator
from .packet import Packet
from .queues import DropTailQueue


class LinkStats:
    """Arrival/drop/throughput counters with warmup reset support."""

    __slots__ = ("arrivals", "drops", "bytes_sent", "since")

    def __init__(self) -> None:
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = 0.0

    def reset(self, now: float) -> None:
        """Forget everything before ``now`` (end of warmup)."""
        self.arrivals = 0
        self.drops = 0
        self.bytes_sent = 0
        self.since = now

    @property
    def loss_probability(self) -> float:
        """Fraction of arrivals dropped since the last reset."""
        if self.arrivals == 0:
            return 0.0
        return self.drops / self.arrivals

    def utilization(self, now: float, rate_bps: float) -> float:
        """Fraction of the link capacity used since the last reset."""
        elapsed = now - self.since
        if elapsed <= 0:
            return 0.0
        return (self.bytes_sent * 8.0) / (rate_bps * elapsed)


class Link:
    """Unidirectional link: rate (bits/s), propagation delay, queue.

    ``rate_bps`` and ``delay`` may be mutated mid-run (the wireless
    scenario machinery in :mod:`repro.topology.wireless` drives both):
    a new rate applies from the next transmission, and the propagation
    pipe clamps delivery times to stay monotone so a shrinking delay
    can never reorder packets already on the wire.  ``loss_rate``
    models non-congestion (channel) loss: each arriving packet is
    dropped with that probability, drawn from the caller-supplied
    ``loss_rng`` so runs stay seed-reproducible.  At the default
    ``loss_rate=0.0`` no random numbers are ever drawn.
    """

    __slots__ = ("sim", "rate_bps", "delay", "queue", "stats", "name",
                 "loss_rate", "loss_rng", "_busy", "_pipe", "_pipe_idle")

    def __init__(self, sim: Simulator, rate_bps: float, delay: float,
                 queue: Optional[DropTailQueue] = None,
                 name: str = "link", *,
                 loss_rate: float = 0.0,
                 loss_rng=None) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay < 0:
            raise ValueError("propagation delay cannot be negative")
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if loss_rate > 0.0 and loss_rng is None:
            raise ValueError("loss_rate needs a loss_rng for "
                             "reproducible channel drops")
        self.sim = sim
        self.rate_bps = rate_bps
        self.delay = delay
        self.queue = queue if queue is not None else DropTailQueue()
        self.stats = LinkStats()
        self.name = name
        self.loss_rate = loss_rate
        self.loss_rng = loss_rng
        self._busy = False
        # Packets on the wire: (delivery_time, packet), delivery order ==
        # transmission order because the propagation delay is constant
        # (or clamped monotone when mutated mid-run).
        self._pipe: Deque[Tuple[float, Packet]] = deque()
        self._pipe_idle = True

    def receive(self, packet: Packet) -> None:
        """Packet arrives at this link's ingress."""
        self.stats.arrivals += 1
        if (self.loss_rate > 0.0
                and self.loss_rng.random() < self.loss_rate):
            # Channel loss (wireless): dropped on arrival, before the
            # queue — indistinguishable from a queue drop to the
            # transport, as non-congestion losses are to real TCP.
            self.stats.drops += 1
            return
        if self._busy:
            if not self.queue.try_enqueue(packet):
                self.stats.drops += 1
            return
        # Transmitter idle: RED still sees the (empty) queue arrival.
        if not self.queue.try_enqueue(packet):
            self.stats.drops += 1
            return
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)

    def _start_transmission(self, packet: Packet) -> None:
        self._busy = True
        service_time = packet.size_bytes * 8.0 / self.rate_bps
        self.sim.schedule(service_time, self._transmission_done, packet)

    def _transmission_done(self, packet: Packet) -> None:
        self.stats.bytes_sent += packet.size_bytes
        now = self.sim.now
        deliver_at = now + self.delay
        pipe = self._pipe
        if pipe and pipe[-1][0] > deliver_at:
            # The delay shrank mid-run (wireless rate/handover change):
            # clamp to the tail so the wire stays FIFO.  A no-op for
            # constant delay — completion order is arrival order.
            deliver_at = pipe[-1][0]
        pipe.append((deliver_at, packet))
        if self._pipe_idle:
            # First packet on an idle wire: start the delivery loop.
            self._pipe_idle = False
            self.sim.schedule_at(deliver_at, self._deliver)
        # Drain the queue: keep the service loop going with the next
        # packet (one pending service event per busy link).
        next_packet = self.queue.dequeue()
        if next_packet is not None:
            self._start_transmission(next_packet)
        else:
            self._busy = False

    def _deliver(self) -> None:
        """Deliver every packet whose propagation has completed.

        One wakeup per delivery in the common case, but a single pending
        event however many packets are mid-flight: after handing over
        the due packets, the loop re-arms itself for the new pipe head.
        """
        pipe = self._pipe
        now = self.sim.now
        while pipe and pipe[0][0] <= now:
            packet = pipe.popleft()[1]
            packet.hop += 1
            if packet.hop < len(packet.path):
                packet.path[packet.hop].receive(packet)
            else:
                packet.endpoint.on_data(packet)
        if pipe:
            self.sim.schedule_at(pipe[0][0], self._deliver)
        else:
            self._pipe_idle = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Link({self.name}, {self.rate_bps / 1e6:.1f} Mbps, "
                f"{self.delay * 1e3:.1f} ms)")
