"""Event schedulers for the DES engine: binary heap and timer wheel.

The :class:`~repro.sim.engine.Simulator` delegates event storage to a
*scheduler* — an ordered multiset of pending entries with two
operations: ``push(entry)`` and ``pop_due(until)`` / ``pop_next()``.
An entry is the engine's pre-bound tuple ``(time, seq, fn, args,
event)``; the unique ``(time, seq)`` prefix totally orders entries, so
any scheduler that pops in that order yields *exactly* the same
simulation as any other — event-order determinism (FIFO within a
timestamp) and seed reproducibility are properties of the entry
ordering, not of the data structure.

Two implementations:

* :class:`HeapScheduler` — the classic binary heap: ``O(log n)`` per
  operation, no assumptions about event horizons.  This is the seed
  engine's structure, kept as the reference backend (the wheel is
  property-tested against it).

* :class:`WheelScheduler` — a three-level hierarchical timer wheel with
  an overflow heap.  Near-future entries (the bulk of DES traffic: link
  service completions, propagation, ACK clocks, RTO rearms) cost
  ``O(1)`` amortized to insert — a list append into the slot of their
  quantized tick — independent of how many events are pending, where a
  heap pays ``O(log n)`` comparisons.  Ticks are drained through a tiny
  ``due`` heap so entries sharing a slot still pop in exact
  ``(time, seq)`` order; per-level occupancy bitmasks make empty-slot
  skipping a couple of integer operations.

Wheel geometry (``tick`` defaults to 1 ms):

========  =================  ==========================================
level     slot width         horizon ahead of the cursor
========  =================  ==========================================
0         1 tick             256 ticks      (0.256 s)
1         256 ticks          65 536 ticks   (~65 s)
2         65 536 ticks       16 777 216 ticks (~4.6 h)
overflow  —                  everything beyond level 2
========  =================  ==========================================

Entries are placed by their distance from the cursor at push time and
cascade down one level whenever the cursor crosses the corresponding
slot boundary; overflow entries re-enter the wheel when the cursor
reaches their level-2 window (or immediately, when the wheel runs dry
and the cursor jumps).

One deliberate degeneration: the cursor only moves forward.  If a
``run(until)`` hunts far ahead (a lone far-future timer) and the
simulation then resumes scheduling near ``now``, the new entries land
in the ``due`` heap behind the cursor and the scheduler temporarily
behaves like a plain heap — correct, just without the O(1) insert —
until the backlog drains past the cursor again.  Continuous workloads
(every figure sweep in this repo) never enter that regime.

A third implementation, :class:`AdaptiveScheduler` (the engine's
``scheduler="auto"`` default), holds no event storage of its own: it
delegates to a heap or a wheel and *migrates* between them based on the
observed pending-event population.  Neither fixed backend wins
everywhere — the heap's constants are better on the near-empty pending
sets of the small figure scenarios (~10-20% end-to-end), the wheel's
flat scaling wins on the loaded 1k-10k-flow scenarios (~2.8x on the
loaded microbench) — and because every backend pops in the same total
order, switching mid-run is invisible to the simulation.
"""

from __future__ import annotations

import math
import os
from heapq import heapify, heappop, heappush
from time import perf_counter_ns
from typing import Dict, List, Optional, Tuple

try:                            # optional compiled kernels
    from . import _kernels as _compiled
except ImportError:             # pure-python fallback: always valid
    _compiled = None

#: True when the optional C extension (``repro.sim._kernels``) built
#: and imported; every consumer degrades to the pure backends when not.
COMPILED_AVAILABLE = _compiled is not None


class HeapScheduler:
    """Binary-heap scheduler: the reference (and seed) event store."""

    __slots__ = ("_heap",)

    def __init__(self) -> None:
        self._heap: List[tuple] = []

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, entry: tuple) -> None:
        heappush(self._heap, entry)

    def pop_due(self, until: float) -> Optional[tuple]:
        """Pop the earliest entry with ``time <= until`` (else None)."""
        heap = self._heap
        if heap and heap[0][0] <= until:
            return heappop(heap)
        return None

    def pop_next(self) -> Optional[tuple]:
        """Pop the earliest entry regardless of time (else None)."""
        heap = self._heap
        if heap:
            return heappop(heap)
        return None

    def dump(self) -> List[tuple]:
        """All entries in arbitrary order, leaving the scheduler empty.

        O(n) backend-migration support: hand the result to another
        scheduler's :meth:`refill`.
        """
        heap, self._heap = self._heap, []
        return heap

    def refill(self, entries: List[tuple]) -> None:
        """Bulk-load ``entries`` (arbitrary order) into an empty self."""
        self._heap += entries
        heapify(self._heap)


_SLOT_BITS = 8
_SLOTS = 1 << _SLOT_BITS           # 256 slots per level
_MASK = _SLOTS - 1
_L1_SPAN = 1 << (2 * _SLOT_BITS)   # ticks covered by levels 0+1
_L2_SPAN = 1 << (3 * _SLOT_BITS)   # ticks covered by levels 0+1+2


class WheelScheduler:
    """Hierarchical timer wheel + overflow heap (see module docstring).

    Invariants (``cursor`` is ``_next_tick``, the first un-drained tick):

    * every entry in a wheel level has ``tick >= cursor``, and each
      populated slot holds exactly one tick's entries (ticks 256 slots
      apart can never coexist in a level, by the push-window bound);
    * the ``due`` heap holds entries at ticks ``< cursor`` (the tick
      being drained plus any stragglers pushed behind the cursor);
    * ``pop`` order is globally exact ``(time, seq)``: slots are
      heapified into ``due`` one tick at a time, and any entry pushed
      at-or-behind the cursor goes straight into ``due``.
    """

    __slots__ = ("_tick", "_inv_tick", "_l0", "_l1", "_l2",
                 "_occ0", "_occ1", "_occ2", "_overflow", "_due",
                 "_next_tick", "_count", "_wheel_count",
                 "_block_end", "_span1_end", "_span2_end")

    def __init__(self, tick: float = 1e-3) -> None:
        if tick <= 0:
            raise ValueError("wheel tick must be positive")
        self._tick = tick
        self._inv_tick = 1.0 / tick
        self._l0: List[List[tuple]] = [[] for _ in range(_SLOTS)]
        self._l1: List[List[tuple]] = [[] for _ in range(_SLOTS)]
        self._l2: List[List[tuple]] = [[] for _ in range(_SLOTS)]
        self._occ0 = 0
        self._occ1 = 0
        self._occ2 = 0
        self._overflow: List[tuple] = []
        self._due: List[tuple] = []
        self._next_tick = 0
        self._count = 0
        self._wheel_count = 0
        # Cascade markers: the first tick at which the cursor will enter
        # a block / level-1 window / level-2 window whose parent slot has
        # not been cascaded yet.  All start at 0 so the first _advance
        # opens the initial windows.
        self._block_end = 0
        self._span1_end = 0
        self._span2_end = 0

    def __len__(self) -> int:
        return self._count

    # -- insertion ---------------------------------------------------------------
    def push(self, entry: tuple) -> None:
        self._count += 1
        it = int(entry[0] * self._inv_tick)
        delta = it - self._next_tick
        if delta < 0:
            # Behind the cursor: joins the drain heap directly.
            heappush(self._due, entry)
            return
        self._wheel_count += 1
        if delta < _SLOTS:
            slot = it & _MASK
            self._l0[slot].append(entry)
            self._occ0 |= 1 << slot
        elif delta < _L1_SPAN:
            slot = (it >> _SLOT_BITS) & _MASK
            self._l1[slot].append(entry)
            self._occ1 |= 1 << slot
        elif delta < _L2_SPAN:
            slot = (it >> (2 * _SLOT_BITS)) & _MASK
            self._l2[slot].append(entry)
            self._occ2 |= 1 << slot
        else:
            self._wheel_count -= 1
            heappush(self._overflow, entry)

    def _place(self, entry: tuple) -> None:
        """Re-place a cascaded/overflow entry (count already included)."""
        it = int(entry[0] * self._inv_tick)
        delta = it - self._next_tick
        self._wheel_count += 1
        if delta < _SLOTS:
            slot = it & _MASK
            self._l0[slot].append(entry)
            self._occ0 |= 1 << slot
        elif delta < _L1_SPAN:
            slot = (it >> _SLOT_BITS) & _MASK
            self._l1[slot].append(entry)
            self._occ1 |= 1 << slot
        else:
            slot = (it >> (2 * _SLOT_BITS)) & _MASK
            self._l2[slot].append(entry)
            self._occ2 |= 1 << slot

    # -- drain -------------------------------------------------------------------
    def _advance(self) -> None:
        """Move the next populated tick's slot into the ``due`` heap.

        Only called with ``due`` empty and at least one entry pending in
        the wheel or the overflow heap.
        """
        while True:
            base = self._next_tick
            if base >= self._block_end:
                self._enter_block(base)
            rel = base & _MASK
            bits = self._occ0 >> rel
            if bits:
                low = bits & -bits
                slot = rel + low.bit_length() - 1
                self._next_tick = (base - rel) + slot + 1
                bucket = self._l0[slot]
                self._l0[slot] = []
                self._occ0 &= ~(1 << slot)
                self._wheel_count -= len(bucket)
                heapify(bucket)
                self._due = bucket
                return
            # The rest of this 256-tick block is empty.
            if self._wheel_count == 0:
                # Wheel dry: jump the cursor straight to the overflow
                # head and pull its level-2 span into the wheel (the
                # jump cannot skip wheel entries — there are none).
                head = self._overflow[0]
                self._next_tick = int(head[0] * self._inv_tick)
                self._refill_overflow()
            elif self._occ0:
                # Level 0 still holds next-block entries (slots below
                # the cursor's): cross one block and rescan.
                self._next_tick = self._block_end
            elif self._block_end >= self._span1_end:
                # Crossing into a new level-1 window: enter it plainly
                # so its level-2 slot cascades before any
                # occupancy-based jumping (a jump here could overshoot
                # entries still parked in that slot).
                self._next_tick = self._block_end
            else:
                # Level 0 drained and mid-window: use the parent
                # occupancy masks to skip runs of empty blocks in O(1)
                # instead of walking them one at a time.
                nb = self._block_end
                s1 = (nb >> _SLOT_BITS) & _MASK
                bits1 = self._occ1 >> s1
                if bits1:
                    # Slots >= s1 always belong to the current level-1
                    # window (a next-window alias would need delta >=
                    # the window span and lands in level 2): jump to
                    # the first populated block.
                    low = bits1 & -bits1
                    block = (nb >> _SLOT_BITS) + low.bit_length() - 1
                    self._next_tick = block << _SLOT_BITS
                elif self._occ1:
                    # Remaining level-1 bits sit below s1 — wrapped
                    # slots of the *next* window.  They are invisible
                    # to level 2, so advance exactly one window
                    # boundary and rescan from there.
                    self._next_tick = self._span1_end
                else:
                    # Nothing in levels 0/1: hop whole level-1 windows
                    # on the level-2 occupancy.  The current window's
                    # level-2 slot was cascaded on entry (nb is
                    # mid-window here), so a bit at its own slot is a
                    # next-span alias — scan strictly past it.
                    s2 = (nb >> (2 * _SLOT_BITS)) & _MASK
                    bits2 = self._occ2 >> (s2 + 1)
                    if bits2:
                        low = bits2 & -bits2
                        window = (nb >> (2 * _SLOT_BITS)) \
                            + low.bit_length()
                        self._next_tick = window << (2 * _SLOT_BITS)
                    else:
                        # Only wrapped next-span aliases (or nothing)
                        # remain: advance one span boundary, which
                        # also refills from the overflow heap.
                        self._next_tick = self._span2_end

    def _enter_block(self, base: int) -> None:
        """Cascade parent slots when the cursor enters a new block.

        Outer windows cascade first: a refilled overflow entry may land
        in the level-2 slot about to cascade, and a cascaded level-2
        entry may land in the level-1 slot about to cascade.
        """
        if base >= self._span2_end:
            self._span2_end = ((base >> (3 * _SLOT_BITS)) + 1) \
                << (3 * _SLOT_BITS)
            self._refill_overflow()
        if base >= self._span1_end:
            self._span1_end = ((base >> (2 * _SLOT_BITS)) + 1) \
                << (2 * _SLOT_BITS)
            slot2 = (base >> (2 * _SLOT_BITS)) & _MASK
            if self._occ2 & (1 << slot2):
                bucket = self._l2[slot2]
                self._l2[slot2] = []
                self._occ2 &= ~(1 << slot2)
                self._wheel_count -= len(bucket)
                for entry in bucket:
                    self._place(entry)
        self._block_end = ((base >> _SLOT_BITS) + 1) << _SLOT_BITS
        slot1 = (base >> _SLOT_BITS) & _MASK
        if self._occ1 & (1 << slot1):
            bucket = self._l1[slot1]
            self._l1[slot1] = []
            self._occ1 &= ~(1 << slot1)
            self._wheel_count -= len(bucket)
            for entry in bucket:
                self._place(entry)

    def _refill_overflow(self) -> None:
        """Pull overflow entries inside the cursor's level-2 span."""
        horizon = self._next_tick + _L2_SPAN
        overflow = self._overflow
        inv_tick = self._inv_tick
        while overflow and int(overflow[0][0] * inv_tick) < horizon:
            self._place(heappop(overflow))

    def pop_due(self, until: float) -> Optional[tuple]:
        """Pop the earliest entry with ``time <= until`` (else None)."""
        due = self._due
        if not due:
            if self._count == 0:
                return None
            self._advance()
            due = self._due
        if due[0][0] > until:
            return None
        self._count -= 1
        return heappop(due)

    def pop_next(self) -> Optional[tuple]:
        """Pop the earliest entry regardless of time (else None)."""
        due = self._due
        if not due:
            if self._count == 0:
                return None
            self._advance()
            due = self._due
        self._count -= 1
        return heappop(due)

    def dump(self) -> List[tuple]:
        """All entries in arbitrary order, leaving the scheduler empty.

        O(n) backend-migration support: hand the result to another
        scheduler's :meth:`refill`.  The cursor keeps its position, so
        the emptied wheel stays valid for further pushes.
        """
        entries = self._due
        self._due = []
        for level in (self._l0, self._l1, self._l2):
            for slot, bucket in enumerate(level):
                if bucket:
                    entries.extend(bucket)
                    level[slot] = []
        entries.extend(self._overflow)
        self._overflow = []
        self._occ0 = self._occ1 = self._occ2 = 0
        self._count = 0
        self._wheel_count = 0
        return entries

    def refill(self, entries: List[tuple]) -> None:
        """Bulk-load ``entries`` (arbitrary order) into an empty self."""
        push = self.push
        for entry in entries:
            push(entry)


#: Pending population at which the adaptive scheduler trades its heap
#: for a wheel, and back.  Calibrated on this repo's workloads (see
#: docs/PERFORMANCE.md "Picking the backend"): on dense event streams
#: (many events per 1 ms tick — the loaded-scenario regime) the wheel
#: overtakes the heap below ~64 pending entries, while on sparse
#: streams (at most one event per tick — the small figure scenarios)
#: the heap's O(log n) stays competitive into the thousands.  2048
#: splits the repo's real workloads cleanly: figure scenarios idle at
#: ~20-100 pending and stay on the heap; the 100-flow generator preset
#: sits near the boundary; the 1k/10k-flow presets park thousands of
#: RTO timers and promote to the wheel, where its flat scaling wins.
#: The 4x hysteresis gap keeps a population oscillating around either
#: threshold from thrashing migrations.
AUTO_PROMOTE_PENDING = 2048
AUTO_DEMOTE_PENDING = 512

#: How many pops the adaptive scheduler lets pass between population
#: samples.  Sampling is O(1) (a ``len`` and a compare), but the
#: countdown keeps even that off the per-event fast path; 256 reacts
#: within a few simulated milliseconds of any realistic load shift
#: while costing ~one extra integer op per event.
AUTO_SAMPLE_PERIOD = 256

#: Environment switch for the startup micro-calibration.  ``"0"``
#: disables it, pinning the adaptive crossover to the documented
#: constants above — the right setting for bit-stable CI lanes and for
#: any test that asserts a specific migration pattern.
CALIBRATE_ENV = "REPRO_SIM_CALIBRATE"

#: Calibrated-threshold clamp: the promote threshold never leaves
#: this band, whatever the micro-benchmark says.  The floor keeps a
#: noisy "wheel always wins" reading from thrashing tiny scenarios
#: through migrations; the ceiling keeps a noisy "heap always wins"
#: reading from disabling the wheel on the 10k-flow scenarios the
#: roadmap targets.
CALIBRATE_MIN_PROMOTE = 64
CALIBRATE_MAX_PROMOTE = 1 << 20

_calibration_cache: Dict[str, dict] = {}


def _steady_state_cost_ns(factory, n_resident: int,
                          n_ops: int = 2048, repeats: int = 3) -> float:
    """Per-operation push+pop cost (ns) at a resident population.

    The probe mirrors the DES steady state: ``n_resident`` far-future
    entries stay parked (RTO timers, idle flows) while the measured
    churn inserts at the front of the queue and immediately pops —
    the regime where the heap pays ``O(log n)`` against the resident
    mass and the wheel pays its flat constant.  The minimum over
    ``repeats`` runs discards scheduler-noise outliers.
    """
    best = math.inf
    for _ in range(repeats):
        sched = factory()
        push = sched.push
        pop = sched.pop_next
        for i in range(n_resident):
            # Spread residents over ~60 s of level-1/2 horizon so the
            # wheel parks them off the hot path, like real timers.
            push((100.0 + (i % 997) * 6e-2, i, None, (), None))
        t = 1.0
        seq = n_resident
        start = perf_counter_ns()
        for _ in range(n_ops):
            seq += 1
            push((t, seq, None, (), None))
            pop()
            t += 2e-3
        elapsed = perf_counter_ns() - start
        best = min(best, elapsed / n_ops)
    return best


def calibrate(compiled: bool = False) -> dict:
    """Micro-measure both backends and derive crossover thresholds.

    Fits the heap's steady-state cost as ``a + b*log2(n)`` from two
    resident populations, measures the wheel's flat cost ``w``, and
    solves ``a + b*log2(n*) = w`` for the population ``n*`` where the
    wheel overtakes the heap on this interpreter/machine.  Returns a
    dict with ``promote``/``demote`` (the clamped band, 4x hysteresis
    like the constants) and ``source``:

    * ``"measured"`` — thresholds derived from the fit;
    * ``"disabled"`` — ``REPRO_SIM_CALIBRATE=0``: documented constants;
    * ``"noisy"`` — the fit was unusable (non-positive or non-finite
      slope: timer noise swamped the signal): documented constants;
    * ``"unavailable"`` — ``compiled=True`` without the extension.

    Measured results are cached per process (one probe costs a few
    tens of milliseconds pure, ~2 ms compiled); the ``disabled`` check
    runs on every call so tests can flip the environment variable.
    """
    fallback = {"promote": AUTO_PROMOTE_PENDING,
                "demote": AUTO_DEMOTE_PENDING,
                "heap_ns_small": None, "heap_ns_large": None,
                "wheel_ns": None, "crossover": None}
    if (os.environ.get(CALIBRATE_ENV) or "1") == "0":
        return dict(fallback, source="disabled")
    key = "compiled" if compiled else "pure"
    cached = _calibration_cache.get(key)
    if cached is not None:
        return dict(cached)
    if compiled:
        if _compiled is None:
            return dict(fallback, source="unavailable")
        heap_factory = _compiled.HeapKernel
        wheel_factory = _compiled.WheelKernel
    else:
        heap_factory = HeapScheduler
        wheel_factory = WheelScheduler
    n_small, n_large = 256, 16384
    heap_small = _steady_state_cost_ns(heap_factory, n_small)
    heap_large = _steady_state_cost_ns(heap_factory, n_large)
    wheel_ns = _steady_state_cost_ns(wheel_factory, 2048)
    slope = (heap_large - heap_small) / (math.log2(n_large)
                                         - math.log2(n_small))
    result = dict(fallback, source="noisy", heap_ns_small=heap_small,
                  heap_ns_large=heap_large, wheel_ns=wheel_ns)
    if math.isfinite(slope) and slope > 0:
        intercept = heap_small - slope * math.log2(n_small)
        exponent = (wheel_ns - intercept) / slope
        if math.isfinite(exponent):
            crossover = 2.0 ** min(max(exponent, 0.0), 40.0)
            promote = int(min(max(crossover, CALIBRATE_MIN_PROMOTE),
                              CALIBRATE_MAX_PROMOTE))
            result.update(source="measured", crossover=crossover,
                          promote=promote, demote=promote // 4)
    _calibration_cache[key] = dict(result)
    return result


def calibrated_thresholds(compiled: bool = False) -> Tuple[int, int]:
    """The adaptive crossover band ``(promote, demote)`` to use now.

    Self-calibrated from measured backend costs when enabled (the
    default), the documented :data:`AUTO_PROMOTE_PENDING` /
    :data:`AUTO_DEMOTE_PENDING` constants when ``REPRO_SIM_CALIBRATE=0``
    or the measurement was unusable.  Pass ``compiled=True`` to derive
    the band from the compiled kernels' costs (the right model when
    the compiled :class:`~repro.sim._kernels.EngineCore` will do the
    migrating).
    """
    info = calibrate(compiled=compiled)
    return info["promote"], info["demote"]


class AdaptiveScheduler:
    """Population-adaptive scheduler: a heap that becomes a wheel.

    Delegates storage to a :class:`HeapScheduler` while the pending
    population is small and migrates to a :class:`WheelScheduler` when
    it grows past the promote threshold (and back below the demote
    threshold).  By default the band comes from
    :func:`calibrated_thresholds` — a startup micro-measurement of
    both backends' push/pop costs on the running interpreter — and
    falls back to the documented :data:`AUTO_PROMOTE_PENDING` /
    :data:`AUTO_DEMOTE_PENDING` constants when calibration is disabled
    (``REPRO_SIM_CALIBRATE=0``) or too noisy; explicit ``promote`` /
    ``demote`` arguments override both.  Migration drains the old
    backend in
    pop order into the new one, so the ``(time, seq)`` pop contract —
    and therefore trace identity with both fixed backends — holds
    through any number of switches.

    The population is sampled every :data:`AUTO_SAMPLE_PERIOD` pops
    rather than on every operation; ``push`` is the *bound method of
    the active backend* (re-bound on migration), so inserts pay zero
    wrapper overhead.  The engine's dispatch loop avoids the pop-side
    wrapper too: it calls :meth:`sample` once per
    :data:`AUTO_SAMPLE_PERIOD` dispatched events and pops straight off
    :attr:`inner` in between, so in steady state the adaptive backend
    runs at the active backend's native speed.  The wrapped
    ``pop_due``/``pop_next`` remain for standalone use (anything that
    drains a scheduler without the engine's chunked loop).
    """

    __slots__ = ("push", "migrations", "inner", "_tick", "_promote",
                 "_demote", "_period", "_countdown", "_wheel_active")

    def __init__(self, tick: float = 1e-3, *,
                 promote: Optional[int] = None,
                 demote: Optional[int] = None,
                 period: int = AUTO_SAMPLE_PERIOD) -> None:
        if tick <= 0:
            raise ValueError("wheel tick must be positive")
        if promote is None or demote is None:
            # Defaults come from the startup micro-calibration (the
            # documented constants when disabled or unusable); explicit
            # arguments always win.
            calibrated = calibrated_thresholds()
            promote = calibrated[0] if promote is None else promote
            demote = calibrated[1] if demote is None else demote
        if not 0 <= demote < promote:
            raise ValueError(
                f"need 0 <= demote < promote for hysteresis, got "
                f"demote={demote}, promote={promote}")
        if period < 1:
            raise ValueError("sample period must be >= 1")
        self._tick = tick
        self._promote = promote
        self._demote = demote
        self._period = period
        self._countdown = period
        self._wheel_active = False
        self.migrations = 0
        self.inner = HeapScheduler()
        self.push = self.inner.push

    def __len__(self) -> int:
        return len(self.inner)

    @property
    def backend_name(self) -> str:
        """The currently active backend, ``"heap"`` or ``"wheel"``."""
        return "wheel" if self._wheel_active else "heap"

    @property
    def period(self) -> int:
        """Pops between population samples (the engine's chunk size)."""
        return self._period

    @property
    def promote_threshold(self) -> int:
        """Pending population that promotes heap -> wheel."""
        return self._promote

    @property
    def demote_threshold(self) -> int:
        """Pending population that demotes wheel -> heap."""
        return self._demote

    def sample(self) -> None:
        """Compare the pending population against the thresholds.

        Migrates :attr:`inner` (invalidating any cached bound methods)
        when the population has crossed the active band.
        """
        self._countdown = self._period
        population = len(self.inner)
        if self._wheel_active:
            if population <= self._demote:
                self._migrate(HeapScheduler())
        elif population >= self._promote:
            self._migrate(WheelScheduler(tick=self._tick))

    def _migrate(self, target) -> None:
        """Move the whole population into ``target``, O(n).

        Transfer order is arbitrary — both backends are order-agnostic
        multisets whose *pop* order is the ``(time, seq)`` contract —
        so migration moves raw storage (``dump``/``refill``, one
        ``heapify`` or n O(1) wheel inserts) instead of paying an
        ordered O(n log n) drain.
        """
        target.refill(self.inner.dump())
        self.inner = target
        self.push = target.push
        self._wheel_active = not self._wheel_active
        self.migrations += 1

    def pop_due(self, until: float) -> Optional[tuple]:
        """Pop the earliest entry with ``time <= until`` (else None)."""
        self._countdown -= 1
        if self._countdown <= 0:
            self.sample()
        return self.inner.pop_due(until)

    def pop_next(self) -> Optional[tuple]:
        """Pop the earliest entry regardless of time (else None)."""
        self._countdown -= 1
        if self._countdown <= 0:
            self.sample()
        return self.inner.pop_next()
