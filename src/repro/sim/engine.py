"""Discrete-event simulation engine.

A minimal, fast event scheduler: a binary heap of ``(time, sequence,
event)`` entries with O(log n) scheduling and lazy cancellation.  The
sequence number makes event ordering deterministic for simultaneous
events (FIFO within a timestamp), which keeps whole simulations exactly
reproducible for a fixed seed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional


class Event:
    """A scheduled callback; cancel by calling :meth:`cancel`."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it (lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Event loop with a virtual clock (seconds)."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._now = 0.0
        self._counter = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (performance metric)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds; returns the event."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``time``; returns the event."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        event = Event(time, fn, args)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, event))
        return event

    def run(self, until: float) -> None:
        """Process events in order until the clock reaches ``until``."""
        heap = self._heap
        while heap:
            time, _, event = heap[0]
            if time > until:
                break
            heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            self._processed += 1
            event.fn(*event.args)
        self._now = until

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Process every queued event (bounded by ``max_events``)."""
        heap = self._heap
        budget = max_events
        while heap and budget > 0:
            time, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time
            self._processed += 1
            budget -= 1
            event.fn(*event.args)
        if heap and budget == 0:
            raise RuntimeError(
                f"run_until_empty exceeded {max_events} events")
