"""Discrete-event simulation engine.

A minimal, fast event scheduler: a binary heap with O(log n) scheduling
and lazy cancellation.  A sequence number makes event ordering
deterministic for simultaneous events (FIFO within a timestamp), which
keeps whole simulations exactly reproducible for a fixed seed.

Two hot-path optimisations keep the event loop allocation-light:

* **Pre-bound heap entries** — the heap stores ``(time, seq, fn, args,
  event)`` tuples, so dispatching an event reads the callback and its
  arguments straight out of the popped tuple instead of chasing
  attributes on the :class:`Event` object.  The unique ``(time, seq)``
  prefix means tuple comparison never reaches the callables.
* **An Event free-list** — handle objects are recycled once their entry
  leaves the heap, so steady-state simulation performs no per-event
  allocations beyond the entry tuple itself.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List


class Event:
    """A scheduled callback; cancel by calling :meth:`cancel`.

    Handle lifetime contract: a handle is valid from ``schedule`` until
    its callback runs (or, for a cancelled event, until the engine pops
    and discards it).  The engine then *recycles* the object for a later
    ``schedule`` call, so holders must drop (or overwrite) their
    reference when the callback fires and must not call :meth:`cancel`
    afterwards — the idiom used throughout :mod:`repro.sim` is to null
    the stored handle first thing in the callback.
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it (lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Event loop with a virtual clock (seconds)."""

    def __init__(self) -> None:
        self._heap: List[tuple] = []
        self._free: List[Event] = []
        self._now = 0.0
        self._counter = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (performance metric)."""
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds; returns the event."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at: this is the hottest API in the simulator,
        # and a second Python call per event costs a measurable slice of
        # the event loop.
        time = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args)
        self._counter += 1
        heappush(self._heap, (time, self._counter, fn, args, event))
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``time``; returns the event."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args)
        self._counter += 1
        heappush(self._heap, (time, self._counter, fn, args, event))
        return event

    def run(self, until: float) -> None:
        """Process events in order until the clock reaches ``until``."""
        heap = self._heap
        free = self._free
        while heap:
            entry = heap[0]
            if entry[0] > until:
                break
            heappop(heap)
            event = entry[4]
            if event.cancelled:
                event.fn = None
                event.args = ()
                free.append(event)
                continue
            self._now = entry[0]
            self._processed += 1
            entry[2](*entry[3])
            event.fn = None
            event.args = ()
            free.append(event)
        self._now = until

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Process every queued event (bounded by ``max_events``)."""
        heap = self._heap
        free = self._free
        budget = max_events
        while heap and budget > 0:
            entry = heappop(heap)
            event = entry[4]
            if event.cancelled:
                event.fn = None
                event.args = ()
                free.append(event)
                continue
            self._now = entry[0]
            self._processed += 1
            budget -= 1
            entry[2](*entry[3])
            event.fn = None
            event.args = ()
            free.append(event)
        if heap and budget == 0:
            raise RuntimeError(
                f"run_until_empty exceeded {max_events} events")
