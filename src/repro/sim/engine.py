"""Discrete-event simulation engine.

The :class:`Simulator` owns a virtual clock and dispatches callbacks in
exact ``(time, seq)`` order: a sequence number makes event ordering
deterministic for simultaneous events (FIFO within a timestamp), which
keeps whole simulations exactly reproducible for a fixed seed.  Event
*storage* is delegated to a scheduler backend
(:mod:`repro.sim.scheduler`):

* ``"wheel"`` — a hierarchical timer wheel with an overflow heap: O(1)
  inserts for the near-future bulk (link service, propagation, ACK
  clocks, RTO wakeups) regardless of how many events are pending;
* ``"heap"`` — the classic binary heap, kept as the reference backend;

* ``"auto"`` (the default) — an adaptive wrapper that starts on the
  heap (better constants while the pending set is small) and migrates
  to the wheel when the observed pending population crosses a
  calibrated threshold (and back, with hysteresis).

All backends pop in the same total order, so a simulation's trace is
backend-independent — including across ``auto``'s mid-run migrations
(property-tested in ``tests/test_sim_scheduler_equivalence.py`` and
``tests/test_sim_scheduler_auto.py``); ``REPRO_SIM_SCHEDULER``
overrides the default for a whole process, and an unknown value (from
either the argument or the environment) raises ``ValueError``
immediately rather than silently falling back.

Two hot-path optimisations keep the event loop allocation-light:

* **Pre-bound heap entries** — schedulers store ``(time, seq, fn, args,
  event)`` tuples, so dispatching an event reads the callback and its
  arguments straight out of the popped tuple instead of chasing
  attributes on the :class:`Event` object.  The unique ``(time, seq)``
  prefix means tuple comparison never reaches the callables.
* **An Event free-list** — handle objects are recycled once their entry
  leaves the queue, so steady-state simulation performs no per-event
  allocations beyond the entry tuple itself.

For repeating deadlines, :meth:`Simulator.timer` returns a rearmable
:class:`Timer`: re-arming one to a later deadline is a pair of
attribute writes — no scheduler traffic at all — which is what removes
the schedule-then-lazy-cancel churn of RTO-style timers.

When the optional C extension (``repro.sim._kernels``, built with
``python setup.py build_ext --inplace``) is importable, the Simulator
swaps the whole hot path — scheduler storage *and* dispatch loop —
for the compiled :class:`~repro.sim._kernels.EngineCore` behind the
same API: entries live as C structs (no per-event tuple), Event
handles are a recycled C type, and ``run``/``run_until_empty``
dispatch without re-entering the interpreter between events.  The
pure-python loop above remains the reference: both dispatch identical
``(time, seq)`` traces (enforced by the scenario-A trace-identity
suite), ``REPRO_SIM_COMPILED=0`` or ``Simulator(compiled=False)``
forces the pure path, and a missing extension is never an error.
"""

from __future__ import annotations

import os
from itertools import repeat
from typing import Any, Callable, List, Optional

from .scheduler import (
    AUTO_SAMPLE_PERIOD,
    COMPILED_AVAILABLE,
    AdaptiveScheduler,
    HeapScheduler,
    WheelScheduler,
    calibrated_thresholds,
)

try:                            # optional compiled engine core
    from . import _kernels as _compiled
except ImportError:             # pure-python fallback: always valid
    _compiled = None

#: Environment override for the default scheduler backend.
SCHEDULER_ENV = "REPRO_SIM_SCHEDULER"

#: Recognised scheduler backend names.
SCHEDULER_NAMES = ("auto", "wheel", "heap")

#: Environment switch for the compiled engine core: ``"0"`` forces the
#: pure-python loop even when the extension is importable.  Any other
#: value (or unset) means "use it when available" — absence of the
#: extension is never an error on this path, so un-built checkouts run
#: everywhere.
COMPILED_ENV = "REPRO_SIM_COMPILED"


class Event:
    """A scheduled callback; cancel by calling :meth:`cancel`.

    Handle lifetime contract: a handle is valid from ``schedule`` until
    its callback runs (or, for a cancelled event, until the engine pops
    and discards it).  The engine then *recycles* the object for a later
    ``schedule`` call, so holders must drop (or overwrite) their
    reference when the callback fires and must not call :meth:`cancel`
    afterwards — the idiom used throughout :mod:`repro.sim` is to null
    the stored handle first thing in the callback.  (A :class:`Timer` is
    the safer alternative for recurring deadlines: it is owned by its
    holder and never recycled.)
    """

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: float, fn: Callable, args: tuple) -> None:
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it (lazy deletion)."""
        self.cancelled = True


class Timer:
    """A rearmable deadline callback bound to one :class:`Simulator`.

    Unlike a raw :class:`Event`, a Timer is a *persistent* handle: the
    holder owns it for the lifetime of the component, re-arming it as
    deadlines move instead of scheduling a fresh event (and lazily
    cancelling the old one) on every rearm.  It keeps at most one
    pending wakeup in the scheduler and tracks the live deadline in an
    attribute, so

    * extending the deadline (``arm``/``arm_at`` past the pending
      wakeup — the RTO pattern, where every ACK pushes the deadline
      out) is two attribute writes and costs the scheduler nothing;
    * when the wakeup fires early (the deadline moved), the timer
      silently re-inserts itself at the live deadline;
    * ``cancel`` clears the deadline and lets any pending wakeup pop as
      a no-op.

    Firing contract: the callback runs at the first wakeup whose time is
    at-or-after the live deadline.  For the monotone-deadline pattern
    this is exact; re-arming *earlier* than an already-pending wakeup
    takes effect only at that wakeup (the timer never fires before the
    live deadline, but may fire late by the difference).  Components
    that need exact earlier deadlines should use a fresh timer.

    After firing, the timer is disarmed and may be re-armed — including
    from inside its own callback (periodic pacing/spawn loops).
    """

    __slots__ = ("_sim", "fn", "args", "_deadline", "_wakeup")

    def __init__(self, sim: "Simulator", fn: Callable, args: tuple) -> None:
        self._sim = sim
        self.fn = fn
        self.args = args
        self._deadline: Optional[float] = None
        self._wakeup: Optional[Event] = None

    @property
    def armed(self) -> bool:
        """True while a deadline is set (callback will eventually run)."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """The live deadline, or None when disarmed."""
        return self._deadline

    def arm(self, delay: float) -> None:
        """(Re-)arm to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot arm a timer in the past ({delay})")
        self.arm_at(self._sim.now + delay)

    def arm_at(self, time: float) -> None:
        """(Re-)arm to fire at absolute ``time``."""
        sim = self._sim
        if time < sim.now:
            raise ValueError(
                f"cannot arm a timer at {time} before now ({sim.now})")
        self._deadline = time
        if self._wakeup is None:
            self._wakeup = sim.schedule_at(time, self._on_wakeup)

    def cancel(self) -> None:
        """Disarm; a pending wakeup (if any) pops as a no-op."""
        self._deadline = None

    def _on_wakeup(self) -> None:
        self._wakeup = None
        deadline = self._deadline
        if deadline is None:
            return
        if self._sim.now < deadline - 1e-12:
            # The deadline moved forward since this wakeup was
            # scheduled; chase it.
            self._wakeup = self._sim.schedule_at(deadline, self._on_wakeup)
            return
        self._deadline = None
        self.fn(*self.args)


def _resolve_scheduler_name(scheduler: Optional[str]) -> str:
    """The backend to use, validating the argument or env override.

    An unrecognised name must fail loudly *here*, whichever way it
    arrived: a typo'd ``REPRO_SIM_SCHEDULER`` silently falling back to
    the default would invalidate every measurement made under it.
    """
    if scheduler is not None:
        name, origin = scheduler, "Simulator(scheduler=...)"
    else:
        name, origin = (os.environ.get(SCHEDULER_ENV) or "auto",
                        f"the {SCHEDULER_ENV} environment variable")
    if name not in SCHEDULER_NAMES:
        expected = ", ".join(repr(n) for n in SCHEDULER_NAMES)
        raise ValueError(
            f"unknown scheduler {name!r} from {origin} "
            f"(expected one of {expected})")
    return name


def _make_scheduler(name: str, wheel_tick: float):
    if name == "auto":
        return AdaptiveScheduler(tick=wheel_tick)
    if name == "wheel":
        return WheelScheduler(tick=wheel_tick)
    return HeapScheduler()


class Simulator:
    """Event loop with a virtual clock (seconds).

    Parameters
    ----------
    scheduler : str, optional
        Event-store backend: ``"auto"``, ``"wheel"`` or ``"heap"``.
        Defaults to the ``REPRO_SIM_SCHEDULER`` environment variable,
        else ``"auto"``.  All backends dispatch in identical
        ``(time, seq)`` order, so the choice is purely speed: the
        wheel's cost is flat in the pending-event population (the
        scaling target of this repo's roadmap — 10k+ flow scenarios),
        at ~10% worse constants on the small shipped figure scenarios,
        where the heap is the faster pick; ``"auto"`` samples the
        observed pending population and migrates between the two, so
        neither regime pays the other's constants.  An unknown name —
        argument or environment — raises ``ValueError``.
    wheel_tick : float
        Level-0 slot width of the wheel backend in seconds (default
        1 ms); ignored by the heap backend.
    trace : callable, optional
        Debug hook called as ``trace(time, fn, args)`` before each
        dispatched event — the instrumentation used by the
        wheel-vs-heap equivalence tests.  Slows the loop; leave None in
        production runs.
    compiled : bool, optional
        ``None`` (default): use the compiled engine core
        (``repro.sim._kernels.EngineCore``) when the extension is
        importable and ``REPRO_SIM_COMPILED`` is not ``"0"``; fall back
        to the pure-python loop otherwise.  ``True``: require the
        extension (``RuntimeError`` when absent).  ``False``: force the
        pure-python loop.  Both loops dispatch identical ``(time,
        seq)`` traces — the compiled core is purely a speed-up,
        enforced by the scenario-A trace-identity suite.
    """

    def __init__(self, scheduler: Optional[str] = None, *,
                 wheel_tick: float = 1e-3,
                 trace: Optional[Callable] = None,
                 compiled: Optional[bool] = None) -> None:
        name = _resolve_scheduler_name(scheduler)
        self.scheduler_name = name
        self._trace = trace
        self._core = None
        if compiled is None:
            use_compiled = (_compiled is not None
                            and os.environ.get(COMPILED_ENV) != "0")
        elif compiled:
            if _compiled is None:
                raise RuntimeError(
                    "Simulator(compiled=True) requires the "
                    "repro.sim._kernels extension; build it with "
                    "`python setup.py build_ext --inplace` or pass "
                    "compiled=None to fall back automatically")
            use_compiled = True
        else:
            use_compiled = False
        if use_compiled:
            promote, demote = calibrated_thresholds(compiled=True)
            core = _compiled.EngineCore(
                name, tick=wheel_tick, promote=promote, demote=demote,
                period=AUTO_SAMPLE_PERIOD, trace=trace)
            self._core = core
            # The core *is* the scheduler (it stores entries as C
            # structs); exposing it as _sched keeps the introspection
            # surface (len, .migrations) identical to the pure engine.
            self._sched = core
            # Rebind the hot API to the core's C methods: attribute
            # lookup finds the instance binding first, so callers pay
            # zero wrapper overhead per event.
            self.schedule = core.schedule
            self.schedule_at = core.schedule_at
            self.run = core.run
            self.run_until_empty = core.run_until_empty
            return
        self._sched = _make_scheduler(name, wheel_tick)
        self._free: List[Event] = []
        self._now = 0.0
        self._counter = 0
        self._processed = 0

    @property
    def compiled(self) -> bool:
        """True when the compiled engine core is driving this run."""
        return self._core is not None

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        core = self._core
        if core is not None:
            return core.now
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of events executed so far (performance metric)."""
        core = self._core
        if core is not None:
            return core.events_processed
        return self._processed

    @property
    def pending_events(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._sched)

    @property
    def active_backend(self) -> str:
        """The event store in use right now, ``"heap"`` or ``"wheel"``.

        Equal to ``scheduler_name`` for the fixed backends; under
        ``"auto"`` it reports whichever side of the crossover the
        adaptive scheduler currently sits on.
        """
        core = self._core
        if core is not None:
            return core.backend_name
        sched = self._sched
        if isinstance(sched, AdaptiveScheduler):
            return sched.backend_name
        return self.scheduler_name

    @property
    def migrations(self) -> int:
        """Backend switches performed so far (always 0 when fixed)."""
        core = self._core
        if core is not None:
            return core.migrations
        sched = self._sched
        if isinstance(sched, AdaptiveScheduler):
            return sched.migrations
        return 0

    def schedule(self, delay: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` after ``delay`` seconds; returns the event."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        # Inlined schedule_at: this is the hottest API in the simulator,
        # and a second Python call per event costs a measurable slice of
        # the event loop.
        time = self._now + delay
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args)
        self._counter += 1
        self._sched.push((time, self._counter, fn, args, event))
        return event

    def schedule_at(self, time: float, fn: Callable, *args: Any) -> Event:
        """Run ``fn(*args)`` at absolute ``time``; returns the event."""
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        free = self._free
        if free:
            event = free.pop()
            event.time = time
            event.fn = fn
            event.args = args
            event.cancelled = False
        else:
            event = Event(time, fn, args)
        self._counter += 1
        self._sched.push((time, self._counter, fn, args, event))
        return event

    def timer(self, fn: Callable, *args: Any) -> Timer:
        """A disarmed :class:`Timer` that will run ``fn(*args)``."""
        return Timer(self, fn, args)

    def run(self, until: float) -> None:
        """Process events in order until the clock reaches ``until``.

        Under the adaptive backend the loop is *chunked*: the pending
        population is sampled (and the backend possibly migrated)
        between chunks of ``AdaptiveScheduler.period`` events, and
        inside a chunk events pop straight off the active inner
        backend — the adaptive machinery costs nothing on the
        per-event fast path.
        """
        sched = self._sched
        if isinstance(sched, AdaptiveScheduler):
            self._run_adaptive(sched, until)
            return
        pop = sched.pop_due
        free = self._free
        trace = self._trace
        while True:
            entry = pop(until)
            if entry is None:
                break
            event = entry[4]
            if event.cancelled:
                event.fn = None
                event.args = ()
                free.append(event)
                continue
            self._now = entry[0]
            self._processed += 1
            if trace is not None:
                trace(entry[0], entry[2], entry[3])
            entry[2](*entry[3])
            event.fn = None
            event.args = ()
            free.append(event)
        self._now = until

    def _run_adaptive(self, sched: AdaptiveScheduler, until: float) -> None:
        """The chunked variant of :meth:`run` for the auto backend.

        A separate loop rather than a flag in :meth:`run`: the fixed-
        backend loop keeps no counter at all, and here the chunk is a
        ``repeat(None, period)`` iteration — the cheapest loop CPython
        has (~8 ns/event over a bare loop, vs ~40 ns for an integer
        countdown) — so steady state runs at the active backend's
        native speed.
        """
        free = self._free
        trace = self._trace
        period = sched.period
        while True:
            sched.sample()
            pop = sched.inner.pop_due
            for _ in repeat(None, period):
                entry = pop(until)
                if entry is None:
                    self._now = until
                    return
                event = entry[4]
                if event.cancelled:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                    continue
                self._now = entry[0]
                self._processed += 1
                if trace is not None:
                    trace(entry[0], entry[2], entry[3])
                entry[2](*entry[3])
                event.fn = None
                event.args = ()
                free.append(event)

    def run_until_empty(self, max_events: int = 10_000_000) -> None:
        """Process every queued event (bounded by ``max_events``)."""
        sched = self._sched
        if isinstance(sched, AdaptiveScheduler):
            if self._run_until_empty_adaptive(sched, max_events):
                return
        else:
            pop = sched.pop_next
            free = self._free
            trace = self._trace
            budget = max_events
            while budget > 0:
                entry = pop()
                if entry is None:
                    return
                event = entry[4]
                if event.cancelled:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                    continue
                self._now = entry[0]
                self._processed += 1
                budget -= 1
                if trace is not None:
                    trace(entry[0], entry[2], entry[3])
                entry[2](*entry[3])
                event.fn = None
                event.args = ()
                free.append(event)
        if len(self._sched):
            raise RuntimeError(
                f"run_until_empty exceeded {max_events} events")

    def _run_until_empty_adaptive(self, sched: AdaptiveScheduler,
                                  max_events: int) -> bool:
        """Chunked :meth:`run_until_empty`; True when fully drained."""
        free = self._free
        trace = self._trace
        budget = max_events
        while budget > 0:
            sched.sample()
            pop = sched.inner.pop_next
            before = self._processed
            for _ in repeat(None, min(sched.period, budget)):
                entry = pop()
                if entry is None:
                    return True
                event = entry[4]
                if event.cancelled:
                    event.fn = None
                    event.args = ()
                    free.append(event)
                    continue
                self._now = entry[0]
                self._processed += 1
                if trace is not None:
                    trace(entry[0], entry[2], entry[3])
                entry[2](*entry[3])
                event.fn = None
                event.args = ()
                free.append(event)
            budget -= self._processed - before
        return len(self._sched) == 0
