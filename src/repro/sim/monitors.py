"""Measurement helpers: goodput meters and window/alpha tracers.

``FlowMeter`` snapshots acknowledged-packet counters so experiments can
exclude warmup.  ``WindowTracer`` samples congestion windows (and OLIA's
alpha values) at a fixed period, producing the time series of the
paper's Figures 7 and 8.
"""

from __future__ import annotations

from typing import Dict, List

from .engine import Simulator


class FlowMeter:
    """Goodput measurement over a time window for a set of flows.

    Flows must expose an ``acked_packets`` attribute (both
    :class:`~repro.sim.tcp.TcpSubflow` and
    :class:`~repro.sim.mptcp.MptcpConnection` do).
    """

    def __init__(self, sim: Simulator, flows: Dict[str, object]) -> None:
        self.sim = sim
        self.flows = dict(flows)
        self._baseline: Dict[str, int] = {name: 0 for name in self.flows}
        self._since = 0.0

    def reset(self) -> None:
        """Start a fresh measurement window (end of warmup)."""
        self._since = self.sim.now
        for name, flow in self.flows.items():
            self._baseline[name] = flow.acked_packets

    def goodput_pps(self) -> Dict[str, float]:
        """Per-flow goodput in packets/s since the last reset."""
        elapsed = self.sim.now - self._since
        if elapsed <= 0:
            return {name: 0.0 for name in self.flows}
        return {
            name: (flow.acked_packets - self._baseline[name]) / elapsed
            for name, flow in self.flows.items()
        }

    def total_pps(self) -> float:
        """Aggregate goodput in packets/s since the last reset."""
        return sum(self.goodput_pps().values())


class WindowTracer:
    """Periodic sampler of subflow windows and OLIA alphas."""

    def __init__(self, sim: Simulator, connection, period: float = 0.1)\
            -> None:
        if period <= 0:
            raise ValueError("sampling period must be positive")
        self.sim = sim
        self.connection = connection
        self.period = period
        self.times: List[float] = []
        self.windows: List[List[float]] = []
        self.alphas: List[List[float]] = []
        self._running = False
        # Sampling clock: one rearmable timer for the whole trace.
        self._sample_timer = sim.timer(self._sample)

    def start(self) -> None:
        self._running = True
        self._sample_timer.arm(0.0)

    def stop(self) -> None:
        self._running = False
        self._sample_timer.cancel()

    def _sample(self) -> None:
        if not self._running:
            return
        self.times.append(self.sim.now)
        self.windows.append(list(self.connection.windows()))
        self.alphas.append(list(self.connection.alphas()))
        self._sample_timer.arm(self.period)

    def mean_windows(self, skip_fraction: float = 0.25) -> List[float]:
        """Time-averaged windows, skipping the first ``skip_fraction``."""
        if not self.windows:
            return []
        start = int(len(self.windows) * skip_fraction)
        rows = self.windows[start:]
        n_subflows = len(rows[0])
        return [sum(row[i] for row in rows) / len(rows)
                for i in range(n_subflows)]
