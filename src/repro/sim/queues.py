"""Queueing disciplines: drop-tail and RED (the testbed's configuration).

The paper's testbed routers use RED with ``min_th = 25``, ``max_th = 50``,
``p_max = 0.1`` and a *gentle* region where the drop probability rises
linearly from ``p_max`` at ``max_th`` to 1 at ``2 max_th``, with a hard
queue limit of 300 packets — all per 10 Mbps of link capacity, scaled
proportionally for other capacities.  The htsim experiments of Section
VI-B use plain drop-tail queues; both are provided.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Optional

from .packet import Packet


class DropTailQueue:
    """FIFO queue with a hard limit in packets."""

    def __init__(self, limit: int = 100) -> None:
        if limit < 1:
            raise ValueError("queue limit must be at least 1 packet")
        self.limit = limit
        self._items: Deque[Packet] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def try_enqueue(self, packet: Packet) -> bool:
        """Accept or drop ``packet``; True when accepted."""
        if len(self._items) >= self.limit:
            return False
        self._items.append(packet)
        return True

    def dequeue(self) -> Optional[Packet]:
        """Next packet to transmit, or None when empty."""
        if self._items:
            return self._items.popleft()
        return None


class REDQueue(DropTailQueue):
    """Random Early Detection with a gentle region (paper parameters).

    The drop probability is computed from an exponentially averaged queue
    occupancy (weight 1.0 = instantaneous, as the paper's description
    uses plain queue size):

    * below ``min_th``: never drop;
    * ``min_th``..``max_th``: linear 0 -> ``p_max``;
    * ``max_th``..``2 max_th``: linear ``p_max`` -> 1 (gentle mode);
    * above ``2 max_th`` or at the hard ``limit``: always drop.
    """

    def __init__(self, rng: random.Random, min_th: float = 25.0,
                 max_th: float = 50.0, p_max: float = 0.1,
                 limit: int = 300, ewma_weight: float = 1.0) -> None:
        super().__init__(limit=limit)
        if not 0 < min_th < max_th:
            raise ValueError("need 0 < min_th < max_th")
        if not 0 < p_max <= 1:
            raise ValueError("need 0 < p_max <= 1")
        if not 0 < ewma_weight <= 1:
            raise ValueError("need 0 < ewma_weight <= 1")
        self.rng = rng
        self.min_th = min_th
        self.max_th = max_th
        self.p_max = p_max
        self.ewma_weight = ewma_weight
        self.avg = 0.0

    @classmethod
    def for_capacity_mbps(cls, rng: random.Random, capacity_mbps: float,
                          ewma_weight: float = 1.0) -> "REDQueue":
        """RED queue with the paper's thresholds scaled to the capacity.

        The paper configures min_th=25/max_th=50/limit=300 for 10 Mbps
        and scales proportionally; thresholds are floored so very slow
        links still mark sensibly.
        """
        scale = max(capacity_mbps / 10.0, 0.1)
        return cls(rng,
                   min_th=max(25.0 * scale, 5.0),
                   max_th=max(50.0 * scale, 10.0),
                   limit=max(int(300 * scale), 30),
                   ewma_weight=ewma_weight)

    def drop_probability(self) -> float:
        """Current RED drop probability given the averaged occupancy."""
        avg = self.avg
        if avg < self.min_th:
            return 0.0
        if avg < self.max_th:
            frac = (avg - self.min_th) / (self.max_th - self.min_th)
            return self.p_max * frac
        gentle_top = 2.0 * self.max_th
        if avg < gentle_top:
            frac = (avg - self.max_th) / (gentle_top - self.max_th)
            return self.p_max + (1.0 - self.p_max) * frac
        return 1.0

    def try_enqueue(self, packet: Packet) -> bool:
        occupancy = len(self._items)
        self.avg += self.ewma_weight * (occupancy - self.avg)
        if occupancy >= self.limit:
            return False
        if self.drop_probability() > self.rng.random():
            return False
        self._items.append(packet)
        return True
