"""Scalable TCP (Tom Kelly, 2003) — reference [28] of the paper.

Remark 3 of the paper notes that fully avoiding problems P1/P2 under
heterogeneous RTTs requires departing from TCP compatibility with
mechanisms "less sensitive to round trip times, such as CUBIC or STCP";
OLIA's first term is itself a TCP-compatible adaptation of Kelly and
Voice's *scalable-TCP-based* algorithm.  This controller implements the
classic single-path Scalable TCP for comparison experiments:

* per-ACK increase: ``w += a`` with ``a = 0.01`` (rate doubles every
  ~70 RTTs regardless of window size);
* on loss: ``w <- (1 - b) * w`` with ``b = 0.125``.
"""

from __future__ import annotations

from .base import MultipathController


class ScalableTcpController(MultipathController):
    """STCP on each subflow independently (multiplicative-increase)."""

    name = "stcp"

    def __init__(self, a: float = 0.01, b: float = 0.125) -> None:
        super().__init__()
        if not 0 < a:
            raise ValueError("increase parameter a must be positive")
        if not 0 < b < 1:
            raise ValueError("decrease parameter b must be in (0, 1)")
        self.a = a
        self.b = b

    def increase_increment(self, key: int) -> float:
        return self.a

    def decrease_on_loss(self, key: int) -> float:
        state = self._subflows[key]
        state.record_loss()
        state.cwnd = max(state.cwnd * (1.0 - self.b), self.min_cwnd)
        return state.cwnd
