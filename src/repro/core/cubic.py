"""CUBIC (Ha, Rhee, Xu 2008) — reference [27] of the paper.

The other RTT-insensitive alternative named in Remark 3.  The window
grows as a cubic function of the *time since the last loss*::

    W(t) = C_scale * (t - K)**3 + W_max,   K = (W_max * beta / C_scale)^(1/3)

where ``W_max`` is the window at the last loss and ``beta`` the
multiplicative decrease (0.3 -> the window drops to 0.7 W_max).  Because
growth depends on wall-clock time, the controller needs a clock callable
(the packet simulator passes its virtual clock; tests pass a fake).

This is the real-time variant without the TCP-friendliness fallback
region — sufficient for the RTT-sensitivity comparisons this library
uses it for.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import MultipathController


class CubicController(MultipathController):
    """CUBIC on each subflow independently, driven by a clock callable."""

    name = "cubic"

    #: Standard CUBIC scaling constant (packets/s^3).
    C_SCALE = 0.4
    #: Multiplicative decrease: window drops to (1 - BETA) * W_max.
    BETA = 0.3

    def __init__(self, clock: Callable[[], float]) -> None:
        super().__init__()
        self.clock = clock
        self._w_max: Dict[int, float] = {}
        self._epoch: Dict[int, float] = {}

    def register_subflow(self, key, state):
        super().register_subflow(key, state)
        self._w_max[key] = state.cwnd
        self._epoch[key] = self.clock()

    def remove_subflow(self, key):
        super().remove_subflow(key)
        del self._w_max[key]
        del self._epoch[key]

    def _k(self, key: int) -> float:
        """Time offset at which W(t) crosses W_max again."""
        return (self._w_max[key] * self.BETA / self.C_SCALE) ** (1.0 / 3.0)

    def target_window(self, key: int) -> float:
        """The cubic target W(t) for subflow ``key`` at the current time."""
        elapsed = self.clock() - self._epoch[key]
        offset = elapsed - self._k(key)
        return self.C_SCALE * offset ** 3 + self._w_max[key]

    def increase_increment(self, key: int) -> float:
        """Move 1/w of the distance to the cubic target per ACK.

        Over one RTT (w ACKs) the window covers the full gap to the
        target, matching CUBIC's ``(target - cwnd) / cwnd`` per-ACK rule.
        """
        state = self._subflows[key]
        target = self.target_window(key)
        if target <= state.cwnd:
            # Concave plateau: creep towards W_max slowly.
            return 0.01 / state.cwnd
        return (target - state.cwnd) / state.cwnd

    def decrease_on_loss(self, key: int) -> float:
        state = self._subflows[key]
        state.record_loss()
        self._w_max[key] = state.cwnd
        self._epoch[key] = self.clock()
        state.cwnd = max(state.cwnd * (1.0 - self.BETA), self.min_cwnd)
        return state.cwnd
