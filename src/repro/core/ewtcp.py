"""EWTCP — equally-weighted TCP, a semi-coupled baseline.

Each subflow runs a weighted AIMD: per-ACK increase ``a / w_r`` with
``a = 1 / n^2`` for ``n`` subflows, halving on loss.  At equilibrium a
subflow achieves ``sqrt(a)`` times the rate of a regular TCP on its path,
so the aggregate over ``n`` subflows sharing one bottleneck equals one TCP
— fair at shared bottlenecks, but with no congestion balancing at all
(traffic does not move away from congested paths).

This is the "multipath congestion control for shared bottleneck" design of
Honda et al. (reference [20] of the paper), included as a baseline for the
ablation benches.
"""

from __future__ import annotations

from .base import MultipathController


class EwtcpController(MultipathController):
    """Weighted per-subflow AIMD; weight defaults to ``1/n^2``."""

    name = "ewtcp"

    def __init__(self, weight: float | None = None) -> None:
        super().__init__()
        if weight is not None and weight <= 0:
            raise ValueError("weight must be positive")
        self._weight = weight

    @property
    def weight(self) -> float:
        """Increase weight ``a`` (``1/n^2`` unless set explicitly)."""
        if self._weight is not None:
            return self._weight
        n_paths = max(len(self._subflows), 1)
        return 1.0 / (n_paths * n_paths)

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        return self.weight / state.cwnd
