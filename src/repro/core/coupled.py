"""Fully coupled controller: OLIA's Kelly-Voice term without the alpha term.

This is the TCP-compatible adaptation of the fully coupled algorithms of
Kelly & Voice / Han et al. (references [4]-[6] of the paper, the
``epsilon = 0`` end of the design spectrum).  It is Pareto-optimal at
equilibrium but *flappy*: with several equally good paths the traffic
randomly flips between them, and free capacity is probed slowly because
windows on lossy paths collapse towards the minimum.

The paper's OLIA is exactly this increase plus the opportunistic ``alpha``
term; keeping this controller around gives a direct ablation of that design
choice (see ``repro.experiments.ablation``).
"""

from __future__ import annotations

from .base import MultipathController


class CoupledController(MultipathController):
    """Per-ACK increase ``(w_r/rtt_r^2) / (sum_p w_p/rtt_p)^2`` only."""

    name = "coupled"

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        denom = self._sum_w_over_rtt()
        return (state.cwnd / (state.rtt * state.rtt)) / (denom * denom)
