"""The cross-layer algorithm registry: one spec per algorithm.

The paper's whole argument is a comparison *across algorithms* carried
out in three analytical layers — packet-level simulation
(:class:`~repro.core.base.MultipathController`), fluid dynamics
(:class:`~repro.fluid.dynamics.FluidAlgorithm`) and equilibrium fixed
points (allocation rules in :mod:`repro.fluid.equilibrium`).  Peng,
Walid, Hwang & Low ("Multipath TCP: Analysis, Design and
Implementation") show why those should be *one* abstraction: a whole
design space of MP-TCP algorithms is parametrized by a small
per-algorithm spec from which both the fluid model and the packet
behaviour follow.

:class:`AlgorithmSpec` is that spec: a name (plus aliases), one factory
per layer the algorithm supports (``None`` = the layer is not
implemented — the *capability flags*), and the declared per-algorithm
parameters (:class:`ParamSpec`) that flow through every layer from one
place (e.g. OLIA's ``tie_tolerance``, the epsilon family's
``epsilon``).  Every name→algorithm resolution in the repo goes through
this module:

* ``make_controller(name, **params)`` — packet layer (the DES).
* ``make_fluid_algorithm(name, **params)`` — fluid ODE layer.
* ``make_allocation_rule(name, **params)`` — equilibrium layer.
* ``make_smt_model(name, **params)`` — SMT verification layer (a
  :class:`~repro.verify.base.ConstraintModel` of the fixed-point
  conditions; optional, needs the ``z3-solver`` extra at *solve* time
  but not to build or list the capability).

The legacy per-layer factories (``repro.fluid.dynamics.
make_fluid_algorithm``, ``repro.fluid.equilibrium.allocation_rule``)
are thin deprecating wrappers over these; a CI gate
(``benchmarks/check_registry_gate.py``) keeps them from growing new
call sites outside ``core/``.

Adding an algorithm is a one-file change: write the controller /
derivative / allocation next to each other, bundle them in an
``AlgorithmSpec``, and register it — see :mod:`repro.core.balia` for
the worked example (BALIA, registered once, runnable in all three
layers, every sweep, the scenario generator and the scale harness).

Builtin specs are bound lazily on first lookup: the registry lives in
``core`` but binds factories defined in the fluid layer, whose legacy
wrappers call back into this module — deferring the binding breaks
that cycle and makes registration independent of which package is
imported first.  (``import repro.core`` itself still reaches the fluid
layer, through the :mod:`~repro.core.balia` re-export.)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .base import MultipathController

#: The four analytical layers an algorithm may implement: packet-level
#: simulation, fluid ODE dynamics, equilibrium allocation rules, and
#: SMT constraint models (machine-checked fixed-point claims).
LAYERS = ("packet", "fluid", "equilibrium", "smt")


@dataclass(frozen=True)
class ParamSpec:
    """One declared per-algorithm parameter.

    Parameters flow through the registry into every layer's factory
    from this single declaration instead of three ad-hoc kwargs paths.
    ``layers`` restricts a parameter to the layers whose factory
    accepts it (e.g. OLIA's equilibrium ``floor`` has no packet
    meaning); ``required`` makes the registry reject a construction
    that omits it (e.g. the epsilon family's ``epsilon``).
    """

    name: str
    description: str = ""
    required: bool = False
    layers: Tuple[str, ...] = LAYERS


@dataclass(frozen=True)
class AlgorithmSpec:
    """One congestion-control algorithm across all analytical layers.

    Attributes
    ----------
    name:
        Canonical lower-case name (the registry key).
    aliases:
        Extra names resolving to this spec (e.g. ``tcp``/``reno``/
        ``uncoupled`` are one algorithm).
    description:
        One-line human description (shown by ``python -m repro
        algorithms``).
    controller_factory:
        ``(**params) -> MultipathController`` for the packet DES, or
        ``None`` when the algorithm has no packet implementation.
    fluid_factory:
        ``(**params) -> FluidAlgorithm`` (the ODE right-hand side), or
        ``None``.
    allocation_factory:
        ``(**params) -> AllocationRule`` (a ``rule(p, rtt) -> rates``
        callable), or ``None``.
    smt_factory:
        ``(**params) -> ConstraintModel`` (the algorithm's fixed-point
        conditions as z3 constraints, see :mod:`repro.verify`), or
        ``None``.  Building the model never imports z3 — the solver is
        only required when constraints are actually constructed, so
        the capability is listable without the optional extra.
    params:
        Declared :class:`ParamSpec` entries; constructions with
        undeclared keyword arguments fail loudly.
    congestion_measure:
        What the packet controller reacts to: ``"loss"`` (the default;
        losses drive the window, so the analytic layers' loss prices
        are the *same* signal the DES measures) or ``"delay"``
        (queueing delay drives the window, as in wVegas; the fluid and
        equilibrium layers still price congestion generically, so
        DES-vs-analytic comparisons are not meaningful and consistency
        tests skip them).
    """

    name: str
    aliases: Tuple[str, ...] = ()
    description: str = ""
    controller_factory: Optional[Callable[..., MultipathController]] = None
    fluid_factory: Optional[Callable[..., object]] = None
    allocation_factory: Optional[Callable[..., object]] = None
    smt_factory: Optional[Callable[..., object]] = None
    params: Tuple[ParamSpec, ...] = field(default=())
    congestion_measure: str = "loss"

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError(
                f"spec name must be a non-empty lower-case string, "
                f"got {self.name!r}")
        if any(alias != alias.lower() for alias in self.aliases):
            raise ValueError(f"aliases must be lower-case: {self.aliases}")
        if self.congestion_measure not in ("loss", "delay"):
            raise ValueError(
                f"congestion_measure must be 'loss' or 'delay', "
                f"got {self.congestion_measure!r}")

    # -- capability flags ----------------------------------------------------
    @property
    def has_packet(self) -> bool:
        return self.controller_factory is not None

    @property
    def has_fluid(self) -> bool:
        return self.fluid_factory is not None

    @property
    def has_equilibrium(self) -> bool:
        return self.allocation_factory is not None

    @property
    def has_smt(self) -> bool:
        return self.smt_factory is not None

    def supports(self, layer: str) -> bool:
        """True when this spec implements ``layer``."""
        return self._factory(layer) is not None

    @property
    def layers(self) -> Tuple[str, ...]:
        """The layers this algorithm implements, in canonical order."""
        return tuple(layer for layer in LAYERS if self.supports(layer))

    @property
    def names(self) -> Tuple[str, ...]:
        """Canonical name followed by every alias."""
        return (self.name, *self.aliases)

    def _factory(self, layer: str) -> Optional[Callable]:
        if layer == "packet":
            return self.controller_factory
        if layer == "fluid":
            return self.fluid_factory
        if layer == "equilibrium":
            return self.allocation_factory
        if layer == "smt":
            return self.smt_factory
        raise ValueError(
            f"unknown layer {layer!r}; expected one of {', '.join(LAYERS)}")

    def required_params(self, layer: str) -> Tuple[str, ...]:
        """Names of the parameters ``layer`` cannot be built without."""
        return tuple(p.name for p in self.params
                     if p.required and layer in p.layers)

    # -- construction --------------------------------------------------------
    def _check_params(self, layer: str, params: Dict[str, object]) -> None:
        accepted = {p.name for p in self.params if layer in p.layers}
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise TypeError(
                f"algorithm {self.name!r} does not accept "
                f"parameter(s) {', '.join(unknown)} for the {layer} "
                f"layer; accepted: {', '.join(sorted(accepted)) or 'none'}")
        missing = sorted(set(self.required_params(layer)) - set(params))
        if missing:
            raise TypeError(
                f"algorithm {self.name!r} requires parameter(s) "
                f"{', '.join(missing)} for the {layer} layer")

    def _make(self, layer: str, params: Dict[str, object]):
        factory = self._factory(layer)
        if factory is None:
            raise KeyError(
                f"algorithm {self.name!r} has no {layer} layer "
                f"(supports: {', '.join(self.layers) or 'nothing'})")
        self._check_params(layer, params)
        return factory(**params)

    def make_controller(self, **params) -> MultipathController:
        """A fresh packet-level controller (validated ``params``)."""
        return self._make("packet", params)

    def make_fluid(self, **params):
        """A fresh fluid-ODE algorithm (validated ``params``)."""
        return self._make("fluid", params)

    def make_allocation(self, **params):
        """An equilibrium allocation rule (validated ``params``)."""
        return self._make("equilibrium", params)

    def make_smt(self, **params):
        """A fresh SMT constraint model (validated ``params``)."""
        return self._make("smt", params)


# -- the registry ----------------------------------------------------------------

_SPECS: Dict[str, AlgorithmSpec] = {}       # canonical name -> spec
_NAMES: Dict[str, str] = {}                 # any name/alias -> canonical
_BUILTINS_LOADED = False


def _ensure_builtins() -> None:
    """Bind the builtin specs on first use (lazy cross-layer imports)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    for spec in _builtin_specs():
        register_algorithm(spec)


def _builtin_specs() -> List[AlgorithmSpec]:
    # Imported here, not at module top: the registry lives in ``core``
    # but binds factories from the fluid layer, and the fluid wrappers
    # call back into this module — a top-level import would be a
    # genuine cycle and make registration depend on import order.
    from ..fluid import dynamics as _dyn
    from ..fluid import equilibrium as _eq
    from ..verify.models import LiaModel, OliaModel, TcpModel
    from . import balia as _balia
    from . import wvegas as _wvegas
    from .coupled import CoupledController
    from .cubic import CubicController
    from .ewtcp import EwtcpController
    from .lia import LiaController
    from .olia import OliaController
    from .reno import RenoController
    from .stcp import ScalableTcpController

    def olia_rule(floor=None, tie_tolerance=1e-6):
        return lambda p, rtt: _eq.olia_allocation(
            p, rtt, floor=floor, tie_tolerance=tie_tolerance)

    def epsilon_rule(epsilon):
        return lambda p, rtt: _eq.epsilon_family_allocation(p, rtt, epsilon)

    tie_tolerance = ParamSpec(
        "tie_tolerance",
        "relative tolerance of the argmax path sets (layer defaults: "
        "packet 0, fluid 1e-3, equilibrium 1e-6)")
    return [
        AlgorithmSpec(
            name="tcp", aliases=("reno", "uncoupled"),
            description="regular TCP Reno; uncoupled on each subflow",
            controller_factory=RenoController,
            fluid_factory=_dyn.TcpFluid,
            allocation_factory=lambda: _eq.tcp_allocation,
            smt_factory=TcpModel),
        AlgorithmSpec(
            name="lia", description="MPTCP's linked increases (Eq. 1, "
            "RFC 6356)",
            controller_factory=LiaController,
            fluid_factory=_dyn.LiaFluid,
            allocation_factory=lambda: _eq.lia_allocation,
            smt_factory=LiaModel),
        AlgorithmSpec(
            name="olia", description="the paper's opportunistic linked "
            "increases (Eqs. 5-6)",
            controller_factory=OliaController,
            fluid_factory=_dyn.OliaFluid,
            allocation_factory=olia_rule,
            smt_factory=OliaModel,
            params=(tie_tolerance,
                    ParamSpec("floor", "equilibrium probing rate of "
                              "non-best routes",
                              layers=("equilibrium", "smt")))),
        AlgorithmSpec(
            name="coupled", description="fully coupled Kelly-Voice "
            "(OLIA without the alpha term)",
            controller_factory=CoupledController,
            fluid_factory=_dyn.CoupledFluid,
            allocation_factory=olia_rule,
            params=(ParamSpec("tie_tolerance", tie_tolerance.description,
                              layers=("fluid", "equilibrium")),
                    ParamSpec("floor", "equilibrium probing rate of "
                              "non-best routes", layers=("equilibrium",)))),
        AlgorithmSpec(
            name="ewtcp", description="equally-weighted TCP "
            "(weight 1/n^2 per subflow)",
            controller_factory=EwtcpController,
            fluid_factory=_dyn.EwtcpFluid,
            allocation_factory=lambda: _eq.ewtcp_allocation,
            params=(ParamSpec("weight", "per-subflow AIMD weight "
                              "(default 1/n^2)", layers=("packet",)),)),
        _balia.SPEC,
        _wvegas.SPEC,
        AlgorithmSpec(
            name="stcp", description="Scalable TCP (packet layer only)",
            controller_factory=ScalableTcpController,
            params=(ParamSpec("a", "per-ACK additive increase",
                              layers=("packet",)),
                    ParamSpec("b", "multiplicative decrease",
                              layers=("packet",)))),
        AlgorithmSpec(
            name="cubic", description="CUBIC (packet layer only; needs "
            "a clock callable)",
            controller_factory=CubicController,
            params=(ParamSpec("clock", "time callable driving the cubic "
                              "window growth (e.g. a Simulator clock)",
                              required=True, layers=("packet",)),)),
        AlgorithmSpec(
            name="epsilon", description="the epsilon-family allocation "
            "of Section II (equilibrium layer only)",
            allocation_factory=epsilon_rule,
            params=(ParamSpec("epsilon", "coupling parameter in [0, 2]",
                              required=True, layers=("equilibrium",)),)),
    ]


def register_algorithm(spec, factory=None, *,
                       override: bool = False) -> List[AlgorithmSpec]:
    """Register an :class:`AlgorithmSpec` (or a bare controller factory).

    The legacy two-argument form ``register_algorithm(name, factory)``
    wraps ``factory`` into a packet-only spec.  Without ``override`` a
    name collision (canonical or alias) raises ``ValueError``; with
    ``override=True`` the colliding spec(s) are unregistered first and
    returned, so callers (and :func:`registered`) can restore them.
    """
    _ensure_builtins()
    if not isinstance(spec, AlgorithmSpec):
        if factory is None:
            raise TypeError(
                "register_algorithm takes an AlgorithmSpec, or the "
                "legacy (name, controller_factory) pair")
        spec = AlgorithmSpec(name=str(spec).lower(),
                             controller_factory=factory,
                             description="user-registered controller")
    elif factory is not None:
        raise TypeError("cannot pass a factory alongside an AlgorithmSpec")
    colliding = sorted({_NAMES[name] for name in spec.names
                        if name in _NAMES})
    replaced: List[AlgorithmSpec] = []
    if colliding:
        if not override:
            taken = ", ".join(name for name in spec.names if name in _NAMES)
            raise ValueError(
                f"algorithm name(s) already registered: {taken} "
                "(pass override=True to replace)")
        for canonical in colliding:
            replaced.append(unregister_algorithm(canonical))
    _SPECS[spec.name] = spec
    for name in spec.names:
        _NAMES[name] = spec.name
    return replaced


def unregister_algorithm(name: str) -> AlgorithmSpec:
    """Remove a registered spec (by any of its names) and return it."""
    _ensure_builtins()
    key = name.lower()
    if key not in _NAMES:
        known = ", ".join(available_algorithms())
        raise KeyError(f"unknown algorithm {name!r}; known: {known}")
    spec = _SPECS.pop(_NAMES[key])
    for alias in spec.names:
        _NAMES.pop(alias, None)
    return spec


@contextmanager
def registered(spec, *, override: bool = False):
    """Context manager: register ``spec``, unregister it on exit.

    Anything ``override=True`` displaced is restored on exit, so tests
    and user extensions can try out throwaway algorithms without
    leaking registry state::

        with registered(AlgorithmSpec(name="mine", ...)):
            run_experiment("mine")
    """
    replaced = register_algorithm(spec, override=override)
    try:
        yield spec
    finally:
        unregister_algorithm(spec.name)
        for old in replaced:
            register_algorithm(old)


def get_spec(name: str) -> AlgorithmSpec:
    """The :class:`AlgorithmSpec` for ``name`` (case-insensitive).

    Raises ``KeyError`` with the list of known names when ``name`` is
    unknown, which makes config typos fail loudly.
    """
    _ensure_builtins()
    try:
        return _SPECS[_NAMES[name.lower()]]
    except KeyError:
        known = ", ".join(available_algorithms())
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") \
            from None


def algorithm_specs() -> List[AlgorithmSpec]:
    """Every registered spec, once each, sorted by canonical name."""
    _ensure_builtins()
    return [spec for _, spec in sorted(_SPECS.items())]


def available_algorithms(layer: str | None = None) -> list[str]:
    """All registered algorithm names (aliases included), sorted.

    ``layer`` (``"packet"``, ``"fluid"``, ``"equilibrium"`` or
    ``"smt"``) filters to the names whose algorithm implements that
    layer — the name sets the four ``make_*`` entry points accept.
    """
    _ensure_builtins()
    if layer is None:
        return sorted(_NAMES)
    return sorted(name for name, canonical in _NAMES.items()
                  if _SPECS[canonical].supports(layer))


def _spec_for_layer(name: str, layer: str) -> AlgorithmSpec:
    """Resolve ``name`` for ``layer``, failing loudly either way."""
    _ensure_builtins()
    key = name.lower()
    if key not in _NAMES:
        known = ", ".join(available_algorithms(layer))
        raise KeyError(
            f"unknown algorithm {name!r}; known ({layer}): {known}")
    spec = _SPECS[_NAMES[key]]
    if not spec.supports(layer):
        capable = ", ".join(available_algorithms(layer))
        raise KeyError(
            f"algorithm {name!r} has no {layer} layer (supports: "
            f"{', '.join(spec.layers) or 'nothing'}); "
            f"{layer}-capable: {capable}")
    return spec


def make_controller(name, **params) -> MultipathController:
    """Instantiate a packet-level controller by name (or spec).

    Raises ``KeyError`` with the list of known names when ``name`` is
    unknown or lacks a packet implementation; undeclared ``params``
    raise ``TypeError``.
    """
    if isinstance(name, AlgorithmSpec):
        return name.make_controller(**params)
    return _spec_for_layer(name, "packet").make_controller(**params)


def make_fluid_algorithm(name, **params):
    """Instantiate a fluid-ODE algorithm by name (or spec)."""
    if isinstance(name, AlgorithmSpec):
        return name.make_fluid(**params)
    return _spec_for_layer(name, "fluid").make_fluid(**params)


def make_allocation_rule(name, **params):
    """Build an equilibrium allocation rule by name (or spec)."""
    if isinstance(name, AlgorithmSpec):
        return name.make_allocation(**params)
    return _spec_for_layer(name, "equilibrium").make_allocation(**params)


def make_smt_model(name, **params):
    """Build an SMT constraint model by name (or spec).

    The model object itself is z3-free; z3 is first touched when its
    constraints are built, raising
    :class:`~repro.verify.base.Z3Unavailable` if the optional extra is
    missing — the same degrade-to-skip contract as the compiled DES
    kernels.
    """
    if isinstance(name, AlgorithmSpec):
        return name.make_smt(**params)
    return _spec_for_layer(name, "smt").make_smt(**params)
