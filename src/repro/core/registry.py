"""The cross-layer registry: two orthogonal axes of named specs.

The paper's whole argument is a comparison *across algorithms* carried
out in four analytical layers — packet-level simulation
(:class:`~repro.core.base.MultipathController`), fluid dynamics
(:class:`~repro.fluid.dynamics.FluidAlgorithm`), equilibrium fixed
points (allocation rules in :mod:`repro.fluid.equilibrium`) and SMT
verification (:mod:`repro.verify`).  Peng, Walid, Hwang & Low
("Multipath TCP: Analysis, Design and Implementation") show why those
should be *one* abstraction: a whole design space of MP-TCP algorithms
is parametrized by a small per-algorithm spec from which both the
fluid model and the packet behaviour follow.

MPTCP has a second control knob the congestion-control literature
holds fixed: the *packet scheduler*, which decides which subflow
carries the next packet of a finite transfer.  The wild-measurement
papers (Shreedhar et al., Dimopoulos et al., PAPERS.md) find it moves
outcomes as much as the CC choice, so it is a registry axis of its
own, **orthogonal** to the algorithm axis: any scheduler composes with
any packet-capable algorithm.

:class:`AlgorithmSpec` is the algorithm-axis spec: a name (plus
aliases), one factory per layer the algorithm supports (``None`` = the
layer is not implemented — the *capability flags*), and the declared
per-algorithm parameters (:class:`ParamSpec`) that flow through every
layer from one place (e.g. OLIA's ``tie_tolerance``, the epsilon
family's ``epsilon``).  :class:`SchedulerSpec` is the scheduler-axis
spec: a name, one factory, declared parameters — schedulers live in a
single (packet) layer, so no capability flags.  Every name→object
resolution in the repo goes through this module:

* ``make_controller(name, **params)`` — packet layer (the DES).
* ``make_fluid_algorithm(name, **params)`` — fluid ODE layer.
* ``make_allocation_rule(name, **params)`` — equilibrium layer.
* ``make_smt_model(name, **params)`` — SMT verification layer (a
  :class:`~repro.verify.base.ConstraintModel` of the fixed-point
  conditions; optional, needs the ``z3-solver`` extra at *solve* time
  but not to build or list the capability).
* ``make_scheduler(name, **params)`` — the scheduler axis (a
  :class:`~repro.sim.packet_scheduler.PacketScheduler` policy).

The legacy per-layer factories (``repro.fluid.dynamics.
make_fluid_algorithm``, ``repro.fluid.equilibrium.allocation_rule``)
are thin deprecating wrappers over these; a CI gate
(``benchmarks/check_registry_gate.py``) keeps them from growing new
call sites outside ``core/`` and holds scheduler dispatch to the same
rule.

Adding an algorithm is a one-file change: write the controller /
derivative / allocation next to each other, bundle them in an
``AlgorithmSpec``, and register it — see :mod:`repro.core.balia` for
the worked example (BALIA, registered once, runnable in all three
layers, every sweep, the scenario generator and the scale harness).
Adding a scheduler is smaller still: subclass
:class:`~repro.sim.packet_scheduler.PacketScheduler`, bundle it in a
:class:`SchedulerSpec`, and :func:`register_scheduler` it.

Builtin specs on both axes are bound lazily on first lookup: the
registry lives in ``core`` but binds factories defined in the fluid
and sim layers, whose legacy wrappers call back into this module —
deferring the binding breaks that cycle and makes registration
independent of which package is imported first.  (``import
repro.core`` itself still reaches the fluid layer, through the
:mod:`~repro.core.balia` re-export.)
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from .base import MultipathController

#: The four analytical layers an algorithm may implement: packet-level
#: simulation, fluid ODE dynamics, equilibrium allocation rules, and
#: SMT constraint models (machine-checked fixed-point claims).
LAYERS = ("packet", "fluid", "equilibrium", "smt")


@dataclass(frozen=True)
class ParamSpec:
    """One declared per-algorithm parameter.

    Parameters flow through the registry into every layer's factory
    from this single declaration instead of three ad-hoc kwargs paths.
    ``layers`` restricts a parameter to the layers whose factory
    accepts it (e.g. OLIA's equilibrium ``floor`` has no packet
    meaning); ``required`` makes the registry reject a construction
    that omits it (e.g. the epsilon family's ``epsilon``).
    """

    name: str
    description: str = ""
    required: bool = False
    layers: Tuple[str, ...] = LAYERS


@dataclass(frozen=True)
class AlgorithmSpec:
    """One congestion-control algorithm across all analytical layers.

    Attributes
    ----------
    name:
        Canonical lower-case name (the registry key).
    aliases:
        Extra names resolving to this spec (e.g. ``tcp``/``reno``/
        ``uncoupled`` are one algorithm).
    description:
        One-line human description (shown by ``python -m repro
        algorithms``).
    controller_factory:
        ``(**params) -> MultipathController`` for the packet DES, or
        ``None`` when the algorithm has no packet implementation.
    fluid_factory:
        ``(**params) -> FluidAlgorithm`` (the ODE right-hand side), or
        ``None``.
    allocation_factory:
        ``(**params) -> AllocationRule`` (a ``rule(p, rtt) -> rates``
        callable), or ``None``.
    smt_factory:
        ``(**params) -> ConstraintModel`` (the algorithm's fixed-point
        conditions as z3 constraints, see :mod:`repro.verify`), or
        ``None``.  Building the model never imports z3 — the solver is
        only required when constraints are actually constructed, so
        the capability is listable without the optional extra.
    params:
        Declared :class:`ParamSpec` entries; constructions with
        undeclared keyword arguments fail loudly.
    congestion_measure:
        What the packet controller reacts to: ``"loss"`` (the default;
        losses drive the window, so the analytic layers' loss prices
        are the *same* signal the DES measures) or ``"delay"``
        (queueing delay drives the window, as in wVegas; the fluid and
        equilibrium layers still price congestion generically, so
        DES-vs-analytic comparisons are not meaningful and consistency
        tests skip them).
    """

    name: str
    aliases: Tuple[str, ...] = ()
    description: str = ""
    controller_factory: Optional[Callable[..., MultipathController]] = None
    fluid_factory: Optional[Callable[..., object]] = None
    allocation_factory: Optional[Callable[..., object]] = None
    smt_factory: Optional[Callable[..., object]] = None
    params: Tuple[ParamSpec, ...] = field(default=())
    congestion_measure: str = "loss"

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError(
                f"spec name must be a non-empty lower-case string, "
                f"got {self.name!r}")
        if any(alias != alias.lower() for alias in self.aliases):
            raise ValueError(f"aliases must be lower-case: {self.aliases}")
        if self.congestion_measure not in ("loss", "delay"):
            raise ValueError(
                f"congestion_measure must be 'loss' or 'delay', "
                f"got {self.congestion_measure!r}")

    # -- capability flags ----------------------------------------------------
    @property
    def has_packet(self) -> bool:
        return self.controller_factory is not None

    @property
    def has_fluid(self) -> bool:
        return self.fluid_factory is not None

    @property
    def has_equilibrium(self) -> bool:
        return self.allocation_factory is not None

    @property
    def has_smt(self) -> bool:
        return self.smt_factory is not None

    def supports(self, layer: str) -> bool:
        """True when this spec implements ``layer``."""
        return self._factory(layer) is not None

    @property
    def layers(self) -> Tuple[str, ...]:
        """The layers this algorithm implements, in canonical order."""
        return tuple(layer for layer in LAYERS if self.supports(layer))

    @property
    def names(self) -> Tuple[str, ...]:
        """Canonical name followed by every alias."""
        return (self.name, *self.aliases)

    def _factory(self, layer: str) -> Optional[Callable]:
        if layer == "packet":
            return self.controller_factory
        if layer == "fluid":
            return self.fluid_factory
        if layer == "equilibrium":
            return self.allocation_factory
        if layer == "smt":
            return self.smt_factory
        raise ValueError(
            f"unknown layer {layer!r}; expected one of {', '.join(LAYERS)}")

    def required_params(self, layer: str) -> Tuple[str, ...]:
        """Names of the parameters ``layer`` cannot be built without."""
        return tuple(p.name for p in self.params
                     if p.required and layer in p.layers)

    # -- construction --------------------------------------------------------
    def _check_params(self, layer: str, params: Dict[str, object]) -> None:
        accepted = {p.name for p in self.params if layer in p.layers}
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise TypeError(
                f"algorithm {self.name!r} does not accept "
                f"parameter(s) {', '.join(unknown)} for the {layer} "
                f"layer; accepted: {', '.join(sorted(accepted)) or 'none'}")
        missing = sorted(set(self.required_params(layer)) - set(params))
        if missing:
            raise TypeError(
                f"algorithm {self.name!r} requires parameter(s) "
                f"{', '.join(missing)} for the {layer} layer")

    def _make(self, layer: str, params: Dict[str, object]):
        factory = self._factory(layer)
        if factory is None:
            raise KeyError(
                f"algorithm {self.name!r} has no {layer} layer "
                f"(supports: {', '.join(self.layers) or 'nothing'})")
        self._check_params(layer, params)
        return factory(**params)

    def make_controller(self, **params) -> MultipathController:
        """A fresh packet-level controller (validated ``params``)."""
        return self._make("packet", params)

    def make_fluid(self, **params):
        """A fresh fluid-ODE algorithm (validated ``params``)."""
        return self._make("fluid", params)

    def make_allocation(self, **params):
        """An equilibrium allocation rule (validated ``params``)."""
        return self._make("equilibrium", params)

    def make_smt(self, **params):
        """A fresh SMT constraint model (validated ``params``)."""
        return self._make("smt", params)


# -- scheduler-axis specs --------------------------------------------------------


@dataclass(frozen=True)
class SchedulerSpec:
    """One packet scheduler on the registry's scheduler axis.

    Schedulers live in a single layer (the packet DES), so the spec is
    the algorithm spec minus the capability flags: a canonical name
    (plus aliases), one factory producing a fresh
    :class:`~repro.sim.packet_scheduler.PacketScheduler` per
    connection, and declared :class:`ParamSpec` parameters (their
    ``layers`` field is ignored on this axis).
    """

    name: str
    aliases: Tuple[str, ...] = ()
    description: str = ""
    factory: Optional[Callable[..., object]] = None
    params: Tuple[ParamSpec, ...] = field(default=())

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError(
                f"spec name must be a non-empty lower-case string, "
                f"got {self.name!r}")
        if any(alias != alias.lower() for alias in self.aliases):
            raise ValueError(f"aliases must be lower-case: {self.aliases}")
        if self.factory is None:
            raise ValueError(
                f"scheduler spec {self.name!r} needs a factory")

    @property
    def names(self) -> Tuple[str, ...]:
        """Canonical name followed by every alias."""
        return (self.name, *self.aliases)

    def make(self, **params):
        """A fresh scheduler policy instance (validated ``params``)."""
        accepted = {p.name for p in self.params}
        unknown = sorted(set(params) - accepted)
        if unknown:
            raise TypeError(
                f"scheduler {self.name!r} does not accept parameter(s) "
                f"{', '.join(unknown)}; accepted: "
                f"{', '.join(sorted(accepted)) or 'none'}")
        missing = sorted(p.name for p in self.params
                         if p.required and p.name not in params)
        if missing:
            raise TypeError(
                f"scheduler {self.name!r} requires parameter(s) "
                f"{', '.join(missing)}")
        return self.factory(**params)


# -- the registry ----------------------------------------------------------------


class _Axis:
    """Name-table mechanics shared by the two registry axes.

    One instance per axis (algorithms, schedulers): a canonical-name →
    spec table, an any-name/alias → canonical table, lazy builtin
    loading, and collision/override/restore bookkeeping.  Everything
    axis-specific (capability layers, construction, error flavour
    beyond the axis noun) stays in the thin public wrappers below.
    """

    def __init__(self, kind: str, load_builtins: Callable[[], list]):
        self.kind = kind
        self._load_builtins = load_builtins
        self.specs: Dict[str, object] = {}    # canonical name -> spec
        self.names: Dict[str, str] = {}       # any name/alias -> canonical
        self._loaded = False

    def ensure_builtins(self) -> None:
        """Bind the builtin specs on first use (lazy cross imports)."""
        if self._loaded:
            return
        self._loaded = True
        for spec in self._load_builtins():
            self.register(spec)

    def register(self, spec, *, override: bool = False) -> List:
        self.ensure_builtins()
        colliding = sorted({self.names[name] for name in spec.names
                            if name in self.names})
        replaced: List = []
        if colliding:
            if not override:
                taken = ", ".join(name for name in spec.names
                                  if name in self.names)
                raise ValueError(
                    f"{self.kind} name(s) already registered: {taken} "
                    "(pass override=True to replace)")
            for canonical in colliding:
                replaced.append(self.unregister(canonical))
        self.specs[spec.name] = spec
        for name in spec.names:
            self.names[name] = spec.name
        return replaced

    def unregister(self, name: str):
        self.ensure_builtins()
        key = name.lower()
        if key not in self.names:
            known = ", ".join(self.available())
            raise KeyError(f"unknown {self.kind} {name!r}; known: {known}")
        spec = self.specs.pop(self.names[key])
        for alias in spec.names:
            self.names.pop(alias, None)
        return spec

    def get(self, name: str):
        self.ensure_builtins()
        try:
            return self.specs[self.names[name.lower()]]
        except KeyError:
            known = ", ".join(self.available())
            raise KeyError(
                f"unknown {self.kind} {name!r}; known: {known}") from None

    def all_specs(self) -> List:
        self.ensure_builtins()
        return [spec for _, spec in sorted(self.specs.items())]

    def available(self) -> list[str]:
        self.ensure_builtins()
        return sorted(self.names)

    @contextmanager
    def registered(self, spec, *, override: bool = False):
        replaced = self.register(spec, override=override)
        try:
            yield spec
        finally:
            self.unregister(spec.name)
            for old in replaced:
                self.register(old)


def _builtin_scheduler_specs() -> List[SchedulerSpec]:
    # Lazy for the same reason as _builtin_specs: the registry lives in
    # ``core`` but the policies live in the sim layer, which imports
    # this module for controller resolution.
    from ..sim import packet_scheduler as _ps

    return [
        SchedulerSpec(
            name="minrtt", aliases=("min-rtt",),
            description="lowest-srtt ready subflow (the default)",
            factory=_ps.MinRttScheduler),
        SchedulerSpec(
            name="roundrobin", aliases=("rr", "round-robin"),
            description="cycle ready subflows in key order, one "
            "packet each",
            factory=_ps.RoundRobinScheduler),
        SchedulerSpec(
            name="redundant", aliases=("duplicate",),
            description="every packet on every subflow; first copy "
            "to arrive wins",
            factory=_ps.RedundantScheduler),
        SchedulerSpec(
            name="qaware", aliases=("queue-aware", "cross-layer"),
            description="srtt + first-hop queue drain time "
            "(cross-layer, Shreedhar et al.)",
            factory=_ps.QueueAwareScheduler),
    ]


_ALGORITHMS = _Axis("algorithm", lambda: _builtin_specs())
_SCHEDULERS = _Axis("scheduler", _builtin_scheduler_specs)


def _ensure_builtins() -> None:
    """Bind the builtin algorithm specs on first use."""
    _ALGORITHMS.ensure_builtins()


def _builtin_specs() -> List[AlgorithmSpec]:
    # Imported here, not at module top: the registry lives in ``core``
    # but binds factories from the fluid layer, and the fluid wrappers
    # call back into this module — a top-level import would be a
    # genuine cycle and make registration depend on import order.
    from ..fluid import dynamics as _dyn
    from ..fluid import equilibrium as _eq
    from ..verify.models import LiaModel, OliaModel, TcpModel
    from . import balia as _balia
    from . import wvegas as _wvegas
    from .coupled import CoupledController
    from .cubic import CubicController
    from .ewtcp import EwtcpController
    from .lia import LiaController
    from .olia import OliaController
    from .reno import RenoController
    from .stcp import ScalableTcpController

    def olia_rule(floor=None, tie_tolerance=1e-6):
        return lambda p, rtt: _eq.olia_allocation(
            p, rtt, floor=floor, tie_tolerance=tie_tolerance)

    def epsilon_rule(epsilon):
        return lambda p, rtt: _eq.epsilon_family_allocation(p, rtt, epsilon)

    tie_tolerance = ParamSpec(
        "tie_tolerance",
        "relative tolerance of the argmax path sets (layer defaults: "
        "packet 0, fluid 1e-3, equilibrium 1e-6)")
    return [
        AlgorithmSpec(
            name="tcp", aliases=("reno", "uncoupled"),
            description="regular TCP Reno; uncoupled on each subflow",
            controller_factory=RenoController,
            fluid_factory=_dyn.TcpFluid,
            allocation_factory=lambda: _eq.tcp_allocation,
            smt_factory=TcpModel),
        AlgorithmSpec(
            name="lia", description="MPTCP's linked increases (Eq. 1, "
            "RFC 6356)",
            controller_factory=LiaController,
            fluid_factory=_dyn.LiaFluid,
            allocation_factory=lambda: _eq.lia_allocation,
            smt_factory=LiaModel),
        AlgorithmSpec(
            name="olia", description="the paper's opportunistic linked "
            "increases (Eqs. 5-6)",
            controller_factory=OliaController,
            fluid_factory=_dyn.OliaFluid,
            allocation_factory=olia_rule,
            smt_factory=OliaModel,
            params=(tie_tolerance,
                    ParamSpec("floor", "equilibrium probing rate of "
                              "non-best routes",
                              layers=("equilibrium", "smt")))),
        AlgorithmSpec(
            name="coupled", description="fully coupled Kelly-Voice "
            "(OLIA without the alpha term)",
            controller_factory=CoupledController,
            fluid_factory=_dyn.CoupledFluid,
            allocation_factory=olia_rule,
            params=(ParamSpec("tie_tolerance", tie_tolerance.description,
                              layers=("fluid", "equilibrium")),
                    ParamSpec("floor", "equilibrium probing rate of "
                              "non-best routes", layers=("equilibrium",)))),
        AlgorithmSpec(
            name="ewtcp", description="equally-weighted TCP "
            "(weight 1/n^2 per subflow)",
            controller_factory=EwtcpController,
            fluid_factory=_dyn.EwtcpFluid,
            allocation_factory=lambda: _eq.ewtcp_allocation,
            params=(ParamSpec("weight", "per-subflow AIMD weight "
                              "(default 1/n^2)", layers=("packet",)),)),
        _balia.SPEC,
        _wvegas.SPEC,
        AlgorithmSpec(
            name="stcp", description="Scalable TCP (packet layer only)",
            controller_factory=ScalableTcpController,
            params=(ParamSpec("a", "per-ACK additive increase",
                              layers=("packet",)),
                    ParamSpec("b", "multiplicative decrease",
                              layers=("packet",)))),
        AlgorithmSpec(
            name="cubic", description="CUBIC (packet layer only; needs "
            "a clock callable)",
            controller_factory=CubicController,
            params=(ParamSpec("clock", "time callable driving the cubic "
                              "window growth (e.g. a Simulator clock)",
                              required=True, layers=("packet",)),)),
        AlgorithmSpec(
            name="epsilon", description="the epsilon-family allocation "
            "of Section II (equilibrium layer only)",
            allocation_factory=epsilon_rule,
            params=(ParamSpec("epsilon", "coupling parameter in [0, 2]",
                              required=True, layers=("equilibrium",)),)),
    ]


def register_algorithm(spec, factory=None, *,
                       override: bool = False) -> List[AlgorithmSpec]:
    """Register an :class:`AlgorithmSpec` (or a bare controller factory).

    The legacy two-argument form ``register_algorithm(name, factory)``
    wraps ``factory`` into a packet-only spec.  Without ``override`` a
    name collision (canonical or alias) raises ``ValueError``; with
    ``override=True`` the colliding spec(s) are unregistered first and
    returned, so callers (and :func:`registered`) can restore them.
    """
    if not isinstance(spec, AlgorithmSpec):
        if factory is None:
            raise TypeError(
                "register_algorithm takes an AlgorithmSpec, or the "
                "legacy (name, controller_factory) pair")
        spec = AlgorithmSpec(name=str(spec).lower(),
                             controller_factory=factory,
                             description="user-registered controller")
    elif factory is not None:
        raise TypeError("cannot pass a factory alongside an AlgorithmSpec")
    return _ALGORITHMS.register(spec, override=override)


def unregister_algorithm(name: str) -> AlgorithmSpec:
    """Remove a registered spec (by any of its names) and return it."""
    return _ALGORITHMS.unregister(name)


@contextmanager
def registered(spec, *, override: bool = False):
    """Context manager: register ``spec``, unregister it on exit.

    Anything ``override=True`` displaced is restored on exit, so tests
    and user extensions can try out throwaway algorithms without
    leaking registry state::

        with registered(AlgorithmSpec(name="mine", ...)):
            run_experiment("mine")
    """
    with _ALGORITHMS.registered(spec, override=override):
        yield spec


def get_spec(name: str) -> AlgorithmSpec:
    """The :class:`AlgorithmSpec` for ``name`` (case-insensitive).

    Raises ``KeyError`` with the list of known names when ``name`` is
    unknown, which makes config typos fail loudly.
    """
    return _ALGORITHMS.get(name)


def algorithm_specs() -> List[AlgorithmSpec]:
    """Every registered spec, once each, sorted by canonical name."""
    return _ALGORITHMS.all_specs()


def available_algorithms(layer: str | None = None) -> list[str]:
    """All registered algorithm names (aliases included), sorted.

    ``layer`` (``"packet"``, ``"fluid"``, ``"equilibrium"`` or
    ``"smt"``) filters to the names whose algorithm implements that
    layer — the name sets the four ``make_*`` entry points accept.
    """
    if layer is None:
        return _ALGORITHMS.available()
    _ALGORITHMS.ensure_builtins()
    return sorted(name for name, canonical in _ALGORITHMS.names.items()
                  if _ALGORITHMS.specs[canonical].supports(layer))


def _spec_for_layer(name: str, layer: str) -> AlgorithmSpec:
    """Resolve ``name`` for ``layer``, failing loudly either way."""
    _ALGORITHMS.ensure_builtins()
    key = name.lower()
    if key not in _ALGORITHMS.names:
        known = ", ".join(available_algorithms(layer))
        raise KeyError(
            f"unknown algorithm {name!r}; known ({layer}): {known}")
    spec = _ALGORITHMS.specs[_ALGORITHMS.names[key]]
    if not spec.supports(layer):
        capable = ", ".join(available_algorithms(layer))
        raise KeyError(
            f"algorithm {name!r} has no {layer} layer (supports: "
            f"{', '.join(spec.layers) or 'nothing'}); "
            f"{layer}-capable: {capable}")
    return spec


def make_controller(name, **params) -> MultipathController:
    """Instantiate a packet-level controller by name (or spec).

    Raises ``KeyError`` with the list of known names when ``name`` is
    unknown or lacks a packet implementation; undeclared ``params``
    raise ``TypeError``.
    """
    if isinstance(name, AlgorithmSpec):
        return name.make_controller(**params)
    return _spec_for_layer(name, "packet").make_controller(**params)


def make_fluid_algorithm(name, **params):
    """Instantiate a fluid-ODE algorithm by name (or spec)."""
    if isinstance(name, AlgorithmSpec):
        return name.make_fluid(**params)
    return _spec_for_layer(name, "fluid").make_fluid(**params)


def make_allocation_rule(name, **params):
    """Build an equilibrium allocation rule by name (or spec)."""
    if isinstance(name, AlgorithmSpec):
        return name.make_allocation(**params)
    return _spec_for_layer(name, "equilibrium").make_allocation(**params)


def make_smt_model(name, **params):
    """Build an SMT constraint model by name (or spec).

    The model object itself is z3-free; z3 is first touched when its
    constraints are built, raising
    :class:`~repro.verify.base.Z3Unavailable` if the optional extra is
    missing — the same degrade-to-skip contract as the compiled DES
    kernels.
    """
    if isinstance(name, AlgorithmSpec):
        return name.make_smt(**params)
    return _spec_for_layer(name, "smt").make_smt(**params)


# -- the scheduler axis ----------------------------------------------------------

def register_scheduler(spec: SchedulerSpec, *,
                       override: bool = False) -> List[SchedulerSpec]:
    """Register a :class:`SchedulerSpec` on the scheduler axis.

    Without ``override`` a name collision (canonical or alias) raises
    ``ValueError``; with ``override=True`` the colliding spec(s) are
    unregistered first and returned so callers (and
    :func:`registered_scheduler`) can restore them.
    """
    if not isinstance(spec, SchedulerSpec):
        raise TypeError("register_scheduler takes a SchedulerSpec")
    return _SCHEDULERS.register(spec, override=override)


def unregister_scheduler(name: str) -> SchedulerSpec:
    """Remove a registered scheduler (by any of its names), return it."""
    return _SCHEDULERS.unregister(name)


@contextmanager
def registered_scheduler(spec: SchedulerSpec, *, override: bool = False):
    """Context manager: register a scheduler, unregister it on exit.

    The scheduler-axis twin of :func:`registered`, with the same
    displaced-spec restoration semantics.
    """
    with _SCHEDULERS.registered(spec, override=override):
        yield spec


def get_scheduler_spec(name: str) -> SchedulerSpec:
    """The :class:`SchedulerSpec` for ``name`` (case-insensitive)."""
    return _SCHEDULERS.get(name)


def scheduler_specs() -> List[SchedulerSpec]:
    """Every registered scheduler spec, sorted by canonical name."""
    return _SCHEDULERS.all_specs()


def available_schedulers() -> list[str]:
    """All registered scheduler names (aliases included), sorted."""
    return _SCHEDULERS.available()


def make_scheduler(name=None, **params):
    """Instantiate a packet scheduler by name (or spec).

    ``None`` resolves to the default policy (``minrtt``), so callers
    can thread an optional scheduler argument straight through.
    Raises ``KeyError`` with the list of registered scheduler names
    when ``name`` is unknown; undeclared ``params`` raise
    ``TypeError``.
    """
    if name is None:
        name = "minrtt"
    if isinstance(name, SchedulerSpec):
        return name.make(**params)
    return _SCHEDULERS.get(name).make(**params)
