"""Name-based factory for congestion controllers.

Experiment configurations refer to algorithms by name ("lia", "olia", ...);
this registry turns those names into fresh controller instances so that a
single experiment runner can sweep algorithms.
"""

from __future__ import annotations

from typing import Callable, Dict

from .base import MultipathController
from .coupled import CoupledController
from .ewtcp import EwtcpController
from .lia import LiaController
from .olia import OliaController
from .reno import RenoController
from .stcp import ScalableTcpController

_FACTORIES: Dict[str, Callable[[], MultipathController]] = {
    "reno": RenoController,
    "tcp": RenoController,
    "uncoupled": RenoController,
    "lia": LiaController,
    "olia": OliaController,
    "coupled": CoupledController,
    "ewtcp": EwtcpController,
    "stcp": ScalableTcpController,
}


def available_algorithms() -> list[str]:
    """All registered algorithm names (aliases included)."""
    return sorted(_FACTORIES)


def make_controller(name: str) -> MultipathController:
    """Instantiate a controller by name.

    Raises ``KeyError`` with the list of known names when ``name`` is
    unknown, which makes config typos fail loudly.
    """
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        known = ", ".join(available_algorithms())
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory()


def register_algorithm(name: str,
                       factory: Callable[[], MultipathController]) -> None:
    """Register a custom controller factory (e.g. for user extensions)."""
    key = name.lower()
    if key in _FACTORIES:
        raise ValueError(f"algorithm {name!r} already registered")
    _FACTORIES[key] = factory
