"""Congestion-controller interface shared by the fluid and packet simulators.

A *multipath* congestion controller owns the congestion-avoidance window
dynamics of every subflow of one connection.  The packet-level simulator
(:mod:`repro.sim.mptcp`) calls :meth:`MultipathController.increase_on_ack`
once per acknowledged packet and :meth:`MultipathController.decrease_on_loss`
once per loss event; the controller returns the new window.  All windows are
expressed in packets (MSS) and RTTs in seconds, matching the units of the
paper's Equations (1) and (5).

The controller reads subflow state through :class:`SubflowState`, a small
mutable view owned by the transport layer.  This keeps the algorithms free
of any simulator dependency, so they can be unit-tested directly against
the paper's formulas and reused by the fluid model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class SubflowState:
    """Mutable per-subflow state visible to a multipath controller.

    Attributes
    ----------
    cwnd:
        Congestion window in packets (float; the transport layer floors it
        when deciding how many packets may be in flight).
    rtt:
        Smoothed round-trip time estimate in seconds.
    bytes_acked_since_loss:
        OLIA's ``l2_r`` counter — bytes acknowledged since the last loss.
    bytes_between_last_losses:
        OLIA's ``l1_r`` counter — bytes acknowledged between the two most
        recent losses.
    """

    cwnd: float = 1.0
    rtt: float = 0.1
    bytes_acked_since_loss: float = 0.0
    bytes_between_last_losses: float = 0.0

    @property
    def interloss_bytes(self) -> float:
        """OLIA's ``l_r = max(l1_r, l2_r)`` (paper, Section IV-A)."""
        return max(self.bytes_between_last_losses, self.bytes_acked_since_loss)

    def record_ack(self, nbytes: float) -> None:
        """Account ``nbytes`` of newly acknowledged data (updates ``l2_r``)."""
        self.bytes_acked_since_loss += nbytes

    def record_loss(self) -> None:
        """Roll the inter-loss counters on a loss event (``l1 <- l2; l2 <- 0``)."""
        self.bytes_between_last_losses = self.bytes_acked_since_loss
        self.bytes_acked_since_loss = 0.0


class MultipathController:
    """Base class for multipath congestion-avoidance algorithms.

    Subclasses implement :meth:`increase_increment`, the window increase
    applied for one acknowledged packet on one subflow while in congestion
    avoidance.  The decrease behaviour (halving, floor at ``min_cwnd``) is
    shared by all algorithms in the paper, which keep "unmodified TCP
    behavior in the case of a loss".
    """

    #: Human-readable algorithm name (overridden by subclasses).
    name = "base"

    #: Minimum congestion window, 1 MSS as in TCP and the paper's
    #: implementation (Section IV-B).
    min_cwnd = 1.0

    def __init__(self) -> None:
        self._subflows: Dict[int, SubflowState] = {}

    # -- subflow management -------------------------------------------------
    def register_subflow(self, key: int, state: SubflowState) -> None:
        """Attach a subflow's state under an integer key."""
        if key in self._subflows:
            raise ValueError(f"subflow key {key!r} already registered")
        self._subflows[key] = state

    def remove_subflow(self, key: int) -> None:
        """Detach a subflow (e.g. path failure)."""
        del self._subflows[key]

    @property
    def subflows(self) -> Dict[int, SubflowState]:
        """Read-only view of registered subflow states."""
        return self._subflows

    def states(self) -> List[SubflowState]:
        """All registered subflow states, in registration order."""
        return list(self._subflows.values())

    # -- congestion avoidance ------------------------------------------------
    def increase_increment(self, key: int) -> float:
        """Window increment for one ACKed packet on subflow ``key``."""
        raise NotImplementedError

    def increase_on_ack(self, key: int, acked_packets: int = 1,
                        acked_bytes: float | None = None) -> float:
        """Apply the congestion-avoidance increase for newly ACKed packets.

        Returns the new congestion window of subflow ``key``.  The increase
        is applied once per acknowledged packet, mirroring a per-ACK
        implementation.  ``acked_bytes`` defaults to
        ``acked_packets * 1500``; it feeds OLIA's inter-loss counters.
        """
        state = self._subflows[key]
        if acked_bytes is None:
            acked_bytes = acked_packets * 1500.0
        state.record_ack(acked_bytes)
        for _ in range(acked_packets):
            state.cwnd += self.increase_increment(key)
        if state.cwnd < self.min_cwnd:
            state.cwnd = self.min_cwnd
        return state.cwnd

    def decrease_on_loss(self, key: int) -> float:
        """Multiplicative decrease on a loss: ``w <- max(w/2, 1)``.

        Also rolls the inter-loss counters used by OLIA.  Returns the new
        congestion window.
        """
        state = self._subflows[key]
        state.record_loss()
        state.cwnd = max(state.cwnd / 2.0, self.min_cwnd)
        return state.cwnd

    # -- helpers shared by the coupled algorithms -----------------------------
    def _sum_w_over_rtt(self) -> float:
        """``sum_p w_p / rtt_p`` over all registered subflows."""
        return sum(s.cwnd / s.rtt for s in self._subflows.values())

    def _max_w_over_rtt_sq(self) -> float:
        """``max_p w_p / rtt_p**2`` over all registered subflows."""
        return max(s.cwnd / (s.rtt * s.rtt) for s in self._subflows.values())
