"""BALIA — the Balanced Linked Adaptation of Peng, Walid, Hwang & Low.

The algorithm from "Multipath TCP: Analysis, Design and Implementation"
(IEEE/ACM ToN 2016), designed inside the same utility framework this
paper's OLIA lives in and balancing the friendliness/responsiveness
trade-off between LIA and the fully coupled end of the spectrum.  With
``x_r = w_r / rtt_r`` and ``alpha_r = max_k x_k / x_r``:

* per ACK on path ``r``::

      w_r += (x_r / rtt_r) / (sum_k x_k)^2 * ((1 + a_r)/2) * ((4 + a_r)/5)

* per loss on path ``r``::

      w_r -= (w_r / 2) * min(a_r, 3/2)

On a single path ``a_r = 1`` and both rules collapse to TCP Reno
(increase ``1/w``, halve on loss) — BALIA is TCP-compatible by
construction.

This module is the registry's worked example of a **one-file
algorithm**: the packet controller, the fluid derivative and the
equilibrium allocation live side by side and :data:`SPEC` bundles them
into a single :class:`~repro.core.registry.AlgorithmSpec`, which is all
the rest of the repo (DES, sweeps, the scenario generator, the scale
harness, the consistency suite) needs to run BALIA everywhere.

Fluid model (expectation of the per-ACK updates, as for LIA/OLIA in
:mod:`repro.fluid.dynamics`)::

    dx_r/dt = (x_r + M)(4 x_r + M) / (10 rtt_r^2 S^2)
              - p_r x_r min(M, 1.5 x_r) / 2

with ``M = max_k x_k`` and ``S = sum_k x_k`` — the division-free form
of ``x_r^2 q(a_r) / (rtt_r^2 S^2) - p_r x_r^2 min(a_r, 1.5)/2`` where
``q(a) = ((1+a)/2)((4+a)/5)``.

Equilibrium: setting ``dx_r/dt = 0`` gives ``p_r rtt_r^2 S^2 =
F(a_r)`` with ``F(a) = (1+a)(4+a) / (5 min(a, 1.5))``.  The route
carrying the maximum rate has ``a = 1`` and ``F(1) = 2``, so the total
rate equals the single-path TCP rate on the *best* path (the one
maximizing ``sqrt(2/p_r)/rtt_r``) — the same design goal OLIA's
Theorem 1 expresses.  For the other routes ``c_r = p_r rtt_r^2 S^2 =
2 (t_b/t_r)^2 >= 2`` and inverting ``F`` on its increasing branch
(``a > 1.5``) yields the closed form ``a_r = (sqrt(9 + 30 c_r) - 5)/2``;
rates follow as ``x_r = S (1/a_r) / sum_k (1/a_k)``.  Unlike OLIA,
worse paths keep a *graded* share (``~ 1/a_r``) instead of dropping to
the probing floor — BALIA's balanced middle ground.
"""

from __future__ import annotations

import numpy as np

from ..fluid.dynamics import FluidAlgorithm, _rowmax, _sum
from ..verify.base import ConstraintModel
from ..verify.base import require_z3 as _require_z3
from ..verify.encoding import zmax as _zmax
from ..verify.encoding import zmin as _zmin
from .base import MultipathController
from .registry import AlgorithmSpec, ParamSpec

_EPS = 1e-12


class BaliaController(MultipathController):
    """Packet-level BALIA (per-ACK increase, min(a, 3/2)/2 decrease)."""

    name = "balia"

    def _rates(self):
        return {k: s.cwnd / s.rtt for k, s in self._subflows.items()}

    def _alpha(self, key: int, rates) -> float:
        return max(rates.values()) / max(rates[key], _EPS)

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        rates = self._rates()
        total = sum(rates.values())
        alpha = self._alpha(key, rates)
        kelly = (rates[key] / state.rtt) / max(total * total, _EPS)
        return kelly * ((1.0 + alpha) / 2.0) * ((4.0 + alpha) / 5.0)

    def decrease_on_loss(self, key: int) -> float:
        """``w -= (w/2) min(a_r, 3/2)`` (TCP halving on a single path)."""
        state = self._subflows[key]
        alpha = self._alpha(key, self._rates())
        state.record_loss()
        decrease = min(alpha, 1.5) / 2.0
        state.cwnd = max(state.cwnd * (1.0 - decrease), self.min_cwnd)
        return state.cwnd


class BaliaFluid(FluidAlgorithm):
    """Fluid BALIA, written against the last axis like its siblings."""

    name = "balia"

    def derivative(self, x, p, rtt):
        x = np.asarray(x, dtype=float)
        total = _sum(x, axis=-1, keepdims=True)
        peak = _rowmax(x, axis=-1, keepdims=True)
        safe_total = np.maximum(total, _EPS)
        increase = ((x + peak) * (4.0 * x + peak) / 10.0) \
            / (rtt * rtt * safe_total * safe_total)
        decrease = p * x * np.minimum(peak, 1.5 * x) / 2.0
        return np.where(total <= _EPS, 1.0 / (rtt * rtt),
                        increase - decrease)


def balia_allocation(p, rtt, tie_tolerance: float = 1e-6) -> np.ndarray:
    """BALIA's fixed-point allocation (closed form, see module docs).

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs; routes live on the last
        axis, leading axes are independent sweep points.
    tie_tolerance : float
        Relative tolerance for counting a path as tied-best (tied
        paths take ``a_r = 1``, i.e. the balanced equilibrium).

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        Per-route rates; the total equals the TCP rate on the best
        path, worse paths keep a graded ``1/a_r`` share.
    """
    p = np.maximum(np.asarray(p, dtype=float), 1e-15)
    rtt = np.asarray(rtt, dtype=float)
    tcp_rates = np.sqrt(2.0 / p) / rtt
    best = np.max(tcp_rates, axis=-1, keepdims=True)
    best_set = tcp_rates >= best * (1.0 - tie_tolerance)
    # c_r = p_r rtt_r^2 S^2 with S = the best path's TCP rate; >= 2 by
    # construction (clamped against rounding), = 2 on tied-best paths.
    c = np.maximum(2.0 * (best / tcp_rates) ** 2, 2.0)
    alpha = np.where(best_set, 1.0, (np.sqrt(9.0 + 30.0 * c) - 5.0) / 2.0)
    weights = 1.0 / alpha
    return best * weights / np.sum(weights, axis=-1, keepdims=True)


def _balia_rule(tie_tolerance: float = 1e-6):
    return lambda p, rtt: balia_allocation(p, rtt,
                                           tie_tolerance=tie_tolerance)


class BaliaModel(ConstraintModel):
    """BALIA's fixed point and window dynamics as z3 constraints.

    The relational form of :func:`balia_allocation`, division-free via
    auxiliary variables:

    * tie booleans ``b_r ⇔ t_r ≥ best·(1 − tol)`` as in the closed
      form;
    * ``c_r``: ``c_r == 2`` on tied-best paths, else
      ``c_r · t_r² == 2 · best²`` (and ``c_r ≥ 2`` always);
    * ``a_r``: 1 on tied-best paths, else the increasing branch of
      ``F(a) = (1+a)(4+a)/(5·min(a, 3/2))`` inverted polynomially —
      ``(2a_r + 5)² == 9 + 30·c_r`` with ``a_r ≥ 1`` selecting the
      right root of the quadratic;
    * rates ``x_r · W == best · (1/a_r)`` with ``W = Σ_k 1/a_k``.

    Window dynamics (for the ``cwnd-bounds`` unrolling): per-RTT
    increase ``(x + M)(4x + M)/10 / S²`` with ``x = w/rtt``,
    ``M = max_k x_k``, ``S = Σ_k x_k`` — at most ``M²/S² ≤ 1`` packet
    — and loss decrease ``min(a_r, 3/2)/2 ≤ 3/4`` (hence the raised
    ``max_decrease_factor``).
    """

    name = "balia"
    claim_expectations = {
        "non-pareto": "sat",     # graded share keeps the two-hop path
        "uniqueness": "unsat",   # busy, so dominated equilibria exist
        "cwnd-bounds": "unsat",
    }
    max_increase_per_rtt = 1.0
    max_decrease_factor = 0.75

    def __init__(self, tie_tolerance: float = 1e-6) -> None:
        self.tie_tolerance = float(tie_tolerance)

    def fixed_point_constraints(self, paths, x, tag="fp"):
        z3 = _require_z3()
        constraints = []
        best = _zmax(paths.tcp)
        inverses = []
        for r, t in enumerate(paths.tcp):
            b = z3.Bool(f"{tag}_balia_best{r}")
            c = z3.Real(f"{tag}_balia_c{r}")
            a = z3.Real(f"{tag}_balia_a{r}")
            inv = z3.Real(f"{tag}_balia_inva{r}")
            constraints.append(
                b == (t >= best * (1 - self.tie_tolerance)))
            constraints.append(c >= 2)
            constraints.append(
                z3.If(b, c == 2, c * t * t == 2 * best * best))
            constraints.append(a >= 1)
            constraints.append(
                z3.If(b, a == 1,
                      (2 * a + 5) * (2 * a + 5) == 9 + 30 * c))
            constraints.append(inv > 0)
            constraints.append(inv * a == 1)
            inverses.append(inv)
        weight_sum = z3.Sum(inverses)
        for rate, inv in zip(x, inverses):
            constraints.append(rate >= 0)
            constraints.append(rate * weight_sum == best * inv)
        return constraints

    def per_rtt_increase(self, w, v, rtt, rtt2, constraints,
                         tag="step"):
        rate = w / rtt
        peer = v / rtt2
        peak = _zmax([rate, peer])
        total = rate + peer
        return ((rate + peak) * (4 * rate + peak) / 10) / (total * total)

    def loss_decrease_factor(self, w, v, rtt, rtt2):
        z3 = _require_z3()
        alpha = _zmax([w / rtt, v / rtt2]) * rtt / w
        return _zmin([alpha, z3.RealVal("3/2")]) / 2


#: The whole algorithm, one spec: this single registration is what
#: makes BALIA available to the DES, the fluid sweeps, the equilibrium
#: solver, the scenario generator, the scale harness — and the SMT
#: verification layer.
SPEC = AlgorithmSpec(
    name="balia",
    description="balanced linked adaptation (Peng-Walid-Hwang-Low)",
    controller_factory=BaliaController,
    fluid_factory=BaliaFluid,
    allocation_factory=_balia_rule,
    smt_factory=BaliaModel,
    params=(ParamSpec("tie_tolerance", "relative tolerance for tied-best "
                      "paths in the equilibrium allocation",
                      layers=("equilibrium", "smt")),),
)
