"""LIA — the Linked-Increases Algorithm of MPTCP (RFC 6356).

Implements Equation (1) of the paper: for each ACK on subflow ``r``,
increase ``w_r`` by::

    min( (max_i w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2 ,  1 / w_r )

The ``min`` with ``1/w_r`` caps the aggressiveness at that of a regular TCP
on any single path (design goal 2).  The decrease on loss is the standard
TCP halving inherited from :class:`~repro.core.base.MultipathController`.
"""

from __future__ import annotations

from .base import MultipathController


class LiaController(MultipathController):
    """MPTCP's default coupled congestion avoidance (Eq. 1)."""

    name = "lia"

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        denom = self._sum_w_over_rtt()
        coupled = self._max_w_over_rtt_sq() / (denom * denom)
        return min(coupled, 1.0 / state.cwnd)
