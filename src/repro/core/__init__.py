"""Congestion-control algorithms: the paper's contribution and baselines.

* :class:`OliaController` — the paper's OLIA (Eqs. 5-6).
* :class:`LiaController` — MPTCP's default LIA (Eq. 1, RFC 6356).
* :class:`RenoController` — regular/uncoupled TCP.
* :class:`CoupledController` — fully coupled (OLIA without the alpha term).
* :class:`EwtcpController` — equally-weighted TCP baseline.
* :class:`BaliaController` — Peng-Walid-Hwang-Low's BALIA.

Everything above resolves algorithms through :mod:`repro.core.registry`:
one :class:`AlgorithmSpec` per algorithm bundles the packet controller,
the fluid derivative, the equilibrium allocation rule and (for the
algorithms with machine-checked claims) the SMT constraint model behind
a single name, with capability flags for algorithms that lack a layer.

The registry's second, orthogonal axis is the packet scheduler: one
:class:`SchedulerSpec` per policy (minrtt, roundrobin, redundant,
qaware), resolved through :func:`make_scheduler` and composable with
any packet-capable algorithm.
"""

from .balia import BaliaController
from .base import MultipathController, SubflowState
from .coupled import CoupledController
from .cubic import CubicController
from .ewtcp import EwtcpController
from .lia import LiaController
from .olia import OliaController
from .registry import (
    AlgorithmSpec,
    ParamSpec,
    SchedulerSpec,
    algorithm_specs,
    available_algorithms,
    available_schedulers,
    get_scheduler_spec,
    get_spec,
    make_allocation_rule,
    make_controller,
    make_fluid_algorithm,
    make_scheduler,
    make_smt_model,
    register_algorithm,
    register_scheduler,
    registered,
    registered_scheduler,
    scheduler_specs,
    unregister_algorithm,
    unregister_scheduler,
)
from .reno import RenoController, UncoupledController
from .rtt import RttEstimator
from .stcp import ScalableTcpController

__all__ = [
    "MultipathController",
    "SubflowState",
    "OliaController",
    "LiaController",
    "RenoController",
    "UncoupledController",
    "CoupledController",
    "EwtcpController",
    "ScalableTcpController",
    "CubicController",
    "BaliaController",
    "RttEstimator",
    "AlgorithmSpec",
    "ParamSpec",
    "SchedulerSpec",
    "algorithm_specs",
    "get_spec",
    "make_controller",
    "make_fluid_algorithm",
    "make_allocation_rule",
    "make_smt_model",
    "available_algorithms",
    "register_algorithm",
    "registered",
    "unregister_algorithm",
    "scheduler_specs",
    "get_scheduler_spec",
    "make_scheduler",
    "available_schedulers",
    "register_scheduler",
    "registered_scheduler",
    "unregister_scheduler",
]
