"""Congestion-control algorithms: the paper's contribution and baselines.

* :class:`OliaController` — the paper's OLIA (Eqs. 5-6).
* :class:`LiaController` — MPTCP's default LIA (Eq. 1, RFC 6356).
* :class:`RenoController` — regular/uncoupled TCP.
* :class:`CoupledController` — fully coupled (OLIA without the alpha term).
* :class:`EwtcpController` — equally-weighted TCP baseline.
"""

from .base import MultipathController, SubflowState
from .coupled import CoupledController
from .cubic import CubicController
from .ewtcp import EwtcpController
from .lia import LiaController
from .olia import OliaController
from .registry import available_algorithms, make_controller, register_algorithm
from .reno import RenoController, UncoupledController
from .rtt import RttEstimator
from .stcp import ScalableTcpController

__all__ = [
    "MultipathController",
    "SubflowState",
    "OliaController",
    "LiaController",
    "RenoController",
    "UncoupledController",
    "CoupledController",
    "EwtcpController",
    "ScalableTcpController",
    "CubicController",
    "RttEstimator",
    "make_controller",
    "available_algorithms",
    "register_algorithm",
]
