"""wVegas — weighted Vegas, the delay-based end of the design space.

Cao, Xu & Fu's "Delay-based congestion control for multipath TCP"
(ICNP 2012), recast in the Peng-Walid-Hwang-Low utility framework
(PAPERS.md): each multipath user keeps a *total* backlog target of
``alpha`` packets queued in the network and shifts that budget toward
the paths signalling the least congestion.  In Kelly terms the user
maximizes ``alpha * log(sum_r x_r)`` against path prices, which puts
wVegas at the *fully coupled* end of the spectrum — the opposite pole
from uncoupled TCP, with LIA/OLIA/BALIA in between.

* **Packet layer** (:class:`WVegasController`): per subflow ``r``,
  Vegas' backlog estimate ``diff_r = cwnd_r (rtt_r - baseRTT_r) /
  rtt_r`` is compared against this subflow's share of the budget,
  ``alpha * x_r / sum_k x_k``; the window steps ``+1/cwnd`` below the
  share, ``-1/cwnd`` above twice the share, and rests in between.
  Congestion here is *queueing delay*, so the spec carries
  ``congestion_measure="delay"`` and DES-vs-analytic comparisons are
  skipped (the analytic layers price congestion generically).

* **Fluid layer** (:class:`WVegasFluid`)::

      dx_r/dt = x_r (alpha / S - p_r) / rtt_r,   S = sum_k x_k

  the gradient flow of ``alpha log S`` against prices ``p_r``, with a
  one-packet-per-RTT probing floor per route (Vegas never parks a
  subflow at zero; the DES's ``min_cwnd = 1`` is the same floor).

* **Equilibrium layer** (:func:`wvegas_allocation`): at rest
  ``alpha / S = min_r p_r``, so the total ``S = alpha / p_min`` rides
  the minimum-price route(s) — near-tied routes share it through a
  smoothed best response (so the fixed-point iteration can settle on
  the price-equalizing Wardrop split), all others sit at the probing
  floor the solver applies.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..fluid.dynamics import FluidAlgorithm, _sum
from .base import MultipathController
from .registry import AlgorithmSpec, ParamSpec

_EPS = 1e-12


class WVegasController(MultipathController):
    """Packet-level wVegas: delay-budgeted additive steps per subflow."""

    name = "wvegas"

    def __init__(self, alpha: float = 2.0) -> None:
        if not alpha > 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        super().__init__()
        self.alpha = float(alpha)
        self._base_rtt: Dict[int, float] = {}

    def _backlog(self, key: int) -> float:
        """Vegas' estimate of this subflow's packets queued in-network."""
        state = self._subflows[key]
        base = min(self._base_rtt.get(key, state.rtt), state.rtt)
        self._base_rtt[key] = base
        return state.cwnd * (state.rtt - base) / max(state.rtt, _EPS)

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        rates = {k: s.cwnd / s.rtt for k, s in self._subflows.items()}
        total = sum(rates.values())
        share = rates[key] / total if total > 0 else 1.0 / len(rates)
        target = self.alpha * share
        backlog = self._backlog(key)
        if backlog < target:
            return 1.0 / state.cwnd
        if backlog > 2.0 * target:
            return -1.0 / state.cwnd
        return 0.0


class WVegasFluid(FluidAlgorithm):
    """Fluid wVegas: gradient flow of ``alpha log S`` with a probe floor."""

    name = "wvegas"

    def __init__(self, alpha: float = 2.0) -> None:
        if not alpha > 0:
            raise ValueError(f"alpha must be > 0, got {alpha}")
        self.alpha = float(alpha)

    def derivative(self, x, p, rtt):
        x = np.asarray(x, dtype=float)
        total = _sum(x, axis=-1, keepdims=True)
        safe_total = np.maximum(total, _EPS)
        dx = x * (self.alpha / safe_total - p) / rtt
        # One packet per RTT keeps probing (the DES's min_cwnd = 1):
        # below the floor a route relaxes back up instead of dying.
        floor = 1.0 / rtt
        dx = np.where(x < floor, np.maximum(dx, (floor - x) / rtt), dx)
        return np.where(total <= _EPS, 1.0 / (rtt * rtt), dx)


def wvegas_allocation(p, rtt, alpha: float = 2.0,
                      tie_tolerance: float = 0.05) -> np.ndarray:
    """wVegas' fixed point: ``alpha / p_min`` on the cheapest route(s).

    The true rest point of the fluid is a Wardrop split: every route
    carrying traffic prices at ``p_min`` exactly, so a *hard* argmin
    map cannot express it — under fixed-point damping the hard map
    flip-flops the whole budget between near-tied routes and never
    settles.  This is the smoothed best response instead: routes
    within ``(1 + tie_tolerance) * p_min`` share the budget with
    linear weights that vanish at the edge of the band.  Any split of
    the budget among price-equalized routes is then a genuine fixed
    point, and the damped iteration converges to the split that
    equalizes prices to within ``tie_tolerance``.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs; routes live on the last
        axis, leading axes are independent sweep points.  (Vegas'
        equilibrium rates are RTT-fair: ``rtt`` does not enter.)
    alpha : float
        Total backlog budget in packets; the aggregate utility is
        ``alpha log(total rate)``.
    tie_tolerance : float
        Relative width of the near-minimum price band that shares the
        budget.  Smaller is sharper but stiffer: below the product of
        damping and the links' price slope the iteration oscillates.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        Per-route rates summing to ``alpha / p_min``; routes pricier
        than the band get zero (the solver's probing floor lifts
        them, mirroring the fluid's one-packet floor).
    """
    if not alpha > 0:
        raise ValueError(f"alpha must be > 0, got {alpha}")
    if not tie_tolerance > 0:
        raise ValueError(
            f"tie_tolerance must be > 0, got {tie_tolerance}")
    p = np.maximum(np.asarray(p, dtype=float), 1e-15)
    p_min = np.min(p, axis=-1, keepdims=True)
    band = p_min * tie_tolerance
    weight = np.clip((p_min + band - p) / band, 0.0, 1.0)
    weight_sum = np.sum(weight, axis=-1, keepdims=True)  # >= 1: argmin is 1
    total = alpha / p_min
    return total * weight / weight_sum


def _wvegas_rule(alpha: float = 2.0, tie_tolerance: float = 0.05):
    return lambda p, rtt: wvegas_allocation(p, rtt, alpha=alpha,
                                            tie_tolerance=tie_tolerance)


SPEC = AlgorithmSpec(
    name="wvegas",
    description="weighted Vegas (delay-based, fully coupled)",
    controller_factory=WVegasController,
    fluid_factory=WVegasFluid,
    allocation_factory=_wvegas_rule,
    params=(ParamSpec("alpha", "total backlog budget in packets",
                      layers=("packet", "fluid", "equilibrium")),
            ParamSpec("tie_tolerance", "relative width of the "
                      "near-minimum price band sharing the budget in "
                      "the equilibrium allocation",
                      layers=("equilibrium",))),
    congestion_measure="delay",
)
