"""OLIA — the Opportunistic Linked-Increases Algorithm (the paper's proposal).

Implements Equations (5) and (6): for each ACK on subflow ``r`` increase
``w_r`` by::

    (w_r / rtt_r^2) / (sum_p w_p / rtt_p)^2  +  alpha_r / w_r

The first term is the TCP-compatible adaptation of Kelly and Voice's
increase and provides Pareto-optimality; the ``alpha_r`` term provides
responsiveness and non-flappiness by re-forwarding traffic from fully used
paths (the set ``M`` of maximum-window paths) to presumably-best paths with
free capacity (the set ``B \\ M``).

``B`` is determined from the measured number of bytes transmitted between
losses: ``l_r = max(l1_r, l2_r)``, with ``1/l_r`` an estimate of the loss
probability, so the best paths maximize ``l_r / rtt_r^2`` (Equation 4).

On a loss the window halves and the inter-loss counters roll, exactly as in
the Linux implementation described in Section IV-B.
"""

from __future__ import annotations

from typing import Dict, List

from .base import MultipathController


class OliaController(MultipathController):
    """The paper's OLIA coupled congestion avoidance (Eqs. 5-6).

    Parameters
    ----------
    tie_tolerance:
        Relative tolerance used when computing the argmax sets ``M`` and
        ``B``.  The Linux implementation uses exact comparisons
        (``tie_tolerance = 0``); a small positive value emulates the convex
        closure of the differential inclusion (Eq. 9) by treating
        near-maximal paths as maximal.
    """

    name = "olia"

    def __init__(self, tie_tolerance: float = 0.0) -> None:
        super().__init__()
        if tie_tolerance < 0:
            raise ValueError("tie_tolerance must be non-negative")
        self.tie_tolerance = tie_tolerance

    # -- argmax sets ---------------------------------------------------------
    def _argmax_keys(self, score: Dict[int, float]) -> List[int]:
        """Keys whose score is within ``tie_tolerance`` of the maximum."""
        best = max(score.values())
        if best <= 0:
            return list(score)
        threshold = best * (1.0 - self.tie_tolerance)
        return [k for k, v in score.items() if v >= threshold]

    def max_window_paths(self) -> List[int]:
        """The set ``M(t)`` of paths with the largest window (Eq. 3)."""
        return self._argmax_keys({k: s.cwnd for k, s in self._subflows.items()})

    def best_paths(self) -> List[int]:
        """The set ``B(t)`` of presumably best paths (Eq. 4).

        Paths maximize ``l_p / rtt_p^2``.  A path that has transmitted no
        bytes yet has ``l_p = 0`` and can only be "best" if every path has
        ``l_p = 0`` (in which case all paths tie).
        """
        score = {k: s.interloss_bytes / (s.rtt * s.rtt)
                 for k, s in self._subflows.items()}
        return self._argmax_keys(score)

    def alphas(self) -> Dict[int, float]:
        """``alpha_r`` for every registered subflow (Eq. 6).

        The values sum to zero: mass ``1/|R_u|`` is moved from the
        maximum-window paths to the best paths that still have small
        windows.  If every best path already has a maximal window
        (``B \\ M`` empty), all alphas are zero.
        """
        n_paths = len(self._subflows)
        maxw = set(self.max_window_paths())
        best = set(self.best_paths())
        best_not_max = best - maxw
        alphas = dict.fromkeys(self._subflows, 0.0)
        if not best_not_max:
            return alphas
        gain = (1.0 / n_paths) / len(best_not_max)
        pain = -(1.0 / n_paths) / len(maxw)
        for key in best_not_max:
            alphas[key] = gain
        for key in maxw:
            alphas[key] = pain
        return alphas

    # -- congestion avoidance --------------------------------------------------
    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        denom = self._sum_w_over_rtt()
        kelly_voice = (state.cwnd / (state.rtt * state.rtt)) / (denom * denom)
        alpha = self.alphas()[key]
        return kelly_voice + alpha / state.cwnd
