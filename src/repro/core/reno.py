"""Single-path TCP Reno congestion avoidance (the paper's "regular TCP").

Also usable as an *uncoupled* multipath controller: each subflow behaves as
an independent TCP connection.  This corresponds to the ``epsilon = 2`` end
of the design spectrum discussed in Section II of the paper — maximally
responsive and non-flappy, but it does not balance congestion and is unfair
to single-path users at shared bottlenecks.
"""

from __future__ import annotations

from .base import MultipathController


class RenoController(MultipathController):
    """Per-ACK increase of ``1/w_r`` on each subflow independently."""

    name = "reno"

    def increase_increment(self, key: int) -> float:
        state = self._subflows[key]
        return 1.0 / state.cwnd


#: Alias making the uncoupled-multipath reading explicit in experiment code.
UncoupledController = RenoController
