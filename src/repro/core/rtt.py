"""Jacobson/Karels smoothed RTT estimation, as used by the Linux kernel.

The paper's OLIA implementation reuses the kernel's smoothed RTT
(Section IV-B, reference [23]).  This module implements the classic
exponentially weighted estimator with gains ``alpha = 1/8`` for the
smoothed RTT and ``beta = 1/4`` for the mean deviation, and the standard
retransmission-timeout formula ``RTO = srtt + 4 * rttvar`` clamped to a
minimum (Linux uses 200 ms; we default to that).
"""

from __future__ import annotations


class RttEstimator:
    """Smoothed RTT and RTO tracking for one subflow."""

    #: Gain for the smoothed RTT update (Jacobson's 1/8).
    ALPHA = 1.0 / 8.0
    #: Gain for the mean-deviation update (Jacobson's 1/4).
    BETA = 1.0 / 4.0

    def __init__(self, initial_rtt: float | None = None,
                 min_rto: float = 0.2, max_rto: float = 60.0) -> None:
        if min_rto <= 0 or max_rto < min_rto:
            raise ValueError("need 0 < min_rto <= max_rto")
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.srtt: float | None = None
        self.rttvar: float = 0.0
        if initial_rtt is not None:
            self.update(initial_rtt)

    def update(self, sample: float) -> float:
        """Fold one RTT measurement into the estimate; returns ``srtt``."""
        if sample <= 0:
            raise ValueError("RTT samples must be positive")
        if self.srtt is None:
            self.srtt = sample
            self.rttvar = sample / 2.0
        else:
            err = sample - self.srtt
            self.srtt += self.ALPHA * err
            self.rttvar += self.BETA * (abs(err) - self.rttvar)
        return self.srtt

    @property
    def rto(self) -> float:
        """Current retransmission timeout, clamped to ``[min_rto, max_rto]``."""
        if self.srtt is None:
            return 1.0  # RFC 6298 initial RTO
        rto = self.srtt + 4.0 * self.rttvar
        return min(max(rto, self.min_rto), self.max_rto)
