"""Performance tracking: the ``BENCH_sweep.json`` report.

Measures the hot paths this repo optimises and writes a small JSON
report so the performance trajectory is tracked commit over commit:

* **fluid sweep throughput** — a 64-point parameter sweep integrated
  point-by-point (``loop`` backend) vs. stacked into one
  :class:`~repro.fluid.BatchFluidIntegrator` run (``batch`` backend),
  reported as sweep points per second.  The two backends must agree
  bitwise; the report records that check.
* **equilibrium sweep throughput** — the same sweep solved to its fixed
  point, point-by-point :func:`~repro.fluid.solve_fixed_point` vs. one
  :func:`~repro.fluid.solve_fixed_point_batch` call; same bitwise
  contract, same report shape.
* **engine event throughput** — events per second of the DES event loop,
  measured for the current engine ("after") and for a frozen copy of the
  seed engine ("before", inlined below) so the effect of the free-list +
  pre-bound-tuple optimisation stays visible.

Run via ``python -m repro bench`` (or ``benchmarks/bench_report.py``).
``REPRO_BENCH_SMOKE=1`` caps the workload sizes so CI smoke runs stay
fast; the capped numbers are labelled as such in the report.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np

from .fluid import (
    FluidNetwork,
    PowerLoss,
    SharpLoss,
    integrate,
    integrate_batch,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from .sim.engine import Simulator


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE=1`` caps the benchmark sizes."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


# -- fluid sweep -----------------------------------------------------------------

def sweep_networks(n_points: int, seed: int = 0) -> List[FluidNetwork]:
    """K scenario-style networks with randomised capacities and RTTs.

    One multipath user (two APs) competing with three TCP users on the
    second AP — the shape of most figure sweeps — with per-point
    capacities and RTTs drawn from a seeded generator.
    """
    rng = np.random.default_rng(seed)
    networks = []
    for _ in range(n_points):
        c1 = float(rng.uniform(100.0, 800.0))
        c2 = float(rng.uniform(100.0, 800.0))
        rtt1 = float(rng.uniform(0.02, 0.3))
        rtt2 = float(rng.uniform(0.02, 0.3))
        net = FluidNetwork()
        ap1 = net.add_link(SharpLoss(capacity=c1), name="AP1")
        ap2 = net.add_link(PowerLoss(capacity=c2, p_at_capacity=0.02),
                           name="AP2")
        mp = net.add_user("mp")
        net.add_route(mp, [ap1], rtt=rtt1)
        net.add_route(mp, [ap2], rtt=rtt2)
        for i in range(3):
            user = net.add_user(f"tcp{i}")
            net.add_route(user, [ap2], rtt=rtt2)
        networks.append(net)
    return networks


def bench_fluid_sweep(*, n_points: int = 64, t_end: float = 5.0,
                      dt: float = 2e-3) -> Dict[str, object]:
    """Time a fluid sweep on the loop and batch backends."""
    rules = {0: "olia", 1: "tcp", 2: "tcp", 3: "tcp"}
    networks = sweep_networks(n_points)

    start = time.perf_counter()
    sequential = [integrate(net, rules, t_end=t_end, dt=dt)
                  for net in networks]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = integrate_batch(networks, rules, t_end=t_end, dt=dt)
    batch_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(sequential[k].rates, batch.trajectory(k).rates)
        for k in range(n_points))
    return {
        "n_points": n_points,
        "t_end": t_end,
        "dt": dt,
        "loop_seconds": round(loop_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "loop_points_per_sec": round(n_points / loop_seconds, 2),
        "batch_points_per_sec": round(n_points / batch_seconds, 2),
        "speedup": round(loop_seconds / batch_seconds, 2),
        "bitwise_equal": bitwise_equal,
    }


def bench_equilibrium_sweep(*, n_points: int = 64,
                            tol: float = 1e-8) -> Dict[str, object]:
    """Time a fixed-point sweep on the loop and batch solvers."""
    rules = {0: "olia", 1: "tcp", 2: "tcp", 3: "tcp"}
    networks = sweep_networks(n_points)

    start = time.perf_counter()
    sequential = [solve_fixed_point(net, rules, floor_packets=1.0, tol=tol)
                  for net in networks]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0,
                                    tol=tol)
    batch_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(sequential[k].rates, batch.rates[k])
        and sequential[k].iterations == int(batch.iterations[k])
        for k in range(n_points))
    return {
        "n_points": n_points,
        "tol": tol,
        "loop_seconds": round(loop_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "loop_points_per_sec": round(n_points / loop_seconds, 2),
        "batch_points_per_sec": round(n_points / batch_seconds, 2),
        "speedup": round(loop_seconds / batch_seconds, 2),
        "bitwise_equal": bitwise_equal,
    }


# -- engine ---------------------------------------------------------------------

class _SeedEvent:
    """Event of the seed engine (pre free-list), kept for the baseline."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time, fn, args):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _SeedSimulator:
    """Frozen verbatim copy of the seed DES engine: one Event allocation
    per schedule, heap entries ``(time, seq, event)`` dispatched via
    attribute lookups.  Serves as the "before" in the engine benchmark.
    """

    def __init__(self):
        self._heap = []
        self._now = 0.0
        self._counter = 0
        self._processed = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        event = _SeedEvent(time, fn, args)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, event))
        return event

    def run_until_empty(self, max_events=10_000_000):
        heap = self._heap
        budget = max_events
        while heap and budget > 0:
            time_, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time_
            self._processed += 1
            budget -= 1
            event.fn(*event.args)


def _engine_events_per_sec(sim_factory, n_events: int) -> float:
    sim = sim_factory()
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < n_events:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run_until_empty()
    elapsed = time.perf_counter() - start
    assert counter[0] == n_events
    return n_events / elapsed


def bench_engine(*, n_events: int = 200_000,
                 repeats: int = 3) -> Dict[str, object]:
    """Events/sec of the seed engine ("before") vs the current one."""
    before = max(_engine_events_per_sec(_SeedSimulator, n_events)
                 for _ in range(repeats))
    after = max(_engine_events_per_sec(Simulator, n_events)
                for _ in range(repeats))
    return {
        "n_events": n_events,
        "before_events_per_sec": round(before),
        "after_events_per_sec": round(after),
        "speedup": round(after / before, 3),
    }


# -- report ---------------------------------------------------------------------

def run_bench(output_path: str | None = None, *,
              smoke: bool | None = None) -> Dict[str, object]:
    """Run both benchmarks and write ``BENCH_sweep.json``.

    ``smoke`` (default: the ``REPRO_BENCH_SMOKE`` env var) caps the sweep
    to 8 points and the engine run to 20k events.
    """
    if smoke is None:
        smoke = smoke_mode()
    if smoke:
        fluid = bench_fluid_sweep(n_points=8, t_end=1.0)
        equilibrium = bench_equilibrium_sweep(n_points=8)
        engine = bench_engine(n_events=20_000, repeats=1)
    else:
        fluid = bench_fluid_sweep()
        equilibrium = bench_equilibrium_sweep()
        engine = bench_engine()
    report = {
        "benchmark": "BENCH_sweep",
        "smoke": smoke,
        "python": platform.python_version(),
        "fluid_sweep": fluid,
        "equilibrium_sweep": equilibrium,
        "engine": engine,
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_bench` output."""
    fluid = report["fluid_sweep"]
    equilibrium = report["equilibrium_sweep"]
    engine = report["engine"]
    lines = [
        f"fluid sweep ({fluid['n_points']} points, t_end={fluid['t_end']}s):",
        f"  loop backend : {fluid['loop_points_per_sec']:>10} points/s",
        f"  batch backend: {fluid['batch_points_per_sec']:>10} points/s"
        f"  ({fluid['speedup']}x, bitwise_equal={fluid['bitwise_equal']})",
        f"equilibrium sweep ({equilibrium['n_points']} points, "
        f"tol={equilibrium['tol']}):",
        f"  loop backend : {equilibrium['loop_points_per_sec']:>10} points/s",
        f"  batch backend: {equilibrium['batch_points_per_sec']:>10} points/s"
        f"  ({equilibrium['speedup']}x, "
        f"bitwise_equal={equilibrium['bitwise_equal']})",
        f"engine ({engine['n_events']} events):",
        f"  before: {engine['before_events_per_sec']:>10} events/s",
        f"  after : {engine['after_events_per_sec']:>10} events/s"
        f"  ({engine['speedup']}x)",
    ]
    if report.get("smoke"):
        lines.append("  (smoke mode: sizes capped by REPRO_BENCH_SMOKE)")
    return "\n".join(lines)
