"""Performance tracking: the ``BENCH_sweep.json`` report.

Measures the hot paths this repo optimises and writes a small JSON
report so the performance trajectory is tracked commit over commit:

* **fluid sweep throughput** — a 64-point parameter sweep integrated
  point-by-point (``loop`` backend) vs. stacked into one
  :class:`~repro.fluid.BatchFluidIntegrator` run (``batch`` backend),
  reported as sweep points per second.  The two backends must agree
  bitwise; the report records that check.
* **equilibrium sweep throughput** — the same sweep solved to its fixed
  point, point-by-point :func:`~repro.fluid.solve_fixed_point` vs. one
  :func:`~repro.fluid.solve_fixed_point_batch` call; same bitwise
  contract, same report shape.
* **BALIA rows** (``fluid_sweep_balia``, ``equilibrium_sweep_balia``) —
  both sweeps rerun with the registry's BALIA spec as the multipath
  algorithm, so every algorithm the cross-layer registry ships is held
  to the same bitwise/speedup gate (``benchmarks/check_bench.py``
  validates them like the paper's algorithms).
* **engine event throughput** — events per second of the DES event loop,
  measured for the current engine ("after") and for a frozen copy of the
  seed engine ("before", inlined below) so the effect of the free-list +
  pre-bound-tuple optimisation stays visible.  Three workloads:

  - ``engine`` — a bare self-rescheduling event chain with an empty
    pending set (the seed microbench, kept for trajectory continuity);
  - ``engine_loaded`` — the same chain with tens of thousands of
    far-future timers pending, the realistic regime of a large DES
    sweep: a binary heap pays ``O(log n)`` per operation against that
    population, the timer wheel does not;
  - ``timer_churn`` — RTO-style deadline rearming: N concurrent timers
    each pushed out on every driver tick.  "Before" is the naive
    cancel-and-reschedule idiom on the seed engine — the cost any
    client pays unless it hand-rolls the deadline-move trick (as the
    seed's ``tcp.py`` did, locally, for its one timer); "after" is
    ``Timer.arm_at``, which builds that trick into the engine so every
    timer gets it (a monotone rearm is two attribute writes).  The
    speedup therefore measures what the Timer API saves a straight-
    forward client, not a regression the seed's TCP actually suffered.

  The "after" engine in all three is the *default* ``Simulator()`` —
  since the adaptive scheduler became the default, that is
  ``scheduler="auto"``, so these sections also track what a plain
  client gets without picking a backend.

* **adaptive scheduler overhead** (``engine_auto``) — the loaded-chain
  workload run on all three backends; the recorded ``speedup`` is
  ``auto`` vs the fixed ``wheel``, i.e. what the auto backend costs
  (or saves) in the regime where it must have promoted.  A value
  drifting well below 1.0 means the sampling/migration machinery — or
  a mis-calibrated crossover — is eating the wheel's win.

Run via ``python -m repro bench`` (or ``benchmarks/bench_report.py``).
``REPRO_BENCH_SMOKE=1`` caps the workload sizes so CI smoke runs stay
fast; the capped numbers are labelled as such in the report.
"""

from __future__ import annotations

import heapq
import json
import os
import platform
import time
from typing import Dict, List

import numpy as np

from .fluid import (
    FluidNetwork,
    PowerLoss,
    SharpLoss,
    integrate,
    integrate_batch,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from .sim.engine import Simulator
from .sim.scheduler import COMPILED_AVAILABLE, calibrate


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE=1`` caps the benchmark sizes."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


# -- fluid sweep -----------------------------------------------------------------

def sweep_networks(n_points: int, seed: int = 0) -> List[FluidNetwork]:
    """K scenario-style networks with randomised capacities and RTTs.

    One multipath user (two APs) competing with three TCP users on the
    second AP — the shape of most figure sweeps — with per-point
    capacities and RTTs drawn from a seeded generator.
    """
    rng = np.random.default_rng(seed)
    networks = []
    for _ in range(n_points):
        c1 = float(rng.uniform(100.0, 800.0))
        c2 = float(rng.uniform(100.0, 800.0))
        rtt1 = float(rng.uniform(0.02, 0.3))
        rtt2 = float(rng.uniform(0.02, 0.3))
        net = FluidNetwork()
        ap1 = net.add_link(SharpLoss(capacity=c1), name="AP1")
        ap2 = net.add_link(PowerLoss(capacity=c2, p_at_capacity=0.02),
                           name="AP2")
        mp = net.add_user("mp")
        net.add_route(mp, [ap1], rtt=rtt1)
        net.add_route(mp, [ap2], rtt=rtt2)
        for i in range(3):
            user = net.add_user(f"tcp{i}")
            net.add_route(user, [ap2], rtt=rtt2)
        networks.append(net)
    return networks


def bench_fluid_sweep(*, n_points: int = 64, t_end: float = 5.0,
                      dt: float = 2e-3,
                      algorithm: str = "olia") -> Dict[str, object]:
    """Time a fluid sweep on the loop and batch backends.

    ``algorithm`` is the multipath user's congestion control (any
    fluid-capable registry name); the ``*_balia`` report sections rerun
    this bench with BALIA so the registry's newest algorithm is held to
    the same bitwise/speedup gate as the paper's.
    """
    rules = {0: algorithm, 1: "tcp", 2: "tcp", 3: "tcp"}
    networks = sweep_networks(n_points)

    start = time.perf_counter()
    sequential = [integrate(net, rules, t_end=t_end, dt=dt)
                  for net in networks]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = integrate_batch(networks, rules, t_end=t_end, dt=dt)
    batch_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(sequential[k].rates, batch.trajectory(k).rates)
        for k in range(n_points))
    return {
        "algorithm": algorithm,
        "n_points": n_points,
        "t_end": t_end,
        "dt": dt,
        "loop_seconds": round(loop_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "loop_points_per_sec": round(n_points / loop_seconds, 2),
        "batch_points_per_sec": round(n_points / batch_seconds, 2),
        "speedup": round(loop_seconds / batch_seconds, 2),
        "bitwise_equal": bitwise_equal,
    }


def bench_equilibrium_sweep(*, n_points: int = 64, tol: float = 1e-8,
                            algorithm: str = "olia") -> Dict[str, object]:
    """Time a fixed-point sweep on the loop and batch solvers."""
    rules = {0: algorithm, 1: "tcp", 2: "tcp", 3: "tcp"}
    networks = sweep_networks(n_points)

    start = time.perf_counter()
    sequential = [solve_fixed_point(net, rules, floor_packets=1.0, tol=tol)
                  for net in networks]
    loop_seconds = time.perf_counter() - start

    start = time.perf_counter()
    batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0,
                                    tol=tol)
    batch_seconds = time.perf_counter() - start

    bitwise_equal = all(
        np.array_equal(sequential[k].rates, batch.rates[k])
        and sequential[k].iterations == int(batch.iterations[k])
        for k in range(n_points))
    return {
        "algorithm": algorithm,
        "n_points": n_points,
        "tol": tol,
        "loop_seconds": round(loop_seconds, 4),
        "batch_seconds": round(batch_seconds, 4),
        "loop_points_per_sec": round(n_points / loop_seconds, 2),
        "batch_points_per_sec": round(n_points / batch_seconds, 2),
        "speedup": round(loop_seconds / batch_seconds, 2),
        "bitwise_equal": bitwise_equal,
    }


# -- engine ---------------------------------------------------------------------

class _SeedEvent:
    """Event of the seed engine (pre free-list), kept for the baseline."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time, fn, args):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _SeedSimulator:
    """Frozen verbatim copy of the seed DES engine: one Event allocation
    per schedule, heap entries ``(time, seq, event)`` dispatched via
    attribute lookups.  Serves as the "before" in the engine benchmark.
    """

    def __init__(self):
        self._heap = []
        self._now = 0.0
        self._counter = 0
        self._processed = 0

    @property
    def now(self):
        return self._now

    def schedule(self, delay, fn, *args):
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time, fn, *args):
        if time < self._now:
            raise ValueError(
                f"cannot schedule at {time} before now ({self._now})")
        event = _SeedEvent(time, fn, args)
        self._counter += 1
        heapq.heappush(self._heap, (time, self._counter, event))
        return event

    def run(self, until):
        heap = self._heap
        while heap and heap[0][0] <= until:
            time_, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time_
            self._processed += 1
            event.fn(*event.args)
        self._now = until

    def run_until_empty(self, max_events=10_000_000):
        heap = self._heap
        budget = max_events
        while heap and budget > 0:
            time_, _, event = heapq.heappop(heap)
            if event.cancelled:
                continue
            self._now = time_
            self._processed += 1
            budget -= 1
            event.fn(*event.args)


def _noop():
    pass


def _engine_events_per_sec(sim_factory, n_events: int,
                           n_pending: int = 0) -> float:
    sim = sim_factory()
    # Optional background load: far-future timers that never fire inside
    # the measured window (they sit between 1 s and 60 s; the chain ends
    # well before).  A heap pays O(log n_pending) per chain operation
    # against them; the wheel parks them in its outer levels.
    for i in range(n_pending):
        sim.schedule(1.0 + i * (59.0 / n_pending), _noop)
    counter = [0]

    def tick():
        counter[0] += 1
        if counter[0] < n_events:
            sim.schedule(1e-6, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    if n_pending:
        sim.run(until=0.99)
    else:
        sim.run_until_empty()
    elapsed = time.perf_counter() - start
    assert counter[0] == n_events
    return n_events / elapsed


def bench_engine(*, n_events: int = 200_000,
                 repeats: int = 3) -> Dict[str, object]:
    """Events/sec of the seed engine ("before") vs the current one."""
    before = max(_engine_events_per_sec(_SeedSimulator, n_events)
                 for _ in range(repeats))
    after = max(_engine_events_per_sec(Simulator, n_events)
                for _ in range(repeats))
    return {
        "n_events": n_events,
        "before_events_per_sec": round(before),
        "after_events_per_sec": round(after),
        "speedup": round(after / before, 3),
    }


def bench_engine_loaded(*, n_events: int = 200_000,
                        n_pending: int = 20_000,
                        repeats: int = 3) -> Dict[str, object]:
    """Events/sec with ``n_pending`` far-future timers parked.

    The regime of every large DES run: thousands of RTO/pacing timers
    pending while the hot ACK-clock churns.  The chain workload is the
    same as :func:`bench_engine`; only the pending population differs.
    """
    before = max(
        _engine_events_per_sec(_SeedSimulator, n_events, n_pending)
        for _ in range(repeats))
    after = max(_engine_events_per_sec(Simulator, n_events, n_pending)
                for _ in range(repeats))
    return {
        "n_events": n_events,
        "n_pending": n_pending,
        "before_events_per_sec": round(before),
        "after_events_per_sec": round(after),
        "speedup": round(after / before, 3),
    }


def bench_engine_auto(*, n_events: int = 200_000,
                      n_pending: int = 20_000,
                      repeats: int = 3) -> Dict[str, object]:
    """Loaded-chain events/sec of heap, wheel and auto backends.

    In this regime (tens of thousands pending) the adaptive backend
    must have promoted itself to the wheel, so ``speedup`` — auto
    relative to the fixed wheel — measures the whole cost of the
    auto machinery: population sampling plus the one heap-to-wheel
    migration, amortised over the run.  ~1.0 is the healthy value.
    """
    def backend(name):
        return max(
            _engine_events_per_sec(lambda: Simulator(name), n_events,
                                   n_pending)
            for _ in range(repeats))

    heap = backend("heap")
    wheel = backend("wheel")
    auto = backend("auto")
    return {
        "n_events": n_events,
        "n_pending": n_pending,
        "heap_events_per_sec": round(heap),
        "wheel_events_per_sec": round(wheel),
        "auto_events_per_sec": round(auto),
        "speedup": round(auto / wheel, 3),
    }


def bench_engine_compiled(*, n_events: int = 200_000,
                          n_pending: int = 20_000,
                          repeats: int = 3) -> Dict[str, object]:
    """Compiled EngineCore vs the pure-python loop, loaded chain.

    Isolates what the C extension itself buys (``engine`` /
    ``engine_loaded`` track the default engine against the *seed*, so
    they absorb the compiled speedup without attributing it).  Both
    sides run the :func:`bench_engine_loaded` workload on the default
    ``auto`` backend; only the ``compiled=`` flag differs.  When the
    extension is not built the section records ``available: false``
    and the gate in ``benchmarks/check_bench.py`` skips it — a
    pure-python checkout is degraded, not broken.

    The section also records the self-calibrated crossover band of
    both cost models (pure and compiled), so a calibration regression
    — e.g. the compiled wheel losing its flat-cost edge — shows up in
    the report history.
    """
    result: Dict[str, object] = {
        "available": COMPILED_AVAILABLE,
        "n_events": n_events,
        "n_pending": n_pending,
    }
    if not COMPILED_AVAILABLE:
        return result
    pure = max(
        _engine_events_per_sec(lambda: Simulator(compiled=False),
                               n_events, n_pending)
        for _ in range(repeats))
    compiled = max(
        _engine_events_per_sec(lambda: Simulator(compiled=True),
                               n_events, n_pending)
        for _ in range(repeats))
    pure_cal = calibrate(compiled=False)
    compiled_cal = calibrate(compiled=True)
    result.update({
        "pure_events_per_sec": round(pure),
        "compiled_events_per_sec": round(compiled),
        "speedup": round(compiled / pure, 3),
        "calibration": {
            "pure": {"source": pure_cal["source"],
                     "promote": pure_cal["promote"],
                     "demote": pure_cal["demote"]},
            "compiled": {"source": compiled_cal["source"],
                         "promote": compiled_cal["promote"],
                         "demote": compiled_cal["demote"]},
        },
    })
    return result


_CHURN_PERIOD = 1e-3   # driver tick: one "ACK" per ms
_CHURN_RTO = 0.3       # deadline pushed this far out on every tick


def _timer_churn_seed_ops_per_sec(n_timers: int, n_ticks: int) -> float:
    """Seed engine, naive idiom: schedule fresh + lazily cancel old."""
    sim = _SeedSimulator()
    events = [None] * n_timers
    counter = [0]

    def tick():
        now = sim.now
        deadline = now + _CHURN_RTO
        for i in range(n_timers):
            event = events[i]
            if event is not None:
                event.cancel()
            events[i] = sim.schedule_at(deadline, _noop)
        counter[0] += 1
        if counter[0] < n_ticks:
            sim.schedule(_CHURN_PERIOD, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run_until_empty()
    elapsed = time.perf_counter() - start
    assert counter[0] == n_ticks
    return n_timers * n_ticks / elapsed


def _timer_churn_timer_ops_per_sec(n_timers: int, n_ticks: int) -> float:
    """Current engine: one rearmable Timer per deadline."""
    sim = Simulator()
    timers = [sim.timer(_noop) for _ in range(n_timers)]
    counter = [0]

    def tick():
        deadline = sim.now + _CHURN_RTO
        for timer in timers:
            timer.arm_at(deadline)
        counter[0] += 1
        if counter[0] < n_ticks:
            sim.schedule(_CHURN_PERIOD, tick)

    sim.schedule(0.0, tick)
    start = time.perf_counter()
    sim.run_until_empty()
    elapsed = time.perf_counter() - start
    assert counter[0] == n_ticks
    return n_timers * n_ticks / elapsed


def bench_timer_churn(*, n_timers: int = 32, n_ticks: int = 2000,
                      repeats: int = 3) -> Dict[str, object]:
    """Rearms/sec of RTO-style deadline churn, naive idiom vs Timer.

    Every driver tick (1 ms, the ACK clock) pushes all ``n_timers``
    deadlines out by 300 ms — the exact shape of TCP's retransmission
    timer under steady ACKs.  "Before" is the naive idiom on the seed
    engine — schedule a fresh event, lazily cancel the old one — which
    leaves ~300 ticks' worth of tombstones per timer in the heap.  The
    seed's own tcp.py dodged that cost by hand-rolling a deadline-move
    dance for its single RTO timer; ``Timer.arm_at`` is that dance
    promoted into the engine (a monotone rearm is two attribute writes,
    the scheduler is only touched when a wakeup expires), so the ratio
    quantifies what the Timer API gives every client for free rather
    than a cost the seed TCP itself paid.
    """
    before = max(_timer_churn_seed_ops_per_sec(n_timers, n_ticks)
                 for _ in range(repeats))
    after = max(_timer_churn_timer_ops_per_sec(n_timers, n_ticks)
                for _ in range(repeats))
    return {
        "n_timers": n_timers,
        "n_ticks": n_ticks,
        "before_rearms_per_sec": round(before),
        "after_rearms_per_sec": round(after),
        "speedup": round(after / before, 3),
    }


# -- report ---------------------------------------------------------------------

def run_bench(output_path: str | None = None, *,
              smoke: bool | None = None) -> Dict[str, object]:
    """Run both benchmarks and write ``BENCH_sweep.json``.

    ``smoke`` (default: the ``REPRO_BENCH_SMOKE`` env var) caps the sweep
    to 8 points and the engine run to 20k events.
    """
    if smoke is None:
        smoke = smoke_mode()
    if smoke:
        fluid = bench_fluid_sweep(n_points=8, t_end=1.0)
        equilibrium = bench_equilibrium_sweep(n_points=8)
        fluid_balia = bench_fluid_sweep(n_points=8, t_end=1.0,
                                        algorithm="balia")
        equilibrium_balia = bench_equilibrium_sweep(n_points=8,
                                                    algorithm="balia")
        engine = bench_engine(n_events=20_000, repeats=1)
        loaded = bench_engine_loaded(n_events=20_000, n_pending=5_000,
                                     repeats=1)
        auto = bench_engine_auto(n_events=20_000, n_pending=5_000,
                                 repeats=1)
        compiled = bench_engine_compiled(n_events=20_000,
                                         n_pending=5_000, repeats=1)
        churn = bench_timer_churn(n_timers=32, n_ticks=300, repeats=1)
    else:
        fluid = bench_fluid_sweep()
        equilibrium = bench_equilibrium_sweep()
        fluid_balia = bench_fluid_sweep(n_points=32, t_end=2.5,
                                        algorithm="balia")
        equilibrium_balia = bench_equilibrium_sweep(n_points=32,
                                                    algorithm="balia")
        engine = bench_engine()
        loaded = bench_engine_loaded()
        auto = bench_engine_auto()
        compiled = bench_engine_compiled()
        churn = bench_timer_churn()
    report = {
        "benchmark": "BENCH_sweep",
        "smoke": smoke,
        "python": platform.python_version(),
        "fluid_sweep": fluid,
        "equilibrium_sweep": equilibrium,
        "fluid_sweep_balia": fluid_balia,
        "equilibrium_sweep_balia": equilibrium_balia,
        "engine": engine,
        "engine_loaded": loaded,
        "engine_auto": auto,
        "engine_compiled": compiled,
        "timer_churn": churn,
    }
    if output_path is not None:
        with open(output_path, "w") as fh:
            json.dump(report, fh, indent=2)
            fh.write("\n")
    return report


def format_report(report: Dict[str, object]) -> str:
    """Human-readable summary of :func:`run_bench` output."""
    engine = report["engine"]
    loaded = report["engine_loaded"]
    auto = report["engine_auto"]
    churn = report["timer_churn"]
    lines = []
    # One block per sweep section — the balia rows (and any future
    # per-algorithm rows) render from the same template.
    for title, key in (("fluid sweep", "fluid_sweep"),
                       ("equilibrium sweep", "equilibrium_sweep"),
                       ("fluid sweep, balia", "fluid_sweep_balia"),
                       ("equilibrium sweep, balia",
                        "equilibrium_sweep_balia")):
        sweep = report[key]
        size = (f"t_end={sweep['t_end']}s" if "t_end" in sweep
                else f"tol={sweep['tol']}")
        lines += [
            f"{title} ({sweep['n_points']} points, {size}):",
            f"  loop backend : {sweep['loop_points_per_sec']:>10}"
            " points/s",
            f"  batch backend: {sweep['batch_points_per_sec']:>10}"
            f" points/s  ({sweep['speedup']}x, "
            f"bitwise_equal={sweep['bitwise_equal']})",
        ]
    lines += [
        f"engine ({engine['n_events']} events, empty pending set):",
        f"  before: {engine['before_events_per_sec']:>10} events/s",
        f"  after : {engine['after_events_per_sec']:>10} events/s"
        f"  ({engine['speedup']}x)",
        f"engine loaded ({loaded['n_events']} events, "
        f"{loaded['n_pending']} pending timers):",
        f"  before: {loaded['before_events_per_sec']:>10} events/s",
        f"  after : {loaded['after_events_per_sec']:>10} events/s"
        f"  ({loaded['speedup']}x)",
        f"engine auto ({auto['n_events']} events, "
        f"{auto['n_pending']} pending timers):",
        f"  heap  : {auto['heap_events_per_sec']:>10} events/s",
        f"  wheel : {auto['wheel_events_per_sec']:>10} events/s",
        f"  auto  : {auto['auto_events_per_sec']:>10} events/s"
        f"  ({auto['speedup']}x vs wheel)",
    ]
    comp = report.get("engine_compiled")
    if comp is not None:
        if comp.get("available"):
            cal = comp["calibration"]
            lines += [
                f"engine compiled ({comp['n_events']} events, "
                f"{comp['n_pending']} pending timers):",
                f"  pure    : {comp['pure_events_per_sec']:>10}"
                " events/s",
                f"  compiled: {comp['compiled_events_per_sec']:>10}"
                f" events/s  ({comp['speedup']}x)",
                f"  calibration: pure promote={cal['pure']['promote']}"
                f" ({cal['pure']['source']}), compiled "
                f"promote={cal['compiled']['promote']}"
                f" ({cal['compiled']['source']})",
            ]
        else:
            lines.append("engine compiled: extension not built "
                         "(pure-python fallback)")
    lines += [
        f"timer churn ({churn['n_timers']} timers x "
        f"{churn['n_ticks']} ticks):",
        f"  before: {churn['before_rearms_per_sec']:>10} rearms/s",
        f"  after : {churn['after_rearms_per_sec']:>10} rearms/s"
        f"  ({churn['speedup']}x)",
    ]
    if report.get("smoke"):
        lines.append("  (smoke mode: sizes capped by REPRO_BENCH_SMOKE)")
    return "\n".join(lines)
