"""Fixed points of the fluid model and verification of Theorem 1.

Two complementary tools:

* *per-user allocation rules* — given route loss probabilities, the rate
  vector each algorithm equilibrates to: the TCP square-root law, LIA's
  Eq. (2), OLIA's best-paths-only allocation (Theorem 1), and the
  ``epsilon``-family of Section II (``x_r`` proportional to
  ``p_r**(-1/epsilon)``) that interpolates between full resource pooling
  (``epsilon -> 0``) and uncoupled TCP-like spreading (``epsilon = 2``).

* a damped *fixed-point solver* that iterates allocation rules against the
  network's loss models until rates and losses agree — the analytical
  counterpart of running the testbed to equilibrium.

Batching: every allocation rule works along the **last axis** of its
arguments, so the same code evaluates one scenario (``(n_routes,)``
vectors) or K stacked sweep points (``(K, n_routes)`` matrices).
:func:`solve_fixed_point_batch` exploits this to iterate all K points of
a parameter sweep in lock-step, freezing each point the moment it
converges so every row is **bitwise-identical** to what a sequential
:func:`solve_fixed_point` call on that point alone would return (the
same contract :class:`~repro.fluid.BatchFluidIntegrator` keeps for the
time-domain integrator).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from .network import BatchFluidNetwork

_EPS = 1e-15

#: Length (iterations) of the stagnation-detection window in the
#: fixed-point solvers: every window, a point's best residual must
#: have improved by at least ``1 - _STALL_FACTOR`` or its step size
#: drops a ladder level.  Windows shorter than 150 misread bursty
#: convergers (wVegas near a Wardrop tie improves in plateaus
#: punctuated by drops) as stagnant and over-anneal them.
_STALL_WINDOW = 150
#: Minimum relative improvement per window that counts as progress.  A
#: genuine converger loses ≥ 2% of its residual every 150 iterations
#: (that allows >100k-iteration convergence tails); an orbiting point
#: plateaus and fails the check no matter how small its step size is.
_STALL_FACTOR = 0.98
#: Per-level step-size reduction of the annealing ladder.  Halving is
#: the right pace: quartering overshoots — it skips the band of ``g``
#: where the post-anneal convergence factor ``|1 - g (1 - s)|`` is
#: small and lands points in the slow-stable region near the floor.
_ANNEAL_STEP = 0.5
#: Largest total step-size reduction annealing may apply: step sizes
#: anneal from ``damping`` down to ``damping / _MAX_ANNEALING``.
_MAX_ANNEALING = 1024.0
#: Consecutive window boundaries a point may spend behind the pace
#: line (the log-linear trajectory from 1 to ``tol`` over ``max_iter``)
#: while also improving slower than the on-pace per-window rate before
#: it is frozen as a budget miss.  Annealing a point resets its strike
#: count: the new step size gets a fresh chance to restore the pace.
_PACE_STRIKES = 3
#: Unit-circle margin of the tie-cycle annealing exemption.  A point
#: whose window AR(1) step autocorrelation sits in
#: ``(-_TIE_LAMBDA, 0)`` alternates but contracts on average — the
#: signature of a best-set tie cycle collapsing at fixed step size —
#: and is spared annealing and pace strikes.  Saturated period-2
#: orbits (the case annealing exists for) repeat exactly, so their
#: estimate hugs -1 and stays outside the exemption band.
_TIE_LAMBDA = 0.97


def tcp_rate(p, rtt):
    """TCP loss-throughput formula ``x = sqrt(2/p) / rtt`` (pkt/s).

    Parameters
    ----------
    p : float or ndarray
        Loss probability (clamped below at a tiny positive value).
    rtt : float or ndarray
        Round-trip time in seconds; broadcast against ``p``.

    Returns
    -------
    float or ndarray
        The equilibrium rate; a plain ``float`` for scalar inputs, an
        array of the broadcast shape otherwise.
    """
    rates = np.sqrt(2.0 / np.maximum(p, _EPS)) / np.asarray(rtt, dtype=float)
    if np.ndim(rates) == 0:
        return float(rates)
    return rates


def best_path_rate(p, rtt):
    """Rate of a regular TCP user on the best of the given paths.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_paths)``
        Per-path loss probabilities and RTTs; paths live on the last
        axis.

    Returns
    -------
    float or ndarray, shape ``(...)``
        ``max_r sqrt(2/p_r)/rtt_r`` reduced along the last axis; a
        ``float`` for 1-D input.
    """
    rates = np.max(_tcp_rates(p, rtt), axis=-1)
    if np.ndim(rates) == 0:
        return float(rates)
    return rates


def _tcp_rates(p, rtt) -> np.ndarray:
    """Per-path TCP rates with the loss floor applied (vectorized)."""
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    return np.sqrt(2.0 / p) / rtt


def lia_allocation(p, rtt) -> np.ndarray:
    """LIA's fixed-point allocation, Eq. (2) of the paper.

    Windows are proportional to ``1/p_r`` and the total rate equals the
    TCP rate on the best path: ``w_r = (1/p_r) * best / sum_p 1/(rtt_p p_p)``
    with ``x_r = w_r / rtt_r``.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs; routes live on the last axis,
        leading axes are independent sweep points.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        Per-route rates; each leading-axis row is computed exactly as a
        1-D call on that row would.
    """
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    best = np.max(np.sqrt(2.0 / p) / rtt, axis=-1, keepdims=True)
    denom = np.sum(1.0 / (rtt * p), axis=-1, keepdims=True)
    windows = (1.0 / p) * best / denom
    return windows / rtt


def olia_allocation(p, rtt, floor=None, tie_tolerance: float = 1e-6
                    ) -> np.ndarray:
    """OLIA's fixed point per Theorem 1: best paths only.

    Only the routes maximizing ``sqrt(2/p_r)/rtt_r`` carry traffic; the
    total equals the TCP rate on the best path, split equally among tied
    best paths.  Non-best routes receive the probing ``floor`` (0 by
    default), matching the minimum-window behaviour of the implementation.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs (routes on the last axis).
    floor : array_like, optional
        Probing rate assigned to non-best routes; broadcast against
        ``p``.  ``None`` means zero.
    tie_tolerance : float
        Relative tolerance for counting a path as tied-best.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        Per-route rates.
    """
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    rates = np.sqrt(2.0 / p) / rtt
    best = np.max(rates, axis=-1, keepdims=True)
    best_set = rates >= best * (1.0 - tie_tolerance)
    n_best = np.sum(best_set, axis=-1, keepdims=True)
    if floor is None:
        base = np.zeros_like(p)
    else:
        base = np.broadcast_to(np.asarray(floor, dtype=float), p.shape)
    return np.where(best_set, best / n_best, base)


def epsilon_family_allocation(p, rtt, epsilon) -> np.ndarray:
    """The ``epsilon``-family of Section II: ``x_r ~ p_r**(-1/epsilon)``.

    The total rate is normalised to the TCP rate on the best path (design
    goals 1-2).  ``epsilon = 1`` reproduces LIA's Eq. (2) when RTTs are
    equal; ``epsilon -> 0`` concentrates on the least-lossy path (fully
    coupled); ``epsilon = 2`` spreads like uncoupled TCP.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs (routes on the last axis).
    epsilon : float or array_like
        Coupling parameter, non-negative.  An array (broadcast against
        ``p``, e.g. shape ``(K, 1)`` for per-sweep-point epsilons) must
        be strictly positive — per-point batches handle the
        ``epsilon = 0`` (OLIA) points through :func:`olia_allocation`
        separately, because the two formulas do not mix row-wise.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        Per-route rates; each row is bitwise-identical to a scalar call
        with that row's epsilon.
    """
    epsilon = np.asarray(epsilon, dtype=float)
    if np.any(epsilon < 0):
        raise ValueError("epsilon must be non-negative")
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    if epsilon.ndim == 0:
        if epsilon == 0:
            return olia_allocation(p, rtt)
    elif np.any(epsilon == 0):
        raise ValueError(
            "per-point epsilon arrays must be strictly positive "
            "(route epsilon=0 points through the OLIA rule instead)")
    total = np.max(np.sqrt(2.0 / p) / rtt, axis=-1, keepdims=True)
    weights = p ** (-1.0 / epsilon)
    return total * weights / np.sum(weights, axis=-1, keepdims=True)


class PerPointEpsilonRule:
    """An epsilon-family rule with one epsilon per batched sweep point.

    Lets a whole epsilon grid solve as a single
    :func:`solve_fixed_point_batch` call: the rule broadcasts its
    ``(K,)`` epsilon vector against the ``(K, n_routes)`` state, so row
    ``k`` computes exactly what a scalar ``epsilon=epsilons[k]`` rule
    would.  Implements the ``take_points`` protocol so the solver can
    compact frozen rows out of the iteration.
    """

    def __init__(self, epsilons) -> None:
        self.epsilons = np.atleast_1d(np.asarray(epsilons, dtype=float))
        if np.any(self.epsilons <= 0):
            raise ValueError("per-point epsilons must be positive")

    def __call__(self, p, rtt) -> np.ndarray:
        return epsilon_family_allocation(p, rtt, self.epsilons[:, None])

    def take_points(self, points) -> "PerPointEpsilonRule":
        """The same rule restricted to a subset of batch points."""
        return PerPointEpsilonRule(self.epsilons[points])


class PerPointRuleSet:
    """A different allocation rule for every batched sweep point.

    Where :class:`PerPointEpsilonRule` varies one *parameter* across the
    K-dimension, this varies the *algorithm*: row ``k`` of the batch is
    evaluated by ``rules[k]``, so heterogeneous queries — one user
    running OLIA here, BALIA there — still solve as a single
    :func:`solve_fixed_point_batch` call.  Rows sharing the same rule
    object evaluate together in one vectorized call; allocation rules
    operate row-wise along the last axis, so each row's numbers are
    bitwise identical to a standalone K=1 solve with its own rule.
    Implements the ``take_points`` compaction protocol.
    """

    def __init__(self, rules) -> None:
        self.rules = list(rules)
        if not self.rules:
            raise ValueError("PerPointRuleSet needs at least one rule")

    def __call__(self, p, rtt) -> np.ndarray:
        p = np.atleast_2d(np.asarray(p, dtype=float))
        rtt = np.atleast_2d(np.asarray(rtt, dtype=float))
        if p.shape[0] != len(self.rules):
            raise ValueError(
                f"batch has {p.shape[0]} points but rule set has "
                f"{len(self.rules)} rules")
        out = np.empty_like(p)
        groups: dict = {}
        for k, rule in enumerate(self.rules):
            groups.setdefault(id(rule), (rule, []))[1].append(k)
        for rule, rows in groups.values():
            idx = np.asarray(rows, dtype=np.intp)
            out[idx] = np.asarray(rule(p[idx], rtt[idx]), dtype=float)
        return out

    def take_points(self, points) -> "PerPointRuleSet":
        """The same rule set restricted to a subset of batch points."""
        index = np.arange(len(self.rules))[points]
        return PerPointRuleSet([self.rules[k] for k in np.atleast_1d(index)])


def tcp_allocation(p, rtt) -> np.ndarray:
    """Uncoupled: every route gets the full TCP rate for its own loss.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        ``sqrt(2/p_r)/rtt_r`` elementwise.
    """
    return _tcp_rates(p, rtt)


def ewtcp_allocation(p, rtt) -> np.ndarray:
    """EWTCP's fixed point: ``sqrt(a)`` TCP rates with ``a = 1/n^2``.

    Each subflow runs a weighted AIMD whose equilibrium rate is
    ``sqrt(2a/p_r)/rtt_r = (1/n) sqrt(2/p_r)/rtt_r`` — the aggregate of
    ``n`` subflows sharing one bottleneck equals one TCP, with no
    congestion balancing between paths.

    Parameters
    ----------
    p, rtt : array_like, shape ``(..., n_routes)``
        Route loss probabilities and RTTs.

    Returns
    -------
    ndarray, shape ``(..., n_routes)``
        ``sqrt(2/p_r)/rtt_r / n_routes`` elementwise.
    """
    rates = _tcp_rates(p, rtt)
    return rates / rates.shape[-1]


AllocationRule = Callable[[Sequence[float], Sequence[float]], np.ndarray]


def allocation_rule(name: str, **kwargs) -> AllocationRule:
    """Look up an allocation rule by algorithm name.

    .. deprecated::
        Thin wrapper over the cross-layer registry — use
        :func:`repro.core.registry.make_allocation_rule`, which resolves
        the same names (and is the only dispatch path; a CI gate keeps
        new call sites off this wrapper).

    Returns
    -------
    AllocationRule
        A callable ``rule(p, rtt) -> rates`` operating along the last
        axis of its arguments.
    """
    import warnings

    from ..core import registry
    warnings.warn(
        "repro.fluid.equilibrium.allocation_rule is deprecated; use "
        "repro.core.registry.make_allocation_rule",
        DeprecationWarning, stacklevel=2)
    return registry.make_allocation_rule(name, **kwargs)


@dataclass
class FixedPointResult:
    """Outcome of the damped fixed-point iteration (one sweep point)."""

    rates: np.ndarray
    route_loss: np.ndarray
    link_loss: np.ndarray
    iterations: int
    converged: bool
    residual: float

    def user_totals(self, network) -> np.ndarray:
        return network.user_totals(self.rates)


@dataclass
class BatchFixedPointResult:
    """Fixed points of K batched sweep points, solved in lock-step.

    All arrays carry the sweep point on the first axis; ``result(k)``
    unpacks one point into the classic :class:`FixedPointResult`.
    """

    batch_network: BatchFluidNetwork
    rates: np.ndarray       # (K, n_routes)
    route_loss: np.ndarray  # (K, n_routes)
    link_loss: np.ndarray   # (K, n_links)
    iterations: np.ndarray  # (K,) int
    converged: np.ndarray   # (K,) bool
    residual: np.ndarray    # (K,)

    @property
    def n_points(self) -> int:
        return self.rates.shape[0]

    def result(self, point: int) -> FixedPointResult:
        """The classic per-point result of one sweep point."""
        return FixedPointResult(
            rates=self.rates[point], route_loss=self.route_loss[point],
            link_loss=self.link_loss[point],
            iterations=int(self.iterations[point]),
            converged=bool(self.converged[point]),
            residual=float(self.residual[point]))

    def results(self) -> List[FixedPointResult]:
        """All K per-point results."""
        return [self.result(k) for k in range(self.n_points)]

    def user_totals(self) -> np.ndarray:
        """Per-user total rates, shape ``(K, n_users)``."""
        return self.batch_network.networks[0].user_totals(self.rates)


def _resolve_rules(n_users: int, rules) -> List[AllocationRule]:
    """Normalise ``rules`` to one allocation callable per user.

    Accepts algorithm names, :class:`~repro.core.registry.AlgorithmSpec`
    instances, or ready-made rule callables (per user or shared);
    names/specs resolve through the cross-layer registry.
    """
    from ..core.registry import AlgorithmSpec, make_allocation_rule
    if isinstance(rules, (str, AlgorithmSpec)) or callable(rules):
        rules = {user: rules for user in range(n_users)}
    per_user: List[AllocationRule] = []
    for user in range(n_users):
        rule = rules[user]
        if isinstance(rule, (str, AlgorithmSpec)):
            rule = make_allocation_rule(rule)
        per_user.append(rule)
    return per_user


def solve_fixed_point_batch(networks, rules, *,
                            floor_packets: float = 0.0,
                            damping: float = 0.15,
                            tol: float = 1e-8,
                            max_iter: int = 20000,
                            x0: np.ndarray | None = None
                            ) -> BatchFixedPointResult:
    """Damped fixed-point iteration over K stacked sweep points.

    Iterates ``x <- (1-g) x + g f(p(x))`` on a ``(K, n_routes)`` state
    matrix until every point's relative residual drops below ``tol``.
    Each point is *frozen* at the iteration where it first converges —
    its recorded rates, iteration count and residual are exactly what a
    sequential :func:`solve_fixed_point` call on that point alone
    returns, bit for bit, because every operation is row-wise along the
    last axis and the points are independent.

    Frozen points also leave the *compute*: the iteration state is
    compacted to the still-active rows whenever points converge, so on
    heterogeneous grids (a few slow points, many fast ones) the per
    iteration cost shrinks with the active set instead of staying K-wide
    until the slowest point finishes.  Row-wise bitwise equality makes
    the compaction invisible in the results.

    Tie-aware stopping: allocation rules with a best-path *tie* (OLIA,
    BALIA — their tied-best sets flip membership between iterations)
    can settle into an exact period-2 cycle whose step residual never
    drops below ``tol`` even though the iterate has stopped moving as a
    cycle (``|x_t - x_{t-2}|`` at machine epsilon).  Such points used
    to burn the whole ``max_iter`` budget and come back
    ``converged=False``; the solver now also checks the period-2
    residual and freezes a point the moment either residual passes
    ``tol``.  A cycle-stopped point records one cycle phase as its
    rates (the two phases differ only in how the tie splits traffic
    across tied-best paths) and the cycle residual as ``residual``.

    Stagnation-triggered annealing: a fixed step size ``g`` only
    stabilises map slopes above ``1 - 2/g``; steeper rules (wVegas'
    ``alpha/p`` response on a sharp link, OLIA's best-set flips on
    asymmetric topologies) orbit in period-4 or aperiodic cycles that
    neither residual catches.  Each point therefore carries its *own*
    step size: when a point's best residual improves by less than
    ``1 - _STALL_FACTOR`` across a ``_STALL_WINDOW``-iteration window
    its step size halves (down to ``damping / _MAX_ANNEALING``), which
    walks it into its stability region.  Residuals are rescaled by
    ``damping / g_point`` so a smaller step cannot fake convergence —
    the recorded residual always measures the mismatch a
    nominal-damping step would show.  Annealing decisions depend only
    on the point's own history, so batch and sequential runs stay
    bitwise-equal; a point that never stalls rescales by exactly
    ``1.0`` and is bitwise-identical to the fixed-damping iteration.

    Tie-cycle annealing exemption: a best-set tie cycle is the one
    orbit annealing can never settle — its amplitude is proportional
    to ``g`` while the residual rescale is ``damping / g``, so the
    two cancel and the rescaled residual plateaus down the whole
    ladder (such points used to walk to the floor and freeze
    ``converged=False``).  Left at fixed ``g`` the cycle *does*
    collapse on its own: the orbit wanders along the tie manifold
    (residual flat for hundreds of iterations), then the flip pattern
    locks and contracts geometrically through the period-2 test.  The
    wander phase defeats any improvement-rate test, but the window
    AR(1) step statistics separate the two regimes that matter: a tie
    cycle alternates with an *estimated contraction strictly inside
    the unit circle* (``-_TIE_LAMBDA < lambda < 0`` — contracting on
    average, just not monotonically), while the saturated period-2
    orbits annealing exists for (e.g. wVegas' ``alpha/p`` response
    past its stability bound) repeat exactly, ``lambda ~ -1``.  A
    point in the first regime keeps its step size — no anneal, no
    pace strike — and is left to the period-2 residual test.  The
    test reads only the point's own window history, so it preserves
    row-wise batch/sequential bitwise equality.

    A point that is *still* stalled at the annealing floor sits on a
    rule discontinuity no step size can settle through (its
    equilibrium is a sliding point of the hard best-set map); it
    freezes early as ``converged=False`` with the stuck residual on
    record instead of burning the rest of ``max_iter``.

    Budget-miss freezing: a point improving steadily but too slowly —
    behind the log-linear pace line from 1 to ``tol`` over
    ``max_iter`` *and* improving slower than the on-pace per-window
    rate for ``_PACE_STRIKES`` consecutive windows — cannot reach
    ``tol`` within the budget at its demonstrated rate.  It freezes
    early with the same ``converged=False`` outcome that exhausting
    ``max_iter`` would record, at a fraction of the cost.  A point on
    pace, or catching up, never collects a strike; an anneal resets
    the count so a just-stabilised orbit can show its true
    (post-anneal) convergence rate first.

    A user rule may carry *per-point* parameters (e.g.
    :class:`PerPointEpsilonRule`); such rules expose
    ``take_points(points)`` returning the rule restricted to a subset of
    batch points, which the solver calls as the active set shrinks.

    Parameters
    ----------
    networks : BatchFluidNetwork or sequence of FluidNetwork
        K topologically-identical networks (same links/users/routes;
        RTTs and loss parameters may differ per point).
    rules : str, callable or mapping
        A single rule/name shared by every user, or a mapping
        ``user -> rule/name``; shared across all K points.
    floor_packets : float
        Probing floor in packets per RTT, applied after each step.
    damping : float
        Step size ``g`` of the damped iteration.
    tol : float
        Relative convergence tolerance on the rate update.
    max_iter : int
        Iteration budget; points still moving at the end are flagged
        ``converged=False``.
    x0 : ndarray, optional
        Start state of shape ``(K, n_routes)``; defaults to one packet
        per RTT on every route.

    Returns
    -------
    BatchFixedPointResult
        Per-point rates, losses and convergence diagnostics.
    """
    net = (networks if isinstance(networks, BatchFluidNetwork)
           else BatchFluidNetwork(networks))
    per_user = _resolve_rules(net.n_users, rules)
    user_routes = [np.asarray(r, dtype=int) for r in net.routes_of_user]

    rtts = net.rtts  # (K, n_routes)
    floor = (floor_packets / rtts if floor_packets > 0
             else np.zeros_like(rtts))
    if x0 is None:
        x = np.maximum(1.0 / rtts, floor)
    else:
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != rtts.shape:
            raise ValueError(
                f"x0 must have shape {rtts.shape}, got {x0.shape}")
        x = np.maximum(x0, floor)

    n_points = rtts.shape[0]
    final_x = x.copy()
    iterations = np.full(n_points, max_iter, dtype=int)
    converged = np.zeros(n_points, dtype=bool)
    final_residual = np.full(n_points, np.inf)

    # Compacted iteration state: only the still-active rows.  ``active``
    # maps each compact row back to its batch point, which is also what
    # per-point loss parameters and rules are indexed by.
    active = np.arange(n_points)
    rtts_act = rtts
    floor_act = floor
    rules_act = per_user
    residual = np.full(n_points, np.inf)
    # x two iterations ago, for the period-2 (tie-cycle) residual.  At
    # iteration 1 it equals x0, making the cycle residual coincide with
    # the step residual — the check only diverges once a cycle exists.
    x_prev2 = x
    # Per-point annealing state: current step size, best residual so
    # far, the best at the last window boundary, iterations into the
    # current window.
    g_act = np.full(len(active), damping)
    g_min = damping / _MAX_ANNEALING
    best_resid = np.full(len(active), np.inf)
    best_checkpoint = np.full(len(active), np.inf)
    window = np.zeros(len(active), dtype=int)
    # Consecutive window boundaries spent behind the pace line while
    # improving slower than the on-pace rate (see _PACE_STRIKES).
    strikes = np.zeros(len(active), dtype=int)
    # Per-window AR(1) statistics of the step sequence, for the Aitken
    # jump: lam_num/lam_den is the least-squares estimate of the
    # contraction factor ``lambda`` in ``delta_{t+1} = lambda delta_t``
    # and lam_num**2 / (lam_den * lam_sq) its squared correlation.
    lam_num = np.zeros(len(active))
    lam_den = np.zeros(len(active))
    lam_sq = np.zeros(len(active))
    # The on-pace per-window residual decay: a constant-rate converger
    # that finishes exactly at ``max_iter`` loses this factor every
    # window.  Points improving faster are catching up and collect no
    # strike even when currently behind the pace line.
    catchup = tol ** (_STALL_WINDOW / max_iter)

    for iteration in range(1, max_iter + 1):
        points = None if len(active) == n_points else active
        p_routes = net.route_loss_probs(x, points)
        target = np.zeros_like(x)
        for user, rule in enumerate(rules_act):
            idx = user_routes[user]
            if len(idx) == 0:   # routeless users contribute nothing
                continue
            target[..., idx] = rule(p_routes[..., idx],
                                    rtts_act[..., idx])
        target = np.maximum(target, floor_act)
        g_col = g_act[:, None]
        new_x = (1.0 - g_col) * x + g_col * target
        scale = np.maximum(np.max(np.abs(new_x), axis=-1), 1e-9)
        # Rescaled to the nominal step so annealing (smaller steps)
        # cannot shrink the residual without the iterate settling.
        rescale = damping / g_act
        residual = np.max(np.abs(new_x - x), axis=-1) / scale * rescale
        cycle_residual = (np.max(np.abs(new_x - x_prev2), axis=-1)
                          / scale * rescale)
        delta1 = new_x - x
        delta0 = x - x_prev2
        lam_num += np.sum(delta1 * delta0, axis=-1)
        lam_den += np.sum(delta0 * delta0, axis=-1)
        lam_sq += np.sum(delta1 * delta1, axis=-1)
        x_prev2 = x
        x = new_x
        # A point is done when the step residual converges (the regular
        # fixed point) or the period-2 residual does (a best-path tie
        # flip-flopping between two equivalent allocations).
        residual = np.minimum(residual, cycle_residual)
        newly = residual < tol
        if newly.any():
            done = active[newly]
            final_x[done] = new_x[newly]
            iterations[done] = iteration
            converged[done] = True
            final_residual[done] = residual[newly]
            keep = ~newly
            active = active[keep]
            if len(active) == 0:
                break
            # Shrink the compute to the surviving rows (bitwise no-op
            # for them: every operation above is row-wise).
            x = x[keep]
            x_prev2 = x_prev2[keep]
            rtts_act = rtts_act[keep]
            floor_act = floor_act[keep]
            residual = residual[keep]
            g_act = g_act[keep]
            best_resid = best_resid[keep]
            best_checkpoint = best_checkpoint[keep]
            window = window[keep]
            strikes = strikes[keep]
            lam_num = lam_num[keep]
            lam_den = lam_den[keep]
            lam_sq = lam_sq[keep]
            rules_act = [rule.take_points(active)
                         if hasattr(rule, "take_points") else rule
                         for rule in per_user]
        # Anneal stalled points: a window with less than 2% improvement
        # of the best residual means this step size orbits instead of
        # converging — halve it.  (Counting *relative* progress per
        # fixed window, rather than iterations since the last strict
        # improvement, keeps the anneal cadence constant: a shrinking
        # orbit improves a little every step, but ever more slowly.)
        best_resid = np.minimum(best_resid, residual)
        window += 1
        at_window = window >= _STALL_WINDOW
        if at_window.any():
            # Tie-cycle exemption: an alternating orbit whose window
            # AR(1) contraction estimate is strictly inside the unit
            # circle (-_TIE_LAMBDA < lambda < 0) is a best-set tie
            # cycle contracting on average — annealing it is
            # counterproductive (amplitude ∝ g cancels against the
            # damping/g rescale), so it is spared the anneal and the
            # pace strike and left to the period-2 residual test.
            # The saturated orbits annealing exists for repeat
            # exactly (lambda ~ -1) and are not exempt.
            tie_wait = (at_window & (lam_num < 0.0)
                        & (lam_num > -_TIE_LAMBDA * lam_den))
            stalled = (at_window & ~tie_wait
                       & (best_resid > _STALL_FACTOR * best_checkpoint))
            anneal = stalled & (g_act > g_min)
            g_act = np.where(anneal, _ANNEAL_STEP * g_act, g_act)
            # Pace strikes: a point behind the log-linear pace line to
            # ``tol`` that is also improving slower than the on-pace
            # per-window rate cannot finish within ``max_iter`` at its
            # demonstrated rate.  Three consecutive such windows and
            # it is frozen as a budget miss — same ``converged=False``
            # outcome that burning the remaining budget would record,
            # at a fraction of the cost.  An anneal resets the count:
            # the new step size gets a fresh chance (a just-stabilised
            # orbit converges far faster than its plateau suggested).
            pace = tol ** (iteration / max_iter)
            pace_fail = (at_window & ~tie_wait
                         & (best_resid > pace)
                         & (best_resid > catchup * best_checkpoint))
            strikes = np.where(at_window,
                               np.where(pace_fail, strikes + 1, 0),
                               strikes)
            strikes = np.where(anneal, 0, strikes)
            best_checkpoint = np.where(at_window, best_resid,
                                       best_checkpoint)
            window = np.where(at_window, 0, window)
            # Aitken jump: a point whose steps over the whole window
            # followed ``delta_{t+1} = lambda delta_t`` almost exactly
            # (squared correlation > 0.99) with a contraction factor
            # ``|lambda| < 1`` is in a linear regime whose limit is
            # known in closed form — jump straight to
            # ``x + delta lambda / (1 - lambda)`` instead of playing
            # out the geometric series one step at a time.  Monotone
            # contractions (``lambda`` near +1) skip their long
            # geometric tail; decaying oscillations (``lambda`` near
            # -1) jump to the contraction centre, skipping the
            # annealing ladder.  The jump is only ever a *proposal*:
            # convergence is still declared by the ordinary residual
            # test on subsequent iterations, so a jump thrown off by
            # nonlinearity merely leaves the damped iteration to
            # continue from a new (floored) state.
            with np.errstate(divide="ignore", invalid="ignore"):
                lam = lam_num / lam_den
                corr_sq = lam_num * lam_num / (lam_den * lam_sq)
            jump = (at_window
                    & (lam_den > 0.0) & (lam_sq > 0.0)
                    & (corr_sq > 0.99)
                    & (np.abs(lam) < 0.9999))
            if jump.any():
                amplifier = np.where(jump, lam / (1.0 - lam), 0.0)
                x = x + amplifier[:, None] * (x - x_prev2)
                x = np.maximum(x, floor_act)
            lam_num = np.where(at_window, 0.0, lam_num)
            lam_den = np.where(at_window, 0.0, lam_den)
            lam_sq = np.where(at_window, 0.0, lam_sq)
            # A point still stalled at the annealing floor is
            # *stagnant*: its equilibrium sits on a rule discontinuity
            # (e.g. OLIA's best-set boundary) that no step size can
            # settle through.  The iterate hovers within O(g_min) of
            # the sliding point, so burn no more budget: freeze it
            # now, honestly ``converged=False`` with the stuck
            # residual on record.  Budget misses (pace strikes
            # exhausted) freeze through the same path.
            stagnant = (stalled & ~anneal) | (strikes >= _PACE_STRIKES)
            if stagnant.any():
                done = active[stagnant]
                final_x[done] = x[stagnant]
                iterations[done] = iteration
                final_residual[done] = residual[stagnant]
                keep = ~stagnant
                active = active[keep]
                if len(active) == 0:
                    break
                x = x[keep]
                x_prev2 = x_prev2[keep]
                rtts_act = rtts_act[keep]
                floor_act = floor_act[keep]
                residual = residual[keep]
                g_act = g_act[keep]
                best_resid = best_resid[keep]
                best_checkpoint = best_checkpoint[keep]
                window = window[keep]
                strikes = strikes[keep]
                lam_num = lam_num[keep]
                lam_den = lam_den[keep]
                lam_sq = lam_sq[keep]
                rules_act = [rule.take_points(active)
                             if hasattr(rule, "take_points") else rule
                             for rule in per_user]

    if len(active):
        final_x[active] = x
        final_residual[active] = residual

    return BatchFixedPointResult(
        batch_network=net, rates=final_x,
        route_loss=net.route_loss_probs(final_x),
        link_loss=net.link_loss_probs(final_x),
        iterations=iterations, converged=converged,
        residual=final_residual)


def solve_fixed_point(network, rules, *,
                      floor_packets: float = 0.0,
                      damping: float = 0.15,
                      tol: float = 1e-8,
                      max_iter: int = 20000,
                      x0: np.ndarray | None = None) -> FixedPointResult:
    """Damped iteration ``x <- (1-g) x + g f(p(x))`` to a fixed point.

    A thin K=1 wrapper over :func:`solve_fixed_point_batch`, so
    sequential and batched sweeps share one code path (and produce
    bitwise-equal fixed points).

    Parameters
    ----------
    network : FluidNetwork
        The scenario to solve.
    rules : str, callable or mapping
        A single rule/name shared by every user, or a mapping
        ``user -> rule/name``.
    floor_packets : float
        Probing floor in packets per RTT, applied after each step.
    damping, tol, max_iter, x0
        As in :func:`solve_fixed_point_batch`; ``x0`` has shape
        ``(n_routes,)`` here.

    Returns
    -------
    FixedPointResult
        Rates, losses and convergence diagnostics of the single point.
    """
    batch = solve_fixed_point_batch(
        [network], rules, floor_packets=floor_packets, damping=damping,
        tol=tol, max_iter=max_iter,
        x0=None if x0 is None else np.asarray(x0, dtype=float)[None, :])
    return batch.result(0)


def verify_theorem1(network, x: np.ndarray, *,
                    floor_packets: float = 1.0,
                    rtol: float = 0.05) -> Dict[str, bool]:
    """Check the two claims of Theorem 1 for rate vector ``x``.

    (i) only best paths carry more than the probing floor;
    (ii) each user's total rate matches the TCP rate on its best path.
    Returns a dict of booleans per claim.
    """
    rtts = network.rtt_array()
    p_routes = network.route_loss_probs(x)
    only_best = True
    total_matches = True
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        p, rtt, rates = p_routes[idx], rtts[idx], x[idx]
        tcp_rates = _tcp_rates(p, rtt)
        best = float(np.max(tcp_rates))
        floor = floor_packets / rtt
        for rate, path_rate, f in zip(rates, tcp_rates, floor):
            is_best = path_rate >= best * (1.0 - rtol)
            # More than ~30% above the probing floor counts as "in use".
            if not is_best and rate > 1.3 * f:
                only_best = False
        if not np.isclose(float(np.sum(rates)), best,
                          rtol=rtol, atol=2 * float(np.max(floor))):
            total_matches = False
    return {"only_best_paths": only_best, "total_is_best_tcp": total_matches}
