"""Fixed points of the fluid model and verification of Theorem 1.

Two complementary tools:

* *per-user allocation rules* — given route loss probabilities, the rate
  vector each algorithm equilibrates to: the TCP square-root law, LIA's
  Eq. (2), OLIA's best-paths-only allocation (Theorem 1), and the
  ``epsilon``-family of Section II (``x_r`` proportional to
  ``p_r**(-1/epsilon)``) that interpolates between full resource pooling
  (``epsilon -> 0``) and uncoupled TCP-like spreading (``epsilon = 2``).

* a damped *fixed-point solver* that iterates allocation rules against the
  network's loss models until rates and losses agree — the analytical
  counterpart of running the testbed to equilibrium.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

_EPS = 1e-15


def tcp_rate(p: float, rtt: float) -> float:
    """TCP loss-throughput formula ``x = sqrt(2/p) / rtt`` (pkt/s)."""
    return float(np.sqrt(2.0 / max(p, _EPS)) / rtt)


def best_path_rate(p: Sequence[float], rtt: Sequence[float]) -> float:
    """Rate of a regular TCP user on the best of the given paths."""
    return max(tcp_rate(pi, ri) for pi, ri in zip(p, rtt))


def lia_allocation(p: Sequence[float], rtt: Sequence[float]) -> np.ndarray:
    """LIA's fixed-point allocation, Eq. (2) of the paper.

    Windows are proportional to ``1/p_r`` and the total rate equals the
    TCP rate on the best path: ``w_r = (1/p_r) * best / sum_p 1/(rtt_p p_p)``
    with ``x_r = w_r / rtt_r``.
    """
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    best = best_path_rate(p, rtt)
    denom = float(np.sum(1.0 / (rtt * p)))
    windows = (1.0 / p) * best / denom
    return windows / rtt


def olia_allocation(p: Sequence[float], rtt: Sequence[float],
                    floor: Sequence[float] | None = None,
                    tie_tolerance: float = 1e-6) -> np.ndarray:
    """OLIA's fixed point per Theorem 1: best paths only.

    Only the routes maximizing ``sqrt(2/p_r)/rtt_r`` carry traffic; the
    total equals the TCP rate on the best path, split equally among tied
    best paths.  Non-best routes receive the probing ``floor`` (0 by
    default), matching the minimum-window behaviour of the implementation.
    """
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    rates = np.array([tcp_rate(pi, ri) for pi, ri in zip(p, rtt)])
    best = float(np.max(rates))
    best_set = rates >= best * (1.0 - tie_tolerance)
    x = np.zeros(len(p))
    if floor is not None:
        x = np.asarray(floor, dtype=float).copy()
    x[best_set] = best / int(np.sum(best_set))
    return x


def epsilon_family_allocation(p: Sequence[float], rtt: Sequence[float],
                              epsilon: float) -> np.ndarray:
    """The ``epsilon``-family of Section II: ``x_r ~ p_r**(-1/epsilon)``.

    The total rate is normalised to the TCP rate on the best path (design
    goals 1-2).  ``epsilon = 1`` reproduces LIA's Eq. (2) when RTTs are
    equal; ``epsilon -> 0`` concentrates on the least-lossy path (fully
    coupled); ``epsilon = 2`` spreads like uncoupled TCP.
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    p = np.maximum(np.asarray(p, dtype=float), _EPS)
    rtt = np.asarray(rtt, dtype=float)
    total = best_path_rate(p, rtt)
    if epsilon == 0:
        return olia_allocation(p, rtt)
    weights = p ** (-1.0 / epsilon)
    return total * weights / float(np.sum(weights))


def tcp_allocation(p: Sequence[float], rtt: Sequence[float]) -> np.ndarray:
    """Uncoupled: every route gets the full TCP rate for its own loss."""
    return np.array([tcp_rate(pi, ri) for pi, ri in zip(p, rtt)])


AllocationRule = Callable[[Sequence[float], Sequence[float]], np.ndarray]


def allocation_rule(name: str, **kwargs) -> AllocationRule:
    """Look up an allocation rule by algorithm name.

    ``epsilon`` selects the epsilon-family and requires ``epsilon=...``.
    """
    name = name.lower()
    if name in ("tcp", "reno", "uncoupled"):
        return tcp_allocation
    if name == "lia":
        return lia_allocation
    if name in ("olia", "coupled"):
        floor = kwargs.get("floor")
        tol = kwargs.get("tie_tolerance", 1e-6)
        return lambda p, rtt: olia_allocation(p, rtt, floor=floor,
                                              tie_tolerance=tol)
    if name == "epsilon":
        eps = kwargs["epsilon"]
        return lambda p, rtt: epsilon_family_allocation(p, rtt, eps)
    raise KeyError(f"unknown allocation rule {name!r}")


@dataclass
class FixedPointResult:
    """Outcome of the damped fixed-point iteration."""

    rates: np.ndarray
    route_loss: np.ndarray
    link_loss: np.ndarray
    iterations: int
    converged: bool
    residual: float

    def user_totals(self, network) -> np.ndarray:
        return network.user_totals(self.rates)


def solve_fixed_point(network, rules, *,
                      floor_packets: float = 0.0,
                      damping: float = 0.15,
                      tol: float = 1e-8,
                      max_iter: int = 20000,
                      x0: np.ndarray | None = None) -> FixedPointResult:
    """Damped iteration ``x <- (1-g) x + g f(p(x))`` to a fixed point.

    ``rules`` is a single rule/name or a mapping ``user -> rule/name``.
    The probing floor (in packets per RTT) is applied after each step.
    """
    if isinstance(rules, (str,)) or callable(rules):
        rules = {user: rules for user in range(network.n_users)}
    per_user: List[AllocationRule] = []
    for user in range(network.n_users):
        rule = rules[user]
        per_user.append(allocation_rule(rule) if isinstance(rule, str)
                        else rule)

    rtts = network.rtt_array()
    floor = (floor_packets / rtts if floor_packets > 0
             else np.zeros_like(rtts))
    x = (np.maximum(1.0 / rtts, floor) if x0 is None
         else np.maximum(np.asarray(x0, dtype=float), floor))
    user_routes = [np.asarray(r, dtype=int) for r in network.routes_of_user]

    residual = np.inf
    for iteration in range(1, max_iter + 1):
        p_routes = network.route_loss_probs(x)
        target = np.zeros_like(x)
        for user, rule in enumerate(per_user):
            idx = user_routes[user]
            target[idx] = rule(p_routes[idx], rtts[idx])
        target = np.maximum(target, floor)
        new_x = (1.0 - damping) * x + damping * target
        scale = max(float(np.max(np.abs(new_x))), 1e-9)
        residual = float(np.max(np.abs(new_x - x))) / scale
        x = new_x
        if residual < tol:
            return FixedPointResult(
                rates=x, route_loss=network.route_loss_probs(x),
                link_loss=network.link_loss_probs(x),
                iterations=iteration, converged=True, residual=residual)
    return FixedPointResult(
        rates=x, route_loss=network.route_loss_probs(x),
        link_loss=network.link_loss_probs(x),
        iterations=max_iter, converged=False, residual=residual)


def verify_theorem1(network, x: np.ndarray, *,
                    floor_packets: float = 1.0,
                    rtol: float = 0.05) -> Dict[str, bool]:
    """Check the two claims of Theorem 1 for rate vector ``x``.

    (i) only best paths carry more than the probing floor;
    (ii) each user's total rate matches the TCP rate on its best path.
    Returns a dict of booleans per claim.
    """
    rtts = network.rtt_array()
    p_routes = network.route_loss_probs(x)
    only_best = True
    total_matches = True
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        p, rtt, rates = p_routes[idx], rtts[idx], x[idx]
        tcp_rates = np.array([tcp_rate(pi, ri) for pi, ri in zip(p, rtt)])
        best = float(np.max(tcp_rates))
        floor = floor_packets / rtt
        for rate, path_rate, f in zip(rates, tcp_rates, floor):
            is_best = path_rate >= best * (1.0 - rtol)
            # More than ~30% above the probing floor counts as "in use".
            if not is_best and rate > 1.3 * f:
                only_best = False
        if not np.isclose(float(np.sum(rates)), best,
                          rtol=rtol, atol=2 * float(np.max(floor))):
            total_matches = False
    return {"only_best_paths": only_best, "total_is_best_tcp": total_matches}
