"""Euler integration of the fluid dynamics, with probing-rate floor.

The congestion windows of real window-based protocols never drop below
1 MSS, so each established route always carries at least one packet per
RTT.  The integrator mirrors this with a projection ``x_r >= floor_r``
(``floor_packets / rtt_r``); setting ``floor_packets = 0`` recovers the
idealised fluid model of the theorems.

The right-hand side of OLIA's dynamics is discontinuous (the sets ``M``
and ``B`` jump); the explicit Euler scheme with a small step behaves like
a sliding-mode integration whose averaged trajectory follows the
differential inclusion (Eqs. 8-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

from .dynamics import FluidAlgorithm, make_fluid_algorithm
from .network import FluidNetwork


@dataclass
class FluidTrajectory:
    """Recorded trajectory of route rates over time."""

    network: FluidNetwork
    times: np.ndarray
    rates: np.ndarray  # shape (n_samples, n_routes)

    @property
    def final_rates(self) -> np.ndarray:
        """Route rates at the last recorded instant."""
        return self.rates[-1]

    def user_totals(self) -> np.ndarray:
        """Per-user total rates over time, shape (n_samples, n_users)."""
        totals = np.zeros((self.rates.shape[0], self.network.n_users))
        for route, user in enumerate(self.network.user_of_route):
            totals[:, user] += self.rates[:, route]
        return totals

    def route_series(self, route: int) -> np.ndarray:
        """Rate of one route over time."""
        return self.rates[:, route]

    def tail_average(self, fraction: float = 0.25) -> np.ndarray:
        """Time-average of the last ``fraction`` of the trajectory.

        OLIA's alpha term makes trajectories oscillate around the
        equilibrium; averaging the tail gives the fixed point the
        differential inclusion converges to.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        start = int(self.rates.shape[0] * (1.0 - fraction))
        return self.rates[start:].mean(axis=0)

    def settling_time(self, rel_tol: float = 0.05) -> float:
        """Earliest time after which every rate stays within ``rel_tol``
        (relative to the rate scale) of its final value.

        This is the responsiveness metric used by the convergence
        experiments: a smaller settling time means the algorithm adapts
        faster after a change in path quality.  Returns ``inf`` when the
        trajectory has not settled by its end.
        """
        final = self.tail_average(fraction=0.1)
        scale = max(float(np.max(final)), 1e-9)
        within = np.all(np.abs(self.rates - final) <= rel_tol * scale,
                        axis=1)
        outside = np.where(~within)[0]
        if len(outside) == 0:
            return float(self.times[0])
        last_bad = int(outside[-1])
        if last_bad + 1 >= len(self.times):
            return float("inf")
        return float(self.times[last_bad + 1])


def _resolve_algorithms(network: FluidNetwork,
                        algorithms) -> List[FluidAlgorithm]:
    """Normalise the ``algorithms`` argument to one instance per user."""
    if isinstance(algorithms, (str, FluidAlgorithm)):
        algorithms = {user: algorithms for user in range(network.n_users)}
    resolved = []
    for user in range(network.n_users):
        algo = algorithms[user]
        if isinstance(algo, str):
            algo = make_fluid_algorithm(algo)
        resolved.append(algo)
    return resolved


def integrate(network: FluidNetwork, algorithms, *,
              t_end: float, dt: float = 1e-3,
              x0: np.ndarray | None = None,
              floor_packets: float = 1.0,
              record_every: int = 10) -> FluidTrajectory:
    """Integrate the fluid dynamics from ``x0`` for ``t_end`` seconds.

    Parameters
    ----------
    algorithms:
        Either a single algorithm (name or instance) used by every user, or
        a mapping ``user id -> algorithm``.
    floor_packets:
        Minimum window in packets; route rates are clamped to
        ``floor_packets / rtt_r`` (probing traffic).  Use 0 to disable.
    record_every:
        Record one sample every this many Euler steps.
    """
    if dt <= 0 or t_end <= 0:
        raise ValueError("dt and t_end must be positive")
    per_user = _resolve_algorithms(network, algorithms)
    rtts = network.rtt_array()
    floor = floor_packets / rtts if floor_packets > 0 else np.zeros_like(rtts)
    if x0 is None:
        x = np.maximum(floor.copy(), 1.0 / rtts)
    else:
        x = np.maximum(np.asarray(x0, dtype=float).copy(), floor)

    n_steps = int(round(t_end / dt))
    times: List[float] = [0.0]
    samples: List[np.ndarray] = [x.copy()]
    user_routes = [np.asarray(routes, dtype=int)
                   for routes in network.routes_of_user]

    for step in range(1, n_steps + 1):
        p_routes = network.route_loss_probs(x)
        dx = np.zeros_like(x)
        for user, algo in enumerate(per_user):
            idx = user_routes[user]
            dx[idx] = algo.derivative(x[idx], p_routes[idx], rtts[idx])
        x = np.maximum(x + dt * dx, floor)
        if step % record_every == 0 or step == n_steps:
            times.append(step * dt)
            samples.append(x.copy())

    return FluidTrajectory(network=network,
                           times=np.asarray(times),
                           rates=np.vstack(samples))


def integrate_to_equilibrium(network: FluidNetwork, algorithms, *,
                             dt: float = 1e-3, chunk: float = 5.0,
                             max_time: float = 500.0, rel_tol: float = 1e-4,
                             floor_packets: float = 1.0,
                             x0: np.ndarray | None = None) -> FluidTrajectory:
    """Integrate in chunks until the tail-averaged rates stop moving.

    Convergence is declared when the tail averages of two consecutive
    chunks differ by less than ``rel_tol`` relative to the rate scale.
    Returns the trajectory of the final chunk.
    """
    previous = None
    x_start = x0
    elapsed = 0.0
    trajectory = None
    while elapsed < max_time:
        trajectory = integrate(network, algorithms, t_end=chunk, dt=dt,
                               x0=x_start, floor_packets=floor_packets)
        current = trajectory.tail_average()
        if previous is not None:
            scale = max(float(np.max(np.abs(current))), 1e-9)
            if float(np.max(np.abs(current - previous))) < rel_tol * scale:
                return trajectory
        previous = current
        x_start = trajectory.final_rates
        elapsed += chunk
    return trajectory
