"""Euler integration of the fluid dynamics, with probing-rate floor.

The congestion windows of real window-based protocols never drop below
1 MSS, so each established route always carries at least one packet per
RTT.  The integrator mirrors this with a projection ``x_r >= floor_r``
(``floor_packets / rtt_r``); setting ``floor_packets = 0`` recovers the
idealised fluid model of the theorems.

The right-hand side of OLIA's dynamics is discontinuous (the sets ``M``
and ``B`` jump); the explicit Euler scheme with a small step behaves like
a sliding-mode integration whose averaged trajectory follows the
differential inclusion (Eqs. 8-9).

Batching: :class:`BatchFluidIntegrator` stacks K sweep points (K
topologically-identical networks) into a single ``(K, n_routes)`` state
matrix and advances them all in one vectorized Euler update, so the
per-step Python overhead is paid once instead of K times.  The classic
1-D :func:`integrate` is a thin K=1 wrapper around it; because every
operation works row-wise along the last axis, a batched row is
bitwise-identical to the corresponding sequential integration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .dynamics import FluidAlgorithm
from .network import BatchFluidNetwork, FluidNetwork


@dataclass
class FluidTrajectory:
    """Recorded trajectory of route rates over time."""

    network: FluidNetwork
    times: np.ndarray
    rates: np.ndarray  # shape (n_samples, n_routes)

    @property
    def final_rates(self) -> np.ndarray:
        """Route rates at the last recorded instant."""
        return self.rates[-1]

    def user_totals(self) -> np.ndarray:
        """Per-user total rates over time, shape (n_samples, n_users)."""
        totals = np.zeros((self.rates.shape[0], self.network.n_users))
        users = np.asarray(self.network.user_of_route, dtype=int)
        np.add.at(totals, (slice(None), users), self.rates)
        return totals

    def route_series(self, route: int) -> np.ndarray:
        """Rate of one route over time."""
        return self.rates[:, route]

    def tail_average(self, fraction: float = 0.25) -> np.ndarray:
        """Time-average of the last ``fraction`` of the trajectory.

        OLIA's alpha term makes trajectories oscillate around the
        equilibrium; averaging the tail gives the fixed point the
        differential inclusion converges to.
        """
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        start = int(self.rates.shape[0] * (1.0 - fraction))
        return self.rates[start:].mean(axis=0)

    def settling_time(self, rel_tol: float = 0.05) -> float:
        """Earliest time after which every rate stays within ``rel_tol``
        (relative to the rate scale) of its final value.

        This is the responsiveness metric used by the convergence
        experiments: a smaller settling time means the algorithm adapts
        faster after a change in path quality.  Returns ``inf`` when the
        trajectory has not settled by its end.
        """
        final = self.tail_average(fraction=0.1)
        scale = max(float(np.max(final)), 1e-9)
        within = np.all(np.abs(self.rates - final) <= rel_tol * scale,
                        axis=1)
        outside = np.where(~within)[0]
        if len(outside) == 0:
            return float(self.times[0])
        last_bad = int(outside[-1])
        if last_bad + 1 >= len(self.times):
            return float("inf")
        return float(self.times[last_bad + 1])


@dataclass
class BatchFluidTrajectory:
    """Trajectories of K batched sweep points, advanced in lock-step."""

    batch_network: BatchFluidNetwork
    times: np.ndarray
    rates: np.ndarray  # shape (n_samples, K, n_routes)

    @property
    def n_points(self) -> int:
        return self.rates.shape[1]

    @property
    def final_rates(self) -> np.ndarray:
        """Route rates at the last recorded instant, shape (K, n_routes)."""
        return self.rates[-1]

    def trajectory(self, point: int) -> FluidTrajectory:
        """The classic 1-D trajectory of one sweep point (a view)."""
        return FluidTrajectory(network=self.batch_network.networks[point],
                               times=self.times,
                               rates=self.rates[:, point, :])

    def trajectories(self) -> List[FluidTrajectory]:
        """All K per-point trajectories."""
        return [self.trajectory(k) for k in range(self.n_points)]

    def tail_average(self, fraction: float = 0.25) -> np.ndarray:
        """Tail time-average per point, shape (K, n_routes)."""
        if not 0 < fraction <= 1:
            raise ValueError("fraction must be in (0, 1]")
        start = int(self.rates.shape[0] * (1.0 - fraction))
        return self.rates[start:].mean(axis=0)


def _resolve_algorithms(n_users: int, algorithms) -> List[FluidAlgorithm]:
    """Normalise the ``algorithms`` argument to one instance per user.

    Accepts algorithm names, :class:`~repro.core.registry.AlgorithmSpec`
    instances, or :class:`FluidAlgorithm` instances (per user or
    shared); names/specs resolve through the cross-layer registry.
    """
    from ..core.registry import AlgorithmSpec, make_fluid_algorithm
    if isinstance(algorithms, (str, FluidAlgorithm, AlgorithmSpec)):
        algorithms = {user: algorithms for user in range(n_users)}
    resolved = []
    for user in range(n_users):
        algo = algorithms[user]
        if isinstance(algo, (str, AlgorithmSpec)):
            algo = make_fluid_algorithm(algo)
        resolved.append(algo)
    return resolved


class BatchFluidIntegrator:
    """Vectorized Euler integration of K stacked sweep points.

    ``networks`` is either a :class:`BatchFluidNetwork` or a sequence of
    topologically-identical :class:`FluidNetwork` instances; ``algorithms``
    is a single algorithm (name or instance) or a ``user -> algorithm``
    mapping shared by every point.  The state is a ``(K, n_routes)``
    matrix and each Euler step costs one pass of numpy work regardless
    of K.
    """

    def __init__(self, networks, algorithms, *,
                 dt: float = 1e-3,
                 floor_packets: float = 1.0,
                 record_every: int = 10) -> None:
        if dt <= 0:
            raise ValueError("dt must be positive")
        if record_every < 1:
            raise ValueError("record_every must be >= 1")
        self.batch_network = (networks if isinstance(networks,
                                                     BatchFluidNetwork)
                              else BatchFluidNetwork(networks))
        self.per_user = _resolve_algorithms(self.batch_network.n_users,
                                            algorithms)
        self.dt = dt
        self.record_every = record_every
        self.rtts = self.batch_network.rtts  # (K, n_routes)
        self.floor = (floor_packets / self.rtts if floor_packets > 0
                      else np.zeros_like(self.rtts))
        self._plan = self._build_plan()

    @staticmethod
    def _columns(routes: List[int]):
        """Column selector for a route-id list: a basic slice when the
        ids are consecutive (selects views, no copy), else an index
        array."""
        if routes == list(range(routes[0], routes[0] + len(routes))):
            return slice(routes[0], routes[0] + len(routes))
        return np.asarray(routes, dtype=int)

    def _build_plan(self) -> List[tuple]:
        """Derivative execution plan: users grouped so the number of
        derivative calls per step is (nearly) independent of n_users.

        Two groupings, neither of which changes a single bit of the
        result:

        * users whose algorithm is *elementwise* (no per-user reductions;
          see :attr:`FluidAlgorithm.elementwise`) and identical in type
          and parameters merge into one flat entry — the plain-TCP
          competitor crowds of the scenario networks evaluate in a
          single call;
        * coupled users with the same algorithm (type and parameters)
          and the same route count stack into a ``(U, m)`` index matrix:
          selecting those columns yields a ``(K, U, m)`` tensor, and
          every derivative reduces along ``axis=-1``, i.e. row by row,
          exactly as it would per user.
        """
        groups: dict = {}
        order: List[tuple] = []
        for user, algo in enumerate(self.per_user):
            routes = self.batch_network.routes_of_user[user]
            if not routes:      # routeless users contribute nothing
                continue
            try:
                key = (type(algo), tuple(sorted(vars(algo).items())),
                       None if algo.elementwise else len(routes))
            except TypeError:   # unhashable algorithm state: no grouping
                key = (id(algo), user)
            if key not in groups:
                groups[key] = (algo, [])
                order.append(key)
            groups[key][1].append(list(routes))

        plan: List[tuple] = []
        for key in order:
            algo, route_lists = groups[key]
            if algo.elementwise:
                flat = sorted(route
                              for routes in route_lists for route in routes)
                plan.append((self._columns(flat), algo))
            elif len(route_lists) == 1:
                plan.append((self._columns(route_lists[0]), algo))
            else:
                plan.append((np.asarray(route_lists, dtype=int), algo))
        return plan

    def initial_state(self, x0: np.ndarray | None = None) -> np.ndarray:
        """The clamped ``(K, n_routes)`` start state."""
        if x0 is None:
            return np.maximum(self.floor.copy(), 1.0 / self.rtts)
        x0 = np.asarray(x0, dtype=float)
        if x0.shape != self.rtts.shape:
            raise ValueError(
                f"x0 must have shape {self.rtts.shape}, got {x0.shape}")
        return np.maximum(x0.copy(), self.floor)

    def run(self, t_end: float,
            x0: np.ndarray | None = None) -> BatchFluidTrajectory:
        """Integrate all K points for ``t_end`` seconds from ``x0``."""
        if t_end <= 0:
            raise ValueError("t_end must be positive")
        dt = self.dt
        x = self.initial_state(x0)
        n_steps = int(round(t_end / dt))
        times: List[float] = [0.0]
        samples: List[np.ndarray] = [x.copy()]
        network = self.batch_network
        floor = self.floor
        rtts = self.rtts

        route_loss_probs = network.route_loss_probs
        plan = self._plan
        # Every route belongs to exactly one plan entry, so each step
        # overwrites all of dx and the buffer can be reused across steps.
        dx = np.empty_like(x)
        for step in range(1, n_steps + 1):
            p_routes = route_loss_probs(x)
            for idx, algo in plan:
                dx[..., idx] = algo.derivative(x[..., idx],
                                               p_routes[..., idx],
                                               rtts[..., idx])
            x = np.maximum(x + dt * dx, floor)
            if step % self.record_every == 0 or step == n_steps:
                times.append(step * dt)
                samples.append(x.copy())

        return BatchFluidTrajectory(batch_network=network,
                                    times=np.asarray(times),
                                    rates=np.stack(samples))


def integrate_batch(networks, algorithms, *,
                    t_end: float, dt: float = 1e-3,
                    x0: np.ndarray | None = None,
                    floor_packets: float = 1.0,
                    record_every: int = 10) -> BatchFluidTrajectory:
    """One-shot batched integration of K sweep points (see
    :class:`BatchFluidIntegrator`)."""
    integrator = BatchFluidIntegrator(networks, algorithms, dt=dt,
                                      floor_packets=floor_packets,
                                      record_every=record_every)
    return integrator.run(t_end, x0=x0)


def integrate(network: FluidNetwork, algorithms, *,
              t_end: float, dt: float = 1e-3,
              x0: np.ndarray | None = None,
              floor_packets: float = 1.0,
              record_every: int = 10) -> FluidTrajectory:
    """Integrate the fluid dynamics from ``x0`` for ``t_end`` seconds.

    A thin K=1 wrapper over :class:`BatchFluidIntegrator`, so sequential
    and batched sweeps share one code path (and produce bitwise-equal
    trajectories).

    Parameters
    ----------
    algorithms:
        Either a single algorithm (name or instance) used by every user, or
        a mapping ``user id -> algorithm``.
    floor_packets:
        Minimum window in packets; route rates are clamped to
        ``floor_packets / rtt_r`` (probing traffic).  Use 0 to disable.
    record_every:
        Record one sample every this many Euler steps.
    """
    if dt <= 0 or t_end <= 0:
        raise ValueError("dt and t_end must be positive")
    batch = integrate_batch(
        [network], algorithms, t_end=t_end, dt=dt,
        x0=None if x0 is None else np.asarray(x0, dtype=float)[None, :],
        floor_packets=floor_packets, record_every=record_every)
    return batch.trajectory(0)


def integrate_to_equilibrium(network: FluidNetwork, algorithms, *,
                             dt: float = 1e-3, chunk: float = 5.0,
                             max_time: float = 500.0, rel_tol: float = 1e-4,
                             floor_packets: float = 1.0,
                             x0: np.ndarray | None = None) -> FluidTrajectory:
    """Integrate in chunks until the tail-averaged rates stop moving.

    Convergence is declared when the tail averages of two consecutive
    chunks differ by less than ``rel_tol`` relative to the rate scale.
    Returns the trajectory of the final chunk.
    """
    previous = None
    x_start = x0
    elapsed = 0.0
    trajectory = None
    while elapsed < max_time:
        trajectory = integrate(network, algorithms, t_end=chunk, dt=dt,
                               x0=x_start, floor_packets=floor_packets)
        current = trajectory.tail_average()
        if previous is not None:
            scale = max(float(np.max(np.abs(current))), 1e-9)
            if float(np.max(np.abs(current - previous))) < rel_tol * scale:
                return trajectory
        previous = current
        x_start = trajectory.final_rates
        elapsed += chunk
    return trajectory
