"""Utility functions and Pareto-optimality checks (Theorems 3 and 4).

Appendix F shows OLIA's fixed points maximize::

    V*(x) = sum_u -1 / (tau_u^2 * sum_{r in R_u} x_r / rtt_r^2)
            - 1/2 * sum_l int_0^{y_l} p_l(u) du

with ``tau_u = (sum_r x*_r) / (sum_r x*_r / rtt_r^2)``.  When all of a
user's routes share one RTT this reduces to the TCP-fairness utility
``V(x)`` of Theorem 4.  Because V* is concave, a rate vector is a
maximizer iff the KKT conditions (Eqs. 18-19) hold, which gives a cheap
numerical Pareto-optimality certificate for any allocation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .network import FluidNetwork

_EPS = 1e-15


def taus_from_rates(network: FluidNetwork, x: np.ndarray) -> np.ndarray:
    """``tau_u = (sum_r x_r) / (sum_r x_r / rtt_r^2)`` per user."""
    rtts = network.rtt_array()
    taus = np.zeros(network.n_users)
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        total = float(np.sum(x[idx]))
        weighted = float(np.sum(x[idx] / rtts[idx] ** 2))
        taus[user] = total / max(weighted, _EPS)
    return taus


def v_star_utility(network: FluidNetwork, x: np.ndarray,
                   taus: np.ndarray | None = None) -> float:
    """The paper's ``V*(x)`` (Eq. 17)."""
    if taus is None:
        taus = taus_from_rates(network, x)
    rtts = network.rtt_array()
    value = 0.0
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        weighted = float(np.sum(x[idx] / rtts[idx] ** 2))
        value -= 1.0 / (taus[user] ** 2 * max(weighted, _EPS))
    value -= 0.5 * network.congestion_cost(x)
    return value


def v_utility(network: FluidNetwork, x: np.ndarray) -> float:
    """The TCP-fairness utility ``V(x)`` of Theorem 4.

    Requires every route of a user to share the same RTT (assumption A);
    raises ``ValueError`` otherwise.
    """
    rtts = network.rtt_array()
    value = 0.0
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        user_rtts = rtts[idx]
        if not np.allclose(user_rtts, user_rtts[0], rtol=1e-9):
            raise ValueError(
                f"user {user} has routes with different RTTs; "
                "V(x) requires assumption (A)")
        total = float(np.sum(x[idx]))
        value -= 1.0 / (user_rtts[0] ** 2 * max(total, _EPS))
    value -= 0.5 * network.congestion_cost(x)
    return value


@dataclass
class KktReport:
    """Per-route KKT residuals for V* (Eqs. 18-19)."""

    residuals: np.ndarray          # g_r, must be <= tol
    complementarity: np.ndarray    # |g_r| where x_r is above the floor
    max_violation: float
    max_complementarity: float
    is_pareto_optimal: bool


def kkt_report(network: FluidNetwork, x: np.ndarray, *,
               floor_packets: float = 1.0,
               tol: float = 0.05) -> KktReport:
    """Evaluate the KKT conditions of V* at ``x``.

    For every route (Eq. 18-19, scaled by ``2/p_r`` to be unit-free)::

        g_r = (1/tau_u^2) * (1/rtt_r^2) / (sum_r x_r/rtt_r^2)^2 - p_r/2

    must satisfy ``g_r <= tol`` and ``g_r ~= 0`` whenever ``x_r`` exceeds
    the probing floor.  ``is_pareto_optimal`` summarises both checks; by
    Theorem 3 this certifies that no user's ``sum_r x_r/rtt_r^2`` can be
    raised without lowering another's or raising the congestion cost.
    """
    taus = taus_from_rates(network, x)
    rtts = network.rtt_array()
    p_routes = network.route_loss_probs(x)
    g = np.zeros(network.n_routes)
    active = np.zeros(network.n_routes, dtype=bool)
    for user, routes in enumerate(network.routes_of_user):
        idx = np.asarray(routes, dtype=int)
        weighted = float(np.sum(x[idx] / rtts[idx] ** 2))
        for r in idx:
            lhs = (1.0 / taus[user] ** 2) * (1.0 / rtts[r] ** 2) \
                / max(weighted, _EPS) ** 2
            p_r = max(p_routes[r], _EPS)
            # Relative residual: lhs/(p_r/2) - 1 is 0 at the optimum.
            g[r] = lhs / (p_r / 2.0) - 1.0
            # A route is "in use" when clearly above the probing floor;
            # 30% margin separates floor-parked routes from active ones.
            active[r] = x[r] > 1.3 * floor_packets / rtts[r]
    complementarity = np.where(active, np.abs(g), 0.0)
    max_violation = float(np.max(g)) if len(g) else 0.0
    max_comp = float(np.max(complementarity)) if len(g) else 0.0
    return KktReport(
        residuals=g,
        complementarity=complementarity,
        max_violation=max_violation,
        max_complementarity=max_comp,
        is_pareto_optimal=(max_violation <= tol and max_comp <= tol))


def pareto_dominates(network: FluidNetwork, x_new: np.ndarray,
                     x_old: np.ndarray, *, rtol: float = 1e-6,
                     cost_rtol: float | None = None) -> bool:
    """True if ``x_new`` Pareto-dominates ``x_old`` in the paper's sense.

    Domination means: every user's utility ``sum_r x_r / rtt_r^2`` is at
    least as high, at least one strictly higher (beyond ``rtol``), and the
    congestion cost did not increase (beyond ``cost_rtol``, which defaults
    to ``rtol``; pass a larger value to ignore sub-capacity cost noise
    under smooth loss models).
    """
    if cost_rtol is None:
        cost_rtol = rtol
    rtts = network.rtt_array()

    def objectives(x):
        vals = np.zeros(network.n_users)
        for user, routes in enumerate(network.routes_of_user):
            idx = np.asarray(routes, dtype=int)
            vals[user] = float(np.sum(x[idx] / rtts[idx] ** 2))
        return vals

    new_vals, old_vals = objectives(x_new), objectives(x_old)
    scale = max(float(np.max(np.abs(old_vals))), _EPS)
    if np.any(new_vals < old_vals - rtol * scale):
        return False
    cost_new = network.congestion_cost(x_new)
    cost_old = network.congestion_cost(x_old)
    cost_scale = max(abs(cost_old), _EPS)
    if cost_new > cost_old + cost_rtol * cost_scale:
        return False
    return bool(np.any(new_vals > old_vals + rtol * scale))
