"""Fluid rate dynamics ``dx/dt`` for TCP, LIA, OLIA and baselines.

These are the differential equations of Section V-A, obtained from the
per-ACK window updates by replacing stochastic variations with their
expectation.  With ``x_r = w_r / rtt_r``:

* TCP (Reno, one route):   ``dx/dt = 1/rtt^2 - p x^2 / 2``
* LIA (Eq. 1):             ``dx_r/dt = (x_r/rtt_r) * min(max_i(x_i/rtt_i) /
  (sum_i x_i)^2, 1/(x_r rtt_r)) - p_r x_r^2 / 2``
* OLIA (Eq. 7):            ``dx_r/dt = x_r^2 (1/(rtt_r^2 (sum_p x_p)^2)
  - p_r/2) + alpha_r / rtt_r^2``

OLIA's ``alpha_r`` follows Eq. (6) with the inter-loss distance
approximated by its mean ``l_r = 1/p_r``: the set ``B`` of best paths
maximizes ``1/(p_r rtt_r^2)`` and the set ``M`` maximizes the window
``x_r rtt_r``.  The sets are computed with a relative tolerance; a strictly
positive tolerance yields a selection of the differential inclusion
(Eqs. 8-9) in which near-ties share the alpha mass, avoiding chattering.

Every derivative is written against the *last axis* of its inputs, so the
same code serves the classic 1-D per-user call (``(n_routes,)`` vectors)
and the batched integrator's ``(K, n_routes)`` matrices, where K sweep
points advance in lock-step.  All reductions (``sum``, ``max``) happen
along ``axis=-1``, which keeps a batched row bitwise-identical to the
corresponding 1-D computation.
"""

from __future__ import annotations

import numpy as np

_EPS = 1e-12


# The derivatives run thousands of times per trajectory on small arrays,
# where numpy's np.sum/np.max convenience wrappers cost more than the
# reductions themselves; the ufunc .reduce methods below perform the
# identical reduction without the wrapper overhead.
_sum = np.add.reduce
_rowmax = np.maximum.reduce


def _argmax_mask(scores: np.ndarray, rel_tol: float) -> np.ndarray:
    """Boolean mask of entries within ``rel_tol`` (relative) of the row max.

    Rows whose maximum is non-positive select every entry, mirroring the
    historical set-based helper.  Works along the last axis.
    """
    best = _rowmax(scores, axis=-1, keepdims=True)
    mask = scores >= best * (1.0 - rel_tol)
    mask |= best <= 0
    return mask


class FluidAlgorithm:
    """Rate derivative of one user's routes under a given algorithm."""

    name = "base"

    #: True when the derivative of each route depends only on that
    #: route's own (x, p, rtt) — no per-user reductions — so the routes
    #: of many users can be evaluated in a single call.
    elementwise = False

    def derivative(self, x: np.ndarray, p: np.ndarray,
                   rtt: np.ndarray) -> np.ndarray:
        """``dx/dt`` for this user's routes.

        Parameters are per-route arrays restricted to the user's routes:
        current rates ``x`` (pkt/s), loss probabilities ``p``, RTTs
        ``rtt``.  Shapes are ``(n_routes,)`` or batched
        ``(K, n_routes)``; routes live on the last axis.
        """
        raise NotImplementedError


class TcpFluid(FluidAlgorithm):
    """Regular TCP on each route independently (uncoupled multipath)."""

    name = "tcp"
    elementwise = True

    def derivative(self, x, p, rtt):
        return 1.0 / (rtt * rtt) - p * x * x / 2.0


class LiaFluid(FluidAlgorithm):
    """MPTCP's linked-increases algorithm (fluid version of Eq. 1)."""

    name = "lia"

    def derivative(self, x, p, rtt):
        x = np.asarray(x, dtype=float)
        total = _sum(x, axis=-1, keepdims=True)
        safe_total = np.maximum(total, _EPS)
        coupled = _rowmax(x / rtt, axis=-1, keepdims=True) \
            / (safe_total * safe_total)
        cap = 1.0 / np.maximum(x * rtt, _EPS)
        increase = x * np.minimum(coupled, cap) / rtt
        dx = increase - p * x * x / 2.0
        return np.where(total <= _EPS, 1.0 / (rtt * rtt), dx)


class OliaFluid(FluidAlgorithm):
    """OLIA (fluid version of Eqs. 5-7 with ``l_r ~= 1/p_r``)."""

    name = "olia"

    def __init__(self, tie_tolerance: float = 1e-3) -> None:
        if tie_tolerance < 0:
            raise ValueError("tie_tolerance must be non-negative")
        self.tie_tolerance = tie_tolerance

    def alphas(self, x: np.ndarray, p: np.ndarray,
               rtt: np.ndarray) -> np.ndarray:
        """``alpha_r`` of Eq. (6) with ``l_r = 1/p_r`` (last-axis batched)."""
        x = np.asarray(x, dtype=float)
        n_paths = x.shape[-1]
        windows = x * rtt
        best_scores = 1.0 / (np.maximum(p, _EPS) * rtt * rtt)
        max_mask = _argmax_mask(windows, self.tie_tolerance)
        best_mask = _argmax_mask(best_scores, self.tie_tolerance)
        best_not_max = best_mask & ~max_mask
        n_best_not_max = np.count_nonzero(best_not_max, axis=-1,
                                          keepdims=True)
        n_max = np.count_nonzero(max_mask, axis=-1, keepdims=True)
        has_transfer = n_best_not_max > 0
        gain = (1.0 / n_paths) / np.maximum(n_best_not_max, 1)
        pain = -(1.0 / n_paths) / np.maximum(n_max, 1)
        alphas = np.where(best_not_max, gain, 0.0)
        alphas = np.where(max_mask, pain, alphas)
        return np.where(has_transfer, alphas, 0.0)

    def derivative(self, x, p, rtt):
        x = np.asarray(x, dtype=float)
        total = _sum(x, axis=-1, keepdims=True)
        safe_total = np.maximum(total, _EPS)
        kelly_voice = x * x * (
            1.0 / (rtt * rtt * safe_total * safe_total) - p / 2.0)
        dx = kelly_voice + self.alphas(x, p, rtt) / (rtt * rtt)
        return np.where(total <= _EPS, 1.0 / (rtt * rtt), dx)


class CoupledFluid(OliaFluid):
    """Fully coupled Kelly-Voice dynamics: OLIA without the alpha term."""

    name = "coupled"

    def alphas(self, x, p, rtt):
        return np.zeros(np.shape(x))


class EwtcpFluid(FluidAlgorithm):
    """Equally-weighted TCP: weight ``1/n^2`` per subflow."""

    name = "ewtcp"

    def derivative(self, x, p, rtt):
        x = np.asarray(x, dtype=float)
        n_paths = x.shape[-1]
        weight = 1.0 / (n_paths * n_paths)
        return weight / (rtt * rtt) - p * x * x / 2.0


def make_fluid_algorithm(name: str, **params) -> FluidAlgorithm:
    """Instantiate a fluid algorithm by name (``tcp``, ``lia``, ``olia``...).

    .. deprecated::
        Thin wrapper over the cross-layer registry — use
        :func:`repro.core.registry.make_fluid_algorithm`, which resolves
        the same names (and is the only dispatch path; a CI gate keeps
        new call sites off this wrapper).
    """
    import warnings

    from ..core import registry
    warnings.warn(
        "repro.fluid.dynamics.make_fluid_algorithm is deprecated; use "
        "repro.core.registry.make_fluid_algorithm",
        DeprecationWarning, stacklevel=2)
    return registry.make_fluid_algorithm(name, **params)
