"""Fluid rate dynamics ``dx/dt`` for TCP, LIA, OLIA and baselines.

These are the differential equations of Section V-A, obtained from the
per-ACK window updates by replacing stochastic variations with their
expectation.  With ``x_r = w_r / rtt_r``:

* TCP (Reno, one route):   ``dx/dt = 1/rtt^2 - p x^2 / 2``
* LIA (Eq. 1):             ``dx_r/dt = (x_r/rtt_r) * min(max_i(x_i/rtt_i) /
  (sum_i x_i)^2, 1/(x_r rtt_r)) - p_r x_r^2 / 2``
* OLIA (Eq. 7):            ``dx_r/dt = x_r^2 (1/(rtt_r^2 (sum_p x_p)^2)
  - p_r/2) + alpha_r / rtt_r^2``

OLIA's ``alpha_r`` follows Eq. (6) with the inter-loss distance
approximated by its mean ``l_r = 1/p_r``: the set ``B`` of best paths
maximizes ``1/(p_r rtt_r^2)`` and the set ``M`` maximizes the window
``x_r rtt_r``.  The sets are computed with a relative tolerance; a strictly
positive tolerance yields a selection of the differential inclusion
(Eqs. 8-9) in which near-ties share the alpha mass, avoiding chattering.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

_EPS = 1e-12


def _argmax_set(scores: Sequence[float], rel_tol: float) -> List[int]:
    """Indices whose score is within ``rel_tol`` (relative) of the max."""
    best = max(scores)
    if best <= 0:
        return list(range(len(scores)))
    threshold = best * (1.0 - rel_tol)
    return [i for i, s in enumerate(scores) if s >= threshold]


class FluidAlgorithm:
    """Rate derivative of one user's routes under a given algorithm."""

    name = "base"

    def derivative(self, x: np.ndarray, p: np.ndarray,
                   rtt: np.ndarray) -> np.ndarray:
        """``dx/dt`` for this user's routes.

        Parameters are per-route vectors restricted to the user's routes:
        current rates ``x`` (pkt/s), loss probabilities ``p``, RTTs ``rtt``.
        """
        raise NotImplementedError


class TcpFluid(FluidAlgorithm):
    """Regular TCP on each route independently (uncoupled multipath)."""

    name = "tcp"

    def derivative(self, x, p, rtt):
        return 1.0 / (rtt * rtt) - p * x * x / 2.0


class LiaFluid(FluidAlgorithm):
    """MPTCP's linked-increases algorithm (fluid version of Eq. 1)."""

    name = "lia"

    def derivative(self, x, p, rtt):
        total = float(np.sum(x))
        if total <= _EPS:
            return 1.0 / (rtt * rtt)
        coupled = float(np.max(x / rtt)) / (total * total)
        cap = 1.0 / np.maximum(x * rtt, _EPS)
        increase = x * np.minimum(coupled, cap) / rtt
        return increase - p * x * x / 2.0


class OliaFluid(FluidAlgorithm):
    """OLIA (fluid version of Eqs. 5-7 with ``l_r ~= 1/p_r``)."""

    name = "olia"

    def __init__(self, tie_tolerance: float = 1e-3) -> None:
        if tie_tolerance < 0:
            raise ValueError("tie_tolerance must be non-negative")
        self.tie_tolerance = tie_tolerance

    def alphas(self, x: np.ndarray, p: np.ndarray,
               rtt: np.ndarray) -> np.ndarray:
        """``alpha_r`` of Eq. (6) with ``l_r = 1/p_r``."""
        n_paths = len(x)
        windows = x * rtt
        best_scores = 1.0 / (np.maximum(p, _EPS) * rtt * rtt)
        max_set = set(_argmax_set(list(windows), self.tie_tolerance))
        best_set = set(_argmax_set(list(best_scores), self.tie_tolerance))
        best_not_max = best_set - max_set
        alphas = np.zeros(n_paths)
        if not best_not_max:
            return alphas
        gain = (1.0 / n_paths) / len(best_not_max)
        pain = -(1.0 / n_paths) / len(max_set)
        for idx in best_not_max:
            alphas[idx] = gain
        for idx in max_set:
            alphas[idx] = pain
        return alphas

    def derivative(self, x, p, rtt):
        total = float(np.sum(x))
        if total <= _EPS:
            return 1.0 / (rtt * rtt)
        kelly_voice = x * x * (1.0 / (rtt * rtt * total * total) - p / 2.0)
        return kelly_voice + self.alphas(x, p, rtt) / (rtt * rtt)


class CoupledFluid(OliaFluid):
    """Fully coupled Kelly-Voice dynamics: OLIA without the alpha term."""

    name = "coupled"

    def alphas(self, x, p, rtt):
        return np.zeros(len(x))


class EwtcpFluid(FluidAlgorithm):
    """Equally-weighted TCP: weight ``1/n^2`` per subflow."""

    name = "ewtcp"

    def derivative(self, x, p, rtt):
        n_paths = len(x)
        weight = 1.0 / (n_paths * n_paths)
        return weight / (rtt * rtt) - p * x * x / 2.0


_ALGORITHMS = {
    "tcp": TcpFluid,
    "reno": TcpFluid,
    "uncoupled": TcpFluid,
    "lia": LiaFluid,
    "olia": OliaFluid,
    "coupled": CoupledFluid,
    "ewtcp": EwtcpFluid,
}


def make_fluid_algorithm(name: str) -> FluidAlgorithm:
    """Instantiate a fluid algorithm by name (``tcp``, ``lia``, ``olia``...)."""
    try:
        return _ALGORITHMS[name.lower()]()
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise KeyError(f"unknown fluid algorithm {name!r}; known: {known}") \
            from None
