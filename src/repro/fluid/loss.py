"""Link loss models ``p_l(y)`` for the fluid network.

The fluid model of Section V assumes each link ``l`` has a loss rate
``p_l`` that is an increasing function of the total traffic ``y`` through
it.  Three families are provided:

* :class:`PowerLoss` — smooth ``p(y) = p_c * (y/C)**beta``; convenient for
  proofs-by-numerics because it is differentiable everywhere.
* :class:`SharpLoss` — a steep power law approximating the "sharp around
  C_l" regime of Remark 1 (capacity constraints).
* :class:`RedLoss` — the piecewise-linear RED marking curve the testbed
  routers use (min_th/max_th/gentle), mapped from queue occupancy to rate.

Every model also exposes :meth:`LossModel.cost`, the primitive
``int_0^y p(u) du`` used by the congestion cost ``C(x)`` of Theorem 3.

Loss probabilities are evaluated through module-level formula functions
(:func:`power_loss_probability`, :func:`red_loss_probability`) written in
branch-free numpy so they accept scalars, 1-D rate vectors or batched
``(K,)``/``(K, n)`` rate arrays — with the model parameters themselves
optionally being per-point arrays.  The batched fluid backend stacks the
parameters of K sweep points and calls the *same* functions, which keeps
a batched evaluation bitwise-identical to K scalar ones.
"""

from __future__ import annotations

import math

import numpy as np


def power_loss_probability(rate, capacity, p_at_capacity, exponent,
                           saturation):
    """Vectorized ``min(1, p_c * (rate/C)**beta)`` with a floor at 0.

    ``rate`` and the parameters broadcast against each other; scalars,
    per-point ``(K,)`` arrays and full ``(K, n)`` matrices all work.
    """
    rate = np.asarray(rate, dtype=float)
    clipped = np.minimum(rate, saturation)
    p = p_at_capacity * (clipped / capacity) ** exponent
    p = np.where(rate >= saturation, 1.0, p)
    return np.where(rate <= 0.0, 0.0, p)


def red_loss_probability(rate, p_max, low_rate, capacity, high_rate):
    """Vectorized piecewise-linear RED curve (see :class:`RedLoss`)."""
    rate = np.asarray(rate, dtype=float)
    frac_low = (np.minimum(rate, capacity) - low_rate) \
        / (capacity - low_rate)
    p = p_max * frac_low
    frac_high = (np.minimum(rate, high_rate) - capacity) \
        / (high_rate - capacity)
    p = np.where(rate > capacity, p_max + (1.0 - p_max) * frac_high, p)
    p = np.where(rate > high_rate, 1.0, p)
    return np.where(rate <= low_rate, 0.0, p)


def _scalar_or_array(value, rate):
    """Return a plain float for 0-d input, the array otherwise."""
    if np.ndim(rate) == 0:
        return float(value)
    return value


class LossModel:
    """Increasing loss probability as a function of link rate (pkt/s)."""

    #: Nominal capacity in pkt/s (used for reporting and utilization).
    capacity: float

    def __call__(self, rate):
        """Loss probability at total link ``rate``, in ``[0, 1]``.

        ``rate`` may be a scalar or an ndarray (any shape); the result has
        the same shape (a plain float for scalar input).
        """
        raise NotImplementedError

    def cost(self, rate: float) -> float:
        """Congestion-cost primitive ``int_0^rate p(u) du``."""
        raise NotImplementedError


class PowerLoss(LossModel):
    """``p(y) = p_at_capacity * (y / capacity)**exponent`` (clamped to 1).

    The default exponent of 4 gives a loss probability that rises quickly
    but smoothly around the capacity, which keeps the Euler integration of
    the fluid dynamics well behaved.
    """

    def __init__(self, capacity: float, p_at_capacity: float = 0.01,
                 exponent: float = 4.0) -> None:
        if capacity <= 0 or not 0 < p_at_capacity <= 1 or exponent <= 0:
            raise ValueError("invalid PowerLoss parameters")
        self.capacity = capacity
        self.p_at_capacity = p_at_capacity
        self.exponent = exponent
        # Rate beyond which p saturates at 1.
        self._saturation = capacity * (1.0 / p_at_capacity) ** (1.0 / exponent)

    def __call__(self, rate):
        p = power_loss_probability(rate, self.capacity, self.p_at_capacity,
                                   self.exponent, self._saturation)
        return _scalar_or_array(p, rate)

    def cost(self, rate: float) -> float:
        if rate <= 0:
            return 0.0
        k = self.exponent
        if rate <= self._saturation:
            return self.p_at_capacity * rate * (rate / self.capacity) ** k / (k + 1)
        at_sat = (self.p_at_capacity * self._saturation / (k + 1)
                  * (self._saturation / self.capacity) ** k)
        return at_sat + (rate - self._saturation)


class SharpLoss(PowerLoss):
    """A steep power law: negligible below capacity, rising fast above it.

    Approximates the binary congestion cost of Remark 1, where the cost
    function effectively enforces ``sum_{r in l} x_r <= C_l``.
    """

    def __init__(self, capacity: float, p_at_capacity: float = 0.02,
                 exponent: float = 12.0) -> None:
        super().__init__(capacity, p_at_capacity, exponent)


class RedLoss(LossModel):
    """Piecewise-linear RED marking curve expressed in the rate domain.

    The testbed RED queue (Section III) drops with probability 0 up to
    ``min_th``, then linearly up to ``p_max`` at ``max_th``, then linearly
    up to 1 at ``2 * max_th`` (gentle mode).  In the fluid model the queue
    occupancy is monotone in the arrival rate, so we map the thresholds to
    rates: zero loss below ``low * capacity``, ``p_max`` at capacity, and 1
    at ``high * capacity``.
    """

    def __init__(self, capacity: float, p_max: float = 0.1,
                 low: float = 0.9, high: float = 1.5) -> None:
        if capacity <= 0 or not 0 < p_max < 1 or not 0 < low < 1 < high:
            raise ValueError("invalid RedLoss parameters")
        self.capacity = capacity
        self.p_max = p_max
        self.low_rate = low * capacity
        self.high_rate = high * capacity

    def __call__(self, rate):
        p = red_loss_probability(rate, self.p_max, self.low_rate,
                                 self.capacity, self.high_rate)
        return _scalar_or_array(p, rate)

    def cost(self, rate: float) -> float:
        # Integrate the piecewise-linear curve segment by segment.
        total = 0.0
        if rate <= self.low_rate:
            return 0.0
        # Segment 2: linear 0 -> p_max over [low_rate, capacity].
        seg_end = min(rate, self.capacity)
        width = seg_end - self.low_rate
        slope = self.p_max / (self.capacity - self.low_rate)
        total += 0.5 * slope * width * width
        if rate <= self.capacity:
            return total
        # Segment 3: linear p_max -> 1 over [capacity, high_rate].
        seg_end = min(rate, self.high_rate)
        width = seg_end - self.capacity
        slope = (1.0 - self.p_max) / (self.high_rate - self.capacity)
        total += self.p_max * width + 0.5 * slope * width * width
        if rate <= self.high_rate:
            return total
        # Saturated tail.
        total += rate - self.high_rate
        return total


def equilibrium_rate_for_tcp(loss: LossModel, rtt: float,
                             n_flows: int = 1) -> float:
    """Rate at which ``n_flows`` TCP users equilibrate on a single link.

    Solves ``n * sqrt(2 / p(y)) / rtt = y`` by bisection; a helper used in
    tests to cross-check the fluid integrator against the loss model.
    """
    lo, hi = 1e-9, max(loss.capacity * 10.0, 1.0)

    def excess(y: float) -> float:
        p = max(loss(y), 1e-12)
        return n_flows * math.sqrt(2.0 / p) / rtt - y

    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if excess(mid) > 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
