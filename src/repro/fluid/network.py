"""Static fluid network: links, routes and users (Section V-A).

The network model follows Kelly et al.: a set of links, each with a loss
model ``p_l``; routes are sets of links; each user owns a set of routes.
Route loss probabilities are ``p_r = sum_{l in r} p_l`` (independent small
losses, as assumed in the paper).

Rates live in a flat numpy vector indexed by *route id*, which makes the
dynamics and fixed-point code vectorizable and easy to test.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .loss import LossModel


class FluidNetwork:
    """Container for links, users and routes of the fluid model."""

    def __init__(self) -> None:
        self._loss_models: List[LossModel] = []
        self._link_names: List[str] = []
        self._user_names: List[str] = []
        self.routes_of_user: List[List[int]] = []
        self.user_of_route: List[int] = []
        self.links_of_route: List[List[int]] = []
        self.rtts: List[float] = []
        self._route_names: List[str] = []

    # -- construction ---------------------------------------------------------
    def add_link(self, loss_model: LossModel, name: str | None = None) -> int:
        """Register a link; returns its id."""
        self._loss_models.append(loss_model)
        self._link_names.append(name or f"link{len(self._loss_models) - 1}")
        return len(self._loss_models) - 1

    def add_user(self, name: str | None = None) -> int:
        """Register a user; returns its id."""
        self.routes_of_user.append([])
        self._user_names.append(name or f"user{len(self.routes_of_user) - 1}")
        return len(self.routes_of_user) - 1

    def add_route(self, user: int, links: Sequence[int], rtt: float,
                  name: str | None = None) -> int:
        """Attach a route (a set of link ids) to ``user``; returns route id."""
        if rtt <= 0:
            raise ValueError("route RTT must be positive")
        if not links:
            raise ValueError("a route must cross at least one link")
        for link in links:
            if not 0 <= link < len(self._loss_models):
                raise ValueError(f"unknown link id {link}")
        route_id = len(self.user_of_route)
        self.routes_of_user[user].append(route_id)
        self.user_of_route.append(user)
        self.links_of_route.append(list(links))
        self.rtts.append(float(rtt))
        self._route_names.append(name or f"route{route_id}")
        return route_id

    # -- sizes ------------------------------------------------------------------
    @property
    def n_links(self) -> int:
        return len(self._loss_models)

    @property
    def n_users(self) -> int:
        return len(self.routes_of_user)

    @property
    def n_routes(self) -> int:
        return len(self.user_of_route)

    def link_name(self, link: int) -> str:
        return self._link_names[link]

    def user_name(self, user: int) -> str:
        return self._user_names[user]

    def route_name(self, route: int) -> str:
        return self._route_names[route]

    def loss_model(self, link: int) -> LossModel:
        return self._loss_models[link]

    def rtt_array(self) -> np.ndarray:
        """Route RTTs as a numpy vector."""
        return np.asarray(self.rtts, dtype=float)

    # -- rate/loss computations --------------------------------------------------
    def link_rates(self, x: np.ndarray) -> np.ndarray:
        """Total rate through each link for route-rate vector ``x``."""
        rates = np.zeros(self.n_links)
        for route, links in enumerate(self.links_of_route):
            for link in links:
                rates[link] += x[route]
        return rates

    def link_loss_probs(self, x: np.ndarray) -> np.ndarray:
        """Loss probability at each link."""
        rates = self.link_rates(x)
        return np.array([model(rate)
                         for model, rate in zip(self._loss_models, rates)])

    def route_loss_probs(self, x: np.ndarray) -> np.ndarray:
        """Per-route loss ``p_r = min(1, sum_{l in r} p_l)``."""
        link_probs = self.link_loss_probs(x)
        route_probs = np.array([
            sum(link_probs[link] for link in links)
            for links in self.links_of_route])
        return np.minimum(route_probs, 1.0)

    def user_totals(self, x: np.ndarray) -> np.ndarray:
        """Total rate per user."""
        totals = np.zeros(self.n_users)
        for route, user in enumerate(self.user_of_route):
            totals[user] += x[route]
        return totals

    def congestion_cost(self, x: np.ndarray) -> float:
        """The paper's ``C(x) = sum_l int_0^{y_l} p_l(u) du`` (Theorem 3)."""
        rates = self.link_rates(x)
        return float(sum(model.cost(rate)
                         for model, rate in zip(self._loss_models, rates)))

    def describe(self) -> str:
        """Readable one-line-per-entity summary (debugging aid)."""
        lines = [f"FluidNetwork: {self.n_links} links, "
                 f"{self.n_users} users, {self.n_routes} routes"]
        for user, routes in enumerate(self.routes_of_user):
            parts = []
            for route in routes:
                links = "+".join(self._link_names[l]
                                 for l in self.links_of_route[route])
                parts.append(f"{self._route_names[route]}({links}, "
                             f"rtt={self.rtts[route]:g})")
            lines.append(f"  {self._user_names[user]}: " + ", ".join(parts))
        return "\n".join(lines)
