"""Static fluid network: links, routes and users (Section V-A).

The network model follows Kelly et al.: a set of links, each with a loss
model ``p_l``; routes are sets of links; each user owns a set of routes.
Route loss probabilities are ``p_r = sum_{l in r} p_l`` (independent small
losses, as assumed in the paper).

Rates live in a flat numpy vector indexed by *route id*, which makes the
dynamics and fixed-point code vectorizable and easy to test.  Every rate
computation works along the **last axis**, so the same methods accept a
classic ``(n_routes,)`` vector or a batched ``(K, n_routes)`` matrix of K
sweep points.

:class:`BatchFluidNetwork` stacks K topologically-identical networks
(same links/users/routes, possibly different RTTs and loss parameters)
and evaluates all K loss curves in one vectorized pass per link — the
piece that lets the batched integrator advance a whole parameter sweep
with per-step Python cost independent of K.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .loss import (
    LossModel,
    PowerLoss,
    RedLoss,
    power_loss_probability,
    red_loss_probability,
)


class FluidNetwork:
    """Container for links, users and routes of the fluid model."""

    def __init__(self) -> None:
        self._loss_models: List[LossModel] = []
        self._link_names: List[str] = []
        self._user_names: List[str] = []
        self.routes_of_user: List[List[int]] = []
        self.user_of_route: List[int] = []
        self.links_of_route: List[List[int]] = []
        self.rtts: List[float] = []
        self._route_names: List[str] = []

    # -- construction ---------------------------------------------------------
    def add_link(self, loss_model: LossModel, name: str | None = None) -> int:
        """Register a link; returns its id."""
        self._loss_models.append(loss_model)
        self._link_names.append(name or f"link{len(self._loss_models) - 1}")
        return len(self._loss_models) - 1

    def add_user(self, name: str | None = None) -> int:
        """Register a user; returns its id."""
        self.routes_of_user.append([])
        self._user_names.append(name or f"user{len(self.routes_of_user) - 1}")
        return len(self.routes_of_user) - 1

    def add_route(self, user: int, links: Sequence[int], rtt: float,
                  name: str | None = None) -> int:
        """Attach a route (a set of link ids) to ``user``; returns route id."""
        if rtt <= 0:
            raise ValueError("route RTT must be positive")
        if not links:
            raise ValueError("a route must cross at least one link")
        for link in links:
            if not 0 <= link < len(self._loss_models):
                raise ValueError(f"unknown link id {link}")
        route_id = len(self.user_of_route)
        self.routes_of_user[user].append(route_id)
        self.user_of_route.append(user)
        self.links_of_route.append(list(links))
        self.rtts.append(float(rtt))
        self._route_names.append(name or f"route{route_id}")
        return route_id

    # -- sizes ------------------------------------------------------------------
    @property
    def n_links(self) -> int:
        return len(self._loss_models)

    @property
    def n_users(self) -> int:
        return len(self.routes_of_user)

    @property
    def n_routes(self) -> int:
        return len(self.user_of_route)

    def link_name(self, link: int) -> str:
        return self._link_names[link]

    def user_name(self, user: int) -> str:
        return self._user_names[user]

    def route_name(self, route: int) -> str:
        return self._route_names[route]

    def loss_model(self, link: int) -> LossModel:
        return self._loss_models[link]

    def rtt_array(self) -> np.ndarray:
        """Route RTTs as a numpy vector."""
        return np.asarray(self.rtts, dtype=float)

    # -- rate/loss computations --------------------------------------------------
    def link_rates(self, x: np.ndarray) -> np.ndarray:
        """Total rate through each link; routes live on the last axis of
        ``x`` (shape ``(n_routes,)`` or ``(K, n_routes)``)."""
        x = np.asarray(x, dtype=float)
        rates = np.zeros(x.shape[:-1] + (self.n_links,))
        for route, links in enumerate(self.links_of_route):
            for link in links:
                rates[..., link] += x[..., route]
        return rates

    def link_loss_probs(self, x: np.ndarray) -> np.ndarray:
        """Loss probability at each link (last axis = link id)."""
        rates = self.link_rates(x)
        return np.stack(
            [np.asarray(model(rates[..., link]), dtype=float)
             for link, model in enumerate(self._loss_models)], axis=-1)

    def route_loss_probs(self, x: np.ndarray) -> np.ndarray:
        """Per-route loss ``p_r = min(1, sum_{l in r} p_l)``."""
        link_probs = self.link_loss_probs(x)
        route_probs = np.stack(
            [sum(link_probs[..., link] for link in links)
             for links in self.links_of_route], axis=-1)
        return np.minimum(route_probs, 1.0)

    def user_totals(self, x: np.ndarray) -> np.ndarray:
        """Total rate per user (last axis = user id)."""
        x = np.asarray(x, dtype=float)
        totals = np.zeros(x.shape[:-1] + (self.n_users,))
        for route, user in enumerate(self.user_of_route):
            totals[..., user] += x[..., route]
        return totals

    def congestion_cost(self, x: np.ndarray) -> float:
        """The paper's ``C(x) = sum_l int_0^{y_l} p_l(u) du`` (Theorem 3)."""
        rates = self.link_rates(x)
        return float(sum(model.cost(rate)
                         for model, rate in zip(self._loss_models, rates)))

    def describe(self) -> str:
        """Readable one-line-per-entity summary (debugging aid)."""
        lines = [f"FluidNetwork: {self.n_links} links, "
                 f"{self.n_users} users, {self.n_routes} routes"]
        for user, routes in enumerate(self.routes_of_user):
            parts = []
            for route in routes:
                links = "+".join(self._link_names[l]
                                 for l in self.links_of_route[route])
                parts.append(f"{self._route_names[route]}({links}, "
                             f"rtt={self.rtts[route]:g})")
            lines.append(f"  {self._user_names[user]}: " + ", ".join(parts))
        return "\n".join(lines)


class BatchFluidNetwork:
    """K topologically-identical fluid networks stacked for batching.

    The member networks must share links, users and routes (ids and
    incidence); RTTs and per-link loss-model parameters may differ per
    point — exactly the shape of a figure sweep.

    The per-step work is restructured so its *Python op count is a small
    constant*, independent of K and (mostly) of the topology size:

    * link totals and route losses are segment sums — one gather plus one
      ``np.add.reduceat`` along the last axis.  Segments reduce row by
      row with fixed boundaries, so a batched row runs the exact same
      float additions as the K=1 case (the bitwise contract);
    * links whose K loss models share a family (:class:`PowerLoss` /
      :class:`RedLoss`) are evaluated together: parameters are stacked
      into ``(K, n_group)`` matrices and the whole group goes through one
      call of the shared formula functions in :mod:`repro.fluid.loss`.
      Unknown model classes fall back to a per-point scalar loop
      (correct, just not vectorized).
    """

    def __init__(self, networks: Sequence[FluidNetwork]) -> None:
        networks = list(networks)
        if not networks:
            raise ValueError("need at least one network")
        first = networks[0]
        for net in networks[1:]:
            if (net.links_of_route != first.links_of_route
                    or net.routes_of_user != first.routes_of_user
                    or net.user_of_route != first.user_of_route
                    or net.n_links != first.n_links):
                raise ValueError(
                    "all networks in a batch must share the same topology")
        self.networks = networks
        self.rtts = np.stack([net.rtt_array() for net in networks])
        self._build_segment_sums(first)
        self._build_loss_groups(first)

    # -- precomputation ---------------------------------------------------------
    def _build_segment_sums(self, first: FluidNetwork) -> None:
        # Link totals: for each link, the routes crossing it, flattened
        # into one gather array with reduceat segment starts.
        routes_crossing: List[List[int]] = [[] for _ in range(first.n_links)]
        for route, links in enumerate(first.links_of_route):
            for link in links:
                routes_crossing[link].append(route)
        nonempty = [link for link, routes in enumerate(routes_crossing)
                    if routes]
        self._carried_links = np.asarray(nonempty, dtype=int)
        gather: List[int] = []
        starts: List[int] = []
        for link in nonempty:
            starts.append(len(gather))
            gather.extend(routes_crossing[link])
        self._link_gather = np.asarray(gather, dtype=int)
        self._link_starts = np.asarray(starts, dtype=int)
        # With every link carrying traffic (the usual case) the segment
        # sums land in link order already and the zero-fill is skipped.
        self._all_links_carried = len(nonempty) == first.n_links
        # Route losses: each route sums its links (always >= 1 link).
        gather, starts = [], []
        for links in first.links_of_route:
            starts.append(len(gather))
            gather.extend(links)
        self._route_gather = np.asarray(gather, dtype=int)
        self._route_starts = np.asarray(starts, dtype=int)

    def _build_loss_groups(self, first: FluidNetwork) -> None:
        """Group links by loss family for stacked evaluation."""
        power_links: List[int] = []
        red_links: List[int] = []
        fallback: List[int] = []
        for link in range(first.n_links):
            models = [net.loss_model(link) for net in self.networks]
            if all(isinstance(m, PowerLoss)
                   and type(m).__call__ is PowerLoss.__call__
                   for m in models):
                power_links.append(link)
            elif all(isinstance(m, RedLoss)
                     and type(m).__call__ is RedLoss.__call__
                     for m in models):
                red_links.append(link)
            else:
                fallback.append(link)

        def stack(links: List[int], attr: str) -> np.ndarray:
            return np.array([[getattr(net.loss_model(link), attr)
                              for link in links]
                             for net in self.networks])

        self._power_links = np.asarray(power_links, dtype=int)
        if power_links:
            self._power_params = (stack(power_links, "capacity"),
                                  stack(power_links, "p_at_capacity"),
                                  stack(power_links, "exponent"),
                                  stack(power_links, "_saturation"))
        self._red_links = np.asarray(red_links, dtype=int)
        if red_links:
            self._red_params = (stack(red_links, "p_max"),
                                stack(red_links, "low_rate"),
                                stack(red_links, "capacity"),
                                stack(red_links, "high_rate"))
        self._fallback_links = fallback
        self._fallback_models = {
            link: [net.loss_model(link) for net in self.networks]
            for link in fallback}

    # -- shape -------------------------------------------------------------------
    @property
    def n_points(self) -> int:
        return len(self.networks)

    @property
    def n_links(self) -> int:
        return self.networks[0].n_links

    @property
    def n_users(self) -> int:
        return self.networks[0].n_users

    @property
    def n_routes(self) -> int:
        return self.networks[0].n_routes

    @property
    def links_of_route(self) -> List[List[int]]:
        return self.networks[0].links_of_route

    @property
    def routes_of_user(self) -> List[List[int]]:
        return self.networks[0].routes_of_user

    # -- rate/loss computations ---------------------------------------------------
    def link_rates(self, x: np.ndarray) -> np.ndarray:
        """Per-link totals, ``(K, n_routes) -> (K, n_links)``."""
        x = np.asarray(x, dtype=float)
        if self._all_links_carried:
            return np.add.reduceat(x[..., self._link_gather],
                                   self._link_starts, axis=-1)
        rates = np.zeros(x.shape[:-1] + (self.n_links,))
        if len(self._link_gather):
            rates[..., self._carried_links] = np.add.reduceat(
                x[..., self._link_gather], self._link_starts, axis=-1)
        return rates

    def link_loss_probs(self, x: np.ndarray,
                        points: "np.ndarray | None" = None) -> np.ndarray:
        """Per-link loss probabilities, ``(K, n_routes) -> (K, n_links)``.

        ``points`` selects a *subset* of the batch: ``x`` then has shape
        ``(len(points), n_routes)`` and each row is evaluated with the
        per-point loss parameters of batch member ``points[i]``.  Every
        operation is row-wise, so a subset row is bitwise-identical to
        the same row of a full-batch evaluation — this is what lets the
        fixed-point solver drop converged rows from the compute without
        perturbing the still-active ones.
        """
        rates = self.link_rates(x)
        probs = np.empty_like(rates)
        if len(self._power_links):
            params = self._power_params if points is None else tuple(
                p[points] for p in self._power_params)
            probs[..., self._power_links] = power_loss_probability(
                rates[..., self._power_links], *params)
        if len(self._red_links):
            params = self._red_params if points is None else tuple(
                p[points] for p in self._red_params)
            probs[..., self._red_links] = red_loss_probability(
                rates[..., self._red_links], *params)
        for link in self._fallback_links:
            models = self._fallback_models[link]
            if points is not None:
                models = [models[point] for point in points]
            column = rates[..., link]
            probs[..., link] = np.array(
                [float(model(float(rate)))
                 for model, rate in zip(models, np.atleast_1d(column))])
        return probs

    def route_loss_probs(self, x: np.ndarray,
                         points: "np.ndarray | None" = None) -> np.ndarray:
        """Per-route loss ``p_r = min(1, sum_{l in r} p_l)``, batched.

        ``points`` restricts the evaluation to a subset of the batch, as
        in :meth:`link_loss_probs`.
        """
        link_probs = self.link_loss_probs(x, points)
        route_probs = np.add.reduceat(
            link_probs[..., self._route_gather], self._route_starts,
            axis=-1)
        return np.minimum(route_probs, 1.0)
