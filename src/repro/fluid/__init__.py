"""Fluid model of Section V: networks, dynamics, equilibria, utilities."""

from .dynamics import (
    CoupledFluid,
    EwtcpFluid,
    FluidAlgorithm,
    LiaFluid,
    OliaFluid,
    TcpFluid,
    make_fluid_algorithm,
)
from .equilibrium import (
    FixedPointResult,
    best_path_rate,
    epsilon_family_allocation,
    lia_allocation,
    olia_allocation,
    solve_fixed_point,
    tcp_allocation,
    tcp_rate,
    verify_theorem1,
)
from .integrator import (
    BatchFluidIntegrator,
    BatchFluidTrajectory,
    FluidTrajectory,
    integrate,
    integrate_batch,
    integrate_to_equilibrium,
)
from .loss import (
    LossModel,
    PowerLoss,
    RedLoss,
    SharpLoss,
    equilibrium_rate_for_tcp,
)
from .network import BatchFluidNetwork, FluidNetwork
from .utility import (
    KktReport,
    kkt_report,
    pareto_dominates,
    taus_from_rates,
    v_star_utility,
    v_utility,
)

__all__ = [
    "FluidNetwork",
    "BatchFluidNetwork",
    "BatchFluidIntegrator",
    "BatchFluidTrajectory",
    "integrate_batch",
    "LossModel",
    "PowerLoss",
    "SharpLoss",
    "RedLoss",
    "equilibrium_rate_for_tcp",
    "FluidAlgorithm",
    "TcpFluid",
    "LiaFluid",
    "OliaFluid",
    "CoupledFluid",
    "EwtcpFluid",
    "make_fluid_algorithm",
    "integrate",
    "integrate_to_equilibrium",
    "FluidTrajectory",
    "tcp_rate",
    "best_path_rate",
    "lia_allocation",
    "olia_allocation",
    "epsilon_family_allocation",
    "tcp_allocation",
    "solve_fixed_point",
    "FixedPointResult",
    "verify_theorem1",
    "kkt_report",
    "KktReport",
    "pareto_dominates",
    "taus_from_rates",
    "v_star_utility",
    "v_utility",
]
