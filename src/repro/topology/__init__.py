"""Topology builders: testbed scenarios and data-center FatTrees."""

from .fattree import FatTree
from .scenarios import (
    ScenarioATopology,
    ScenarioBTopology,
    ScenarioCTopology,
    TwoPathTopology,
    build_scenario_a,
    build_scenario_b,
    build_scenario_c,
    build_two_path,
)

__all__ = [
    "FatTree",
    "ScenarioATopology",
    "ScenarioBTopology",
    "ScenarioCTopology",
    "TwoPathTopology",
    "build_scenario_a",
    "build_scenario_b",
    "build_scenario_c",
    "build_two_path",
]
