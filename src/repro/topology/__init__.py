"""Topology builders: testbed scenarios, FatTrees, random workloads."""

from .fattree import FatTree
from .generator import (
    FAMILY_PRESETS,
    PRESETS,
    FlowDescription,
    GeneratedScenario,
    GeneratorConfig,
    build_random_scenario,
    family_config,
    generate_family,
    generate_preset,
    preset_config,
)
from .wireless import LinkDynamics, TimeVaryingLink
from .scenarios import (
    ScenarioATopology,
    ScenarioBTopology,
    ScenarioCTopology,
    TwoPathTopology,
    build_scenario_a,
    build_scenario_b,
    build_scenario_c,
    build_two_path,
)

__all__ = [
    "FatTree",
    "FlowDescription",
    "GeneratedScenario",
    "GeneratorConfig",
    "LinkDynamics",
    "TimeVaryingLink",
    "FAMILY_PRESETS",
    "PRESETS",
    "build_random_scenario",
    "family_config",
    "generate_family",
    "generate_preset",
    "preset_config",
    "ScenarioATopology",
    "ScenarioBTopology",
    "ScenarioCTopology",
    "TwoPathTopology",
    "build_scenario_a",
    "build_scenario_b",
    "build_scenario_c",
    "build_two_path",
]
