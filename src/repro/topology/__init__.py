"""Topology builders: testbed scenarios, FatTrees, random workloads."""

from .fattree import FatTree
from .generator import (
    PRESETS,
    FlowDescription,
    GeneratedScenario,
    GeneratorConfig,
    build_random_scenario,
    generate_preset,
    preset_config,
)
from .scenarios import (
    ScenarioATopology,
    ScenarioBTopology,
    ScenarioCTopology,
    TwoPathTopology,
    build_scenario_a,
    build_scenario_b,
    build_scenario_c,
    build_two_path,
)

__all__ = [
    "FatTree",
    "FlowDescription",
    "GeneratedScenario",
    "GeneratorConfig",
    "PRESETS",
    "build_random_scenario",
    "generate_preset",
    "preset_config",
    "ScenarioATopology",
    "ScenarioBTopology",
    "ScenarioCTopology",
    "TwoPathTopology",
    "build_scenario_a",
    "build_scenario_b",
    "build_scenario_c",
    "build_two_path",
]
