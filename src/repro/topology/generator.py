"""Seeded random scenario generator: arbitrary-size MPTCP workloads.

The paper's claims are demonstrated on three hand-built scenarios; the
roadmap's scale target needs topologies nobody hand-builds.  This module
generates them: a pool of bottleneck links with randomised capacities
and delays, plus a population of flows — multipath bulk transfers
running a configurable LIA/OLIA/EWTCP mix, single-path TCP, and a
short-flow churn fraction — wired up from the *same* objects the
hand-built scenarios use (:class:`~repro.sim.link.Link`,
:class:`~repro.sim.mptcp.PathSpec`,
:class:`~repro.sim.apps.BulkTransfer`,
:class:`~repro.sim.apps.ShortFlowSource`), so every existing harness
(``measure``, ``FlowMeter``, ``SweepRunner``) consumes a generated
scenario unchanged.

Generation is a pure function of ``(config, seed)``: the same seed
reproduces the identical scenario object graph — link rates, path
wiring, algorithm assignment, start jitter, churn seeds — which is what
makes 10k-flow runs cacheable by content hash and comparable across
scheduler backends (see ``tests/test_topology_generator.py``).

Named presets (:data:`PRESETS`) span ~100 flows to 10k+; they feed the
``python -m repro scale`` harness (:mod:`repro.experiments.scale`).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.apps import BulkTransfer, ShortFlowSource
from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.mptcp import PathSpec
from ..sim.queues import DropTailQueue, REDQueue
from .wireless import LinkDynamics, TimeVaryingLink


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random scenario generator.

    Attributes
    ----------
    n_flows : int
        Total flow population: bulk transfers plus short-flow sources
        (``churn_fraction`` decides the split).
    n_links : int
        Size of the bottleneck-link pool paths are sampled from.  Must
        be at least ``subflows_max`` so a multipath flow can place
        every subflow on a distinct primary bottleneck.
    subflows_min, subflows_max : int
        Path diversity: a multipath flow opens a uniform draw in
        ``[subflows_min, subflows_max]`` subflows, each on a distinct
        primary link.  Single-path TCP flows always use one path.
    capacity_mbps : (float, float)
        Per-link capacity range (uniform draw).
    base_rtt : (float, float)
        Per-flow base RTT range in seconds (uniform draw); the reverse
        delay of each path completes the flow's base RTT, exactly as in
        the hand-built scenario builders.
    algorithm_mix : tuple of (name, weight)
        Relative weights of the congestion-control algorithms flows are
        assigned; entries whose registry spec is canonical ``tcp``
        (including the ``reno``/``uncoupled`` aliases) become
        single-path flows, all other names go through the cross-layer
        algorithm registry as multipath (names are validated against
        the registry's packet-capable set at construction time).
    scheduler_mix : tuple of (name, weight)
        Relative weights of the packet schedulers multipath flows are
        assigned; names are validated against the registry's scheduler
        axis.  Schedulers only shape behaviour for finite transfers
        (``transfer_packets``); for long-lived bulk flows they are
        recorded but inert.
    transfer_packets : int or None
        When set, every bulk flow becomes a *finite* transfer of this
        many packets, striped by its assigned scheduler; completion
        times land in ``GeneratedScenario.transfer_times``.  ``None``
        (default) keeps the classic long-lived Iperf model.
    link_dynamics : LinkDynamics or None
        When set, every bottleneck link gets a seeded
        :class:`~repro.topology.wireless.TimeVaryingLink` driver (and
        the dynamics' channel ``loss_rate``): the wireless scenario
        families.  ``None`` keeps links wired/constant.
    churn_fraction : float
        Fraction of ``n_flows`` realised as
        :class:`~repro.sim.apps.ShortFlowSource` (Poisson arrivals of
        short TCP transfers) instead of long-lived bulk flows.
    two_hop_fraction : float
        Probability that a subflow path traverses a second bottleneck.
    queue : str
        Queue discipline of every bottleneck, ``"droptail"`` or
        ``"red"``.
    start_spread : float
        Bulk flows start uniformly inside ``[0, start_spread)`` seconds
        (random Iperf order, as in the paper's testbed protocol).
    churn_interarrival : float
        Mean inter-arrival time of each short-flow source's transfers.
    churn_flow_bytes : int
        Size of each short transfer.
    """

    n_flows: int
    n_links: int
    subflows_min: int = 2
    subflows_max: int = 4
    capacity_mbps: Tuple[float, float] = (2.0, 10.0)
    base_rtt: Tuple[float, float] = (0.04, 0.2)
    algorithm_mix: Tuple[Tuple[str, float], ...] = (
        ("lia", 0.3), ("olia", 0.3), ("balia", 0.1), ("ewtcp", 0.15),
        ("tcp", 0.15))
    scheduler_mix: Tuple[Tuple[str, float], ...] = (("minrtt", 1.0),)
    transfer_packets: Optional[int] = None
    link_dynamics: Optional[LinkDynamics] = None
    churn_fraction: float = 0.1
    two_hop_fraction: float = 0.3
    queue: str = "droptail"
    start_spread: float = 1.0
    churn_interarrival: float = 0.2
    churn_flow_bytes: int = 70_000

    def __post_init__(self) -> None:
        if self.n_flows < 1:
            raise ValueError("n_flows must be >= 1")
        if not 1 <= self.subflows_min <= self.subflows_max:
            raise ValueError(
                f"need 1 <= subflows_min <= subflows_max, got "
                f"[{self.subflows_min}, {self.subflows_max}]")
        if self.n_links < max(self.subflows_max, 2):
            raise ValueError(
                f"n_links ({self.n_links}) must cover subflows_max "
                f"({self.subflows_max}) distinct primary bottlenecks")
        if not 0.0 <= self.churn_fraction <= 1.0:
            raise ValueError("churn_fraction must be within [0, 1]")
        if not 0.0 <= self.two_hop_fraction <= 1.0:
            raise ValueError("two_hop_fraction must be within [0, 1]")
        if not self.algorithm_mix:
            raise ValueError("algorithm_mix cannot be empty")
        if any(weight < 0 for _, weight in self.algorithm_mix) \
                or sum(weight for _, weight in self.algorithm_mix) <= 0:
            raise ValueError("algorithm_mix weights must be >= 0 and "
                             "sum to a positive total")
        from ..core.registry import available_algorithms, get_spec
        for name, _ in self.algorithm_mix:
            try:
                spec = get_spec(name)
            except KeyError:
                known = ", ".join(available_algorithms("packet"))
                raise ValueError(
                    f"algorithm_mix names an unknown algorithm {name!r}; "
                    f"known: {known}") from None
            if not spec.has_packet:
                raise ValueError(
                    f"algorithm_mix entry {name!r} has no packet layer "
                    f"(supports: {', '.join(spec.layers)}); the generator "
                    "builds packet-level flows")
        if not self.scheduler_mix:
            raise ValueError("scheduler_mix cannot be empty")
        if any(weight < 0 for _, weight in self.scheduler_mix) \
                or sum(weight for _, weight in self.scheduler_mix) <= 0:
            raise ValueError("scheduler_mix weights must be >= 0 and "
                             "sum to a positive total")
        from ..core.registry import available_schedulers, get_scheduler_spec
        for sched_name, _ in self.scheduler_mix:
            try:
                get_scheduler_spec(sched_name)
            except KeyError:
                known = ", ".join(available_schedulers())
                raise ValueError(
                    f"scheduler_mix names an unknown scheduler "
                    f"{sched_name!r}; known: {known}") from None
        if self.transfer_packets is not None and self.transfer_packets < 1:
            raise ValueError("transfer_packets must be at least 1")
        low, high = self.capacity_mbps
        if not 0 < low <= high:
            raise ValueError(f"bad capacity range {self.capacity_mbps}")
        low, high = self.base_rtt
        if not 0 < low <= high:
            raise ValueError(f"bad RTT range {self.base_rtt}")

    def scaled(self, n_flows: int) -> "GeneratorConfig":
        """This config resized to ``n_flows`` (links shrink in step).

        The smoke/CI cap: the per-link flow density stays roughly the
        one the preset was designed with.
        """
        if n_flows >= self.n_flows:
            return self
        ratio = n_flows / self.n_flows
        n_links = max(int(round(self.n_links * ratio)),
                      self.subflows_max, 2)
        return dataclasses.replace(self, n_flows=n_flows, n_links=n_links)


#: Named workload sizes for the scale harness; flow counts span the
#: ~100-flow regime (where the heap backend's constants still win) to
#: the 10k+ regime the roadmap targets (wheel territory).  Link pools
#: keep ~8-20 flows per bottleneck so congestion stays realistic as the
#: population grows.
PRESETS: Dict[str, GeneratorConfig] = {
    "tiny": GeneratorConfig(n_flows=24, n_links=8),
    "small": GeneratorConfig(n_flows=100, n_links=16),
    "medium": GeneratorConfig(n_flows=1000, n_links=96),
    "large": GeneratorConfig(n_flows=10_000, n_links=768),
    "xlarge": GeneratorConfig(n_flows=20_000, n_links=1536),
}


#: Heterogeneous/wireless scenario families: the open scenario space
#: beyond the paper's wired testbed.  Each family is a complete
#: GeneratorConfig — finite transfers striped by a scheduler mix over
#: multipath-capable CC, on links whose radio model
#: (:class:`~repro.topology.wireless.LinkDynamics`) sets the fading,
#: loss and handover behaviour.  ``wired`` is the control: the same
#: workload on constant links.
FAMILY_PRESETS: Dict[str, GeneratorConfig] = {
    "wired": GeneratorConfig(
        n_flows=24, n_links=8, subflows_min=2, subflows_max=2,
        transfer_packets=400,
        scheduler_mix=(("minrtt", 0.4), ("roundrobin", 0.2),
                       ("redundant", 0.2), ("qaware", 0.2)),
        algorithm_mix=(("olia", 0.5), ("lia", 0.3), ("balia", 0.2)),
        churn_fraction=0.0),
    # Asymmetric dual-LTE: two cellular paths per flow, both fading,
    # light channel loss, no handovers — the time-varying preset the
    # scale bench gates.
    "dual_lte": GeneratorConfig(
        n_flows=24, n_links=8, subflows_min=2, subflows_max=2,
        capacity_mbps=(3.0, 30.0), base_rtt=(0.05, 0.15),
        transfer_packets=400,
        scheduler_mix=(("minrtt", 0.4), ("roundrobin", 0.2),
                       ("redundant", 0.2), ("qaware", 0.2)),
        algorithm_mix=(("olia", 0.5), ("lia", 0.3), ("balia", 0.2)),
        churn_fraction=0.0,
        link_dynamics=LinkDynamics(
            rate_range=(2e6, 40e6), change_interval=0.2,
            rate_sigma=0.35, delay_jitter=0.25, loss_rate=0.005)),
    # WiFi + LTE: wider capacity spread and heavier channel loss (WiFi
    # contention), moderate fading.
    "wifi_lte": GeneratorConfig(
        n_flows=24, n_links=8, subflows_min=2, subflows_max=2,
        capacity_mbps=(2.0, 60.0), base_rtt=(0.02, 0.12),
        transfer_packets=400,
        scheduler_mix=(("minrtt", 0.4), ("roundrobin", 0.2),
                       ("redundant", 0.2), ("qaware", 0.2)),
        algorithm_mix=(("olia", 0.5), ("lia", 0.3), ("balia", 0.2)),
        churn_fraction=0.0,
        link_dynamics=LinkDynamics(
            rate_range=(1e6, 70e6), change_interval=0.15,
            rate_sigma=0.5, delay_jitter=0.3, loss_rate=0.02)),
    # Mobility: dual-LTE radio model plus periodic handover outages.
    "handover": GeneratorConfig(
        n_flows=24, n_links=8, subflows_min=2, subflows_max=2,
        capacity_mbps=(3.0, 30.0), base_rtt=(0.05, 0.15),
        transfer_packets=400,
        scheduler_mix=(("minrtt", 0.4), ("roundrobin", 0.2),
                       ("redundant", 0.2), ("qaware", 0.2)),
        algorithm_mix=(("olia", 0.5), ("lia", 0.3), ("balia", 0.2)),
        churn_fraction=0.0,
        link_dynamics=LinkDynamics(
            rate_range=(2e6, 40e6), change_interval=0.2,
            rate_sigma=0.35, delay_jitter=0.25, loss_rate=0.005,
            handover_interval=2.0, handover_outage=0.08)),
}


@dataclass
class FlowDescription:
    """Build-time record of one generated flow (structure, not state)."""

    name: str
    kind: str                    # "bulk" or "churn"
    algorithm: str               # "tcp" for single-path / churn flows
    base_rtt: float
    start_time: float
    paths: List[Tuple[Tuple[str, ...], float]]   # (link names, reverse)
    scheduler: str = "minrtt"    # packet scheduler (multipath flows)


@dataclass
class GeneratedScenario:
    """A generated workload wired into one :class:`Simulator`.

    ``bulk_flows`` maps names to started-on-demand
    :class:`~repro.sim.apps.BulkTransfer` objects — the same mapping
    shape :class:`~repro.sim.monitors.FlowMeter` and
    :func:`~repro.experiments.runner.measure` take; ``churn_sources``
    holds the short-flow generators.  Call :meth:`start` before
    running the simulator.
    """

    sim: Simulator
    config: GeneratorConfig
    links: List[Link]
    bulk_flows: Dict[str, BulkTransfer]
    churn_sources: List[ShortFlowSource]
    flow_descriptions: List[FlowDescription] = field(default_factory=list)
    dynamics: List[TimeVaryingLink] = field(default_factory=list)
    transfer_times: List[float] = field(default_factory=list)

    def start(self) -> None:
        """Start every bulk flow (with its jitter), churn source and
        link-dynamics driver."""
        for flow in self.bulk_flows.values():
            flow.start()
        for source in self.churn_sources:
            source.start()
        for driver in self.dynamics:
            driver.start()

    @property
    def n_flows(self) -> int:
        return len(self.bulk_flows) + len(self.churn_sources)

    def describe(self) -> dict:
        """Structural summary of the scenario object graph.

        Two scenarios generated from the same ``(config, seed)`` --
        even into different simulators -- produce equal descriptions;
        the determinism tests compare these.
        """
        return {
            "links": [(link.name, link.rate_bps, link.delay,
                       type(link.queue).__name__)
                      for link in self.links],
            "flows": [(d.name, d.kind, d.algorithm, d.scheduler,
                       round(d.base_rtt, 12), round(d.start_time, 12),
                       tuple((names, round(reverse, 12))
                             for names, reverse in d.paths))
                      for d in self.flow_descriptions],
            "dynamics": (dataclasses.astuple(self.config.link_dynamics)
                         if self.config.link_dynamics is not None
                         else None),
        }


def _make_queue(rng: random.Random, capacity_mbps: float,
                discipline: str) -> DropTailQueue:
    if discipline == "red":
        return REDQueue.for_capacity_mbps(rng, capacity_mbps)
    if discipline == "droptail":
        return DropTailQueue(limit=max(int(100 * capacity_mbps / 10.0), 20))
    raise ValueError(f"unknown queue discipline {discipline!r}")


def build_random_scenario(sim: Simulator, rng: random.Random,
                          config: GeneratorConfig, *,
                          name: str = "gen") -> GeneratedScenario:
    """Generate one scenario into ``sim`` from ``rng`` and ``config``.

    Every random draw comes from ``rng``, in a fixed order, so a fresh
    ``random.Random(seed)`` reproduces the identical object graph.
    """
    # Bottleneck pool.  Link delays are bounded to a quarter of the
    # smallest base RTT so even a two-hop forward path leaves a
    # non-negative reverse delay to complete the flow's RTT.
    rtt_low, rtt_high = config.base_rtt
    max_hop = rtt_low / 4.0
    links: List[Link] = []
    dynamics_drivers: List[TimeVaryingLink] = []
    dyn = config.link_dynamics
    for i in range(config.n_links):
        capacity = rng.uniform(*config.capacity_mbps)
        delay = rng.uniform(0.25, 1.0) * max_hop
        loss_rng = None
        if dyn is not None and dyn.loss_rate > 0:
            # Private per-link stream: channel drops at simulation time
            # never consume the build rng.
            loss_rng = random.Random(rng.getrandbits(64))
        link = Link(sim, rate_bps=capacity * 1e6, delay=delay,
                    queue=_make_queue(rng, capacity, config.queue),
                    name=f"{name}.l{i}",
                    loss_rate=dyn.loss_rate if dyn is not None else 0.0,
                    loss_rng=loss_rng)
        links.append(link)
        if dyn is not None:
            dynamics_drivers.append(
                TimeVaryingLink(sim, link, dyn, rng.getrandbits(64)))

    from ..core.registry import get_spec
    names = [algo for algo, _ in config.algorithm_mix]
    weights = [weight for _, weight in config.algorithm_mix]
    # Single-path flows are decided by the *canonical* spec, so the
    # registry aliases ("reno"/"uncoupled") behave exactly like "tcp".
    single_path = {name for name in names if get_spec(name).name == "tcp"}
    n_churn = int(round(config.n_flows * config.churn_fraction))

    def draw_paths(n_paths: int, base_rtt: float) \
            -> Tuple[List[PathSpec], List[Tuple[Tuple[str, ...], float]]]:
        """``n_paths`` subflow paths on distinct primary bottlenecks."""
        primaries = rng.sample(links, n_paths)
        specs, described = [], []
        for primary in primaries:
            path = [primary]
            if config.two_hop_fraction > 0 \
                    and rng.random() < config.two_hop_fraction:
                second = links[rng.randrange(config.n_links)]
                if second is not primary:
                    path.append(second)
            forward = sum(link.delay for link in path)
            reverse = base_rtt - forward
            specs.append(PathSpec(tuple(path), reverse))
            described.append((tuple(link.name for link in path), reverse))
        return specs, described

    scheduler_names = [sched for sched, _ in config.scheduler_mix]
    scheduler_weights = [weight for _, weight in config.scheduler_mix]

    bulk_flows: Dict[str, BulkTransfer] = {}
    churn_sources: List[ShortFlowSource] = []
    descriptions: List[FlowDescription] = []
    transfer_times: List[float] = []
    for i in range(config.n_flows):
        base_rtt = rng.uniform(rtt_low, rtt_high)
        if i < n_churn:
            # Churn sources spawn short single-path TCP flows; each
            # spawn re-draws its path from a private, seeded stream so
            # simulation-time arrivals never consume the build rng.
            flow_name = f"{name}.churn{i}"
            source_rng = random.Random(rng.getrandbits(64))

            def provider(source_rng=source_rng, base_rtt=base_rtt):
                link = links[source_rng.randrange(config.n_links)]
                return (link,), base_rtt - link.delay

            source = ShortFlowSource(
                sim, source_rng, provider,
                mean_interarrival=config.churn_interarrival,
                flow_bytes=config.churn_flow_bytes, name=flow_name)
            churn_sources.append(source)
            descriptions.append(FlowDescription(
                name=flow_name, kind="churn", algorithm="tcp",
                base_rtt=base_rtt, start_time=0.0, paths=[]))
            continue
        algorithm = rng.choices(names, weights=weights)[0]
        n_subflows = 1 if algorithm in single_path else rng.randint(
            config.subflows_min, config.subflows_max)
        specs, described = draw_paths(n_subflows, base_rtt)
        start_time = rng.uniform(0.0, config.start_spread)
        # Single-entry mixes skip the draw so the default configuration
        # reproduces the exact pre-scheduler-axis rng stream.
        if len(scheduler_names) == 1:
            scheduler = scheduler_names[0]
        else:
            scheduler = rng.choices(scheduler_names,
                                    weights=scheduler_weights)[0]
        flow_name = f"{name}.f{i}"
        bulk_flows[flow_name] = BulkTransfer(
            sim, algorithm, specs, start_time=start_time,
            scheduler=scheduler,
            size_packets=config.transfer_packets,
            on_complete=(transfer_times.append
                         if config.transfer_packets is not None else None),
            name=flow_name)
        descriptions.append(FlowDescription(
            name=flow_name, kind="bulk", algorithm=algorithm,
            base_rtt=base_rtt, start_time=start_time, paths=described,
            scheduler=scheduler))

    return GeneratedScenario(sim=sim, config=config, links=links,
                             bulk_flows=bulk_flows,
                             churn_sources=churn_sources,
                             flow_descriptions=descriptions,
                             dynamics=dynamics_drivers,
                             transfer_times=transfer_times)


def preset_config(preset: str) -> GeneratorConfig:
    """The :data:`PRESETS` entry for ``preset`` (clear error on typos)."""
    try:
        return PRESETS[preset]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(
            f"unknown scale preset {preset!r}; known: {known}") from None


def family_config(family: str) -> GeneratorConfig:
    """The :data:`FAMILY_PRESETS` entry for ``family``."""
    try:
        return FAMILY_PRESETS[family]
    except KeyError:
        known = ", ".join(sorted(FAMILY_PRESETS))
        raise ValueError(
            f"unknown scenario family {family!r}; known: {known}") from None


def generate_preset(sim: Simulator, preset: str, *, seed: int = 1,
                    max_flows: Optional[int] = None,
                    algorithms: Optional[Tuple[str, ...]] = None,
                    schedulers: Optional[Tuple[str, ...]] = None
                    ) -> GeneratedScenario:
    """Generate a named preset into ``sim``.

    ``max_flows`` caps the population (smoke/CI mode) via
    :meth:`GeneratorConfig.scaled`, shrinking the link pool in step so
    the capped scenario keeps the preset's congestion density.
    ``algorithms`` replaces the preset's algorithm mix with the given
    names at equal weights (registry-validated), and ``schedulers``
    does the same for the packet-scheduler mix — the knobs behind
    ``python -m repro scale --algorithms/--schedulers``.
    """
    config = preset_config(preset)
    if max_flows is not None:
        config = config.scaled(max_flows)
    if algorithms is not None:
        config = dataclasses.replace(
            config,
            algorithm_mix=tuple((name, 1.0) for name in algorithms))
    if schedulers is not None:
        config = dataclasses.replace(
            config,
            scheduler_mix=tuple((name, 1.0) for name in schedulers))
    return build_random_scenario(sim, random.Random(seed), config)


def generate_family(sim: Simulator, family: str, *, seed: int = 1,
                    max_flows: Optional[int] = None,
                    schedulers: Optional[Tuple[str, ...]] = None
                    ) -> GeneratedScenario:
    """Generate a scenario-family workload (see :data:`FAMILY_PRESETS`)."""
    config = family_config(family)
    if max_flows is not None:
        config = config.scaled(max_flows)
    if schedulers is not None:
        config = dataclasses.replace(
            config,
            scheduler_mix=tuple((name, 1.0) for name in schedulers))
    return build_random_scenario(sim, random.Random(seed), config)
