"""Topology builders for the paper's testbed scenarios (Section III).

Each builder instantiates the bottleneck links of one scenario inside a
:class:`~repro.sim.engine.Simulator` and exposes the forward paths and
reverse delays every user class needs.  Only bottleneck links are
modelled explicitly — the paper's non-bottleneck hops (private APs,
Internet backbone, ISPs Y/Z) contribute propagation delay only, which we
fold into the link delays and the ACK reverse delays so that every path
has the same base RTT (80 ms in the testbed, ~150 ms with queueing).

The capacity equations implemented here follow the paper's analysis:

* Scenario A — server access link ``N1*C1`` shared by both type1 paths;
  shared AP ``N2*C2`` carrying type1's second subflow and type2.
* Scenario B — link X carries Blue's first path and Red's dashed
  (upgrade) path; link T carries Blue's second path and both Red paths
  (``CX = N(x1+y1)``, ``CT = N(x2+y1+y2)``, Appendix B).
* Scenario C — private AP1 per-multipath-user capacity ``C1``; shared
  AP2 ``N2*C2``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.mptcp import PathSpec
from ..sim.queues import DropTailQueue, REDQueue
from ..units import mbps_to_pps


def _make_queue(rng: random.Random, capacity_mbps: float,
                discipline: str) -> DropTailQueue:
    """Queue for a bottleneck of the given capacity.

    ``red`` follows the paper's testbed configuration (scaled thresholds);
    ``droptail`` mirrors the htsim configuration with a 100-packet buffer
    per 10 Mbps.
    """
    if discipline == "red":
        return REDQueue.for_capacity_mbps(rng, capacity_mbps)
    if discipline == "droptail":
        return DropTailQueue(limit=max(int(100 * capacity_mbps / 10.0), 20))
    raise ValueError(f"unknown queue discipline {discipline!r}")


def _reverse(base_rtt: float, forward: float) -> float:
    """Reverse-path delay that completes ``base_rtt`` for the flow."""
    reverse = base_rtt - forward
    if reverse < 0:
        raise ValueError("forward delays exceed the base RTT")
    return reverse


@dataclass
class ScenarioATopology:
    """Scenario A bottlenecks and per-user-class paths."""

    sim: Simulator
    server_link: Link       # capacity N1*C1 (streaming server access)
    shared_ap: Link         # capacity N2*C2
    type1_paths: List[PathSpec]   # [private-AP path, shared-AP path]
    type2_path: PathSpec


def build_scenario_a(sim: Simulator, rng: random.Random, *,
                     n1: int, n2: int, c1_mbps: float, c2_mbps: float,
                     base_rtt: float = 0.08,
                     queue: str = "red") -> ScenarioATopology:
    """Scenario A: streaming server + private APs + one shared AP."""
    server_mbps = n1 * c1_mbps
    shared_mbps = n2 * c2_mbps
    hop = base_rtt / 4.0   # one-way budget split over at most two hops
    server_link = Link(sim, rate_bps=server_mbps * 1e6, delay=hop,
                       queue=_make_queue(rng, server_mbps, queue),
                       name="server")
    shared_ap = Link(sim, rate_bps=shared_mbps * 1e6, delay=hop,
                     queue=_make_queue(rng, shared_mbps, queue),
                     name="sharedAP")
    private = PathSpec((server_link,), _reverse(base_rtt, hop))
    via_shared = PathSpec((server_link, shared_ap),
                          _reverse(base_rtt, 2 * hop))
    type2 = PathSpec((shared_ap,), _reverse(base_rtt, hop))
    return ScenarioATopology(sim=sim, server_link=server_link,
                             shared_ap=shared_ap,
                             type1_paths=[private, via_shared],
                             type2_path=type2)


@dataclass
class ScenarioBTopology:
    """Scenario B bottlenecks (links X and T) and user paths."""

    sim: Simulator
    link_x: Link
    link_t: Link
    blue_paths: List[PathSpec]    # [via X, via T]
    red_main_path: PathSpec       # via T only
    red_dashed_path: PathSpec     # via X and T (the MPTCP upgrade)


def build_scenario_b(sim: Simulator, rng: random.Random, *,
                     cx_mbps: float, ct_mbps: float,
                     base_rtt: float = 0.08,
                     queue: str = "red") -> ScenarioBTopology:
    """Scenario B: multi-homed users across four ISPs (two bottlenecks)."""
    hop = base_rtt / 4.0
    link_x = Link(sim, rate_bps=cx_mbps * 1e6, delay=hop,
                  queue=_make_queue(rng, cx_mbps, queue), name="ispX")
    link_t = Link(sim, rate_bps=ct_mbps * 1e6, delay=hop,
                  queue=_make_queue(rng, ct_mbps, queue), name="ispT")
    blue = [PathSpec((link_x,), _reverse(base_rtt, hop)),
            PathSpec((link_t,), _reverse(base_rtt, hop))]
    red_main = PathSpec((link_t,), _reverse(base_rtt, hop))
    red_dashed = PathSpec((link_x, link_t), _reverse(base_rtt, 2 * hop))
    return ScenarioBTopology(sim=sim, link_x=link_x, link_t=link_t,
                             blue_paths=blue, red_main_path=red_main,
                             red_dashed_path=red_dashed)


@dataclass
class ScenarioCTopology:
    """Scenario C bottlenecks (AP1 and AP2) and user paths."""

    sim: Simulator
    ap1: Link               # capacity N1*C1
    ap2: Link               # capacity N2*C2
    multipath_paths: List[PathSpec]   # [via AP1, via AP2]
    singlepath_path: PathSpec


def build_scenario_c(sim: Simulator, rng: random.Random, *,
                     n1: int, n2: int, c1_mbps: float, c2_mbps: float,
                     base_rtt: float = 0.08,
                     queue: str = "red") -> ScenarioCTopology:
    """Scenario C: multipath users on AP1+AP2, single-path users on AP2."""
    ap1_mbps = n1 * c1_mbps
    ap2_mbps = n2 * c2_mbps
    hop = base_rtt / 4.0
    ap1 = Link(sim, rate_bps=ap1_mbps * 1e6, delay=hop,
               queue=_make_queue(rng, ap1_mbps, queue), name="AP1")
    ap2 = Link(sim, rate_bps=ap2_mbps * 1e6, delay=hop,
               queue=_make_queue(rng, ap2_mbps, queue), name="AP2")
    multipath = [PathSpec((ap1,), _reverse(base_rtt, hop)),
                 PathSpec((ap2,), _reverse(base_rtt, hop))]
    single = PathSpec((ap2,), _reverse(base_rtt, hop))
    return ScenarioCTopology(sim=sim, ap1=ap1, ap2=ap2,
                             multipath_paths=multipath,
                             singlepath_path=single)


@dataclass
class TwoPathTopology:
    """Fig. 6: one two-path user sharing two bottlenecks with TCP flows."""

    sim: Simulator
    bottlenecks: List[Link]
    mptcp_paths: List[PathSpec]
    tcp_paths: List[PathSpec]      # one per bottleneck


def build_two_path(sim: Simulator, rng: random.Random, *,
                   capacity_mbps: float = 3.0,
                   base_rtt: float = 0.08,
                   queue: str = "red") -> TwoPathTopology:
    """The illustrative topology of Figs. 6-8 (two equal bottlenecks)."""
    hop = base_rtt / 4.0
    links = [Link(sim, rate_bps=capacity_mbps * 1e6, delay=hop,
                  queue=_make_queue(rng, capacity_mbps, queue),
                  name=f"bn{i}")
             for i in range(2)]
    reverse = _reverse(base_rtt, hop)
    mptcp = [PathSpec((links[0],), reverse),
             PathSpec((links[1],), reverse)]
    tcp = [PathSpec((links[0],), reverse), PathSpec((links[1],), reverse)]
    return TwoPathTopology(sim=sim, bottlenecks=links, mptcp_paths=mptcp,
                           tcp_paths=tcp)


def scenario_a_pps(c_mbps: float) -> float:
    """Convenience: per-user capacity in packets/s for analysis calls."""
    return mbps_to_pps(c_mbps)
