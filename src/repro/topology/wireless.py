"""Time-varying (LTE/WiFi-like) link dynamics and handover events.

The paper's testbed links are wired and constant; the wireless scenario
families the roadmap opens up need links whose capacity and delay wander
over time and occasionally black out while the device switches cells.
This module drives an ordinary :class:`~repro.sim.link.Link` — whose
``rate_bps``/``delay`` are mutable mid-run and whose propagation pipe
stays FIFO under shrinking delays — from one rearmable
:class:`~repro.sim.engine.Timer` per process, with every random draw
coming from a private seeded generator so runs stay reproducible.

Two processes, both Poisson-clocked:

* **fading**: at mean ``change_interval`` the capacity takes a
  multiplicative log-normal step (clamped into ``rate_range``) and the
  propagation delay is re-jittered around its base value — the
  coarse-grained shape of LTE rate traces;
* **handover**: at mean ``handover_interval`` the link collapses to
  :data:`OUTAGE_RATE_BPS` for ``handover_outage`` seconds, then comes
  back with a fresh uniform capacity draw (a new cell).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Optional, Tuple

from ..sim.engine import Simulator
from ..sim.link import Link

__all__ = ["LinkDynamics", "TimeVaryingLink", "OUTAGE_RATE_BPS"]

#: Residual capacity during a handover outage: effectively stalled, but
#: the link object stays valid (rates must be positive).
OUTAGE_RATE_BPS = 1e4


@dataclass(frozen=True)
class LinkDynamics:
    """How one wireless link's service varies over time.

    Attributes
    ----------
    rate_range : (float, float)
        Bounds (bits/s) the capacity random walk is clamped into; also
        the redraw range after a handover.
    change_interval : float
        Mean seconds between fading steps (exponential gaps).
    rate_sigma : float
        Standard deviation of the log-normal multiplicative capacity
        step.  ``0`` freezes the capacity (delay may still jitter).
    delay_jitter : float
        Fractional jitter applied to the base propagation delay at each
        fading step: the delay is redrawn uniformly in
        ``base * [1 - delay_jitter, 1 + delay_jitter]``.
    loss_rate : float
        Channel (non-congestion) loss probability the scenario builder
        configures on the link itself; kept here so one object fully
        describes a family's radio model.
    handover_interval : float
        Mean seconds between handovers (``0`` disables them).
    handover_outage : float
        Outage duration of each handover, seconds.
    """

    rate_range: Tuple[float, float]
    change_interval: float = 0.25
    rate_sigma: float = 0.3
    delay_jitter: float = 0.2
    loss_rate: float = 0.0
    handover_interval: float = 0.0
    handover_outage: float = 0.05

    def __post_init__(self) -> None:
        low, high = self.rate_range
        if not 0 < low <= high:
            raise ValueError(f"bad rate_range {self.rate_range}")
        if self.change_interval <= 0:
            raise ValueError("change_interval must be positive")
        if self.rate_sigma < 0:
            raise ValueError("rate_sigma cannot be negative")
        if not 0.0 <= self.delay_jitter < 1.0:
            raise ValueError("delay_jitter must be in [0, 1)")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        if self.handover_interval < 0:
            raise ValueError("handover_interval cannot be negative")
        if self.handover_interval > 0 and self.handover_outage <= 0:
            raise ValueError("handovers need a positive outage duration")


class TimeVaryingLink:
    """Drives one link's rate/delay from seeded fading + handover clocks.

    The driver owns a private :class:`random.Random` so the sequence of
    capacity/delay values is a pure function of ``(dynamics, seed)`` —
    independent of event interleaving with other links or flows.
    """

    def __init__(self, sim: Simulator, link: Link,
                 dynamics: LinkDynamics, seed: int) -> None:
        self.sim = sim
        self.link = link
        self.dynamics = dynamics
        self.rng = random.Random(seed)
        self.base_delay = link.delay
        self.changes = 0
        self.handovers = 0
        self._running = False
        self._in_outage = False
        self._step_timer = sim.timer(self._step)
        self._handover_timer = sim.timer(self._handover)

    # -- lifecycle --------------------------------------------------------------
    def start(self, at: Optional[float] = None) -> None:
        """Arm the fading/handover clocks from time ``at`` (default now)."""
        self._running = True
        base = self.sim.now if at is None else at
        d = self.dynamics
        if d.rate_sigma > 0 or d.delay_jitter > 0:
            self._step_timer.arm_at(base + self._gap(d.change_interval))
        if d.handover_interval > 0:
            self._handover_timer.arm_at(
                base + self._gap(d.handover_interval))

    def stop(self) -> None:
        """Freeze the link at its current state."""
        self._running = False
        self._step_timer.cancel()
        self._handover_timer.cancel()

    def _gap(self, mean: float) -> float:
        return self.rng.expovariate(1.0 / mean)

    # -- fading -----------------------------------------------------------------
    def _step(self) -> None:
        if not self._running:
            return
        d = self.dynamics
        if not self._in_outage:
            if d.rate_sigma > 0:
                low, high = d.rate_range
                rate = self.link.rate_bps * math.exp(
                    self.rng.gauss(0.0, d.rate_sigma))
                self.link.rate_bps = min(max(rate, low), high)
            if d.delay_jitter > 0:
                factor = 1.0 + self.rng.uniform(-d.delay_jitter,
                                                d.delay_jitter)
                self.link.delay = self.base_delay * factor
            self.changes += 1
        self._step_timer.arm(self._gap(d.change_interval))

    # -- handover ---------------------------------------------------------------
    def _handover(self) -> None:
        if not self._running or self._in_outage:
            return
        d = self.dynamics
        self.handovers += 1
        self._in_outage = True
        self.link.rate_bps = OUTAGE_RATE_BPS
        self.sim.schedule(d.handover_outage, self._reattach)

    def _reattach(self) -> None:
        """Outage over: come back on a fresh cell."""
        self._in_outage = False
        if not self._running:
            return
        d = self.dynamics
        low, high = d.rate_range
        self.link.rate_bps = self.rng.uniform(low, high)
        if d.delay_jitter > 0:
            factor = 1.0 + self.rng.uniform(-d.delay_jitter,
                                            d.delay_jitter)
            self.link.delay = self.base_delay * factor
        self._handover_timer.arm(self._gap(d.handover_interval))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"TimeVaryingLink({self.link.name}, "
                f"changes={self.changes}, handovers={self.handovers})")
