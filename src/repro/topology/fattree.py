"""k-ary FatTree topology with ECMP-style multipath (Section VI-B).

The paper's data-center evaluation (after Raiciu et al. [7]) runs on a
FatTree with k=8: 128 hosts, 80 eight-port switches, 100 Mb/s links.  A
k-ary FatTree has ``k`` pods, each with ``k/2`` edge and ``k/2``
aggregation switches, plus ``(k/2)^2`` core switches; every inter-pod
host pair has exactly ``(k/2)^2`` equal-cost paths, one per core switch.

Every physical cable is modelled as two unidirectional
:class:`~repro.sim.link.Link` objects.  ``path(src, dst, core)``
enumerates forward paths deterministically, so MPTCP connections can
place subflows on distinct cores (the ECMP-random path selection used by
htsim) with :meth:`FatTree.distinct_paths`.

Oversubscription (the 4:1 topology of Section VI-B.2) divides the
capacity of the fabric links (edge-agg, agg-core) by the given factor
while hosts keep their full line rate.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional

from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.mptcp import PathSpec
from ..sim.queues import DropTailQueue


class FatTree:
    """Builds and indexes the links of a k-ary FatTree."""

    def __init__(self, sim: Simulator, k: int = 4, *,
                 link_mbps: float = 10.0,
                 link_delay: float = 50e-6,
                 oversubscription: float = 1.0,
                 queue_factory: Optional[Callable[[], DropTailQueue]] = None
                 ) -> None:
        if k < 2 or k % 2 != 0:
            raise ValueError("k must be an even integer >= 2")
        if oversubscription < 1.0:
            raise ValueError("oversubscription factor must be >= 1")
        self.sim = sim
        self.k = k
        self.half = k // 2
        self.n_pods = k
        self.n_hosts = k * k * k // 4
        self.n_core = self.half * self.half
        self.link_mbps = link_mbps
        self.link_delay = link_delay
        self.oversubscription = oversubscription
        self._queue_factory = queue_factory or (
            lambda: DropTailQueue(limit=100))

        host_rate = link_mbps * 1e6
        fabric_rate = host_rate / oversubscription

        def link(name: str, rate: float) -> Link:
            return Link(sim, rate_bps=rate, delay=link_delay,
                        queue=self._queue_factory(), name=name)

        # Host access links (up = host->edge, down = edge->host).
        self.host_up: List[Link] = []
        self.host_down: List[Link] = []
        for host in range(self.n_hosts):
            self.host_up.append(link(f"h{host}-up", host_rate))
            self.host_down.append(link(f"h{host}-down", host_rate))

        # Edge <-> aggregation, indexed [pod][edge][agg].
        self.edge_to_agg = [[[link(f"p{p}e{e}a{a}-up", fabric_rate)
                              for a in range(self.half)]
                             for e in range(self.half)]
                            for p in range(self.n_pods)]
        self.agg_to_edge = [[[link(f"p{p}a{a}e{e}-down", fabric_rate)
                              for e in range(self.half)]
                             for a in range(self.half)]
                            for p in range(self.n_pods)]

        # Aggregation <-> core.  Core (a, j) with j in [0, k/2) attaches
        # to aggregation switch ``a`` of every pod.
        self.agg_to_core = [[[link(f"p{p}a{a}c{j}-up", fabric_rate)
                              for j in range(self.half)]
                             for a in range(self.half)]
                            for p in range(self.n_pods)]
        self.core_to_agg = [[link(f"c{c}p{p}-down", fabric_rate)
                             for p in range(self.n_pods)]
                            for c in range(self.n_core)]

    # -- host coordinates ---------------------------------------------------
    def pod_of(self, host: int) -> int:
        return host // (self.half * self.half)

    def edge_of(self, host: int) -> int:
        """Edge switch index of ``host`` within its pod."""
        return (host % (self.half * self.half)) // self.half

    # -- path enumeration ------------------------------------------------------
    def n_paths(self, src: int, dst: int) -> int:
        """Number of equal-cost paths between two hosts."""
        if src == dst:
            raise ValueError("src and dst must differ")
        if self.pod_of(src) != self.pod_of(dst):
            return self.n_core
        if self.edge_of(src) != self.edge_of(dst):
            return self.half
        return 1

    def path(self, src: int, dst: int, choice: int = 0) -> tuple:
        """Forward path from ``src`` to ``dst`` using path ``choice``.

        For inter-pod pairs ``choice`` selects the core switch; for
        intra-pod pairs it selects the aggregation switch; for same-edge
        pairs it must be 0.
        """
        if not 0 <= choice < self.n_paths(src, dst):
            raise ValueError(
                f"choice {choice} out of range for pair ({src}, {dst})")
        src_pod, dst_pod = self.pod_of(src), self.pod_of(dst)
        src_edge, dst_edge = self.edge_of(src), self.edge_of(dst)
        if src_pod != dst_pod:
            core = choice
            agg = core // self.half
            port = core % self.half
            return (self.host_up[src],
                    self.edge_to_agg[src_pod][src_edge][agg],
                    self.agg_to_core[src_pod][agg][port],
                    self.core_to_agg[core][dst_pod],
                    self.agg_to_edge[dst_pod][agg][dst_edge],
                    self.host_down[dst])
        if src_edge != dst_edge:
            agg = choice
            return (self.host_up[src],
                    self.edge_to_agg[src_pod][src_edge][agg],
                    self.agg_to_edge[src_pod][agg][dst_edge],
                    self.host_down[dst])
        return (self.host_up[src], self.host_down[dst])

    def reverse_delay(self, src: int, dst: int) -> float:
        """Propagation delay of the (uncongested) reverse ACK path.

        Reverse paths traverse the same number of hops as forward paths.
        """
        return len(self.path(src, dst)) * self.link_delay

    def path_spec(self, src: int, dst: int, choice: int = 0) -> PathSpec:
        """Forward path plus matching reverse delay as a PathSpec."""
        forward = self.path(src, dst, choice)
        return PathSpec(forward, len(forward) * self.link_delay)

    def distinct_paths(self, src: int, dst: int, n_subflows: int,
                       rng: random.Random) -> List[PathSpec]:
        """Up to ``n_subflows`` subflow paths on distinct cores/aggs.

        Mirrors htsim's random ECMP placement: choices are sampled
        without replacement; if fewer distinct paths exist than
        requested, every path is used once and the remainder re-samples
        with replacement.
        """
        available = self.n_paths(src, dst)
        if n_subflows <= available:
            choices = rng.sample(range(available), n_subflows)
        else:
            choices = list(range(available))
            choices += [rng.randrange(available)
                        for _ in range(n_subflows - available)]
        return [self.path_spec(src, dst, c) for c in choices]

    # -- traffic matrices -------------------------------------------------------
    def random_permutation(self, rng: random.Random) -> List[int]:
        """Destination for each host: a permutation with no fixed point."""
        while True:
            perm = list(range(self.n_hosts))
            rng.shuffle(perm)
            if all(perm[i] != i for i in range(self.n_hosts)):
                return perm

    def core_links(self) -> List[Link]:
        """All links touching core switches (for utilization metrics)."""
        links = []
        for pod in self.agg_to_core:
            for agg in pod:
                links.extend(agg)
        for core in self.core_to_agg:
            links.extend(core)
        return links

    def describe(self) -> str:
        return (f"FatTree(k={self.k}): {self.n_hosts} hosts, "
                f"{self.n_pods * self.half * 2 + self.n_core} switches, "
                f"{self.link_mbps:g} Mb/s links, "
                f"oversubscription {self.oversubscription:g}:1")
