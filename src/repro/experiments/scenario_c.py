"""Scenario C experiments: Figures 5(b)-(d), 11 and 12.

N1 multipath users (private AP1 + shared AP2) compete with N2 TCP users
on AP2.  LIA grabs AP2 bandwidth even when its users gain nothing
(problem P2); OLIA parks at the probing floor.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import scenario_c as analysis_c
from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..topology.scenarios import build_scenario_c
from ..units import mbps_to_pps
from .results import ResultTable
from .runner import RunSpec, measure, staggered_starts
from .sweep import SweepRunner, pending_attr as _field


@dataclass
class ScenarioCRun:
    """Simulated normalized throughputs and losses for one setting."""

    algorithm: str
    n1: int
    n2: int
    c1_mbps: float
    c2_mbps: float
    multipath_normalized: float
    singlepath_normalized: float
    p1: float
    p2: float


def simulate(algorithm: str, *, n1: int, n2: int, c1_mbps: float,
             c2_mbps: float, duration: float = 60.0, warmup: float = 20.0,
             seed: int = 1, queue: str = "red") -> ScenarioCRun:
    """Packet-level run: ``n1`` MPTCP users + ``n2`` TCP users."""
    sim = Simulator()
    rng = random.Random(seed)
    topo = build_scenario_c(sim, rng, n1=n1, n2=n2, c1_mbps=c1_mbps,
                            c2_mbps=c2_mbps, queue=queue)
    flows = {}
    starts = staggered_starts(rng, n1 + n2)
    for i in range(n1):
        bulk = BulkTransfer(sim, algorithm, topo.multipath_paths,
                            start_time=starts[i], name=f"mp.{i}")
        bulk.start()
        flows[f"mp.{i}"] = bulk
    for i in range(n2):
        bulk = BulkTransfer(sim, "tcp", [topo.singlepath_path],
                            start_time=starts[n1 + i], name=f"sp.{i}")
        bulk.start()
        flows[f"sp.{i}"] = bulk

    result = measure(sim, flows, [topo.ap1, topo.ap2],
                     warmup=warmup, duration=duration)
    return ScenarioCRun(
        algorithm=algorithm, n1=n1, n2=n2, c1_mbps=c1_mbps,
        c2_mbps=c2_mbps,
        multipath_normalized=result.group_mean("mp") / mbps_to_pps(c1_mbps),
        singlepath_normalized=result.group_mean("sp") / mbps_to_pps(c2_mbps),
        p1=result.link_loss["AP1"], p2=result.link_loss["AP2"])


def figure5b_table(*, n1: int = 10, n2: int = 10, c2_mbps: float = 1.0,
                   c1_over_c2=(0.25, 0.5, 0.75, 1.0, 1.25, 1.5),
                   rtt: float = 0.15) -> ResultTable:
    """Figure 5(b): analytical LIA vs optimum as C1/C2 varies (N1=N2)."""
    table = ResultTable(
        "Fig. 5(b) - Scenario C: analytical LIA vs optimum w/ probing",
        ["C1/C2", "mp LIA", "sp LIA", "mp opt", "sp opt"])
    for ratio in c1_over_c2:
        c1_mbps = ratio * c2_mbps
        lia = analysis_c.lia_fixed_point(
            n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(c2_mbps),
            rtt=rtt)
        opt = analysis_c.optimum_with_probing(
            n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(c2_mbps),
            rtt=rtt)
        table.add_row(ratio, lia.multipath_normalized,
                      lia.singlepath_normalized,
                      opt.multipath_normalized,
                      opt.singlepath_normalized)
    table.add_note("LIA's mp column exceeds the optimum as soon as "
                   "C1/C2 > 1/3 (problem P2)")
    return table


def figure5cd_table(*, n1_values=(5, 10, 20, 30), n2: int = 10,
                    c1_over_c2=(1.0, 2.0), c2_mbps: float = 1.0,
                    rtt: float = 0.15, simulate_lia: bool = False,
                    duration: float = 30.0, warmup: float = 15.0,
                    seed: int = 1) -> ResultTable:
    """Figures 5(c)/(d): LIA normalized throughputs and p2 vs N1/N2."""
    columns = ["C1/C2", "N1/N2", "mp LIA", "sp LIA", "sp opt", "p2 LIA",
               "p2 opt"]
    if simulate_lia:
        columns += ["sp LIA (sim)", "p2 LIA (sim)"]
    table = ResultTable("Fig. 5(c)/(d) - Scenario C: LIA vs optimum",
                        columns)
    for ratio in c1_over_c2:
        c1_mbps = ratio * c2_mbps
        for n1 in n1_values:
            lia = analysis_c.lia_fixed_point(
                n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps),
                c2=mbps_to_pps(c2_mbps), rtt=rtt)
            opt = analysis_c.optimum_with_probing(
                n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps),
                c2=mbps_to_pps(c2_mbps), rtt=rtt)
            row = [ratio, n1 / n2, lia.multipath_normalized,
                   lia.singlepath_normalized,
                   opt.singlepath_normalized, lia.p2, opt.p2]
            if simulate_lia:
                run = simulate("lia", n1=n1, n2=n2, c1_mbps=c1_mbps,
                               c2_mbps=c2_mbps, duration=duration,
                               warmup=warmup, seed=seed)
                row += [run.singlepath_normalized, run.p2]
            table.add_row(*row)
    return table


def figure11_12_table(*, n1_values=(5, 10, 20, 30), n2: int = 10,
                      c1_over_c2=(1.0, 2.0), c2_mbps: float = 1.0,
                      rtt: float = 0.15, duration: float = 30.0,
                      warmup: float = 15.0, seed: int = 1,
                      jobs: int = 1, cache_dir=None,
                      shard=None, claim_ttl=None) -> ResultTable:
    """Figures 11/12: measured LIA vs OLIA in scenario C.

    Each (C1/C2, N1, algorithm) cell is an independent DES run, so the
    grid is dispatched through :class:`SweepRunner`; ``jobs=N`` fans the
    runs out over worker processes without changing any number.
    """
    table = ResultTable(
        "Fig. 11/12 - Scenario C: measured LIA vs OLIA",
        ["C1/C2", "N1/N2", "sp LIA", "sp OLIA", "sp opt",
         "p2 LIA", "p2 OLIA", "p2 opt"])
    grid = [(ratio, n1) for ratio in c1_over_c2 for n1 in n1_values]
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    runs = runner.run([
        RunSpec.make(simulate, algorithm=algorithm, n1=n1, n2=n2,
                     c1_mbps=ratio * c2_mbps, c2_mbps=c2_mbps,
                     duration=duration, warmup=warmup, seed=seed)
        for ratio, n1 in grid
        for algorithm in ("lia", "olia")])
    for cell, (ratio, n1) in enumerate(grid):
        lia, olia = runs[2 * cell], runs[2 * cell + 1]
        opt = analysis_c.optimum_with_probing(
            n1=n1, n2=n2, c1=mbps_to_pps(ratio * c2_mbps),
            c2=mbps_to_pps(c2_mbps), rtt=rtt)
        table.add_row(ratio, n1 / n2,
                      _field(lia, "singlepath_normalized"),
                      _field(olia, "singlepath_normalized"),
                      opt.singlepath_normalized,
                      _field(lia, "p2"), _field(olia, "p2"), opt.p2)
    table.add_note("single-path users gain up to 2x with OLIA; p2 stays "
                   "4-6x lower (Figs. 11-12)")
    return table
