"""Parallel sweep execution: a shardable, resumable, cached point queue.

Every figure of the paper is a parameter sweep: N independent runs of a
pure function over a grid of scenario parameters.  :class:`SweepRunner`
executes such a sweep

* **in order** — results always come back in the order the points were
  given, whatever the number of worker processes;
* **deterministically** — each point carries its own seed inside its
  :class:`~repro.experiments.runner.RunSpec`, so ``jobs=8`` computes the
  exact same numbers as ``jobs=1``;
* **incrementally** — results are cached on disk by the spec's content
  hash *as each point completes*, so an interrupted sweep (Ctrl-C, OOM,
  a killed worker box) resumes where it stopped: re-running only
  recomputes the points whose results never made it to disk;
* **sharded** — with ``shard=(i, n)`` a runner only computes the points
  it owns (``index % n == i``); n runners pointed at the same
  ``cache_dir`` (a shared filesystem) split a 10k-point grid between
  them, and a final unsharded run assembles the full result list from
  cache without recomputing anything;
* **work-stealing** — with ``shard="steal"`` ownership is dynamic
  instead of positional: each runner *claims* cache-missing points one
  by one through ``O_EXCL`` lock files in the shared ``cache_dir``, so
  any number of runners started against the same directory balance a
  grid whose point costs vary wildly (a modular split would leave the
  unlucky shard running long after the others finished);
* **observably** — a ``progress`` callback fires after every completed
  point, which is what makes 10k-point grids operable.

For launching shards on machines that don't share the Python driver
script, :func:`write_shards` spills the ``RunSpec`` queue itself to disk
(a ``manifest.json`` plus one pickle per shard) and :func:`load_shard`
reads one shard's specs back.

Worker processes import the spec's function by module path (standard
pickling of module-level callables), which is why ``RunSpec`` insists on
module-level functions.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import pickle
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait as futures_wait,
)
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..serve.store import ResultStore
from ..util.atomics import release_claim, try_claim
from .runner import RunSpec

_CACHE_MISS = object()


class _PendingType:
    """Singleton placeholder for points owned by another shard."""

    def __repr__(self) -> str:
        return "PENDING"

    __str__ = __repr__


#: Returned in place of a result when a sharded run does not own the
#: point and no cached result exists yet.
SWEEP_PENDING = _PendingType()


@dataclass(frozen=True)
class SweepProgress:
    """Snapshot handed to the ``progress`` callback after each point.

    Attributes
    ----------
    index : int
        Position of the just-finished point in the input spec list.
    done : int
        Points finished so far (computed + cache hits), out of ``total``.
    total : int
        Number of points this runner is accountable for (cache hits plus
        the points it owns; excludes points left to other shards).  In a
        work-stealing run, ownership is decided point by point, so
        ``total`` shrinks across ticks as points are lost to other
        runners.
    cache_hits : int
        How many of the finished points came from the cache.
    from_cache : bool
        Whether *this* point was a cache hit.
    """

    index: int
    done: int
    total: int
    cache_hits: int
    from_cache: bool


ProgressCallback = Callable[[SweepProgress], None]


def _execute_spec(spec: RunSpec) -> Any:
    """Module-level trampoline so specs can run in worker processes."""
    return spec.execute()


def _execute_indexed(item: Tuple[int, RunSpec]) -> Tuple[int, Any]:
    """Trampoline keeping the point's index attached to its result."""
    index, spec = item
    return index, spec.execute()


class SweepRunner:
    """Dispatch independent experiment points over a process pool.

    Parameters
    ----------
    jobs : int
        Number of worker processes; ``1`` (the default) runs everything
        in-process, which is also the fallback when a sweep has a single
        uncached point.
    cache_dir : str or path-like, optional
        Directory for the content-hash result cache; ``None`` disables
        caching.  Entries are small pickles named ``<sha256>.pkl``,
        written atomically as each point completes — this doubles as the
        resume journal and as the result store sharded runs merge
        through.
    shard : tuple of (int, int) or "steal", optional
        ``(shard_index, shard_count)``: this runner computes only the
        points whose position satisfies ``index % shard_count ==
        shard_index``.  ``"steal"``: ownership is decided at run time —
        immediately before computing each cache-missing point the
        runner claims it by atomically creating ``<hash>.claim`` in
        ``cache_dir`` (at most ``jobs`` claims are held at any moment —
        except under :meth:`run_batched`, whose single vectorized call
        claims its whole batch — so concurrent runners always find work
        and split the grid by actual point cost rather than position);
        points another runner already claimed are skipped.  Claims are
        removed once the point's result is stored (and any still-held
        claims are released when a run raises), so re-running an
        interrupted stealer resumes cleanly; a *hard-killed* runner
        leaves its in-flight claims stale — those points stay PENDING
        for stealers, and an unsharded merge run (which ignores claims)
        computes whatever is missing.  Both modes require
        ``cache_dir`` (it is the store shards merge through); points
        owned by another shard come back as :data:`SWEEP_PENDING`
        unless already cached.
    claim_ttl : float, optional
        Age in seconds after which another runner's claim counts as
        abandoned (a hard-killed worker never releases its claims) and
        is reaped: the stale claim file is unlinked and this runner
        claims the point itself.  ``None`` (the default) never reaps —
        matching the historical behavior where stale claims park their
        points as PENDING until an unsharded merge run recomputes them.
        Set it comfortably above the cost of the slowest point; a value
        too low only costs duplicate compute (entry writes are atomic
        and idempotent), never correctness.

    Attributes
    ----------
    cache_hits, cache_misses : int
        Running counters over all :meth:`run` calls.
    skipped : int
        Points left to other shards (uncached, not owned/claimed) so
        far.
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: "str | os.PathLike | None" = None,
                 shard: "Tuple[int, int] | str | None" = None,
                 claim_ttl: Optional[float] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if claim_ttl is not None and not claim_ttl > 0:
            raise ValueError("claim_ttl must be > 0 seconds or None")
        if isinstance(shard, str):
            if shard != "steal":
                raise ValueError(
                    f"shard must be (index, count) or 'steal', "
                    f"got {shard!r}")
            if cache_dir is None:
                raise ValueError(
                    "work-stealing sweeps need a cache_dir: it holds "
                    "the claim files and the results the stealers "
                    "merge through")
        elif shard is not None:
            index, count = shard
            if count < 1 or not 0 <= index < count:
                raise ValueError(
                    f"shard must be (index, count) with 0 <= index < "
                    f"count, got {shard}")
            if count > 1 and cache_dir is None:
                raise ValueError(
                    "sharded sweeps need a cache_dir: it is the shared "
                    "store the shards' results are merged through")
            shard = (index, count)
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.shard = shard
        self.claim_ttl = claim_ttl
        # The disk layer is the shared, unbounded ResultStore the serve
        # layer also speaks: a sweep cache and a serve store pointed at
        # the same directory exchange results.  The memory LRU stays off
        # — sweeps hold their results list anyway.
        self._store = (ResultStore(self.cache_dir, memory_entries=0)
                       if self.cache_dir is not None else None)
        self.cache_hits = 0
        self.cache_misses = 0
        self.skipped = 0

    # -- cache ------------------------------------------------------------------
    def _cache_path(self, spec: RunSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.content_hash()}.pkl"

    def _load_cached(self, spec: RunSpec) -> Any:
        if self._store is None:
            return _CACHE_MISS
        return self._store.get(spec.content_hash(), _CACHE_MISS)

    def _store_cached(self, spec: RunSpec, result: Any) -> None:
        # Write-then-rename (via ResultStore/atomics) so a crashed run
        # never leaves a torn entry.  Caching is best-effort: an
        # unpicklable result (or a full disk) must not fail a run whose
        # points all computed fine.
        if self._store is not None:
            self._store.put(spec.content_hash(), result)

    def _owns(self, index: int) -> bool:
        if self.shard is None:
            return True
        shard_index, shard_count = self.shard
        return index % shard_count == shard_index

    # -- work stealing ----------------------------------------------------------
    def _claim_path(self, spec: RunSpec) -> Path:
        return self.cache_dir / f"{spec.content_hash()}.claim"

    def _try_claim(self, spec: RunSpec) -> bool:
        """Atomically claim a point; False when another runner holds it.

        ``O_CREAT | O_EXCL`` (see :func:`repro.util.atomics.try_claim`)
        is atomic on POSIX filesystems (including NFS v3+), which is all
        the coordination work stealing needs — no daemon, no queue
        service, just the shared ``cache_dir``.  With ``claim_ttl`` set,
        a claim older than the TTL is reaped as abandoned.
        """
        return try_claim(self._claim_path(spec), ttl=self.claim_ttl)

    def _release_claim(self, spec: RunSpec) -> None:
        release_claim(self._claim_path(spec))

    # -- execution --------------------------------------------------------------
    def run(self, specs: Iterable[RunSpec], *,
            progress: Optional[ProgressCallback] = None) -> List[Any]:
        """Execute all ``specs``; results in input order.

        Cached points are served from ``cache_dir``; the rest run
        in-process or on a pool of ``jobs`` workers.  Every computed
        result is written to the cache *before* the next progress tick,
        so interrupting a run never loses completed points.

        Parameters
        ----------
        specs : iterable of RunSpec
            The sweep points, in the order results should come back.
        progress : callable, optional
            Called with a :class:`SweepProgress` after each point
            finishes (including cache hits).  Exceptions raised by the
            callback abort the sweep — completed points stay cached.

        Returns
        -------
        list
            One result per spec, in input order.  In a sharded run,
            uncached points owned by other shards are
            :data:`SWEEP_PENDING`.
        """
        return self._run(list(specs), progress=progress, batch_fn=None)

    def run_batched(self, specs: Iterable[RunSpec],
                    batch_fn: Callable[[List[RunSpec]], Sequence[Any]], *,
                    progress: Optional[ProgressCallback] = None
                    ) -> List[Any]:
        """Like :meth:`run`, but pending points compute as one batch.

        For sweeps whose points can be evaluated vectorized (e.g. a
        grid stacked into one
        :func:`~repro.fluid.solve_fixed_point_batch` call), this keeps
        the queue semantics — content-hash caching, shard ownership,
        progress ticks — while replacing per-point execution with a
        single ``batch_fn`` call over exactly the points that are
        uncached and owned by this shard.  ``jobs`` is irrelevant here
        (the batch call is expected to be vectorized internally).

        Parameters
        ----------
        specs : iterable of RunSpec
            The sweep points, in the order results should come back.
        batch_fn : callable
            Receives the pending specs (a subset of ``specs``, input
            order preserved) and must return one result per spec, in
            the same order, each bitwise-identical to what
            ``spec.execute()`` would return so cache entries stay
            interchangeable with the per-point backends.
        progress : callable, optional
            As in :meth:`run`; computed points tick after the batch
            call returns.

        Returns
        -------
        list
            One result per spec, in input order (``SWEEP_PENDING`` for
            uncached points owned by other shards).
        """
        return self._run(list(specs), progress=progress, batch_fn=batch_fn)

    def _run(self, specs: List[RunSpec],
             progress: Optional[ProgressCallback],
             batch_fn) -> List[Any]:
        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        hit_indices: List[int] = []
        stealing = self.shard == "steal"
        for index, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is _CACHE_MISS:
                # In steal mode every miss stays a *candidate*: claims
                # are taken one point at a time right before execution
                # (an upfront claim sweep would hand this runner the
                # whole grid and starve concurrent stealers).
                if stealing or self._owns(index):
                    pending.append(index)
                else:
                    self.skipped += 1
                    results[index] = SWEEP_PENDING
            else:
                self.cache_hits += 1
                results[index] = cached
                hit_indices.append(index)

        # ``total`` shrinks in a stealing run as candidates are lost to
        # other runners; each tick snapshots the current value.
        hits = len(hit_indices)
        total = hits + len(pending)
        done = 0
        if progress is not None:
            for index in hit_indices:
                done += 1
                progress(SweepProgress(index=index, done=done,
                                       total=total, cache_hits=hits,
                                       from_cache=True))

        # Claims this runner holds for points whose results are not on
        # disk yet; the steal paths release any leftovers in a finally,
        # so an aborted stealer never parks its unfinished points.
        held_claims: set = set()

        def finish(index: int, value: Any) -> None:
            nonlocal done
            results[index] = value
            self._store_cached(specs[index], value)
            if stealing:
                # Result is on disk: drop the claim so other runners
                # (and future resumes) see a completed, unclaimed point.
                self._release_claim(specs[index])
                held_claims.discard(index)
            done += 1
            if progress is not None:
                progress(SweepProgress(index=index, done=done, total=total,
                                       cache_hits=hits,
                                       from_cache=False))

        def lose(index: int) -> None:
            nonlocal total
            self.skipped += 1
            results[index] = SWEEP_PENDING
            total -= 1

        def serve_cached(index: int, value: Any) -> None:
            nonlocal done, hits
            self.cache_hits += 1
            hits += 1
            results[index] = value
            done += 1
            if progress is not None:
                progress(SweepProgress(index=index, done=done, total=total,
                                       cache_hits=hits, from_cache=True))

        queue_pos = 0

        def claim_chunk(limit: int) -> List[int]:
            """Claim up to ``limit`` still-missing points to compute now.

            Re-checks the cache before claiming (another stealer may
            have completed — and unclaimed — the point meanwhile) and
            leaves points whose claim is held elsewhere as PENDING.
            """
            nonlocal queue_pos
            chunk: List[int] = []
            while queue_pos < len(pending) and len(chunk) < limit:
                index = pending[queue_pos]
                queue_pos += 1
                cached = self._load_cached(specs[index])
                if cached is not _CACHE_MISS:
                    serve_cached(index, cached)
                elif self._try_claim(specs[index]):
                    self.cache_misses += 1
                    held_claims.add(index)
                    chunk.append(index)
                else:
                    lose(index)
            return chunk

        def release_held_claims() -> None:
            for index in held_claims:
                self._release_claim(specs[index])
            held_claims.clear()

        if not pending:
            return results

        if batch_fn is not None:
            try:
                if stealing:
                    # Deviation from the loop path's claim-as-you-go:
                    # one vectorized call computes every point at once,
                    # so the whole batch is claimed together (concurrent
                    # batch stealers therefore race for the batch, not
                    # for points).
                    pending = claim_chunk(len(pending))
                else:
                    self.cache_misses += len(pending)
                if pending:
                    values = list(batch_fn([specs[i] for i in pending]))
                    if len(values) != len(pending):
                        raise ValueError(
                            f"batch_fn returned {len(values)} results "
                            f"for {len(pending)} pending specs")
                    for index, value in zip(pending, values):
                        finish(index, value)
            finally:
                release_held_claims()
        elif stealing and self.jobs == 1:
            # Claim-as-you-go: exactly one point is held by this runner
            # at any moment, so concurrent stealers always find work and
            # an interrupted run leaves at most one claim stale.
            try:
                while queue_pos < len(pending):
                    for index in claim_chunk(1):
                        finish(index, _execute_spec(specs[index]))
            finally:
                release_held_claims()
        elif stealing:
            # Rolling claim window over a process pool: a new point is
            # claimed only as a worker frees up, so at most ``jobs``
            # claims are held at any moment and no worker idles behind a
            # chunk barrier waiting for a slow point.
            executor = None
            in_flight: Dict[Any, int] = {}
            try:
                while True:
                    while len(in_flight) < self.jobs \
                            and queue_pos < len(pending):
                        for index in claim_chunk(1):
                            if executor is None:
                                executor = ProcessPoolExecutor(self.jobs)
                            future = executor.submit(_execute_spec,
                                                     specs[index])
                            in_flight[future] = index
                    if not in_flight:
                        break
                    completed, _ = futures_wait(
                        in_flight, return_when=FIRST_COMPLETED)
                    for future in completed:
                        finish(in_flight.pop(future), future.result())
            finally:
                release_held_claims()
                if executor is not None:
                    executor.shutdown()
        else:
            self.cache_misses += len(pending)
            if self.jobs == 1 or len(pending) == 1:
                for index in pending:
                    finish(index, _execute_spec(specs[index]))
            else:
                todo = [(index, specs[index]) for index in pending]
                with multiprocessing.Pool(min(self.jobs, len(todo))) as pool:
                    for index, value in pool.imap_unordered(
                            _execute_indexed, todo):
                        finish(index, value)
        return results

    def map(self, fn: Callable[..., Any],
            points: Sequence[Dict[str, Any]], *,
            base_seed: Optional[int] = None,
            progress: Optional[ProgressCallback] = None) -> List[Any]:
        """Convenience: run ``fn(**point)`` for every point, in order.

        Parameters
        ----------
        fn : callable
            Module-level function executed per point.
        points : sequence of dict
            Keyword arguments of each point.
        base_seed : int, optional
            When set, each point additionally receives a ``seed=``
            keyword derived deterministically from the point's content
            (stable under reordering and insertion of points).
        progress : callable, optional
            Forwarded to :meth:`run`.

        Returns
        -------
        list
            One result per point, in input order.
        """
        specs = []
        for point in points:
            spec = RunSpec.make(fn, **point)
            if base_seed is not None:
                spec = RunSpec(fn=spec.fn, kwargs=spec.kwargs,
                               seed=spec.derived_seed(base_seed))
            specs.append(spec)
        return self.run(specs, progress=progress)


def pending_attr(result: Any, name: str) -> Any:
    """``getattr`` that passes :data:`SWEEP_PENDING` through unchanged.

    Table builders use this to render partial (sharded) sweeps: cells
    whose point another shard owns print as ``PENDING`` instead of
    crashing the table assembly.
    """
    return result if result is SWEEP_PENDING else getattr(result, name)


def pending_row(row: Any, width: int) -> Sequence[Any]:
    """Expand :data:`SWEEP_PENDING` into ``width`` PENDING cells.

    For sweeps whose points return whole table rows as tuples: a point
    another shard owns becomes a row of ``PENDING`` placeholders.
    """
    return (SWEEP_PENDING,) * width if row is SWEEP_PENDING else row


# -- spec spill: shard files on disk -----------------------------------------

#: Schema stamp written into every ``manifest.json``; bumped on layout
#: changes so a loader meeting a foreign or stale spill fails loudly
#: (naming the path and both versions) instead of surfacing a KeyError
#: from deep inside a sweep.  Version 2 added the stamp itself.
MANIFEST_SCHEMA = 2

#: The keys every manifest must carry; checked up front by
#: :func:`load_manifest` so a truncated rewrite fails with the path and
#: the missing key, not an anonymous ``KeyError`` later.
_MANIFEST_KEYS = ("schema", "total", "shard_count", "shards",
                  "spec_hashes")


def write_shards(specs: Sequence[RunSpec], directory: "str | os.PathLike",
                 shard_count: int) -> List[Path]:
    """Spill a sweep's spec queue to ``directory`` as shard files.

    Writes ``shard-NNNN.pkl`` (a pickled list of this shard's specs,
    round-robin by position so shards stay balanced even when cost
    correlates with grid position) plus a ``manifest.json`` recording
    the sweep's size, shard layout and per-spec content hashes — enough
    for any machine to pick up one shard with :func:`load_shard`, run it
    against the shared cache, and for a merge run to verify
    completeness.

    Parameters
    ----------
    specs : sequence of RunSpec
        The full sweep, in result order.
    directory : str or path-like
        Created if missing.
    shard_count : int
        Number of shard files to write (>= 1).

    Returns
    -------
    list of Path
        The shard file paths, indexed by shard number.
    """
    if shard_count < 1:
        raise ValueError("shard_count must be >= 1")
    specs = list(specs)
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for shard_index in range(shard_count):
        owned = [spec for index, spec in enumerate(specs)
                 if index % shard_count == shard_index]
        path = directory / f"shard-{shard_index:04d}.pkl"
        with path.open("wb") as fh:
            pickle.dump(owned, fh)
        paths.append(path)
    manifest = {
        "schema": MANIFEST_SCHEMA,
        "total": len(specs),
        "shard_count": shard_count,
        "shards": [p.name for p in paths],
        "spec_hashes": [spec.content_hash() for spec in specs],
    }
    with (directory / "manifest.json").open("w") as fh:
        json.dump(manifest, fh, indent=2)
        fh.write("\n")
    return paths


def load_manifest(directory: "str | os.PathLike") -> Dict[str, Any]:
    """Read and validate the ``manifest.json`` of a spec spill.

    Every failure mode names the offending path and what was expected:
    a missing manifest, undecodable JSON (truncated write), a non-dict
    payload, a missing key, or a schema stamp other than
    :data:`MANIFEST_SCHEMA` (a spill written by a different revision of
    :func:`write_shards` — re-spill rather than guessing at the layout).
    """
    path = Path(directory) / "manifest.json"
    try:
        with path.open() as fh:
            manifest = json.load(fh)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"no spec-spill manifest at {path}: expected the "
            "manifest.json written by write_shards()") from None
    except json.JSONDecodeError as exc:
        raise ValueError(
            f"unreadable spec-spill manifest {path}: {exc} — the file "
            "is truncated or not JSON; re-run write_shards()") from exc
    if not isinstance(manifest, dict):
        raise ValueError(
            f"malformed spec-spill manifest {path}: expected a JSON "
            f"object, got {type(manifest).__name__}")
    schema = manifest.get("schema", 1)
    if schema != MANIFEST_SCHEMA:
        raise ValueError(
            f"spec-spill manifest {path} has schema version {schema}, "
            f"this revision reads version {MANIFEST_SCHEMA}: the spill "
            "was written by a different code revision — re-run "
            "write_shards() with the current one")
    missing = [key for key in _MANIFEST_KEYS if key not in manifest]
    if missing:
        raise ValueError(
            f"truncated spec-spill manifest {path}: missing key(s) "
            f"{', '.join(missing)} (expected {', '.join(_MANIFEST_KEYS)})")
    if len(manifest["spec_hashes"]) != manifest["total"] or \
            len(manifest["shards"]) != manifest["shard_count"]:
        raise ValueError(
            f"inconsistent spec-spill manifest {path}: "
            f"{len(manifest['spec_hashes'])} spec hash(es) for total="
            f"{manifest['total']}, {len(manifest['shards'])} shard "
            f"file(s) for shard_count={manifest['shard_count']}")
    return manifest


def load_shard(directory: "str | os.PathLike",
               shard_index: int) -> List[RunSpec]:
    """Read one shard's specs back from a :func:`write_shards` spill.

    Parameters
    ----------
    directory : str or path-like
        The spill directory holding ``manifest.json``.
    shard_index : int
        Which shard to load, ``0 <= shard_index < shard_count``.

    Returns
    -------
    list of RunSpec
        The specs owned by that shard; run them with a
        :class:`SweepRunner` pointed at the sweep's shared ``cache_dir``.
    """
    manifest = load_manifest(directory)
    if not 0 <= shard_index < manifest["shard_count"]:
        raise ValueError(
            f"shard_index must be in [0, {manifest['shard_count']}), "
            f"got {shard_index}")
    path = Path(directory) / manifest["shards"][shard_index]
    try:
        with path.open("rb") as fh:
            specs = pickle.load(fh)
    except FileNotFoundError:
        raise FileNotFoundError(
            f"spec spill is missing shard file {path} (manifest "
            f"{Path(directory) / 'manifest.json'} names it): the spill "
            "is incomplete — re-run write_shards()") from None
    except (pickle.UnpicklingError, EOFError, AttributeError,
            ImportError) as exc:
        raise ValueError(
            f"unreadable shard file {path}: {type(exc).__name__}: {exc} "
            "— truncated write or a spill from an incompatible code "
            "revision; re-run write_shards()") from exc
    expected = manifest["spec_hashes"][shard_index::manifest["shard_count"]]
    actual = [spec.content_hash() for spec in specs]
    if actual != expected:
        raise ValueError(
            f"shard file {path} does not match its manifest: expected "
            f"{len(expected)} spec(s) with the manifest's hashes, got "
            f"{len(actual)}"
            + ("" if len(actual) != len(expected) else
               " with differing content hashes — the point functions "
               "changed since the spill was written; re-run "
               "write_shards()"))
    return specs


def load_all_specs(directory: "str | os.PathLike") -> List[RunSpec]:
    """Reassemble a spill's full spec list in original result order.

    The inverse of :func:`write_shards`: loads every shard (each
    validated against the manifest's hashes) and interleaves them back
    — shard ``i`` owns positions ``i, i + count, ...``.  This is how a
    sweep coordinator (``python -m repro sweep serve --spill DIR``)
    ingests a grid another host laid out.
    """
    manifest = load_manifest(directory)
    count = manifest["shard_count"]
    shards = [load_shard(directory, index) for index in range(count)]
    specs: List[Optional[RunSpec]] = [None] * manifest["total"]
    for shard_index, owned in enumerate(shards):
        for position, spec in enumerate(owned):
            specs[shard_index + position * count] = spec
    return specs
