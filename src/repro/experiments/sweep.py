"""Parallel sweep execution with deterministic ordering and caching.

Every figure of the paper is a parameter sweep: N independent runs of a
pure function over a grid of scenario parameters.  :class:`SweepRunner`
executes such a sweep

* **in order** — results always come back in the order the points were
  given, whatever the number of worker processes;
* **deterministically** — each point carries its own seed inside its
  :class:`~repro.experiments.runner.RunSpec`, so ``jobs=8`` computes the
  exact same numbers as ``jobs=1``;
* **incrementally** — results are cached on disk by the spec's content
  hash, so re-running a sweep after editing one point only recomputes
  that point.

Worker processes import the spec's function by module path (standard
pickling of module-level callables), which is why ``RunSpec`` insists on
module-level functions.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from .runner import RunSpec

_CACHE_MISS = object()


def _execute_spec(spec: RunSpec) -> Any:
    """Module-level trampoline so specs can run in worker processes."""
    return spec.execute()


class SweepRunner:
    """Dispatch independent experiment points over a process pool.

    Parameters
    ----------
    jobs:
        Number of worker processes; ``1`` (the default) runs everything
        in-process, which is also the fallback when a sweep has a single
        uncached point.
    cache_dir:
        Directory for the content-hash result cache; ``None`` disables
        caching.  Entries are small pickles named ``<sha256>.pkl``.
    """

    def __init__(self, jobs: int = 1,
                 cache_dir: "str | os.PathLike | None" = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.jobs = jobs
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache ------------------------------------------------------------------
    def _cache_path(self, spec: RunSpec) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{spec.content_hash()}.pkl"

    def _load_cached(self, spec: RunSpec) -> Any:
        path = self._cache_path(spec)
        if path is None or not path.exists():
            return _CACHE_MISS
        try:
            with path.open("rb") as fh:
                return pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            return _CACHE_MISS

    def _store_cached(self, spec: RunSpec, result: Any) -> None:
        path = self._cache_path(spec)
        if path is None:
            return
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        # Write-then-rename so a crashed run never leaves a torn entry.
        # Caching is best-effort: an unpicklable result (or a full disk)
        # must not fail a run whose points all computed fine.
        fd, tmp_name = tempfile.mkstemp(dir=self.cache_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(result, fh)
            os.replace(tmp_name, path)
        except (OSError, pickle.PicklingError, TypeError, AttributeError):
            try:
                os.unlink(tmp_name)
            except OSError:
                pass

    # -- execution --------------------------------------------------------------
    def run(self, specs: Iterable[RunSpec]) -> List[Any]:
        """Execute all ``specs``; results in input order."""
        specs = list(specs)
        results: List[Any] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            cached = self._load_cached(spec)
            if cached is _CACHE_MISS:
                pending.append(index)
            else:
                self.cache_hits += 1
                results[index] = cached
        self.cache_misses += len(pending)

        if pending:
            todo = [specs[i] for i in pending]
            if self.jobs == 1 or len(todo) == 1:
                values = [_execute_spec(spec) for spec in todo]
            else:
                with multiprocessing.Pool(min(self.jobs, len(todo))) as pool:
                    values = pool.map(_execute_spec, todo)
            for index, value in zip(pending, values):
                results[index] = value
                self._store_cached(specs[index], value)
        return results

    def map(self, fn: Callable[..., Any],
            points: Sequence[Dict[str, Any]], *,
            base_seed: Optional[int] = None) -> List[Any]:
        """Convenience: run ``fn(**point)`` for every point, in order.

        With ``base_seed`` set, each point additionally receives a
        ``seed=`` keyword derived deterministically from the point's
        content (stable under reordering and insertion of points).
        """
        specs = []
        for point in points:
            spec = RunSpec.make(fn, **point)
            if base_seed is not None:
                spec = RunSpec(fn=spec.fn, kwargs=spec.kwargs,
                               seed=spec.derived_seed(base_seed))
            specs.append(spec)
        return self.run(specs)
