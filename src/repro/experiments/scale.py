"""Scale-workload harness: DES throughput on generated scenarios.

The roadmap's scale target — 10k-flow scenarios through the DES engine
— is exercised here.  Each *point* builds a preset of the random
scenario generator (:mod:`repro.topology.generator`) inside one
simulator, runs it, and reports the numbers that matter at scale:
events/sec of the event loop, wall-clock split between scenario build
and run, the peak pending-event population (the quantity the adaptive
scheduler keys on), and the per-flow goodput distribution (scale is
useless if the flows starve).

Points are plain :class:`~repro.experiments.runner.RunSpec` functions
dispatched through :class:`~repro.experiments.sweep.SweepRunner`, so
the whole preset × backend grid shards, steals, caches and resumes
like every other sweep in this repo.  ``python -m repro scale`` drives
it and writes ``BENCH_scale.json`` (validated in CI by
``benchmarks/check_bench.py --scale``).

Two orthogonal grids live here (mirroring the registry's two axes):

* **presets × engine backends** (``--preset``/``--engine-backends``):
  DES throughput of the heap/wheel/auto event schedulers on the wired
  workloads — "scheduler" in these records means *engine backend*;
* **families × packet schedulers × CC** (``--families``/
  ``--schedulers``/``--algorithms``): finite-transfer completion times
  of the heterogeneous/wireless scenario families
  (:data:`~repro.topology.generator.FAMILY_PRESETS`) under each
  packet-scheduler/algorithm pairing.

``REPRO_BENCH_SMOKE=1`` (or ``--smoke``) caps flow counts and windows
so the PR-tier CI stays fast; the nightly tier runs the real presets.
"""

from __future__ import annotations

import json
import platform
import random
from dataclasses import asdict, dataclass, replace
from time import perf_counter
from typing import Dict, List, Optional, Sequence

from ..benchreport import smoke_mode
from ..core.registry import get_scheduler_spec, get_spec
from ..sim.engine import SCHEDULER_NAMES, Simulator
from ..sim.monitors import FlowMeter
from ..topology.generator import (
    PRESETS,
    build_random_scenario,
    family_config,
    generate_preset,
    preset_config,
)
from .results import ResultTable
from .runner import RunSpec
from .sweep import SWEEP_PENDING, SweepRunner

#: Measurement window (simulated seconds) per preset in full mode: big
#: populations need less simulated time for the same statistical load,
#: and keep the nightly tier's wall clock bounded.
DEFAULT_DURATIONS: Dict[str, float] = {
    "tiny": 4.0,
    "small": 3.0,
    "medium": 2.0,
    "large": 0.8,
    "xlarge": 0.5,
}

#: Warmup (simulated seconds) per preset, excluded from goodput stats.
DEFAULT_WARMUPS: Dict[str, float] = {
    "tiny": 1.0,
    "small": 0.75,
    "medium": 0.5,
    "large": 0.3,
    "xlarge": 0.25,
}

#: Best-of-N repeats per preset (max events/sec, the convention of
#: every microbench in benchreport.py): the simulation is seed-
#: deterministic, so repeats only de-noise the wall-clock numbers.
#: The big presets run once — their long windows are stable already.
DEFAULT_REPEATS: Dict[str, int] = {
    "tiny": 3,
    "small": 3,
    "medium": 3,
    "large": 1,
    "xlarge": 1,
}

#: Smoke-mode caps (REPRO_BENCH_SMOKE=1 / --smoke).  Sized so the
#: PR-tier CI run finishes in a few seconds while the measured window
#: is still long enough (~0.4 s wall) for the auto-vs-wheel ratio the
#: gate checks to be meaningful rather than timer noise.
SMOKE_MAX_FLOWS = 400
SMOKE_DURATION = 1.5
SMOKE_WARMUP = 0.4


@dataclass
class ScaleRun:
    """Outcome of one (preset, engine backend) scale point."""

    preset: str
    backend: str                 # engine backend (heap/wheel/auto)
    n_flows: int
    n_links: int
    seed: int
    warmup: float
    duration: float              # simulated measurement window
    build_seconds: float         # scenario construction wall clock
    wall_seconds: float          # run wall clock (warmup + window)
    events: int                  # events dispatched (whole run)
    events_measured: int         # events inside the measurement window
    events_per_sec: float        # steady state: window events / wall
    peak_pending: int            # max pending-event population seen
    final_pending: int
    migrations: int              # auto-backend switches (0 for fixed)
    final_backend: str           # backend active when the run ended
    goodput_mean_pps: float      # bulk flows, measurement window only
    goodput_p10_pps: float
    goodput_p50_pps: float
    goodput_p90_pps: float
    churn_flows_completed: int
    churn_mean_fct: Optional[float]   # None when no short flow completed


def _percentile(ranked: List[float], pct: float) -> float:
    if not ranked:
        return 0.0
    index = min(int(len(ranked) * pct / 100), len(ranked) - 1)
    return ranked[index]


def run_scale_point(*, preset: str, backend: str = "auto",
                    duration: Optional[float] = None,
                    warmup: Optional[float] = None,
                    max_flows: Optional[int] = None,
                    sample_period: float = 0.05,
                    repeats: Optional[int] = None,
                    algorithms: Optional[Sequence[str]] = None,
                    seed: int = 1) -> ScaleRun:
    """Build and run one generated preset; module-level for RunSpec.

    ``algorithms`` replaces the preset's algorithm mix with the given
    registry names at equal weights (``--algorithms`` on the CLI).

    ``sample_period`` is the simulated-time spacing of the pending-
    population sampler (one rearmable timer — its own events are part
    of the workload, identically on every backend).  With ``repeats``
    (default per preset, :data:`DEFAULT_REPEATS`) the whole build+run
    repeats and the fastest measurement wins; the simulation itself is
    seed-deterministic, so repeats differ only in wall clock.
    """
    preset_config(preset)   # unknown names get the clear ValueError
    if repeats is None:
        repeats = DEFAULT_REPEATS.get(preset, 1)
    best: Optional[ScaleRun] = None
    for _ in range(max(repeats, 1)):
        run = _run_scale_once(preset=preset, backend=backend,
                              duration=duration, warmup=warmup,
                              max_flows=max_flows, algorithms=algorithms,
                              sample_period=sample_period, seed=seed)
        if best is None or run.events_per_sec > best.events_per_sec:
            best = run
    return best


def _run_scale_once(*, preset: str, backend: str,
                    duration: Optional[float],
                    warmup: Optional[float],
                    max_flows: Optional[int],
                    algorithms: Optional[Sequence[str]],
                    sample_period: float, seed: int) -> ScaleRun:
    if duration is None:
        duration = DEFAULT_DURATIONS[preset]
    if warmup is None:
        warmup = DEFAULT_WARMUPS[preset]
    sim = Simulator(backend)

    build_start = perf_counter()
    scenario = generate_preset(
        sim, preset, seed=seed, max_flows=max_flows,
        algorithms=None if algorithms is None else tuple(algorithms))
    scenario.start()
    build_seconds = perf_counter() - build_start

    peak = [0]

    def sample_pending() -> None:
        pending = sim.pending_events
        if pending > peak[0]:
            peak[0] = pending
        sampler.arm(sample_period)

    sampler = sim.timer(sample_pending)
    sampler.arm(sample_period)

    meter = FlowMeter(sim, scenario.bulk_flows)
    run_start = perf_counter()
    sim.run(until=warmup)
    meter.reset()
    # Steady-state throughput is measured over the post-warmup window
    # only: the ramp (flows starting, slow-start, the auto backend's
    # one-off migration) belongs to warmup, exactly as for goodput.
    events_at_warmup = sim.events_processed
    window_start = perf_counter()
    sim.run(until=warmup + duration)
    window_wall = perf_counter() - window_start
    wall_seconds = perf_counter() - run_start
    sampler.cancel()
    events_measured = sim.events_processed - events_at_warmup

    goodputs = sorted(meter.goodput_pps().values())
    n_bulk = len(goodputs)
    completed = [t for source in scenario.churn_sources
                 for t in source.completion_times]
    return ScaleRun(
        preset=preset,
        backend=backend,
        n_flows=scenario.n_flows,
        n_links=len(scenario.links),
        seed=seed,
        warmup=warmup,
        duration=duration,
        build_seconds=build_seconds,
        wall_seconds=wall_seconds,
        events=sim.events_processed,
        events_measured=events_measured,
        events_per_sec=events_measured / window_wall,
        peak_pending=max(peak[0], sim.pending_events),
        final_pending=sim.pending_events,
        migrations=sim.migrations,
        final_backend=sim.active_backend,
        goodput_mean_pps=(sum(goodputs) / n_bulk if n_bulk else 0.0),
        goodput_p10_pps=_percentile(goodputs, 10),
        goodput_p50_pps=_percentile(goodputs, 50),
        goodput_p90_pps=_percentile(goodputs, 90),
        churn_flows_completed=len(completed),
        churn_mean_fct=(sum(completed) / len(completed)
                        if completed else None),
    )


#: Simulated horizon (seconds) a family point may take to complete all
#: of its finite transfers; unfinished transfers are reported (and the
#: bench gate fails the run).
FAMILY_HORIZON = 30.0
SMOKE_FAMILY_HORIZON = 15.0
SMOKE_FAMILY_MAX_FLOWS = 12


@dataclass
class FamilyRun:
    """Outcome of one (family, packet scheduler, algorithm) point."""

    family: str
    scheduler: str               # packet scheduler (registry axis)
    algorithm: str               # congestion-control algorithm
    backend: str                 # engine backend the point ran on
    n_flows: int
    n_links: int
    seed: int
    horizon: float               # simulated completion deadline
    build_seconds: float
    wall_seconds: float
    events: int
    events_per_sec: float
    transfers_total: int
    transfers_completed: int
    transfer_mean_s: Optional[float]
    transfer_p50_s: Optional[float]
    transfer_p90_s: Optional[float]
    link_changes: int            # fading steps across all links
    handovers: int


def run_family_point(*, family: str, scheduler: str = "minrtt",
                     algorithm: str = "olia", backend: str = "auto",
                     horizon: Optional[float] = None,
                     max_flows: Optional[int] = None,
                     seed: int = 1) -> FamilyRun:
    """Run one scenario-family point; module-level for RunSpec.

    Every multipath flow of the family runs ``algorithm`` and stripes
    its finite transfer through ``scheduler``; the point runs until all
    transfers complete or the simulated ``horizon`` passes.
    """
    family_config(family)       # loud ValueError on unknown families
    get_scheduler_spec(scheduler)
    spec = get_spec(algorithm)
    if not spec.has_packet:
        raise ValueError(
            f"algorithm {algorithm!r} has no packet layer (supports: "
            f"{', '.join(spec.layers)}); family points run packet-level "
            "flows")
    if horizon is None:
        horizon = FAMILY_HORIZON
    sim = Simulator(backend)
    build_start = perf_counter()
    config = family_config(family)
    if max_flows is not None:
        config = config.scaled(max_flows)
    config = replace(
        config,
        scheduler_mix=((scheduler, 1.0),),
        algorithm_mix=((algorithm, 1.0),))
    scenario = build_random_scenario(sim, random.Random(seed), config)
    scenario.start()
    build_seconds = perf_counter() - build_start

    total = len(scenario.bulk_flows)
    run_start = perf_counter()
    # Slice the run so completion stops the clock early instead of
    # simulating dead air to the horizon.
    while sim.now < horizon and len(scenario.transfer_times) < total:
        sim.run(until=min(sim.now + 1.0, horizon))
    wall_seconds = perf_counter() - run_start

    times = sorted(scenario.transfer_times)
    n_done = len(times)
    return FamilyRun(
        family=family,
        scheduler=scheduler,
        algorithm=algorithm,
        backend=backend,
        n_flows=scenario.n_flows,
        n_links=len(scenario.links),
        seed=seed,
        horizon=horizon,
        build_seconds=build_seconds,
        wall_seconds=wall_seconds,
        events=sim.events_processed,
        events_per_sec=(sim.events_processed / wall_seconds
                        if wall_seconds > 0 else 0.0),
        transfers_total=total,
        transfers_completed=n_done,
        transfer_mean_s=(sum(times) / n_done if n_done else None),
        transfer_p50_s=(_percentile(times, 50) if n_done else None),
        transfer_p90_s=(_percentile(times, 90) if n_done else None),
        link_changes=sum(d.changes for d in scenario.dynamics),
        handovers=sum(d.handovers for d in scenario.dynamics),
    )


def scale_report(presets: Sequence[str] = ("medium",), *,
                 backends: Sequence[str] = ("heap", "wheel", "auto"),
                 families: Sequence[str] = (),
                 schedulers: Sequence[str] = ("minrtt", "roundrobin",
                                              "redundant", "qaware"),
                 duration: Optional[float] = None,
                 warmup: Optional[float] = None,
                 max_flows: Optional[int] = None,
                 repeats: Optional[int] = None,
                 algorithms: Optional[Sequence[str]] = None,
                 seed: int = 1, smoke: Optional[bool] = None,
                 jobs: int = 1, cache_dir=None, shard=None,
                 claim_ttl: Optional[float] = None) -> dict:
    """Run the preset × backend grid (plus optional family × scheduler
    × CC sections) and assemble the report dict.

    The grids go through :class:`SweepRunner` — ``jobs``, ``cache_dir``
    and ``shard`` behave exactly as for the figure sweeps, so a 10k-flow
    grid can be split across machines through a shared cache directory.
    In a sharded run, cells owned by other shards are simply absent
    from the report (and the table prints them as PENDING).

    ``backends`` selects the *engine* event schedulers of the preset
    grid; ``schedulers`` selects the *packet* schedulers of the family
    grid — the two orthogonal meanings the registry now separates.
    """
    if not presets and not families:
        raise ValueError("no presets or families to run")
    for preset in presets:
        preset_config(preset)
    if presets and not backends:
        raise ValueError(
            "no engine backends to run (empty --engine-backends?); "
            "expected a comma-separated subset of "
            f"{', '.join(SCHEDULER_NAMES)}")
    for name in backends:
        if name not in SCHEDULER_NAMES:
            expected = ", ".join(SCHEDULER_NAMES)
            raise ValueError(
                f"unknown engine backend {name!r}; expected one of "
                f"{expected}")
    for family in families:
        family_config(family)
    if families and not schedulers:
        from ..core.registry import available_schedulers
        raise ValueError(
            "no packet schedulers to run (empty --schedulers?); known: "
            + ", ".join(available_schedulers()))
    for name in schedulers:
        get_scheduler_spec(name)    # loud KeyError on typos
    if algorithms is not None:
        algorithms = tuple(algorithms)
        for name in algorithms:
            spec = get_spec(name)   # loud KeyError on typos
            if not spec.has_packet:
                raise ValueError(
                    f"algorithm {name!r} has no packet layer (supports: "
                    f"{', '.join(spec.layers)}); the scale harness runs "
                    "packet-level flows")
    if smoke is None:
        smoke = smoke_mode()
    family_horizon = None
    family_max_flows = max_flows
    if smoke:
        max_flows = min(max_flows or SMOKE_MAX_FLOWS, SMOKE_MAX_FLOWS)
        duration = min(duration or SMOKE_DURATION, SMOKE_DURATION)
        warmup = min(warmup or SMOKE_WARMUP, SMOKE_WARMUP)
        repeats = 1
        family_horizon = SMOKE_FAMILY_HORIZON
        family_max_flows = min(family_max_flows or SMOKE_FAMILY_MAX_FLOWS,
                               SMOKE_FAMILY_MAX_FLOWS)
    # The family grid's CC axis: --algorithms when given, else OLIA
    # (the paper's algorithm) as the canonical column.
    family_algorithms = tuple(algorithms) if algorithms else ("olia",)

    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    specs = [
        RunSpec.make(run_scale_point, preset=preset, backend=backend,
                     duration=duration, warmup=warmup, max_flows=max_flows,
                     repeats=repeats, algorithms=algorithms, seed=seed)
        for preset in presets
        for backend in backends]
    n_preset_cells = len(specs)
    family_cells = [(family, scheduler, algorithm)
                    for family in families
                    for scheduler in schedulers
                    for algorithm in family_algorithms]
    specs += [
        RunSpec.make(run_family_point, family=family, scheduler=scheduler,
                     algorithm=algorithm, horizon=family_horizon,
                     max_flows=family_max_flows, seed=seed)
        for family, scheduler, algorithm in family_cells]
    # Wall-clock cells served from a resume cache were measured in some
    # earlier run, possibly on another machine; remember which, so the
    # report never builds a cross-machine throughput ratio.
    from_cache = [False] * len(specs)

    def note_cache(tick):
        from_cache[tick.index] = tick.from_cache

    runs = runner.run(specs, progress=note_cache)

    report: dict = {
        "benchmark": "BENCH_scale",
        "smoke": smoke,
        "python": platform.python_version(),
        "seed": seed,
        "backends": list(backends),
        "schedulers": list(schedulers) if families else [],
        "algorithms": None if algorithms is None else list(algorithms),
        "presets": {},
        "families": {},
    }
    n_backends = len(backends)
    for cell, preset in enumerate(presets):
        base = cell * n_backends
        block = runs[base:base + n_backends]
        by_backend = {}
        for offset, (backend, run) in enumerate(zip(backends, block)):
            if run is SWEEP_PENDING:
                continue
            record = asdict(run)
            record["from_cache"] = from_cache[base + offset]
            by_backend[backend] = record
        if not by_backend:
            continue
        entry: dict = {"backends": by_backend}
        wheel = by_backend.get("wheel")
        auto = by_backend.get("auto")
        if wheel and auto:
            # Ratios only mean something when both sides were measured
            # by this run on this machine (check_bench's own rule).
            if wheel["from_cache"] or auto["from_cache"]:
                entry["auto_vs_wheel_stale"] = True
            else:
                entry["auto_vs_wheel"] = round(
                    auto["events_per_sec"] / wheel["events_per_sec"], 3)
        report["presets"][preset] = entry
    for offset, (family, scheduler, algorithm) in enumerate(family_cells):
        index = n_preset_cells + offset
        run = runs[index]
        if run is SWEEP_PENDING:
            continue
        record = asdict(run)
        record["from_cache"] = from_cache[index]
        family_entry = report["families"].setdefault(
            family, {"schedulers": {}})
        sched_entry = family_entry["schedulers"].setdefault(scheduler, {})
        sched_entry[algorithm] = record
    return report


def report_table(report: dict) -> ResultTable:
    """Paper-style table of a :func:`scale_report` dict."""
    table = ResultTable(
        "Scale harness - DES throughput on generated scenarios"
        + (" [SMOKE]" if report.get("smoke") else ""),
        ["preset", "backend", "flows", "events/s", "wall s",
         "peak pending", "migrations", "goodput p50 pps"])
    for preset, entry in report["presets"].items():
        for backend, run in entry["backends"].items():
            table.add_row(preset, backend, run["n_flows"],
                          round(run["events_per_sec"]),
                          round(run["wall_seconds"], 2),
                          run["peak_pending"], run["migrations"],
                          round(run["goodput_p50_pps"], 1))
        ratio = entry.get("auto_vs_wheel")
        if ratio is not None:
            table.add_note(
                f"{preset}: auto runs at {ratio}x the fixed wheel's "
                "events/s (>= 1.0 means the adaptive backend costs "
                "nothing at scale)")
        elif entry.get("auto_vs_wheel_stale"):
            table.add_note(
                f"{preset}: auto/wheel ratio omitted — a cached cell "
                "from an earlier run makes wall clocks incomparable")
    return table


def family_table(report: dict) -> ResultTable:
    """Scenario-family section of a :func:`scale_report` dict."""
    table = ResultTable(
        "Scenario families - finite transfers per packet scheduler"
        + (" [SMOKE]" if report.get("smoke") else ""),
        ["family", "scheduler", "algorithm", "done", "mean s",
         "p90 s", "fades", "handovers"])
    for family, entry in report.get("families", {}).items():
        for scheduler, by_algo in entry["schedulers"].items():
            for algorithm, run in by_algo.items():
                mean = run["transfer_mean_s"]
                p90 = run["transfer_p90_s"]
                table.add_row(
                    family, scheduler, algorithm,
                    f"{run['transfers_completed']}/"
                    f"{run['transfers_total']}",
                    "-" if mean is None else round(mean, 3),
                    "-" if p90 is None else round(p90, 3),
                    run["link_changes"], run["handovers"])
    return table


def scale_table(presets: Sequence[str] = ("medium",), *,
                backends: Sequence[str] = ("heap", "wheel", "auto"),
                jobs: int = 1, cache_dir=None, shard=None,
                **kwargs) -> ResultTable:
    """Convenience: :func:`scale_report` rendered as a ResultTable."""
    report = scale_report(presets, backends=backends, jobs=jobs,
                          cache_dir=cache_dir, shard=shard, **kwargs)
    return report_table(report)


def write_report(report: dict, output_path: str) -> None:
    """Write ``BENCH_scale.json``."""
    with open(output_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")


__all__ = [
    "DEFAULT_DURATIONS",
    "DEFAULT_WARMUPS",
    "FAMILY_HORIZON",
    "FamilyRun",
    "ScaleRun",
    "family_table",
    "report_table",
    "run_family_point",
    "run_scale_point",
    "scale_report",
    "scale_table",
    "smoke_mode",
    "write_report",
]
