"""Calibration: the packet simulator against the TCP square-root law.

Every analytical result in the paper leans on the loss-throughput
formula ``x = sqrt(2/p)/rtt``.  This experiment measures, for a range of
bottleneck capacities and competing-flow counts, the loss probability
and goodput of the packet simulator's TCP and reports the ratio between
measured goodput and the formula's prediction — the simulator is
trustworthy where that ratio is near 1.
"""

from __future__ import annotations

import random

from ..analysis.tcp import tcp_rate
from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.mptcp import PathSpec
from ..sim.queues import REDQueue
from .results import ResultTable
from .runner import measure, staggered_starts


def formula_validation_table(*, capacities_mbps=(1.0, 2.0, 5.0),
                             flow_counts=(2, 5),
                             duration: float = 60.0,
                             warmup: float = 20.0,
                             seed: int = 1) -> ResultTable:
    """Measured TCP goodput vs ``sqrt(2/p)/rtt`` across configurations."""
    table = ResultTable(
        "Calibration - packet TCP vs the square-root law",
        ["capacity (Mbps)", "flows", "measured p", "goodput (pkt/s)",
         "formula (pkt/s)", "ratio"])
    for capacity in capacities_mbps:
        for n_flows in flow_counts:
            sim = Simulator()
            rng = random.Random(seed)
            link = Link(sim, rate_bps=capacity * 1e6, delay=0.04,
                        queue=REDQueue.for_capacity_mbps(rng, capacity),
                        name="bn")
            flows = {}
            for i, start in enumerate(staggered_starts(rng, n_flows)):
                bulk = BulkTransfer(sim, "tcp",
                                    [PathSpec((link,), 0.04)],
                                    start_time=start, name=f"f{i}")
                bulk.start()
                flows[f"f{i}"] = bulk
            result = measure(sim, flows, [link], warmup=warmup,
                             duration=duration)
            p = result.link_loss["bn"]
            goodput = result.group_mean("f")
            # Estimate the operating RTT from one flow's smoothed RTT.
            rtt = flows["f0"].connection.srtt
            predicted = tcp_rate(max(p, 1e-9), rtt)
            table.add_row(capacity, n_flows, p, goodput, predicted,
                          goodput / predicted)
    table.add_note("ratios near 1 certify the transport implementation; "
                   "deviations grow when windows approach 1 MSS")
    return table
