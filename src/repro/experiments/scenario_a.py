"""Scenario A experiments: Figures 1(b), 1(c), 9 and 10.

Type1 users stream through a capacity-limited server and may add an
MPTCP subflow through a shared AP where type2 TCP users live.  The
experiments compare the analytical LIA fixed point, packet-level
simulations of LIA and OLIA, and the theoretical optimum with probing
cost, reporting the normalized throughputs and the shared-AP loss
probability exactly as the paper's figures do.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import scenario_a as analysis_a
from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..topology.scenarios import build_scenario_a
from ..units import mbps_to_pps
from .results import ResultTable
from .runner import RunSpec, measure, staggered_starts
from .sweep import SweepRunner, pending_attr as _field


@dataclass
class ScenarioARun:
    """Simulated normalized throughputs and losses for one setting."""

    algorithm: str
    n1: int
    n2: int
    c1_mbps: float
    c2_mbps: float
    type1_normalized: float
    type2_normalized: float
    p1: float
    p2: float


def simulate(algorithm: str, *, n1: int, n2: int, c1_mbps: float,
             c2_mbps: float, duration: float = 60.0, warmup: float = 20.0,
             seed: int = 1, queue: str = "red") -> ScenarioARun:
    """Packet-level run of scenario A with ``n1`` MPTCP + ``n2`` TCP users.

    ``algorithm`` is the coupled controller of the type1 users ("lia",
    "olia", ...); type2 users always run regular TCP.
    """
    sim = Simulator()
    rng = random.Random(seed)
    topo = build_scenario_a(sim, rng, n1=n1, n2=n2, c1_mbps=c1_mbps,
                            c2_mbps=c2_mbps, queue=queue)
    flows = {}
    starts = staggered_starts(rng, n1 + n2)
    for i in range(n1):
        bulk = BulkTransfer(sim, algorithm, topo.type1_paths,
                            start_time=starts[i], name=f"type1.{i}")
        bulk.start()
        flows[f"type1.{i}"] = bulk
    for i in range(n2):
        bulk = BulkTransfer(sim, "tcp", [topo.type2_path],
                            start_time=starts[n1 + i], name=f"type2.{i}")
        bulk.start()
        flows[f"type2.{i}"] = bulk

    result = measure(sim, flows, [topo.server_link, topo.shared_ap],
                     warmup=warmup, duration=duration)
    type1 = result.group_mean("type1") / mbps_to_pps(c1_mbps)
    type2 = result.group_mean("type2") / mbps_to_pps(c2_mbps)
    return ScenarioARun(
        algorithm=algorithm, n1=n1, n2=n2, c1_mbps=c1_mbps,
        c2_mbps=c2_mbps, type1_normalized=type1, type2_normalized=type2,
        p1=result.link_loss["server"], p2=result.link_loss["sharedAP"])


def figure1_table(*, n1_values=(10, 20, 30), n2: int = 10,
                  c1_over_c2=(0.75, 1.0, 1.5), c2_mbps: float = 1.0,
                  rtt: float = 0.15, simulate_lia: bool = False,
                  duration: float = 30.0, warmup: float = 15.0,
                  seed: int = 1) -> ResultTable:
    """Figure 1(b)/(c): normalized throughputs and p2 versus N1/N2.

    Analytical LIA curves and the optimum-with-probing baseline are
    always included; ``simulate_lia`` adds measured points from the
    packet simulator (slower).
    """
    columns = ["C1/C2", "N1/N2", "type1 LIA", "type2 LIA", "type2 opt",
               "p2 LIA", "p2 opt"]
    if simulate_lia:
        columns += ["type2 LIA (sim)", "p2 LIA (sim)"]
    table = ResultTable("Fig. 1(b)/(c) - Scenario A: LIA vs optimum",
                        columns)
    for ratio in c1_over_c2:
        c1_mbps = ratio * c2_mbps
        for n1 in n1_values:
            lia = analysis_a.lia_fixed_point(
                n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps),
                c2=mbps_to_pps(c2_mbps), rtt=rtt)
            opt = analysis_a.optimum_with_probing(
                n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps),
                c2=mbps_to_pps(c2_mbps), rtt=rtt)
            row = [ratio, n1 / n2, lia.type1_normalized,
                   lia.type2_normalized, opt.type2_normalized,
                   lia.p2, opt.p2]
            if simulate_lia:
                sim_run = simulate("lia", n1=n1, n2=n2, c1_mbps=c1_mbps,
                                   c2_mbps=c2_mbps, duration=duration,
                                   warmup=warmup, seed=seed)
                row += [sim_run.type2_normalized, sim_run.p2]
            table.add_row(*row)
    table.add_note("type1 LIA normalized throughput is 1 in every row: "
                   "upgrading type1 users brings them nothing (problem P1)")
    return table


def figure9_10_table(*, n1_values=(10, 20, 30), n2: int = 10,
                     c1_over_c2=(0.75, 1.0, 1.5), c2_mbps: float = 1.0,
                     rtt: float = 0.15, duration: float = 30.0,
                     warmup: float = 15.0, seed: int = 1,
                     algorithms=("lia", "olia"), jobs: int = 1,
                     cache_dir=None, shard=None,
                     claim_ttl=None) -> ResultTable:
    """Figures 9/10: measured LIA vs OLIA vs optimum in scenario A.

    Each (C1/C2, N1, algorithm) cell is an independent DES run, so the
    grid is dispatched through :class:`SweepRunner`; ``jobs=N`` fans the
    runs out over worker processes, ``cache_dir`` makes the sweep
    resumable and ``shard=(i, n)`` computes only one slice of the grid.
    """
    table = ResultTable(
        "Fig. 9/10 - Scenario A: measured LIA vs OLIA",
        ["C1/C2", "N1/N2", "type2 LIA", "type2 OLIA", "type2 opt",
         "p2 LIA", "p2 OLIA", "p2 opt"])
    grid = [(ratio, n1) for ratio in c1_over_c2 for n1 in n1_values]
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    runs = runner.run([
        RunSpec.make(simulate, algorithm=algorithm, n1=n1, n2=n2,
                     c1_mbps=ratio * c2_mbps, c2_mbps=c2_mbps,
                     duration=duration, warmup=warmup, seed=seed)
        for ratio, n1 in grid
        for algorithm in algorithms])
    n_algos = len(algorithms)
    for cell, (ratio, n1) in enumerate(grid):
        by_algo = dict(zip(algorithms, runs[n_algos * cell:
                                            n_algos * (cell + 1)]))
        lia, olia = by_algo["lia"], by_algo["olia"]
        opt = analysis_a.optimum_with_probing(
            n1=n1, n2=n2, c1=mbps_to_pps(ratio * c2_mbps),
            c2=mbps_to_pps(c2_mbps), rtt=rtt)
        table.add_row(ratio, n1 / n2,
                      _field(lia, "type2_normalized"),
                      _field(olia, "type2_normalized"),
                      opt.type2_normalized,
                      _field(lia, "p2"), _field(olia, "p2"), opt.p2)
    table.add_note("OLIA should track the optimum-with-probing column; "
                   "LIA depresses type2 throughput and inflates p2")
    return table
