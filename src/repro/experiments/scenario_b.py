"""Scenario B experiments: Figure 4, Tables I and II, Figure 17.

15 Blue users are multihomed to ISPs X and T; 15 Red users download via
T and may "upgrade" to MPTCP by adding a path that crosses both X and T.
Upgrading Red users under LIA lowers *everyone's* throughput (Table I);
with OLIA the only cost is probing traffic (Table II).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..analysis import scenario_b as analysis_b
from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..topology.scenarios import build_scenario_b
from ..units import mbps_to_pps, pps_to_mbps
from .results import ResultTable
from .runner import measure, staggered_starts


@dataclass
class ScenarioBRun:
    """Measured per-user rates (Mbps) for one configuration."""

    algorithm: str
    red_multipath: bool
    blue_mbps: float
    red_mbps: float
    aggregate_mbps: float
    p_x: float
    p_t: float


def simulate(algorithm: str, *, red_multipath: bool, n_users: int = 15,
             cx_mbps: float = 27.0, ct_mbps: float = 36.0,
             duration: float = 30.0, warmup: float = 15.0,
             seed: int = 1, queue: str = "red") -> ScenarioBRun:
    """Packet-level run of scenario B.

    Blue users always run MPTCP with ``algorithm`` over {X, T}.  Red
    users run TCP over T, plus (if ``red_multipath``) a second subflow
    over the dashed X+T path coupled by ``algorithm``.
    """
    sim = Simulator()
    rng = random.Random(seed)
    topo = build_scenario_b(sim, rng, cx_mbps=cx_mbps, ct_mbps=ct_mbps,
                            queue=queue)
    flows = {}
    starts = staggered_starts(rng, 2 * n_users)
    for i in range(n_users):
        bulk = BulkTransfer(sim, algorithm, topo.blue_paths,
                            start_time=starts[i], name=f"blue.{i}")
        bulk.start()
        flows[f"blue.{i}"] = bulk
    for i in range(n_users):
        if red_multipath:
            paths = [topo.red_main_path, topo.red_dashed_path]
            bulk = BulkTransfer(sim, algorithm, paths,
                                start_time=starts[n_users + i],
                                name=f"red.{i}")
        else:
            bulk = BulkTransfer(sim, "tcp", [topo.red_main_path],
                                start_time=starts[n_users + i],
                                name=f"red.{i}")
        bulk.start()
        flows[f"red.{i}"] = bulk

    result = measure(sim, flows, [topo.link_x, topo.link_t],
                     warmup=warmup, duration=duration)
    blue = pps_to_mbps(result.group_mean("blue"))
    red = pps_to_mbps(result.group_mean("red"))
    return ScenarioBRun(
        algorithm=algorithm, red_multipath=red_multipath,
        blue_mbps=blue, red_mbps=red,
        aggregate_mbps=n_users * (blue + red),
        p_x=result.link_loss["ispX"], p_t=result.link_loss["ispT"])


def table_1_2(algorithm: str, *, n_users: int = 15, cx_mbps: float = 27.0,
              ct_mbps: float = 36.0, duration: float = 30.0,
              warmup: float = 15.0, seed: int = 1) -> ResultTable:
    """Table I (``algorithm='lia'``) or Table II (``'olia'``), measured."""
    number = "I" if algorithm == "lia" else "II"
    table = ResultTable(
        f"Table {number} - Scenario B measurements ({algorithm.upper()})",
        ["Red users", "Blue rate (Mbps)", "Red rate (Mbps)",
         "Aggregate (Mbps)"])
    single = simulate(algorithm, red_multipath=False, n_users=n_users,
                      cx_mbps=cx_mbps, ct_mbps=ct_mbps, duration=duration,
                      warmup=warmup, seed=seed)
    multi = simulate(algorithm, red_multipath=True, n_users=n_users,
                     cx_mbps=cx_mbps, ct_mbps=ct_mbps, duration=duration,
                     warmup=warmup, seed=seed)
    table.add_row("Single-path", single.blue_mbps, single.red_mbps,
                  single.aggregate_mbps)
    table.add_row("Multipath", multi.blue_mbps, multi.red_mbps,
                  multi.aggregate_mbps)
    drop = 100.0 * (1.0 - multi.aggregate_mbps / single.aggregate_mbps)
    table.add_note(f"aggregate drop when Red upgrade: {drop:.1f}% "
                   f"(paper: 13% for LIA, 3.5% for OLIA)")
    return table


def figure4_table(*, n_users: int = 15, ct_mbps: float = 36.0,
                  cx_over_ct=(0.3, 0.5, 0.75, 1.0, 1.25, 1.5),
                  rtt: float = 0.15) -> ResultTable:
    """Figure 4: analytical normalized throughputs vs CX/CT.

    Dashed curves (Red single-path) and solid curves (Red upgraded),
    for LIA (a) and the optimum with probing cost (b).
    """
    table = ResultTable(
        "Fig. 4 - Scenario B: normalized throughput N*rate/CT vs CX/CT",
        ["CX/CT",
         "blue LIA sp", "red LIA sp", "blue LIA mp", "red LIA mp",
         "blue opt sp", "red opt sp", "blue opt mp", "red opt mp"])
    ct = mbps_to_pps(ct_mbps)
    for ratio in cx_over_ct:
        cx = ratio * ct
        lia_sp = analysis_b.lia_singlepath(n_users, cx, ct, rtt)
        lia_mp = analysis_b.lia_multipath(n_users, cx, ct, rtt)
        opt_sp = analysis_b.optimum_singlepath(n_users, cx, ct, rtt)
        opt_mp = analysis_b.optimum_multipath(n_users, cx, ct, rtt)
        table.add_row(ratio,
                      lia_sp.blue_normalized, lia_sp.red_normalized,
                      lia_mp.blue_normalized, lia_mp.red_normalized,
                      opt_sp.blue_normalized, opt_sp.red_normalized,
                      opt_mp.blue_normalized, opt_mp.red_normalized)
    table.add_note("for every CX/CT, LIA's 'mp' columns sit below its "
                   "'sp' columns: the upgrade hurts everyone (P1)")
    return table


def figure17_table(*, n_users: int = 15, cx_mbps: float = 27.0,
                   ct_mbps: float = 36.0,
                   rtts=(0.025, 0.1, 0.15)) -> ResultTable:
    """Figure 17: optimum-with-probing sensitivity to the RTT."""
    table = ResultTable(
        "Fig. 17 - Scenario B optimum w/ probing: RTT sensitivity",
        ["RTT (ms)", "blue sp", "red sp", "blue mp", "red mp",
         "aggregate drop (Mbps)"])
    cx, ct = mbps_to_pps(cx_mbps), mbps_to_pps(ct_mbps)
    for rtt in rtts:
        sp = analysis_b.optimum_singlepath(n_users, cx, ct, rtt)
        mp = analysis_b.optimum_multipath(n_users, cx, ct, rtt)
        table.add_row(rtt * 1e3,
                      sp.blue_normalized, sp.red_normalized,
                      mp.blue_normalized, mp.red_normalized,
                      pps_to_mbps(sp.aggregate - mp.aggregate))
    table.add_note("the upgrade penalty is pure probing overhead "
                   "N*MSS/rtt: smaller RTT -> larger penalty")
    return table
