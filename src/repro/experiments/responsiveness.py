"""Responsiveness and stability experiments on the fluid model.

The paper leaves "the stability and convergence of OLIA" to future work
(Section VII) while claiming, from measurements, that OLIA is *as
responsive as LIA*.  These experiments quantify both claims on the
fluid dynamics:

* **responsiveness** — let the system converge, then halve the capacity
  of the multipath user's primary link and measure the settling time of
  the re-converged allocation;
* **stability** — perturb the equilibrium rates by large random factors
  and check that every trajectory returns to the same fixed point.
"""

from __future__ import annotations

import numpy as np

from ..fluid import FluidNetwork, PowerLoss, integrate, integrate_batch
from .results import ResultTable


def _two_ap_network(c1: float, c2: float, n_tcp: int = 3,
                    rtt: float = 0.1):
    """Multipath user on AP1+AP2, ``n_tcp`` TCP users on AP2."""
    net = FluidNetwork()
    ap1 = net.add_link(PowerLoss(capacity=c1, p_at_capacity=0.02),
                       name="AP1")
    ap2 = net.add_link(PowerLoss(capacity=c2, p_at_capacity=0.02),
                       name="AP2")
    mp = net.add_user("mp")
    net.add_route(mp, [ap1], rtt=rtt)
    net.add_route(mp, [ap2], rtt=rtt)
    rules = {mp: None}   # filled by caller
    for i in range(n_tcp):
        user = net.add_user(f"tcp{i}")
        net.add_route(user, [ap2], rtt=rtt)
        rules[user] = "tcp"
    return net, rules


def capacity_drop_settling_table(*, algorithms=("olia", "lia", "coupled",
                                                "balia"),
                                 c_before: float = 800.0,
                                 c_after: float = 200.0,
                                 rel_tol: float = 0.1,
                                 t_converge: float = 60.0,
                                 t_measure: float = 60.0,
                                 dt: float = 2e-3) -> ResultTable:
    """Settling time after AP1's capacity drops (``c_before -> c_after``).

    The multipath user must shift traffic from AP1 towards AP2; the
    settling time of the post-change trajectory measures responsiveness.
    """
    table = ResultTable(
        "Responsiveness - settling time after a capacity drop "
        f"({c_before:g} -> {c_after:g} pkt/s on AP1)",
        ["algorithm", "settling time (s)", "mp rate before", "mp rate after"])
    for algorithm in algorithms:
        before_net, rules = _two_ap_network(c_before, 800.0)
        rules[0] = algorithm
        warm = integrate(before_net, rules, t_end=t_converge, dt=dt)
        x0 = warm.tail_average()
        after_net, rules_after = _two_ap_network(c_after, 800.0)
        rules_after[0] = algorithm
        settled = integrate(after_net, rules_after, t_end=t_measure,
                            dt=dt, x0=x0)
        mp_before = float(np.sum(x0[:2]))
        mp_after = float(np.sum(settled.tail_average()[:2]))
        table.add_row(algorithm, settled.settling_time(rel_tol=rel_tol),
                      mp_before, mp_after)
    table.add_note("OLIA should settle about as fast as LIA (the paper's "
                   "responsiveness claim); both adapt to the new optimum")
    return table


def stability_table(*, algorithm: str = "olia",
                    perturbation_factors=(0.2, 0.5, 2.0, 5.0),
                    t_end: float = 80.0, dt: float = 2e-3,
                    backend: str = "batch") -> ResultTable:
    """Return-to-equilibrium check under large initial perturbations.

    Integrates the dynamics from the equilibrium scaled by each factor
    and reports the relative spread of the final allocations: a small
    spread means every perturbed trajectory returned to the same fixed
    point (numerical evidence of stability).

    ``backend='batch'`` stacks every perturbation factor into one
    :class:`~repro.fluid.BatchFluidIntegrator` run; ``'loop'`` integrates
    them one at a time.  Both produce bitwise-identical tables — the
    batch merely pays the per-step Python overhead once.
    """
    if backend not in ("loop", "batch"):
        raise ValueError(f"unknown backend {backend!r}; use loop or batch")
    net, rules = _two_ap_network(800.0, 800.0)
    rules[0] = algorithm
    reference = integrate(net, rules, t_end=t_end, dt=dt).tail_average()
    table = ResultTable(
        f"Stability - {algorithm.upper()} under initial perturbations",
        ["perturbation factor", "max relative deviation at t_end"])
    scale = max(float(np.max(reference)), 1e-9)
    if not perturbation_factors:
        table.add_note("no perturbation factors given")
        return table
    if backend == "batch":
        nets = [net]
        for _ in perturbation_factors[1:]:
            net_p, _ = _two_ap_network(800.0, 800.0)
            nets.append(net_p)
        x0 = np.stack([reference * factor
                       for factor in perturbation_factors])
        batch = integrate_batch(nets, rules, t_end=t_end, dt=dt, x0=x0)
        tails = batch.tail_average()
        deviations = [float(np.max(np.abs(tails[k] - reference))) / scale
                      for k in range(len(perturbation_factors))]
    else:
        deviations = []
        for factor in perturbation_factors:
            net_p, rules_p = _two_ap_network(800.0, 800.0)
            rules_p[0] = algorithm
            perturbed = integrate(net_p, rules_p, t_end=t_end, dt=dt,
                                  x0=reference * factor)
            deviations.append(float(np.max(
                np.abs(perturbed.tail_average() - reference))) / scale)
    for factor, deviation in zip(perturbation_factors, deviations):
        table.add_row(factor, deviation)
    table.add_note("all rows should be small: trajectories return to the "
                   "same equilibrium from any starting point")
    return table
