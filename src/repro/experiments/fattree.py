"""FatTree throughput experiments: Figures 13(a) and 13(b).

A permutation workload on a k-ary FatTree: every host sends one
long-lived flow to a distinct host, either as regular TCP (one random
path) or as MPTCP with ``n`` subflows on distinct ECMP paths.  Reported
as a percentage of the optimal aggregate (every host saturating its
line rate), which is scale-free — the paper uses 100 Mb/s links, we
default to 10 Mb/s so the pure-Python run stays fast.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..sim.monitors import FlowMeter
from ..topology.fattree import FatTree
from ..units import mbps_to_pps
from .results import ResultTable
from .runner import RunSpec
from .sweep import SWEEP_PENDING, SweepRunner, pending_attr as _field


@dataclass
class FatTreeRun:
    """Outcome of one permutation-workload run."""

    algorithm: str
    n_subflows: int
    k: int
    percent_of_optimal: float
    flow_percents: List[float]     # per-flow, percent of line rate
    core_utilization: float

    def ranked(self) -> List[float]:
        """Per-flow throughputs, worst to best (Fig. 13(b) x-axis)."""
        return sorted(self.flow_percents)


def run_permutation(algorithm: str, *, n_subflows: int = 8, k: int = 8,
                    link_mbps: float = 10.0, duration: float = 3.0,
                    warmup: float = 1.0, seed: int = 1) -> FatTreeRun:
    """One permutation-traffic run; ``algorithm='tcp'`` ignores subflows."""
    sim = Simulator()
    rng = random.Random(seed)
    tree = FatTree(sim, k=k, link_mbps=link_mbps)
    perm = tree.random_permutation(rng)
    flows = {}
    for src in range(tree.n_hosts):
        dst = perm[src]
        if algorithm == "tcp":
            choice = rng.randrange(tree.n_paths(src, dst))
            paths = [tree.path_spec(src, dst, choice)]
            bulk = BulkTransfer(sim, "tcp", paths, name=f"h{src}",
                                start_time=rng.uniform(0, 0.2))
        else:
            paths = tree.distinct_paths(src, dst, n_subflows, rng)
            bulk = BulkTransfer(sim, algorithm, paths, name=f"h{src}",
                                start_time=rng.uniform(0, 0.2))
        bulk.start()
        flows[f"h{src}"] = bulk

    meter = FlowMeter(sim, flows)
    sim.run(until=warmup)
    meter.reset()
    core = tree.core_links()
    for link in core:
        link.stats.reset(sim.now)
    sim.run(until=warmup + duration)

    line_rate = mbps_to_pps(link_mbps)
    per_flow = [100.0 * pps / line_rate
                for pps in meter.goodput_pps().values()]
    total = sum(per_flow) / tree.n_hosts
    used = [link.stats.utilization(sim.now, link.rate_bps)
            for link in core if link.stats.arrivals > 0]
    core_util = sum(used) / len(used) if used else 0.0
    return FatTreeRun(algorithm=algorithm, n_subflows=n_subflows, k=k,
                      percent_of_optimal=total, flow_percents=per_flow,
                      core_utilization=core_util)


def figure13a_table(*, k: int = 8, link_mbps: float = 10.0,
                    duration: float = 3.0, warmup: float = 1.0,
                    subflow_counts=(2, 4, 8), seed: int = 1,
                    algorithms=("lia", "olia"), jobs: int = 1,
                    cache_dir=None, shard=None,
                    claim_ttl=None) -> ResultTable:
    """Figure 13(a): aggregate throughput vs number of subflows.

    Every (algorithm, subflow-count) cell plus the TCP baseline is an
    independent permutation run, dispatched through
    :class:`SweepRunner` (``jobs``/``cache_dir``/``shard`` as usual).
    """
    table = ResultTable(
        "Fig. 13(a) - FatTree permutation: throughput (% of optimal)",
        ["subflows", *[a.upper() for a in algorithms], "TCP"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    specs = [RunSpec.make(run_permutation, algorithm="tcp", k=k,
                          link_mbps=link_mbps, duration=duration,
                          warmup=warmup, seed=seed)]
    specs += [
        RunSpec.make(run_permutation, algorithm=algorithm,
                     n_subflows=n_subflows, k=k, link_mbps=link_mbps,
                     duration=duration, warmup=warmup, seed=seed)
        for n_subflows in subflow_counts
        for algorithm in algorithms]
    runs = runner.run(specs)
    tcp, rest = runs[0], runs[1:]
    n_algos = len(algorithms)
    for cell, n_subflows in enumerate(subflow_counts):
        row = [n_subflows]
        row += [_field(run, "percent_of_optimal")
                for run in rest[n_algos * cell:n_algos * (cell + 1)]]
        row.append(_field(tcp, "percent_of_optimal"))
        table.add_row(*row)
    table.add_note("MPTCP exploits the path diversity; single-path TCP "
                   "collides on ECMP paths and performs poorly")
    return table


def figure13b_table(*, k: int = 8, link_mbps: float = 10.0,
                    duration: float = 3.0, warmup: float = 1.0,
                    n_subflows: int = 8, seed: int = 1,
                    percentiles=(10, 25, 50, 75, 90), jobs: int = 1,
                    cache_dir=None, shard=None,
                    claim_ttl=None) -> ResultTable:
    """Figure 13(b): ranked per-flow throughput, 8 subflows vs TCP.

    The three runs (LIA, OLIA, TCP baseline) are independent, so they
    go through :class:`SweepRunner` like every other grid.
    """
    table = ResultTable(
        "Fig. 13(b) - FatTree: per-flow throughput percentiles "
        "(% of line rate)",
        ["percentile", "LIA", "OLIA", "TCP"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    names = ("LIA", "OLIA", "TCP")
    results = runner.run([
        RunSpec.make(run_permutation, algorithm=name.lower(),
                     **({} if name == "TCP"
                        else {"n_subflows": n_subflows}),
                     k=k, link_mbps=link_mbps, duration=duration,
                     warmup=warmup, seed=seed)
        for name in names])
    runs = dict(zip(names, results))
    for pct in percentiles:
        row = [pct]
        for name in names:
            run = runs[name]
            if run is SWEEP_PENDING:
                row.append(SWEEP_PENDING)
                continue
            ranked = run.ranked()
            index = min(int(len(ranked) * pct / 100), len(ranked) - 1)
            row.append(ranked[index])
        table.add_row(*row)
    table.add_note("LIA and OLIA provide similar fairness, both fairer "
                   "than TCP (steeper low percentiles for TCP)")
    return table
