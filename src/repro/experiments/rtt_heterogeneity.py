"""RTT-heterogeneity experiments (Remark 3 of the paper).

When a user's paths have different RTTs, TCP compatibility forces any
coupled algorithm to prefer low-RTT paths even when they are more
congested, so problems P1/P2 cannot be *fully* avoided; OLIA is "as
close to the optimal as any TCP-compatible algorithm" because it still
uses only the paths maximizing ``sqrt(2/p_r)/rtt_r``.  RTT-insensitive
protocols (Scalable TCP, CUBIC — implemented in :mod:`repro.core`)
escape this constraint.

These experiments sweep the RTT ratio between a multipath user's two
paths and report, at the OLIA/LIA fluid fixed points, where the traffic
lands and what the single-path competitors get.
"""

from __future__ import annotations

import numpy as np

from ..fluid import (
    FluidNetwork,
    SharpLoss,
    solve_fixed_point,
    solve_fixed_point_batch,
    tcp_rate,
)
from .results import ResultTable
from .runner import RunSpec
from .sweep import SweepRunner, pending_row


def _network(rtt1: float, rtt2: float, *, c1: float = 400.0,
             c2: float = 400.0, n_tcp: int = 3):
    """Multipath user on AP1 (rtt1) + AP2 (rtt2), TCP users on both.

    Competition on both links makes both loss probabilities meaningful,
    so the TCP-compatible best-path criterion ``sqrt(2/p)/rtt`` is
    decided by the RTT asymmetry — the situation Remark 3 discusses.
    """
    net = FluidNetwork()
    ap1 = net.add_link(SharpLoss(capacity=c1), name="AP1")
    ap2 = net.add_link(SharpLoss(capacity=c2), name="AP2")
    mp = net.add_user("mp")
    net.add_route(mp, [ap1], rtt=rtt1)
    net.add_route(mp, [ap2], rtt=rtt2)
    rules = {mp: None}
    # The TCP competitors keep the *same* RTT on both links so the sweep
    # isolates the multipath user's path-RTT asymmetry.
    for i in range(n_tcp):
        user = net.add_user(f"tcp1.{i}")
        net.add_route(user, [ap1], rtt=rtt2)
        rules[user] = "tcp"
    for i in range(n_tcp):
        user = net.add_user(f"tcp2.{i}")
        net.add_route(user, [ap2], rtt=rtt2)
        rules[user] = "tcp"
    return net, rules


def rtt_sweep_point(*, algorithm: str, base_rtt: float, ratio: float,
                    n_tcp: int) -> tuple:
    """One fixed-point evaluation of the RTT sweep (pure sweep point)."""
    net, rules = _network(base_rtt * ratio, base_rtt, n_tcp=n_tcp)
    rules[0] = algorithm
    result = solve_fixed_point(net, rules, floor_packets=1.0)
    totals = result.user_totals(net)
    return (ratio, float(result.rates[0]), float(result.rates[1]),
            float(totals[1:1 + n_tcp].mean()),
            float(totals[1 + n_tcp:].mean()),
            float(result.link_loss[1]))


def _batch_sweep_rows(*, algorithm: str, base_rtt: float, rtt_ratios,
                      n_tcp: int):
    """All sweep rows from one batched fixed-point solve.

    The per-ratio networks share links/users/routes and differ only in
    RTTs, so the whole grid stacks into a single
    :func:`~repro.fluid.solve_fixed_point_batch` call; each row is
    bitwise-identical to the sequential :func:`rtt_sweep_point` result.
    """
    networks = []
    rules = None
    for ratio in rtt_ratios:
        net, point_rules = _network(base_rtt * ratio, base_rtt,
                                    n_tcp=n_tcp)
        point_rules[0] = algorithm
        networks.append(net)
        rules = point_rules
    batch = solve_fixed_point_batch(networks, rules, floor_packets=1.0)
    rows = []
    for k, ratio in enumerate(rtt_ratios):
        result = batch.result(k)
        totals = result.user_totals(networks[k])
        rows.append((ratio, float(result.rates[0]), float(result.rates[1]),
                     float(totals[1:1 + n_tcp].mean()),
                     float(totals[1 + n_tcp:].mean()),
                     float(result.link_loss[1])))
    return rows


def rtt_sweep_table(*, algorithm: str = "olia", base_rtt: float = 0.1,
                    rtt_ratios=(0.25, 0.5, 1.0, 2.0, 4.0),
                    n_tcp: int = 3, jobs: int = 1, cache_dir=None,
                    shard=None, claim_ttl=None,
                    backend: str = "loop") -> ResultTable:
    """Fluid fixed point as AP1's RTT varies relative to AP2's.

    With a *small* RTT on AP1, the TCP-compatible best-path criterion
    ``sqrt(2/p)/rtt`` favours AP1 strongly (good: it is also the less
    congested link).  With a *large* RTT on AP1, the criterion pushes
    traffic towards the congested AP2 even though AP1 has free capacity
    — the residual unfairness Remark 3 attributes to TCP compatibility.

    ``backend="batch"`` stacks the pending ratio points into one
    :func:`~repro.fluid.solve_fixed_point_batch` call (the K networks
    share a topology and differ only in RTTs); ``backend="loop"`` goes
    point-by-point, optionally over a ``jobs``-wide pool.  Both
    backends run through :class:`SweepRunner`, so ``cache_dir`` and
    ``shard`` compose with either, the cache entries are
    interchangeable, and the rows are bitwise-identical.  (``jobs`` is
    a no-op under ``batch``: the whole batch is one vectorized call.)
    """
    table = ResultTable(
        f"RTT heterogeneity - {algorithm.upper()} fixed point "
        "(AP1 rtt = ratio * AP2 rtt, TCP users on both APs)",
        ["rtt1/rtt2", "mp rate on AP1", "mp rate on AP2",
         "tcp@AP1 rate", "tcp@AP2 rate", "p2"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    specs = [RunSpec.make(rtt_sweep_point, algorithm=algorithm,
                          base_rtt=base_rtt, ratio=ratio, n_tcp=n_tcp)
             for ratio in rtt_ratios]
    if backend == "batch":
        def solve_pending(pending):
            ratios = [dict(spec.kwargs)["ratio"] for spec in pending]
            return _batch_sweep_rows(algorithm=algorithm,
                                     base_rtt=base_rtt,
                                     rtt_ratios=ratios, n_tcp=n_tcp)

        rows = runner.run_batched(specs, solve_pending)
    elif backend == "loop":
        rows = runner.run(specs)
    else:
        raise ValueError(f"unknown backend {backend!r} "
                         "(expected 'loop' or 'batch')")
    for row in rows:
        table.add_row(*pending_row(row, len(table.columns)))
    table.add_note("rising rtt1/rtt2 pushes the TCP-compatible optimum "
                   "towards the shared AP2, squeezing its TCP users")
    return table


def best_path_criterion_table(*, p1: float = 0.005, p2: float = 0.02,
                              rtt2: float = 0.1,
                              rtt_ratios=(0.25, 0.5, 1.0, 2.0, 4.0)
                              ) -> ResultTable:
    """Theorem 1's path selection under RTT asymmetry (pure formula).

    Path 1 is less lossy (p1 < p2); the table shows for which RTT ratios
    ``sqrt(2/p1)/rtt1`` still beats ``sqrt(2/p2)/rtt2`` — i.e. when a
    TCP-compatible Pareto-optimal algorithm is allowed to use the clean
    path.
    """
    table = ResultTable(
        "Best-path criterion sqrt(2/p)/rtt under RTT asymmetry",
        ["rtt1/rtt2", "rate path1 (pkt/s)", "rate path2 (pkt/s)",
         "best path"])
    for ratio in rtt_ratios:
        rate1 = tcp_rate(p1, rtt2 * ratio)
        rate2 = tcp_rate(p2, rtt2)
        table.add_row(ratio, rate1, rate2,
                      "path1" if rate1 >= rate2 else "path2")
    crossover = float(np.sqrt(p2 / p1))
    table.add_note(f"crossover at rtt1/rtt2 = sqrt(p2/p1) = "
                   f"{crossover:.2f}: beyond it the clean path loses")
    return table
