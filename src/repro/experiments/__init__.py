"""Experiment runners regenerating every table and figure of the paper."""

from . import (
    ablation,
    algorithms,
    calibration,
    fattree,
    responsiveness,
    rtt_heterogeneity,
    scale,
    scenario_a,
    scenario_b,
    scenario_c,
    shortflows,
    traces,
)
from .results import ResultTable
from .runner import (
    MeasureResult,
    RepeatedStat,
    RunSpec,
    measure,
    repeat,
    staggered_starts,
    summarize_samples,
)
from .sweep import SweepRunner

__all__ = [
    "RunSpec",
    "SweepRunner",
    "algorithms",
    "scenario_a",
    "scenario_b",
    "scenario_c",
    "traces",
    "fattree",
    "shortflows",
    "ablation",
    "responsiveness",
    "rtt_heterogeneity",
    "calibration",
    "scale",
    "ResultTable",
    "measure",
    "MeasureResult",
    "repeat",
    "RepeatedStat",
    "summarize_samples",
    "staggered_starts",
]
