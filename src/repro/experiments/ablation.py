"""Ablation studies for the design choices DESIGN.md calls out.

1. **epsilon-family trade-off** (Section II): the fixed points of
   ``x_r ~ p_r**(-1/eps)`` on the scenario C network show how congestion
   balancing degrades from full resource pooling (eps -> 0, OLIA-like)
   to TCP-like spreading (eps = 2), with LIA stuck at eps = 1.
2. **OLIA's alpha term**: the fully coupled controller (OLIA minus
   alpha) is Pareto-optimal but flappy; we quantify flappiness as the
   window-imbalance flip count on the symmetric two-path scenario.
3. **RED vs drop-tail**: scenario C measured with both queue
   disciplines — the qualitative LIA/OLIA gap must survive the queue
   choice (the paper uses RED on the testbed, drop-tail in htsim).

All three are parameter sweeps of pure point functions, dispatched
through :class:`~repro.experiments.sweep.SweepRunner` so they can run on
a worker pool (``jobs=N``) without changing any number in the tables.
"""

from __future__ import annotations

from ..fluid import (
    FluidNetwork,
    SharpLoss,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from ..core.registry import make_allocation_rule
from ..fluid.equilibrium import PerPointEpsilonRule
from ..units import mbps_to_pps
from .results import ResultTable
from .runner import RunSpec
from .sweep import SWEEP_PENDING, SweepRunner, pending_row
from .traces import run_two_path_trace


def _epsilon_network(*, n1: int, n2: int, c1_mbps: float, c2_mbps: float,
                     rtt: float) -> FluidNetwork:
    """The scenario C network every epsilon point shares."""
    net = FluidNetwork()
    ap1 = net.add_link(SharpLoss(capacity=n1 * mbps_to_pps(c1_mbps)))
    ap2 = net.add_link(SharpLoss(capacity=n2 * mbps_to_pps(c2_mbps)))
    for i in range(n1):
        user = net.add_user(f"mp{i}")
        net.add_route(user, [ap1], rtt=rtt)
        net.add_route(user, [ap2], rtt=rtt)
    for i in range(n2):
        user = net.add_user(f"sp{i}")
        net.add_route(user, [ap2], rtt=rtt)
    return net


def _epsilon_row(epsilon: float, result, n1: int, n2: int,
                 net: FluidNetwork) -> tuple:
    """Assemble one table row from a per-point fixed-point result."""
    totals = result.user_totals(net)
    mp_rate = float(totals[:n1].mean())
    sp_rate = float(totals[n1:].mean())
    # Multipath traffic crossing AP2: every odd route of mp users.
    mp_ap2 = sum(result.rates[2 * i + 1] for i in range(n1))
    ap2_total = mp_ap2 + sum(
        result.rates[2 * n1 + i] for i in range(n2))
    return (epsilon, mp_rate, sp_rate, float(result.link_loss[1]),
            100.0 * mp_ap2 / ap2_total)


def epsilon_sweep_point(*, epsilon: float, n1: int, n2: int,
                        c1_mbps: float, c2_mbps: float,
                        rtt: float) -> tuple:
    """Fixed point of one epsilon value on the scenario C network."""
    net = _epsilon_network(n1=n1, n2=n2, c1_mbps=c1_mbps,
                           c2_mbps=c2_mbps, rtt=rtt)
    mp_rule = make_allocation_rule("epsilon", epsilon=epsilon) \
        if epsilon > 0 else make_allocation_rule("olia")
    rules = {user: (mp_rule if user < n1 else make_allocation_rule("tcp"))
             for user in range(n1 + n2)}
    result = solve_fixed_point(net, rules, floor_packets=1.0)
    return _epsilon_row(epsilon, result, n1, n2, net)


def _epsilon_batch_rows(epsilons, *, n1: int, n2: int, c1_mbps: float,
                        c2_mbps: float, rtt: float) -> list:
    """All epsilon rows from (at most) two batched fixed-point solves.

    Every point shares the scenario C topology, so the grid stacks into
    :func:`~repro.fluid.solve_fixed_point_batch` with a
    :class:`~repro.fluid.equilibrium.PerPointEpsilonRule` carrying one
    epsilon per point.  ``epsilon = 0`` points use the OLIA rule (a
    structurally different formula), so they batch separately; each row
    is bitwise-identical to the sequential :func:`epsilon_sweep_point`.
    """
    epsilons = list(epsilons)
    if any(e < 0 for e in epsilons):
        # Same validation (and exception type) as the loop backend's
        # epsilon_family_allocation call.
        raise ValueError("epsilon must be non-negative")
    rows = {}
    groups = [([e for e in epsilons if e > 0], "eps"),
              ([e for e in epsilons if e == 0], "olia")]
    for group, kind in groups:
        if not group:
            continue
        networks = [_epsilon_network(n1=n1, n2=n2, c1_mbps=c1_mbps,
                                     c2_mbps=c2_mbps, rtt=rtt)
                    for _ in group]
        mp_rule = (PerPointEpsilonRule(group) if kind == "eps"
                   else make_allocation_rule("olia"))
        rules = {user: (mp_rule if user < n1
                        else make_allocation_rule("tcp"))
                 for user in range(n1 + n2)}
        batch = solve_fixed_point_batch(networks, rules,
                                        floor_packets=1.0)
        for k, epsilon in enumerate(group):
            rows[epsilon] = _epsilon_row(epsilon, batch.result(k),
                                         n1, n2, networks[k])
    return [rows[epsilon] for epsilon in epsilons]


def epsilon_sweep_table(*, n1: int = 10, n2: int = 10,
                        c1_mbps: float = 1.0, c2_mbps: float = 1.0,
                        rtt: float = 0.15,
                        epsilons=(0.0, 0.5, 1.0, 1.5, 2.0),
                        jobs: int = 1, cache_dir=None,
                        shard=None, claim_ttl=None,
                        backend: str = "loop") -> ResultTable:
    """Fixed points of the epsilon-family on the scenario C network.

    ``backend="batch"`` solves all pending epsilon points in one
    :func:`~repro.fluid.solve_fixed_point_batch` call per rule family
    (per-point epsilons ride a
    :class:`~repro.fluid.equilibrium.PerPointEpsilonRule`); ``"loop"``
    goes point-by-point, optionally over a ``jobs``-wide pool.  Both run
    through :class:`SweepRunner` — ``cache_dir``/``shard`` compose with
    either, and the rows are bitwise-identical.
    """
    if any(e < 0 for e in epsilons):
        # Validate up front on both backends: the loop point function
        # would silently treat a negative as OLIA (its eps > 0 test)
        # and the batch grouping would KeyError at row assembly.
        raise ValueError("epsilon must be non-negative")
    table = ResultTable(
        "Ablation - epsilon-family on scenario C "
        "(eps=0 ~ OLIA, eps=1 ~ LIA, eps=2 ~ uncoupled)",
        ["epsilon", "mp rate (pkt/s)", "sp rate (pkt/s)", "p2",
         "mp share of AP2 (%)"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    specs = [RunSpec.make(epsilon_sweep_point, epsilon=epsilon, n1=n1,
                          n2=n2, c1_mbps=c1_mbps, c2_mbps=c2_mbps,
                          rtt=rtt)
             for epsilon in epsilons]
    if backend == "batch":
        def solve_pending(pending):
            eps = [dict(spec.kwargs)["epsilon"] for spec in pending]
            return _epsilon_batch_rows(eps, n1=n1, n2=n2,
                                       c1_mbps=c1_mbps,
                                       c2_mbps=c2_mbps, rtt=rtt)

        rows = runner.run_batched(specs, solve_pending)
    elif backend == "loop":
        rows = runner.run(specs)
    else:
        raise ValueError(f"unknown backend {backend!r} "
                         "(expected 'loop' or 'batch')")
    for row in rows:
        table.add_row(*pending_row(row, len(table.columns)))
    table.add_note("larger epsilon -> more multipath traffic parked on "
                   "the congested AP2 and lower single-path rates")
    return table


def flappiness_point(*, algorithm: str, capacity_mbps: float,
                     duration: float, seed: int) -> tuple:
    """One seeded DES run of the alpha-term ablation."""
    trace = run_two_path_trace(algorithm, competing=(5, 5),
                               capacity_mbps=capacity_mbps,
                               duration=duration, seed=seed)
    w1, w2 = trace.mean_windows
    tail = trace.windows[len(trace.windows) // 4:]
    onesided = sum(
        1 for a, b in tail
        if a + b > 0 and abs(a - b) / (a + b) > 0.6) / len(tail)
    return (w1, w2, trace.window_imbalance(), onesided)


def flappiness_table(*, capacity_mbps: float = 10.0,
                     duration: float = 90.0,
                     seeds=(1, 2, 3), jobs: int = 1,
                     cache_dir=None, shard=None,
                     claim_ttl=None) -> ResultTable:
    """OLIA vs the alpha-less coupled controller on symmetric paths.

    The coupled controller concentrates its window on one path and flips
    between them (flappiness); OLIA's alpha term keeps both windows up.
    Results are averaged over ``seeds`` because individual runs are
    noisy at these window sizes.
    """
    table = ResultTable(
        "Ablation - the role of OLIA's alpha term (symmetric two-path, "
        f"mean over {len(seeds)} seeds)",
        ["algorithm", "w1", "w2", "imbalance", "one-sided frac"])
    algorithms = ("olia", "coupled")
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    samples = runner.run([
        RunSpec.make(flappiness_point, algorithm=algorithm,
                     capacity_mbps=capacity_mbps, duration=duration,
                     seed=seed)
        for algorithm in algorithms for seed in seeds])
    n_seeds = len(seeds)
    for group, algorithm in enumerate(algorithms):
        runs = samples[group * n_seeds:(group + 1) * n_seeds]
        if any(run is SWEEP_PENDING for run in runs):
            table.add_row(algorithm, *(SWEEP_PENDING,) * 4)
            continue
        means = [sum(run[i] for run in runs) / n_seeds for i in range(4)]
        table.add_row(algorithm, *means)
    table.add_note("without alpha the window imbalance grows: the "
                   "fully coupled rule starves one of two equal paths")
    return table


def queue_discipline_point(*, queue: str, algorithm: str, n1: int, n2: int,
                           c1_mbps: float, c2_mbps: float, duration: float,
                           warmup: float, seed: int) -> tuple:
    """One scenario C run under a given queue discipline."""
    from .scenario_c import simulate
    run = simulate(algorithm, n1=n1, n2=n2, c1_mbps=c1_mbps,
                   c2_mbps=c2_mbps, duration=duration,
                   warmup=warmup, seed=seed, queue=queue)
    return (queue, algorithm, run.singlepath_normalized, run.p2)


def queue_discipline_table(*, n1: int = 10, n2: int = 10,
                           c1_mbps: float = 1.0, c2_mbps: float = 1.0,
                           duration: float = 30.0, warmup: float = 15.0,
                           seed: int = 1, jobs: int = 1,
                           cache_dir=None, shard=None,
                           claim_ttl=None) -> ResultTable:
    """Scenario C under RED (testbed) and drop-tail (htsim) queues."""
    table = ResultTable(
        "Ablation - queue discipline: scenario C, N1=N2, C1=C2",
        ["queue", "algorithm", "sp normalized", "p2"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    rows = runner.run([
        RunSpec.make(queue_discipline_point, queue=queue,
                     algorithm=algorithm, n1=n1, n2=n2, c1_mbps=c1_mbps,
                     c2_mbps=c2_mbps, duration=duration, warmup=warmup,
                     seed=seed)
        for queue in ("red", "droptail")
        for algorithm in ("lia", "olia")])
    for row in rows:
        table.add_row(*pending_row(row, len(table.columns)))
    table.add_note("the OLIA > LIA ordering for single-path users holds "
                   "under both disciplines")
    return table
