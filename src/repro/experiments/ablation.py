"""Ablation studies for the design choices DESIGN.md calls out.

1. **epsilon-family trade-off** (Section II): the fixed points of
   ``x_r ~ p_r**(-1/eps)`` on the scenario C network show how congestion
   balancing degrades from full resource pooling (eps -> 0, OLIA-like)
   to TCP-like spreading (eps = 2), with LIA stuck at eps = 1.
2. **OLIA's alpha term**: the fully coupled controller (OLIA minus
   alpha) is Pareto-optimal but flappy; we quantify flappiness as the
   window-imbalance flip count on the symmetric two-path scenario.
3. **RED vs drop-tail**: scenario C measured with both queue
   disciplines — the qualitative LIA/OLIA gap must survive the queue
   choice (the paper uses RED on the testbed, drop-tail in htsim).
"""

from __future__ import annotations

from ..fluid import FluidNetwork, SharpLoss, solve_fixed_point
from ..fluid.equilibrium import allocation_rule
from ..units import mbps_to_pps
from .results import ResultTable
from .traces import run_two_path_trace


def epsilon_sweep_table(*, n1: int = 10, n2: int = 10,
                        c1_mbps: float = 1.0, c2_mbps: float = 1.0,
                        rtt: float = 0.15,
                        epsilons=(0.0, 0.5, 1.0, 1.5, 2.0)) -> ResultTable:
    """Fixed points of the epsilon-family on the scenario C network."""
    table = ResultTable(
        "Ablation - epsilon-family on scenario C "
        "(eps=0 ~ OLIA, eps=1 ~ LIA, eps=2 ~ uncoupled)",
        ["epsilon", "mp rate (pkt/s)", "sp rate (pkt/s)", "p2",
         "mp share of AP2 (%)"])
    for epsilon in epsilons:
        net = FluidNetwork()
        ap1 = net.add_link(SharpLoss(capacity=n1 * mbps_to_pps(c1_mbps)))
        ap2 = net.add_link(SharpLoss(capacity=n2 * mbps_to_pps(c2_mbps)))
        rules = {}
        for i in range(n1):
            user = net.add_user(f"mp{i}")
            net.add_route(user, [ap1], rtt=rtt)
            net.add_route(user, [ap2], rtt=rtt)
            rules[user] = allocation_rule("epsilon", epsilon=epsilon) \
                if epsilon > 0 else allocation_rule("olia")
        for i in range(n2):
            user = net.add_user(f"sp{i}")
            net.add_route(user, [ap2], rtt=rtt)
            rules[user] = allocation_rule("tcp")
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        totals = result.user_totals(net)
        mp_rate = float(totals[:n1].mean())
        sp_rate = float(totals[n1:].mean())
        # Multipath traffic crossing AP2: every odd route of mp users.
        mp_ap2 = sum(result.rates[2 * i + 1] for i in range(n1))
        ap2_total = mp_ap2 + sum(
            result.rates[2 * n1 + i] for i in range(n2))
        table.add_row(epsilon, mp_rate, sp_rate,
                      float(result.link_loss[1]),
                      100.0 * mp_ap2 / ap2_total)
    table.add_note("larger epsilon -> more multipath traffic parked on "
                   "the congested AP2 and lower single-path rates")
    return table


def flappiness_table(*, capacity_mbps: float = 10.0,
                     duration: float = 90.0,
                     seeds=(1, 2, 3)) -> ResultTable:
    """OLIA vs the alpha-less coupled controller on symmetric paths.

    The coupled controller concentrates its window on one path and flips
    between them (flappiness); OLIA's alpha term keeps both windows up.
    Results are averaged over ``seeds`` because individual runs are
    noisy at these window sizes.
    """
    table = ResultTable(
        "Ablation - the role of OLIA's alpha term (symmetric two-path, "
        f"mean over {len(seeds)} seeds)",
        ["algorithm", "w1", "w2", "imbalance", "one-sided frac"])
    for algorithm in ("olia", "coupled"):
        w1s, w2s, imbalances, onesided = [], [], [], []
        for seed in seeds:
            trace = run_two_path_trace(algorithm, competing=(5, 5),
                                       capacity_mbps=capacity_mbps,
                                       duration=duration, seed=seed)
            w1, w2 = trace.mean_windows
            w1s.append(w1)
            w2s.append(w2)
            imbalances.append(trace.window_imbalance())
            tail = trace.windows[len(trace.windows) // 4:]
            onesided.append(sum(
                1 for a, b in tail
                if a + b > 0 and abs(a - b) / (a + b) > 0.6) / len(tail))
        n_seeds = len(seeds)
        table.add_row(algorithm, sum(w1s) / n_seeds, sum(w2s) / n_seeds,
                      sum(imbalances) / n_seeds, sum(onesided) / n_seeds)
    table.add_note("without alpha the window imbalance grows: the "
                   "fully coupled rule starves one of two equal paths")
    return table


def queue_discipline_table(*, n1: int = 10, n2: int = 10,
                           c1_mbps: float = 1.0, c2_mbps: float = 1.0,
                           duration: float = 30.0, warmup: float = 15.0,
                           seed: int = 1) -> ResultTable:
    """Scenario C under RED (testbed) and drop-tail (htsim) queues."""
    from .scenario_c import simulate
    table = ResultTable(
        "Ablation - queue discipline: scenario C, N1=N2, C1=C2",
        ["queue", "algorithm", "sp normalized", "p2"])
    for queue in ("red", "droptail"):
        for algorithm in ("lia", "olia"):
            run = simulate(algorithm, n1=n1, n2=n2, c1_mbps=c1_mbps,
                           c2_mbps=c2_mbps, duration=duration,
                           warmup=warmup, seed=seed, queue=queue)
            table.add_row(queue, algorithm, run.singlepath_normalized,
                          run.p2)
    table.add_note("the OLIA > LIA ordering for single-path users holds "
                   "under both disciplines")
    return table
