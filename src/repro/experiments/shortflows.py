"""Dynamic short-flow experiments: Figure 14 and Table III.

A 4:1 oversubscribed FatTree where one third of the hosts send
long-lived flows (TCP, or MPTCP with 8 subflows under LIA/OLIA) and the
remaining hosts send 70 KB TCP transfers with Poisson arrivals (mean
800 ms at the scaled-down link speed, preserving the paper's relative
load of ~2-3% of the host line rate per short-flow host).  Reported:
mean/std short-flow completion time, the FCT
distribution, and core utilization — OLIA matches LIA's utilization
while completing short flows ~10% faster (it yields capacity quicker).
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List

from ..sim.apps import BulkTransfer, ShortFlowSource
from ..sim.engine import Simulator
from ..topology.fattree import FatTree
from .results import ResultTable
from .runner import RunSpec
from .sweep import SWEEP_PENDING, SweepRunner, pending_attr as _field


@dataclass
class ShortFlowRun:
    """Outcome of one dynamic-workload run."""

    algorithm: str
    completion_times: List[float]
    core_utilization: float
    flows_started: int

    @property
    def mean_fct_ms(self) -> float:
        if not self.completion_times:
            return float("nan")
        return 1e3 * statistics.fmean(self.completion_times)

    @property
    def std_fct_ms(self) -> float:
        if len(self.completion_times) < 2:
            return 0.0
        return 1e3 * statistics.stdev(self.completion_times)

    def histogram(self, bin_ms: float = 25.0,
                  max_ms: float = 400.0) -> List[tuple]:
        """(bin start ms, fraction) pairs — the PDF of Fig. 14."""
        if not self.completion_times:
            return []
        n_bins = int(max_ms / bin_ms)
        counts = [0] * (n_bins + 1)
        for fct in self.completion_times:
            index = min(int(fct * 1e3 / bin_ms), n_bins)
            counts[index] += 1
        total = len(self.completion_times)
        return [(i * bin_ms, counts[i] / total)
                for i in range(n_bins + 1)]


def run_dynamic(algorithm: str, *, k: int = 4, link_mbps: float = 40.0,
                oversubscription: float = 4.0, n_subflows: int = 8,
                duration: float = 10.0, warmup: float = 1.0,
                mean_interarrival: float = 0.8, flow_bytes: int = 70_000,
                seed: int = 1) -> ShortFlowRun:
    """One run of the Section VI-B.2 dynamic scenario.

    ``algorithm`` selects the long flows' transport ("tcp", "lia",
    "olia"); short flows always use regular TCP.
    """
    sim = Simulator()
    rng = random.Random(seed)
    tree = FatTree(sim, k=k, link_mbps=link_mbps,
                   oversubscription=oversubscription)
    perm = tree.random_permutation(rng)

    hosts = list(range(tree.n_hosts))
    rng.shuffle(hosts)
    n_long = tree.n_hosts // 3
    long_hosts = hosts[:n_long]
    short_hosts = hosts[n_long:]

    for src in long_hosts:
        dst = perm[src]
        if algorithm == "tcp":
            choice = rng.randrange(tree.n_paths(src, dst))
            paths = [tree.path_spec(src, dst, choice)]
        else:
            paths = tree.distinct_paths(src, dst, n_subflows, rng)
        bulk = BulkTransfer(sim, algorithm if algorithm != "tcp" else "tcp",
                            paths, name=f"long{src}",
                            start_time=rng.uniform(0, 0.2))
        bulk.start()

    sources = []
    for src in short_hosts:
        dst = perm[src]

        def provider(src=src, dst=dst):
            choice = rng.randrange(tree.n_paths(src, dst))
            spec = tree.path_spec(src, dst, choice)
            return spec.links, spec.reverse_delay

        source = ShortFlowSource(sim, rng, provider,
                                 mean_interarrival=mean_interarrival,
                                 flow_bytes=flow_bytes,
                                 name=f"short{src}")
        source.start(warmup * rng.uniform(0.5, 1.0))
        sources.append(source)

    core = tree.core_links()
    sim.run(until=warmup)
    for link in core:
        link.stats.reset(sim.now)
    sim.run(until=warmup + duration)
    for source in sources:
        source.stop()
    sim.run(until=warmup + duration + 2.0)  # drain in-flight shorts

    completion_times = []
    flows_started = 0
    for source in sources:
        completion_times.extend(source.completion_times)
        flows_started += source.flows_started
    used = [link.stats.utilization(warmup + duration, link.rate_bps)
            for link in core if link.stats.arrivals > 0]
    core_util = sum(used) / len(used) if used else 0.0
    return ShortFlowRun(algorithm=algorithm,
                        completion_times=completion_times,
                        core_utilization=core_util,
                        flows_started=flows_started)


def table3(*, k: int = 4, link_mbps: float = 40.0,
           duration: float = 10.0, warmup: float = 1.0,
           n_subflows: int = 8, seed: int = 1,
           algorithms=("lia", "olia", "tcp"), jobs: int = 1,
           cache_dir=None, shard=None,
           claim_ttl=None) -> ResultTable:
    """Table III: short-flow FCT and core utilization per algorithm.

    One independent dynamic run per algorithm, dispatched through
    :class:`SweepRunner` (``jobs``/``cache_dir``/``shard`` as usual).
    """
    table = ResultTable(
        "Table III - dynamic FatTree: short-flow completion times",
        ["long-flow algorithm", "FCT mean (ms)", "FCT std (ms)",
         "core utilization (%)", "short flows"])
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    runs = runner.run([
        RunSpec.make(run_dynamic, algorithm=algorithm, k=k,
                     link_mbps=link_mbps, duration=duration,
                     warmup=warmup, n_subflows=n_subflows, seed=seed)
        for algorithm in algorithms])
    for algorithm, run in zip(algorithms, runs):
        util = (SWEEP_PENDING if run is SWEEP_PENDING
                else 100.0 * run.core_utilization)
        table.add_row(algorithm.upper() if algorithm != "tcp" else
                      "Regular TCP",
                      _field(run, "mean_fct_ms"), _field(run, "std_fct_ms"),
                      util, _field(run, "flows_started"))
    table.add_note("paper: OLIA cuts mean FCT ~10% vs LIA at equal "
                   "utilization; TCP has low FCT but poor utilization")
    return table


def figure14_table(*, k: int = 4, link_mbps: float = 40.0,
                   duration: float = 10.0, warmup: float = 1.0,
                   n_subflows: int = 8, seed: int = 1,
                   bin_ms: float = 50.0, max_ms: float = 400.0,
                   jobs: int = 1, cache_dir=None,
                   shard=None, claim_ttl=None) -> ResultTable:
    """Figure 14: distribution of short-flow completion times.

    The three runs (LIA, OLIA, TCP) are independent and share their
    cache entries with :func:`table3` when the parameters match.
    """
    table = ResultTable(
        "Fig. 14 - short-flow completion-time distribution (fraction)",
        ["FCT bin (ms)", "LIA", "OLIA", "TCP"])
    algorithms = ("lia", "olia", "tcp")
    runner = SweepRunner(jobs=jobs, cache_dir=cache_dir, shard=shard,
                         claim_ttl=claim_ttl)
    runs = runner.run([
        RunSpec.make(run_dynamic, algorithm=algorithm, k=k,
                     link_mbps=link_mbps, duration=duration,
                     warmup=warmup, n_subflows=n_subflows, seed=seed)
        for algorithm in algorithms])
    hists = {
        algorithm: (None if run is SWEEP_PENDING
                    else dict(run.histogram(bin_ms=bin_ms, max_ms=max_ms)))
        for algorithm, run in zip(algorithms, runs)}
    n_bins = int(max_ms / bin_ms)
    for start in (i * bin_ms for i in range(n_bins + 1)):
        table.add_row(start, *(
            SWEEP_PENDING if hists[a] is None else hists[a].get(start, 0.0)
            for a in algorithms))
    table.add_note("OLIA shifts the distribution left relative to LIA "
                   "(faster completions for both fast and slow flows)")
    return table
