"""Result containers and paper-style table rendering.

Every experiment returns a :class:`ResultTable` whose ``__str__`` prints
the same rows/series the paper reports, so benchmark runs regenerate the
tables and figure series directly on stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class ResultTable:
    """A titled table with named columns."""

    title: str
    columns: List[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def column(self, name: str) -> List[Any]:
        """All values of one column, by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000:
                return f"{value:.0f}"
            if abs(value) >= 1:
                return f"{value:.3g}"
            return f"{value:.3g}"
        return str(value)

    def __str__(self) -> str:
        cells = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [len(c) for c in self.columns]
        for row in cells:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        sep = "-+-".join("-" * w for w in widths)
        lines = [self.title,
                 " | ".join(c.ljust(w)
                            for c, w in zip(self.columns, widths)),
                 sep]
        for row in cells:
            lines.append(" | ".join(c.ljust(w)
                                    for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"  note: {note}")
        return "\n".join(lines)
