"""Shared plumbing for simulation experiments: warmup, measure, repeat.

The paper's testbed methodology runs each Iperf session for 120 s, lets
flows reach equilibrium, and reports averages over 5 runs with random
flow start order.  ``measure`` mirrors that: random staggered starts,
a warmup period excluded from every statistic, then a measurement
window over which goodputs and loss probabilities are averaged.
"""

from __future__ import annotations

import hashlib
import math
import random
import statistics
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.monitors import FlowMeter


@dataclass
class MeasureResult:
    """Goodputs (pkt/s) and per-link loss probabilities for one run."""

    goodput_pps: Dict[str, float]
    link_loss: Dict[str, float]
    link_utilization: Dict[str, float]
    duration: float

    def group_mean(self, prefix: str) -> float:
        """Mean goodput over flows whose name starts with ``prefix``."""
        values = [v for k, v in self.goodput_pps.items()
                  if k.startswith(prefix)]
        if not values:
            raise KeyError(f"no flows with prefix {prefix!r}")
        return sum(values) / len(values)


def staggered_starts(rng: random.Random, n_flows: int,
                     spread: float = 1.0) -> List[float]:
    """Random flow start times in ``[0, spread)`` (random Iperf order)."""
    return [rng.uniform(0.0, spread) for _ in range(n_flows)]


def measure(sim: Simulator, flows: Dict[str, object],
            links: Sequence[Link], *, warmup: float,
            duration: float) -> MeasureResult:
    """Run ``warmup`` then measure goodput/losses for ``duration``.

    ``flows`` maps names to objects with an ``acked_packets`` attribute;
    flows must already be started.
    """
    if warmup < 0 or duration <= 0:
        raise ValueError("need warmup >= 0 and duration > 0")
    if warmup >= duration:
        raise ValueError(
            f"warmup ({warmup}s) must be smaller than the measurement "
            f"duration ({duration}s) — a warmup at least as long as the "
            "window almost always means swapped or mis-scaled arguments "
            "and yields statistics over too few samples to mean anything")
    meter = FlowMeter(sim, flows)
    sim.run(until=sim.now + warmup)
    meter.reset()
    for link in links:
        link.stats.reset(sim.now)
    sim.run(until=sim.now + duration)
    return MeasureResult(
        goodput_pps=meter.goodput_pps(),
        link_loss={link.name: link.stats.loss_probability
                   for link in links},
        link_utilization={
            link.name: link.stats.utilization(sim.now, link.rate_bps)
            for link in links},
        duration=duration)


@dataclass(frozen=True)
class RunSpec:
    """Pure-function run descriptor: a picklable, hashable experiment point.

    A sweep point is fully described by a module-level callable, its
    keyword arguments (stored as a sorted tuple so two specs with the
    same content compare and hash equal) and an optional deterministic
    seed.  Because the description is pure data, points can be shipped to
    worker processes and their results cached by content hash.
    """

    fn: Callable[..., Any]
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    seed: Optional[int] = None

    @classmethod
    def make(cls, fn: Callable[..., Any], *, seed: Optional[int] = None,
             **kwargs: Any) -> "RunSpec":
        """Build a spec from a callable and plain keyword arguments."""
        if fn.__name__ == "<lambda>" or fn.__qualname__ != fn.__name__:
            raise ValueError(
                "RunSpec needs a module-level function (picklable by "
                f"reference); got {fn.__qualname__!r}")
        return cls(fn=fn, kwargs=tuple(sorted(kwargs.items())), seed=seed)

    def execute(self) -> Any:
        """Run the point in-process and return its result."""
        kwargs = dict(self.kwargs)
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return self.fn(**kwargs)

    def content_hash(self) -> str:
        """Stable digest of (function identity+bytecode, arguments, seed).

        Used as the result-cache key.  Hashing the function's bytecode
        invalidates cached results when the point function itself is
        edited; changes in functions it *calls* are not covered, so wipe
        the cache directory after refactoring shared helpers.  Argument
        values are hashed via ``repr``, which is stable for the plain
        scalars/strings/tuples sweeps are built from.
        """
        code = getattr(self.fn, "__code__", None)
        bytecode = code.co_code if code is not None else b""
        payload = "|".join((self.fn.__module__, self.fn.__qualname__,
                            repr(self.kwargs), repr(self.seed))).encode()
        return hashlib.sha256(payload + b"|" + bytecode).hexdigest()

    def derived_seed(self, base_seed: int = 0) -> int:
        """Deterministic per-point seed from the spec content.

        Independent of the point's position in the sweep, so inserting or
        reordering points never reshuffles the randomness of the others.
        """
        payload = f"{base_seed}|{self.fn.__module__}.{self.fn.__qualname__}" \
                  f"|{self.kwargs!r}"
        digest = hashlib.sha256(payload.encode()).digest()
        return int.from_bytes(digest[:4], "big")


@dataclass
class RepeatedStat:
    """Mean and 95% confidence interval over repeated runs."""

    mean: float
    half_width: float    # 95% CI half-width (Student t)
    samples: List[float]

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


#: Two-sided 95% Student-t quantiles for small sample counts
#: (index = degrees of freedom); enough for the paper's 5-run protocol.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def summarize_samples(samples: Sequence[float]) -> RepeatedStat:
    """Mean ± 95% CI of a list of per-run measurements."""
    values = list(samples)
    if not values:
        raise ValueError("need at least one sample")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return RepeatedStat(mean=mean, half_width=0.0, samples=values)
    dof = len(values) - 1
    t_quantile = _T95.get(dof, 1.96)
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    return RepeatedStat(mean=mean, half_width=t_quantile * stderr,
                        samples=values)


def repeat(run_fn: Callable[[int], Dict[str, float]], *,
           repetitions: int = 5,
           base_seed: int = 1) -> Dict[str, RepeatedStat]:
    """Run an experiment ``repetitions`` times and summarise each metric.

    ``run_fn(seed)`` must return a flat ``{metric: value}`` dict; the
    paper's testbed protocol (5 measurements, random flow order, 95%
    confidence intervals) corresponds to the defaults.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    per_metric: Dict[str, List[float]] = {}
    for i in range(repetitions):
        result = run_fn(base_seed + i)
        for metric, value in result.items():
            per_metric.setdefault(metric, []).append(float(value))
    return {metric: summarize_samples(values)
            for metric, values in per_metric.items()}
