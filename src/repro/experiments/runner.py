"""Shared plumbing for simulation experiments: warmup, measure, repeat.

The paper's testbed methodology runs each Iperf session for 120 s, lets
flows reach equilibrium, and reports averages over 5 runs with random
flow start order.  ``measure`` mirrors that: random staggered starts,
a warmup period excluded from every statistic, then a measurement
window over which goodputs and loss probabilities are averaged.
"""

from __future__ import annotations

import math
import random
import statistics
from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from ..sim.engine import Simulator
from ..sim.link import Link
from ..sim.monitors import FlowMeter


@dataclass
class MeasureResult:
    """Goodputs (pkt/s) and per-link loss probabilities for one run."""

    goodput_pps: Dict[str, float]
    link_loss: Dict[str, float]
    link_utilization: Dict[str, float]
    duration: float

    def group_mean(self, prefix: str) -> float:
        """Mean goodput over flows whose name starts with ``prefix``."""
        values = [v for k, v in self.goodput_pps.items()
                  if k.startswith(prefix)]
        if not values:
            raise KeyError(f"no flows with prefix {prefix!r}")
        return sum(values) / len(values)


def staggered_starts(rng: random.Random, n_flows: int,
                     spread: float = 1.0) -> List[float]:
    """Random flow start times in ``[0, spread)`` (random Iperf order)."""
    return [rng.uniform(0.0, spread) for _ in range(n_flows)]


def measure(sim: Simulator, flows: Dict[str, object],
            links: Sequence[Link], *, warmup: float,
            duration: float) -> MeasureResult:
    """Run ``warmup`` then measure goodput/losses for ``duration``.

    ``flows`` maps names to objects with an ``acked_packets`` attribute;
    flows must already be started.
    """
    if warmup < 0 or duration <= 0:
        raise ValueError("need warmup >= 0 and duration > 0")
    meter = FlowMeter(sim, flows)
    sim.run(until=sim.now + warmup)
    meter.reset()
    for link in links:
        link.stats.reset(sim.now)
    sim.run(until=sim.now + duration)
    return MeasureResult(
        goodput_pps=meter.goodput_pps(),
        link_loss={link.name: link.stats.loss_probability
                   for link in links},
        link_utilization={
            link.name: link.stats.utilization(sim.now, link.rate_bps)
            for link in links},
        duration=duration)


@dataclass
class RepeatedStat:
    """Mean and 95% confidence interval over repeated runs."""

    mean: float
    half_width: float    # 95% CI half-width (Student t)
    samples: List[float]

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.half_width:.2g}"


#: Two-sided 95% Student-t quantiles for small sample counts
#: (index = degrees of freedom); enough for the paper's 5-run protocol.
_T95 = {1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
        7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228}


def summarize_samples(samples: Sequence[float]) -> RepeatedStat:
    """Mean ± 95% CI of a list of per-run measurements."""
    values = list(samples)
    if not values:
        raise ValueError("need at least one sample")
    mean = statistics.fmean(values)
    if len(values) < 2:
        return RepeatedStat(mean=mean, half_width=0.0, samples=values)
    dof = len(values) - 1
    t_quantile = _T95.get(dof, 1.96)
    stderr = statistics.stdev(values) / math.sqrt(len(values))
    return RepeatedStat(mean=mean, half_width=t_quantile * stderr,
                        samples=values)


def repeat(run_fn: Callable[[int], Dict[str, float]], *,
           repetitions: int = 5,
           base_seed: int = 1) -> Dict[str, RepeatedStat]:
    """Run an experiment ``repetitions`` times and summarise each metric.

    ``run_fn(seed)`` must return a flat ``{metric: value}`` dict; the
    paper's testbed protocol (5 measurements, random flow order, 95%
    confidence intervals) corresponds to the defaults.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    per_metric: Dict[str, List[float]] = {}
    for i in range(repetitions):
        result = run_fn(base_seed + i)
        for metric, value in result.items():
            per_metric.setdefault(metric, []).append(float(value))
    return {metric: summarize_samples(values)
            for metric, values in per_metric.items()}
