"""The ``python -m repro algorithms`` verb: registry inspection + smoke.

Two entry points:

* :func:`layer_support_table` — one row per registered
  :class:`~repro.core.registry.AlgorithmSpec` showing its aliases, the
  capability flags (which of the packet / fluid / equilibrium / smt
  layers it implements) and its declared parameters.
* :func:`smoke_check` — the CI algorithm matrix: every registered
  algorithm is driven through a tiny scenario-A workload once per layer
  it supports (a short packet-level DES run, a short fluid integration,
  an equilibrium fixed-point solve, and — with z3 installed — an SMT
  fixed-point certification cross-checked against the equilibrium
  rule), proving each spec is actually *runnable*, not just registered.
  Layers a spec lacks — or cannot build without caller-supplied
  parameters, like CUBIC's clock — are reported as skipped, mirroring
  the capability-flag skips of the cross-layer consistency suite in
  ``tests/``.  A declared capability that fails to *construct* (a
  factory raising ``KeyError``/``TypeError`` at build time) is a FAIL
  cell naming the spec and layer, never an exception out of the matrix.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from ..core.registry import (
    LAYERS,
    AlgorithmSpec,
    SchedulerSpec,
    algorithm_specs,
    scheduler_specs,
)
from ..fluid import FluidNetwork, SharpLoss, integrate, solve_fixed_point
from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..topology.scenarios import build_scenario_a
from ..units import mbps_to_pps
from ..verify.base import Z3Unavailable
from .results import ResultTable

#: Rendered capability cells.
_YES, _NO = "yes", "-"


def _flag(supported: bool) -> str:
    return _YES if supported else _NO


def _param_summary(spec: AlgorithmSpec) -> str:
    parts = []
    for param in spec.params:
        layers = "all" if param.layers == LAYERS \
            else ",".join(param.layers)
        suffix = "!" if param.required else ""
        parts.append(f"{param.name}{suffix}[{layers}]")
    return " ".join(parts) or "-"


def layer_support_table() -> ResultTable:
    """Every registered algorithm and the layers it implements.

    Parameters are rendered as ``name[layers]`` with a trailing ``!``
    for required ones (e.g. CUBIC's ``clock!``).
    """
    table = ResultTable(
        "Algorithm registry - per-layer support",
        ["algorithm", "aliases", "packet", "fluid", "equilibrium",
         "smt", "params", "description"])
    for spec in algorithm_specs():
        table.add_row(spec.name, ",".join(spec.aliases) or "-",
                      _flag(spec.has_packet), _flag(spec.has_fluid),
                      _flag(spec.has_equilibrium), _flag(spec.has_smt),
                      _param_summary(spec),
                      spec.description or "-")
    table.add_note("a '!' marks a required parameter; such layers are "
                   "skipped by the smoke matrix and the consistency suite")
    return table


def scheduler_support_table() -> ResultTable:
    """Every registered packet scheduler (the registry's second axis)."""
    table = ResultTable(
        "Scheduler registry - packet schedulers (orthogonal axis)",
        ["scheduler", "aliases", "mode", "params", "description"])
    for spec in scheduler_specs():
        if any(param.required for param in spec.params):
            mode = "?"           # cannot build without caller parameters
        else:
            mode = ("duplicate" if spec.make().duplicates
                    else "partition")
        params = " ".join(
            f"{param.name}{'!' if param.required else ''}"
            for param in spec.params) or "-"
        table.add_row(spec.name, ",".join(spec.aliases) or "-", mode,
                      params, spec.description or "-")
    table.add_note("mode: partition stripes the stream across subflows, "
                   "duplicate sends every packet on all of them")
    return table


@dataclass
class LayerCheck:
    """Outcome of one (algorithm, layer) smoke cell."""

    algorithm: str
    layer: str
    status: str                  # "ok", "skip" or "FAIL"
    detail: str


@dataclass
class SchedulerCheck:
    """Outcome of one (scheduler, algorithm) smoke cell."""

    scheduler: str
    algorithm: str
    status: str                  # "ok", "skip" or "FAIL"
    detail: str


def _check_scheduler_cell(sched_spec: SchedulerSpec,
                          algo_spec: AlgorithmSpec, *,
                          size_packets: int,
                          horizon: float) -> SchedulerCheck:
    """One scheduler × CC cell: a finite two-path transfer to completion.

    Scenario-A's multipath legs carry one ``size_packets`` transfer
    striped by the scheduler under the algorithm's coupled controller;
    the cell passes iff the transfer completes within the simulated
    ``horizon`` (a scheduler that strands granted packets or never
    finishes its union is a FAIL, not a hang).
    """
    sim = Simulator()
    rng = random.Random(1)
    topo = build_scenario_a(sim, rng, n1=2, n2=2, c1_mbps=2.0,
                            c2_mbps=2.0)
    done: List[float] = []
    flow = BulkTransfer(sim, algo_spec.name, topo.type1_paths,
                        scheduler=sched_spec.make(),
                        size_packets=size_packets,
                        on_complete=done.append,
                        name=f"{sched_spec.name}-{algo_spec.name}")
    # A background bulk flow keeps the shared bottleneck realistic.
    background = BulkTransfer(sim, "tcp", [topo.type2_path], name="bg")
    flow.start()
    background.start()
    sim.run(until=horizon)
    if not done:
        return SchedulerCheck(
            sched_spec.name, algo_spec.name, "FAIL",
            f"transfer of {size_packets} packets did not complete "
            f"within {horizon:.0f}s simulated "
            f"({flow.acked_packets} acked)")
    return SchedulerCheck(sched_spec.name, algo_spec.name, "ok",
                          f"{size_packets} packets in {done[0]:.2f}s")


def scheduler_smoke_check(*, size_packets: int = 60,
                          horizon: float = 30.0) -> List[SchedulerCheck]:
    """The scheduler × CC matrix: every registered packet scheduler
    crossed with every packet-capable algorithm.

    Cells are ``skip`` when the algorithm lacks the packet layer or
    either spec needs required parameters the harness cannot invent;
    any exception becomes a FAIL cell naming the pair.
    """
    checks: List[SchedulerCheck] = []
    for sched_spec in scheduler_specs():
        sched_required = [param.name for param in sched_spec.params
                          if param.required]
        for algo_spec in algorithm_specs():
            if not algo_spec.has_packet:
                checks.append(SchedulerCheck(
                    sched_spec.name, algo_spec.name, "skip",
                    "algorithm has no packet layer"))
                continue
            required = list(algo_spec.required_params("packet"))
            required += sched_required
            if required:
                checks.append(SchedulerCheck(
                    sched_spec.name, algo_spec.name, "skip",
                    f"requires parameter(s) {', '.join(required)}"))
                continue
            try:
                checks.append(_check_scheduler_cell(
                    sched_spec, algo_spec, size_packets=size_packets,
                    horizon=horizon))
            except Exception as exc:   # the matrix must report, not die
                checks.append(SchedulerCheck(
                    sched_spec.name, algo_spec.name, "FAIL",
                    f"{type(exc).__name__}: {exc}"))
    return checks


def scheduler_check_table(checks: List[SchedulerCheck]) -> ResultTable:
    """Render :func:`scheduler_smoke_check` results."""
    failed = sum(1 for c in checks if c.status == "FAIL")
    table = ResultTable(
        "Scheduler matrix smoke - finite transfer per scheduler x CC"
        + (f"  [{failed} FAILED]" if failed else "  [all ok]"),
        ["scheduler", "algorithm", "status", "detail"])
    for check in checks:
        table.add_row(check.scheduler, check.algorithm, check.status,
                      check.detail)
    return table


def _scenario_a_fluid(n1: int, n2: int, c_mbps: float, rtt: float,
                      algorithm: str):
    """The scenario-A fluid network (type1 multipath, type2 TCP)."""
    net = FluidNetwork()
    server = net.add_link(SharpLoss(capacity=n1 * mbps_to_pps(c_mbps)))
    shared = net.add_link(SharpLoss(capacity=n2 * mbps_to_pps(c_mbps)))
    rules = {}
    for i in range(n1):
        user = net.add_user(f"t1.{i}")
        net.add_route(user, [server], rtt=rtt)
        net.add_route(user, [server, shared], rtt=rtt)
        rules[user] = algorithm
    for i in range(n2):
        user = net.add_user(f"t2.{i}")
        net.add_route(user, [shared], rtt=rtt)
        rules[user] = "tcp"
    return net, rules


def _check_packet(spec: AlgorithmSpec, *, duration: float,
                  warmup: float) -> LayerCheck:
    sim = Simulator()
    rng = random.Random(1)
    topo = build_scenario_a(sim, rng, n1=2, n2=2, c1_mbps=2.0,
                            c2_mbps=2.0)
    flows = [BulkTransfer(sim, spec.name, topo.type1_paths,
                          name=f"mp{i}") for i in range(2)]
    flows += [BulkTransfer(sim, "tcp", [topo.type2_path], name=f"sp{i}")
              for i in range(2)]
    for flow in flows:
        flow.start()
    sim.run(until=warmup + duration)
    acked = sum(flow.acked_packets for flow in flows[:2])
    if acked <= 0:
        return LayerCheck(spec.name, "packet", "FAIL",
                          "multipath flows acked no packets")
    return LayerCheck(spec.name, "packet", "ok", f"{acked} pkts acked")


def _check_fluid(spec: AlgorithmSpec, *, t_end: float) -> LayerCheck:
    net, rules = _scenario_a_fluid(2, 2, 2.0, 0.1, spec.name)
    trajectory = integrate(net, rules, t_end=t_end, dt=2e-3)
    final = trajectory.final_rates
    if not (final >= 0).all() or float(final.sum()) <= 0:
        return LayerCheck(spec.name, "fluid", "FAIL",
                          f"degenerate rates {final}")
    return LayerCheck(spec.name, "fluid", "ok",
                      f"sum rate {float(final.sum()):.1f} pkt/s")


def _check_equilibrium(spec: AlgorithmSpec) -> LayerCheck:
    net, rules = _scenario_a_fluid(2, 2, 2.0, 0.1, spec.name)
    result = solve_fixed_point(net, rules, floor_packets=1.0)
    if not result.converged:
        return LayerCheck(spec.name, "equilibrium", "FAIL",
                          f"no convergence in {result.iterations} iters")
    return LayerCheck(spec.name, "equilibrium", "ok",
                      f"converged in {result.iterations} iters")


def _check_smt(spec: AlgorithmSpec) -> LayerCheck:
    """Certify one concrete fixed point and cross-check the rule.

    Builds the spec's constraint model, has z3 solve the fixed-point
    conditions at a tie-free two-route point, and — when the spec also
    implements the equilibrium layer — compares the certified rates
    against the closed-form allocation rule.  Skips (not fails) when
    the optional z3 extra is missing.
    """
    from ..verify.claims import certified_fixed_point
    p, rtt = (0.01, 0.03), (0.08, 0.12)
    model = spec.make_smt()
    rates = certified_fixed_point(model, p, rtt, timeout_ms=30_000)
    if any(rate < 0 for rate in rates):
        return LayerCheck(spec.name, "smt", "FAIL",
                          f"negative certified rate {rates}")
    if spec.has_equilibrium and not spec.required_params("equilibrium"):
        expected = spec.make_allocation()(p, rtt)
        scale = max(float(max(expected)), 1e-9)
        error = max(abs(a - float(b)) for a, b in zip(rates, expected))
        if error > 1e-6 * scale:
            return LayerCheck(
                spec.name, "smt", "FAIL",
                f"certified rates {rates} disagree with the "
                f"equilibrium rule {list(map(float, expected))}")
        return LayerCheck(spec.name, "smt", "ok",
                          "certified fixed point matches the "
                          "equilibrium rule")
    return LayerCheck(spec.name, "smt", "ok",
                      f"certified fixed point {rates}")


def smoke_check(*, duration: float = 2.0, warmup: float = 0.5,
                t_end: float = 5.0,
                specs: Optional[List[AlgorithmSpec]] = None
                ) -> List[LayerCheck]:
    """Drive every registered algorithm through each layer it supports.

    Returns one :class:`LayerCheck` per (algorithm, layer) cell — the
    cells cover every name in :data:`~repro.core.registry.LAYERS`.  A
    cell is ``skip`` when the spec lacks the layer, the layer needs
    required parameters the harness cannot invent (CUBIC's ``clock``,
    the epsilon family's ``epsilon``), or an optional backend is not
    installed (the smt layer without z3).  A declared capability whose
    factory cannot even construct (``KeyError``/``TypeError`` at build
    time) is reported as a FAIL cell naming the spec and layer.
    """
    runners = {
        "packet": lambda s: _check_packet(s, duration=duration,
                                          warmup=warmup),
        "fluid": lambda s: _check_fluid(s, t_end=t_end),
        "equilibrium": _check_equilibrium,
        "smt": _check_smt,
    }
    checks: List[LayerCheck] = []
    for spec in specs if specs is not None else algorithm_specs():
        for layer in LAYERS:
            runner = runners[layer]
            if not spec.supports(layer):
                checks.append(LayerCheck(spec.name, layer, "skip",
                                         "layer not implemented"))
                continue
            required = spec.required_params(layer)
            if required:
                checks.append(LayerCheck(
                    spec.name, layer, "skip",
                    f"requires parameter(s) {', '.join(required)}"))
                continue
            try:
                checks.append(runner(spec))
            except Z3Unavailable:
                checks.append(LayerCheck(
                    spec.name, layer, "skip",
                    "optional z3-solver extra not installed"))
            except (KeyError, TypeError) as exc:
                # A capability flag whose factory does not actually
                # build — name the cell instead of dying on a bare
                # KeyError.
                checks.append(LayerCheck(
                    spec.name, layer, "FAIL",
                    f"declared {layer} capability does not resolve "
                    f"({type(exc).__name__}: {exc})"))
            except Exception as exc:   # the matrix must report, not die
                checks.append(LayerCheck(spec.name, layer, "FAIL",
                                         f"{type(exc).__name__}: {exc}"))
    return checks


def smoke_check_table(checks: List[LayerCheck]) -> ResultTable:
    """Render :func:`smoke_check` results (CI prints this table)."""
    failed = sum(1 for c in checks if c.status == "FAIL")
    table = ResultTable(
        "Algorithm matrix smoke - tiny scenario-A run per layer"
        + (f"  [{failed} FAILED]" if failed else "  [all ok]"),
        ["algorithm", "layer", "status", "detail"])
    for check in checks:
        table.add_row(check.algorithm, check.layer, check.status,
                      check.detail)
    return table
