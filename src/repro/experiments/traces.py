"""Window/alpha trace experiments: Figures 7 and 8.

A two-path MPTCP user shares each bottleneck with regular TCP flows
(Fig. 6).  In the symmetric case both paths carry traffic with no sign
of flappiness; in the asymmetric case (second path shared with twice as
many TCP flows) OLIA retreats to the probing window on the congested
path while LIA keeps pushing traffic there.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List

from ..sim.apps import BulkTransfer
from ..sim.engine import Simulator
from ..sim.monitors import WindowTracer
from ..sim.mptcp import MptcpConnection
from ..topology.scenarios import build_two_path
from .results import ResultTable


@dataclass
class TraceResult:
    """Sampled windows/alphas of the two-path MPTCP flow."""

    algorithm: str
    competing: tuple
    times: List[float]
    windows: List[List[float]]
    alphas: List[List[float]]
    mean_windows: List[float] = field(default_factory=list)

    def window_imbalance(self) -> float:
        """Mean |w1 - w2| / (w1 + w2) over the trace tail.

        ~0 for balanced symmetric use; ~1 when one path is abandoned.
        Sustained oscillation between those extremes indicates
        flappiness.
        """
        start = len(self.windows) // 4
        values = []
        for w1, w2 in self.windows[start:]:
            total = w1 + w2
            if total > 0:
                values.append(abs(w1 - w2) / total)
        return sum(values) / len(values) if values else 0.0

    def flip_count(self, threshold: float = 0.3) -> int:
        """Number of times the dominant path changes (flappiness count).

        A flip is counted when the signed imbalance crosses from above
        ``threshold`` to below ``-threshold`` or vice versa.
        """
        start = len(self.windows) // 4
        sign = 0
        flips = 0
        for w1, w2 in self.windows[start:]:
            total = w1 + w2
            if total <= 0:
                continue
            imbalance = (w1 - w2) / total
            if imbalance > threshold:
                if sign == -1:
                    flips += 1
                sign = 1
            elif imbalance < -threshold:
                if sign == 1:
                    flips += 1
                sign = -1
        return flips

    def summary(self) -> str:
        w1, w2 = self.mean_windows
        return (f"{self.algorithm} vs {self.competing} TCP flows: "
                f"mean windows ({w1:.2f}, {w2:.2f}), "
                f"imbalance {self.window_imbalance():.2f}, "
                f"flips {self.flip_count()}")


def run_two_path_trace(algorithm: str = "olia", *,
                       competing: tuple = (5, 5),
                       capacity_mbps: float = 10.0,
                       duration: float = 120.0,
                       sample_period: float = 0.2,
                       seed: int = 1,
                       queue: str = "red") -> TraceResult:
    """Trace a two-path MPTCP flow against ``competing`` TCP flows.

    ``competing=(5, 5)`` reproduces Fig. 7's symmetric scenario;
    ``(5, 10)`` reproduces Fig. 8's asymmetric one.
    """
    sim = Simulator()
    rng = random.Random(seed)
    topo = build_two_path(sim, rng, capacity_mbps=capacity_mbps,
                          queue=queue)
    for path_index, n_flows in enumerate(competing):
        for i in range(n_flows):
            bulk = BulkTransfer(sim, "tcp",
                                [topo.tcp_paths[path_index]],
                                start_time=rng.uniform(0, 1.0),
                                name=f"tcp{path_index}.{i}")
            bulk.start()
    conn = MptcpConnection(sim, algorithm, topo.mptcp_paths, name="mp")
    tracer = WindowTracer(sim, conn, period=sample_period)
    conn.start(1.0)
    tracer.start()
    sim.run(until=duration)
    return TraceResult(algorithm=algorithm, competing=tuple(competing),
                       times=tracer.times, windows=tracer.windows,
                       alphas=tracer.alphas,
                       mean_windows=tracer.mean_windows())


def figure7_8_table(*, capacity_mbps: float = 10.0, duration: float = 90.0,
                    seed: int = 1,
                    algorithms=("olia", "lia")) -> ResultTable:
    """Figures 7/8 summary: mean windows in both Fig. 6 scenarios."""
    table = ResultTable(
        "Fig. 7/8 - two-path traces: mean windows (w1, w2) and flips",
        ["scenario", "algorithm", "w1", "w2", "imbalance", "flips"])
    for competing, label in (((5, 5), "symmetric (Fig. 7)"),
                             ((5, 10), "asymmetric (Fig. 8)")):
        for algorithm in algorithms:
            trace = run_two_path_trace(
                algorithm, competing=competing,
                capacity_mbps=capacity_mbps, duration=duration, seed=seed)
            w1, w2 = trace.mean_windows
            table.add_row(label, algorithm, w1, w2,
                          trace.window_imbalance(), trace.flip_count())
    table.add_note("symmetric: both algorithms use both paths; "
                   "asymmetric: OLIA's w2 collapses to ~1 while LIA "
                   "keeps transmitting on the congested path")
    return table
