"""Shared low-level utilities (filesystem atomics, small helpers)."""

from .atomics import (
    MISSING,
    atomic_pickle,
    atomic_write_bytes,
    claim_age,
    load_pickle,
    release_claim,
    try_claim,
)

__all__ = [
    "MISSING",
    "atomic_pickle",
    "atomic_write_bytes",
    "claim_age",
    "load_pickle",
    "release_claim",
    "try_claim",
]
