"""Filesystem atomics: write-then-rename persistence and O_EXCL claims.

Exactly one tested implementation of the two idioms every concurrent
on-disk store in this repo relies on:

* **tmpfile + rename** (:func:`atomic_write_bytes`, :func:`atomic_pickle`,
  :func:`load_pickle`) — a reader never observes a torn entry, because
  ``os.replace`` is atomic on POSIX filesystems and the temporary file
  lives in the destination directory (same filesystem, so the rename
  cannot degrade to a copy);
* **O_EXCL claim files** (:func:`try_claim`, :func:`release_claim`,
  :func:`claim_age`) — ``O_CREAT | O_EXCL`` is atomic on POSIX
  filesystems (including NFS v3+), which is all the coordination a
  work-stealing queue or a multi-writer cache needs: no daemon, no
  queue service, just a shared directory.

Both ``SweepRunner`` (``experiments/sweep.py``) and the serving-layer
result store (``serve/store.py``) are built on these primitives.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Optional

#: Sentinel returned by :func:`load_pickle` when an entry is absent or
#: unreadable.  Identity-checked (``value is MISSING``), so any stored
#: value — including ``None`` and ``False`` — round-trips unambiguously.
MISSING = object()


def _unlink_quiet(path: "str | os.PathLike") -> None:
    try:
        os.unlink(path)
    except OSError:
        pass


def atomic_write_bytes(path: "str | os.PathLike", data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (tmpfile in-dir + rename).

    Concurrent writers to the same path are safe: each writes its own
    temporary file and the last rename wins, with readers seeing either
    the old complete entry or the new complete entry, never a mix.
    Raises ``OSError`` on failure (full disk, permissions); the partial
    temporary file is removed before the exception propagates.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
        os.replace(tmp_name, target)
    except OSError:
        _unlink_quiet(tmp_name)
        raise


def atomic_pickle(path: "str | os.PathLike", obj: Any) -> bool:
    """Best-effort atomic pickle of ``obj`` to ``path``.

    Returns ``True`` when the entry landed on disk.  Persistence is an
    optimization, never a correctness requirement, so an unpicklable
    object (or a full disk) returns ``False`` instead of failing the
    computation that produced the value.
    """
    try:
        data = pickle.dumps(obj)
    except (pickle.PicklingError, TypeError, AttributeError):
        return False
    try:
        atomic_write_bytes(path, data)
    except OSError:
        return False
    return True


def load_pickle(path: "str | os.PathLike", default: Any = MISSING) -> Any:
    """Read a pickled entry; ``default`` when absent, torn, or corrupt.

    A truncated or garbage entry (crashed writer on a non-atomic
    filesystem, bit rot) is indistinguishable from a miss on purpose:
    callers recompute and overwrite, which is always safe because
    entries are content-addressed.
    """
    try:
        with open(path, "rb") as fh:
            return pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return default


def try_claim(path: "str | os.PathLike",
              *, ttl: Optional[float] = None,
              payload: Optional[str] = None) -> bool:
    """Atomically claim ``path``; ``False`` when another holder has it.

    With ``ttl`` set, a claim older than ``ttl`` seconds is treated as
    abandoned by a dead worker: it is reaped (unlinked) and claiming is
    retried once.  Two reapers racing on the same stale claim can both
    succeed in unlinking+recreating it — the resulting duplicate compute
    is harmless for content-addressed stores whose writes are atomic and
    idempotent, which is the only context claims are used in.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    if _create_claim(target, payload):
        return True
    if ttl is not None:
        age = claim_age(target)
        if age is not None and age > ttl:
            _unlink_quiet(target)
            return _create_claim(target, payload)
    return False


def _create_claim(path: Path, payload: Optional[str]) -> bool:
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    with os.fdopen(fd, "w") as fh:
        fh.write(payload if payload is not None else f"pid={os.getpid()}\n")
    return True


def release_claim(path: "str | os.PathLike") -> None:
    """Drop a claim.  Idempotent; a vanished claim file is not an error."""
    _unlink_quiet(path)


def claim_age(path: "str | os.PathLike") -> Optional[float]:
    """Seconds since the claim file was created; ``None`` when absent."""
    try:
        mtime = os.stat(path).st_mtime
    except OSError:
        return None
    return max(0.0, time.time() - mtime)
