"""Constraint-model base class and the optional-z3 degradation path.

Mirrors the compiled-kernels pattern (``repro.sim.scheduler``): the
solver is probed once at import, :data:`Z3_AVAILABLE` records the
outcome, and every consumer that actually needs z3 calls
:func:`require_z3` — which returns the module or raises the typed
:class:`Z3Unavailable`, so callers (the CLI, the algorithm-matrix
smoke, the test suite) can turn "not installed" into an explicit skip
instead of an ImportError mid-run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

try:                            # optional SMT backend
    import z3                   # type: ignore
except ImportError:             # degrade to skip-not-fail everywhere
    z3 = None

#: True when the optional ``z3-solver`` package imported; every
#: consumer degrades to an explicit skip when it did not.
Z3_AVAILABLE = z3 is not None


class Z3Unavailable(RuntimeError):
    """Raised by :func:`require_z3` when ``z3-solver`` is not installed."""


def require_z3():
    """The ``z3`` module, or a typed :class:`Z3Unavailable`.

    Call this at the top of anything that builds or solves constraints;
    the exception type is what lets ``repro algorithms --check`` and the
    verify CLI report a *skip* rather than a failure.
    """
    if z3 is None:
        raise Z3Unavailable(
            "the SMT verification layer needs the optional z3-solver "
            "package (pip install z3-solver); without it the verify "
            "suite skips")
    return z3


@dataclass
class VerificationResult:
    """Outcome of one (claim, algorithm) machine check.

    ``status`` is one of:

    * ``"certified"`` — the solver returned the *expected* verdict
      (sat for existence claims, unsat for universal ones);
    * ``"refuted"`` — the solver returned the opposite verdict: the
      claim is false as encoded (a real finding, not an error);
    * ``"unknown"`` — the solver gave up (timeout / incompleteness);
    * ``"skip"`` — not checked (z3 missing, or the algorithm does not
      declare the claim).

    ``witness`` carries the extracted model values for satisfiable
    outcomes — for the non-pareto claim, a concrete topology plus the
    equilibrium and the allocation dominating it.
    """

    claim: str
    algorithm: str
    status: str
    detail: str = ""
    witness: Optional[Dict[str, float]] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        """True when this result should not fail a gate (CI, CLI)."""
        return self.status in ("certified", "skip")


class ConstraintModel:
    """One algorithm's equilibrium conditions as z3 constraints.

    This is the ``smt`` layer's per-algorithm object, built by an
    :class:`~repro.core.registry.AlgorithmSpec`'s ``smt_factory`` the
    same way the other three layers build controllers, fluid
    derivatives and allocation rules.  Subclasses encode:

    * :meth:`fixed_point_constraints` — the algebraic fixed-point
      conditions tying a rate vector to per-route loss probabilities
      and RTTs (the relational counterpart of the equilibrium layer's
      closed-form allocation rule);
    * :meth:`per_rtt_increase` / :meth:`loss_decrease_factor` — the
      fluid-scale window update over one RTT, used by the
      bounded-horizon ``cwnd-bounds`` unrolling.

    The numeric contract: a z3 model satisfying
    :meth:`fixed_point_constraints` at given ``(p, rtt)`` must agree
    with the registry's equilibrium allocation rule at the same point
    (enforced by ``tests/test_verify_cross_check.py`` on sampled
    points, and by the ``smt`` cell of ``repro algorithms --check``).
    """

    #: Algorithm name (matches the registry spec).
    name = "base"

    #: Claims this model declares, in canonical order; each maps to the
    #: solver verdict that certifies it ("sat" = the claimed object
    #: exists, "unsat" = no violation exists in the bounded ranges).
    claim_expectations: Dict[str, str] = {}

    #: Upper bound on the congestion-avoidance window increase over one
    #: RTT (packets) — the DES engine's loss-model bound the
    #: ``cwnd-bounds`` claim certifies.
    max_increase_per_rtt: float = 1.0

    #: Upper bound on the multiplicative decrease applied on one loss
    #: event (the DES floors the window at ``min_cwnd`` below).
    max_decrease_factor: float = 0.5

    #: Window floor, 1 MSS as in ``MultipathController.min_cwnd``.
    min_cwnd: float = 1.0

    # -- equilibrium ---------------------------------------------------------
    def fixed_point_constraints(self, paths, x, tag: str = "fp"
                                ) -> List[object]:
        """Constraints making ``x`` this algorithm's fixed point.

        Parameters
        ----------
        paths : repro.verify.encoding.PathVars
            Per-route loss/RTT/TCP-rate variables (one user's routes).
        x : list of z3 reals
            The per-route rate variables to constrain.
        tag : str
            Prefix for auxiliary variables (tie booleans, sqrt
            witnesses) so two independent copies of the conditions can
            coexist in one solver — the uniqueness claim needs exactly
            that.
        """
        raise NotImplementedError

    # -- window dynamics (two-path abstraction) ------------------------------
    def per_rtt_increase(self, w, v, rtt, rtt2, constraints, tag="step"):
        """Window growth over one RTT on the modeled path (z3 expr).

        ``w`` is the modeled path's window, ``v`` the peer path's
        (adversarially chosen by the solver; ignored by single-path
        models), ``rtt``/``rtt2`` the respective round-trip times.
        Models that need fresh auxiliary variables (e.g. OLIA's
        ``alpha`` term, whose sign depends on the inter-loss history
        the two-window abstraction does not carry) create them with
        ``tag`` in the name and append their defining/range
        constraints to ``constraints``.
        """
        raise NotImplementedError

    def loss_decrease_factor(self, w, v, rtt, rtt2):
        """Fractional window decrease applied on a loss (z3 expr).

        TCP halving by default; BALIA overrides with its rate-dependent
        ``min(a_r, 3/2)/2``, which is why the peer window and both RTTs
        are in the signature.
        """
        z3mod = require_z3()
        return z3mod.RealVal("1/2")

    def supports_claim(self, claim: str) -> bool:
        return claim in self.claim_expectations
