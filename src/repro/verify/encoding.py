"""Shared topology→constraint encodings for the SMT layer.

Three building blocks, reused by every claim:

* :class:`PathVars` / :func:`make_paths` — per-route loss, RTT and
  single-path TCP-rate variables.  The TCP loss-throughput law
  ``t = sqrt(2/p) / rtt`` is irrational, so ``t`` is introduced as a
  fresh variable with the polynomial *defining* constraints
  ``t > 0  ∧  t² · p · rtt² = 2`` — z3's nonlinear real arithmetic
  (nlsat) decides such systems exactly, no floating sqrt involved.

* *bounded-range quantifier encoding* — claims over parameter ranges
  ("for all p ∈ [lo, hi] …") are encoded as quantifier-free
  satisfiability of the negation: the range bounds become side
  constraints on free variables and an ``unsat`` verdict is the proof
  over the whole box.  :func:`bounded_real` creates such a variable and
  records its box constraints.

* :class:`TwoLinkScenario` — the scenario-A/B two-path structure the
  paper's claims live on: a multipath user with a private route over
  link 1 and a shared route over links 1+2, competing with a
  single-path TCP user on link 2.  Route losses are the link sums
  (``p_r = Σ_{l∈r} p_l``, as in :class:`repro.fluid.FluidNetwork`) and
  the sharp-loss equilibrium reading applies: a link with positive
  loss runs at its capacity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from .base import require_z3

#: Default bounded ranges for the quantified parameters.  Loss
#: probabilities cover the regime the fluid model (and the paper's
#: testbed RED queues) actually operate in; RTTs span datacenter to
#: loaded-WAN.  Claims take explicit ranges for anything tighter.
P_RANGE: Tuple[float, float] = (1e-4, 0.2)
RTT_RANGE: Tuple[float, float] = (0.01, 0.5)
CAPACITY_RANGE: Tuple[float, float] = (10.0, 1e5)


def bounded_real(name: str, lo: float, hi: float, constraints: list):
    """A fresh z3 real confined to ``[lo, hi]`` (bounds recorded)."""
    z3 = require_z3()
    var = z3.Real(name)
    constraints.append(var >= lo)
    constraints.append(var <= hi)
    return var


def tcp_rate_var(name: str, p, rtt, constraints: list):
    """A variable ``t`` defined by ``t = sqrt(2/p)/rtt``, polynomially.

    The defining constraints ``t > 0 ∧ t²·p·rtt² = 2`` pin ``t``
    uniquely once ``p, rtt > 0`` — the square root enters the solver as
    an algebraic witness, never as a float.
    """
    z3 = require_z3()
    t = z3.Real(name)
    constraints.append(t > 0)
    constraints.append(t * t * p * (rtt * rtt) == 2)
    return t


def zmax(terms: Sequence):
    """Symbolic max of a non-empty list of z3 terms (nested If)."""
    z3 = require_z3()
    best = terms[0]
    for term in terms[1:]:
        best = z3.If(term > best, term, best)
    return best


def zmin(terms: Sequence):
    """Symbolic min of a non-empty list of z3 terms (nested If)."""
    z3 = require_z3()
    worst = terms[0]
    for term in terms[1:]:
        worst = z3.If(term < worst, term, worst)
    return worst


@dataclass
class PathVars:
    """Per-route variables of one user: loss, RTT and TCP path rate.

    ``constraints`` accumulates the range boxes and the TCP-rate
    defining equations; callers add the whole list to their solver.
    """

    p: List[object]
    rtt: List[object]
    tcp: List[object]
    constraints: List[object] = field(default_factory=list)

    @property
    def n_routes(self) -> int:
        return len(self.p)


def make_paths(prefix: str, n_routes: int, *,
               p_range: Tuple[float, float] = P_RANGE,
               rtt_range: Tuple[float, float] = RTT_RANGE,
               p_values: Optional[Sequence[float]] = None,
               rtt_values: Optional[Sequence[float]] = None) -> PathVars:
    """Route variables for one user, ranged or pinned to numbers.

    With ``p_values``/``rtt_values`` the corresponding variables are
    pinned to exact rationals (``z3.RealVal`` of the float — the
    binary value, not a re-rounded decimal), which is how the sampled
    cross-check certifies a fixed point at a concrete solver output.
    """
    z3 = require_z3()
    constraints: List[object] = []
    p_vars, rtt_vars, tcp_vars = [], [], []
    for r in range(n_routes):
        if p_values is not None:
            p = z3.RealVal(float(p_values[r]))
        else:
            p = bounded_real(f"{prefix}_p{r}", *p_range, constraints)
        if rtt_values is not None:
            rtt = z3.RealVal(float(rtt_values[r]))
        else:
            rtt = bounded_real(f"{prefix}_rtt{r}", *rtt_range,
                               constraints)
        p_vars.append(p)
        rtt_vars.append(rtt)
        tcp_vars.append(tcp_rate_var(f"{prefix}_t{r}", p, rtt,
                                     constraints))
    return PathVars(p=p_vars, rtt=rtt_vars, tcp=tcp_vars,
                    constraints=constraints)


@dataclass
class TwoLinkScenario:
    """The scenario-A topology as constraint variables.

    Entities (matching ``build_scenario_a`` /
    ``experiments.algorithms._scenario_a_fluid`` with one user per
    class):

    * link 1 (the multipath user's private bottleneck, capacity ``c1``,
      loss ``p1``) and link 2 (the shared AP, capacity ``c2``, loss
      ``p2``);
    * the multipath user's routes: route 0 = [link 1] and route 1 =
      [link 1, link 2], both at RTT ``rtt1`` (scenario A's symmetric
      paths);
    * the TCP user's route 2 = [link 2] at RTT ``rtt2``.

    Route losses are the link sums: ``q0 = p1``, ``q1 = p1 + p2``,
    ``q2 = p2``.  ``paths`` holds the multipath user's two routes,
    ``tcp_paths`` the single-path user's one.
    """

    c1: object
    c2: object
    p1: object
    p2: object
    paths: PathVars
    tcp_paths: PathVars
    constraints: List[object]

    def link_loads(self, mp_rates: Sequence, tcp_rate):
        """Per-link total loads of an allocation (z3 exprs)."""
        return (mp_rates[0] + mp_rates[1], mp_rates[1] + tcp_rate)

    def saturation_constraints(self, mp_rates: Sequence, tcp_rate
                               ) -> List[object]:
        """Sharp-loss equilibrium: congested links run at capacity.

        Both links carry positive loss (their ``p`` ranges exclude 0),
        so at the fluid equilibrium their loads equal their capacities
        — Remark 1's "sharp around C_l" reading, the regime scenario A
        is built in.
        """
        y1, y2 = self.link_loads(mp_rates, tcp_rate)
        return [y1 == self.c1, y2 == self.c2]


def make_two_link_scenario(prefix: str = "s", *,
                           p_range: Tuple[float, float] = (1e-3, 0.1),
                           rtt_range: Tuple[float, float] = (0.02, 0.3),
                           capacity_range: Tuple[float, float]
                           = CAPACITY_RANGE) -> TwoLinkScenario:
    """Build the scenario-A encoding over bounded parameter ranges."""
    z3 = require_z3()
    constraints: List[object] = []
    c1 = bounded_real(f"{prefix}_c1", *capacity_range, constraints)
    c2 = bounded_real(f"{prefix}_c2", *capacity_range, constraints)
    p1 = bounded_real(f"{prefix}_p1", *p_range, constraints)
    p2 = bounded_real(f"{prefix}_p2", *p_range, constraints)
    rtt1 = bounded_real(f"{prefix}_rtt1", *rtt_range, constraints)
    rtt2 = bounded_real(f"{prefix}_rtt2", *rtt_range, constraints)

    # Multipath user: route losses q0 = p1, q1 = p1 + p2, equal RTTs
    # (scenario A's symmetric two-path setup).
    q0, q1 = p1, p1 + p2
    mp_constraints: List[object] = []
    t0 = tcp_rate_var(f"{prefix}_t0", q0, rtt1, mp_constraints)
    t1 = tcp_rate_var(f"{prefix}_t1", q1, rtt1, mp_constraints)
    paths = PathVars(p=[q0, q1], rtt=[rtt1, rtt1], tcp=[t0, t1],
                     constraints=mp_constraints)

    # Single-path TCP user on the shared link.
    tcp_constraints: List[object] = []
    t2 = tcp_rate_var(f"{prefix}_t2", p2, rtt2, tcp_constraints)
    tcp_paths = PathVars(p=[p2], rtt=[rtt2], tcp=[t2],
                         constraints=tcp_constraints)

    del z3   # only needed to assert availability before building vars
    return TwoLinkScenario(
        c1=c1, c2=c2, p1=p1, p2=p2, paths=paths, tcp_paths=tcp_paths,
        constraints=constraints + mp_constraints + tcp_constraints)
