"""Human-readable rendering of verification results and witnesses.

The witness printer is the "counterexample pretty-printer" of the
verification layer: a satisfiable non-pareto query comes back as a
*concrete topology* (link capacities, loss probabilities, RTTs) plus
the dominated equilibrium and the allocation dominating it — the same
shape as the paper's scenario-A discussion, extracted from the z3 model
instead of hand-constructed.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

from .base import VerificationResult

_STATUS_MARK = {
    "certified": "PASS",
    "refuted": "FAIL",
    "unknown": "????",
    "skip": "skip",
}

#: Witness keys grouped for the non-pareto printer; anything not listed
#: (uniqueness/cwnd trajectories) falls through to the flat format.
_TOPOLOGY_KEYS = ("capacity_link1", "capacity_link2",
                  "loss_link1", "loss_link2",
                  "rtt_multipath", "rtt_tcp")
_EQUILIBRIUM_KEYS = ("eq_private", "eq_shared", "eq_tcp")
_ALTERNATIVE_KEYS = ("alt_private", "alt_shared", "alt_tcp")


def format_witness(witness: Dict[str, float], indent: str = "  ") -> str:
    """Pretty-print a model's witness values.

    Non-pareto witnesses are grouped into topology / equilibrium /
    dominating allocation sections; any other witness prints as a flat
    ``name = value`` list.
    """
    if not witness:
        return ""
    lines: List[str] = []
    if all(key in witness for key in _TOPOLOGY_KEYS):
        lines.append(f"{indent}topology:")
        for key in _TOPOLOGY_KEYS:
            lines.append(f"{indent}  {key} = {witness[key]:.6g}")
        lines.append(f"{indent}equilibrium (pkt/s):")
        for key in _EQUILIBRIUM_KEYS:
            lines.append(f"{indent}  {key} = {witness[key]:.6g}")
        lines.append(f"{indent}dominating allocation (pkt/s):")
        for key in _ALTERNATIVE_KEYS:
            lines.append(f"{indent}  {key} = {witness[key]:.6g}")
        extras = [key for key in witness
                  if key not in _TOPOLOGY_KEYS
                  and key not in _EQUILIBRIUM_KEYS
                  and key not in _ALTERNATIVE_KEYS]
    else:
        extras = list(witness)
    for key in extras:
        lines.append(f"{indent}{key} = {witness[key]:.6g}")
    return "\n".join(lines)


def format_results(results: Iterable[VerificationResult], *,
                   show_witnesses: bool = True) -> str:
    """A fixed-width table of results, witnesses inlined below rows."""
    rows = list(results)
    if not rows:
        return "no (algorithm, claim) pairs selected"
    algo_w = max(len("algorithm"), *(len(r.algorithm) for r in rows))
    claim_w = max(len("claim"), *(len(r.claim) for r in rows))
    lines: List[str] = []
    header = (f"{'algorithm':<{algo_w}}  {'claim':<{claim_w}}  "
              f"{'status':<9}  {'time':>7}  detail")
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        mark = _STATUS_MARK.get(r.status, r.status)
        lines.append(
            f"{r.algorithm:<{algo_w}}  {r.claim:<{claim_w}}  "
            f"{mark:<9}  {r.elapsed:6.2f}s  {r.detail}")
        if show_witnesses and r.witness:
            lines.append(format_witness(r.witness, indent="    "))
    certified = sum(r.status == "certified" for r in rows)
    refuted = sum(r.status == "refuted" for r in rows)
    unknown = sum(r.status == "unknown" for r in rows)
    skipped = sum(r.status == "skip" for r in rows)
    lines.append(
        f"{certified} certified, {refuted} refuted, {unknown} unknown, "
        f"{skipped} skipped")
    return "\n".join(lines)
