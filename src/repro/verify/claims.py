"""The three machine-checked claims and the verification driver.

Every check builds a quantifier-free nonlinear-real (QF_NRA) query and
reads the solver verdict against the model's *declared expectation*:

* ``non-pareto`` — "an equilibrium of this algorithm on the scenario-A
  topology is dominated by another feasible allocation".  **sat**
  certifies the paper's LIA result (and extracts the witness topology);
  **unsat** certifies OLIA's contrast — no such dominated equilibrium
  exists anywhere in the bounded parameter box.
* ``uniqueness`` — "two distinct rate vectors both satisfy the
  fixed-point conditions at the same losses/RTTs".  **unsat** proves
  the conditions pin a *unique* fixed point over the whole declared
  range, so the damped solver's output is the equilibrium, not one of
  several.
* ``cwnd-bounds`` — a bounded-horizon unrolling of the window dynamics
  with adversarial loss pattern, peer window and RTTs.  **unsat** of
  the violation disjunction proves the window stays in the DES
  engine's loss-model bounds (floor at ``min_cwnd``, per-RTT increase
  cap) for *every* loss sequence in the horizon.

The registry import is deferred into the functions: ``repro.core``
reaches this package through :mod:`repro.core.balia`'s model, so a
module-level import back into ``core`` would be a genuine cycle.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Sequence

from .base import (
    ConstraintModel,
    VerificationResult,
    Z3Unavailable,
    require_z3,
)
from .encoding import (
    RTT_RANGE,
    bounded_real,
    make_paths,
    make_two_link_scenario,
    zmax,
)

#: Canonical claim order (CLI ``--claim`` accepts these names).
CLAIM_NAMES = ("non-pareto", "uniqueness", "cwnd-bounds")

CLAIM_DESCRIPTIONS = {
    "non-pareto": "a fixed point on the scenario-A topology is "
                  "dominated by another feasible allocation "
                  "(sat = exists, with witness; unsat = never)",
    "uniqueness": "two distinct fixed points share one (p, rtt) "
                  "point in the declared ranges (unsat = the fixed "
                  "point is unique)",
    "cwnd-bounds": "a bounded-horizon window unrolling leaves the DES "
                   "loss-model bounds under some loss pattern "
                   "(unsat = bounds hold for every pattern)",
}

#: Per-query solver timeout.  Every query here is a small QF_NRA
#: system; they solve in well under a second, the margin is for slow CI.
DEFAULT_TIMEOUT_MS = 120_000

#: Steps of the cwnd-bounds unrolling (each step is one RTT).
CWND_HORIZON = 5

#: Relative rate gap that counts two fixed points as distinct.
UNIQUENESS_GAP = 1e-6

#: Peer/initial congestion windows range in the cwnd unrolling (pkts).
WINDOW_RANGE = (1.0, 64.0)


# -- solver plumbing ---------------------------------------------------------

def _solver(timeout_ms: int):
    """A solver tuned for these queries (nlsat behind ite elimination)."""
    z3 = require_z3()
    try:
        solver = z3.Then("simplify", "elim-term-ite",
                         "qfnra-nlsat").solver()
    except z3.Z3Exception:        # tactic set varies across versions
        solver = z3.Solver()
    try:
        solver.set("timeout", int(timeout_ms))
    except z3.Z3Exception:
        pass
    return solver


def _verdict(solver) -> str:
    z3 = require_z3()
    res = solver.check()
    if res == z3.sat:
        return "sat"
    if res == z3.unsat:
        return "unsat"
    return "unknown"


def _to_float(value) -> float:
    """A python float from a z3 model value (rational or algebraic)."""
    z3 = require_z3()
    if z3.is_algebraic_value(value):
        value = value.approx(20)
    if z3.is_rational_value(value):
        return float(value.numerator_as_long()
                     ) / float(value.denominator_as_long())
    return float(str(value))


def _model_values(model, named: Dict[str, object]) -> Dict[str, float]:
    """Evaluate named expressions in a z3 model, as floats."""
    return {key: _to_float(model.eval(expr, model_completion=True))
            for key, expr in named.items()}


def _finish(claim: str, model: ConstraintModel, verdict: str, *,
            started: float, detail_certified: str, detail_refuted: str,
            witness: Optional[Dict[str, float]] = None
            ) -> VerificationResult:
    expectation = model.claim_expectations[claim]
    if verdict == "unknown":
        status, detail = "unknown", "solver gave up (timeout)"
    elif verdict == expectation:
        status, detail = "certified", detail_certified
    else:
        status, detail = "refuted", detail_refuted
    return VerificationResult(
        claim=claim, algorithm=model.name, status=status, detail=detail,
        witness=witness, elapsed=time.perf_counter() - started)


# -- claim: non-pareto -------------------------------------------------------

def check_non_pareto(model: ConstraintModel, *,
                     timeout_ms: int = DEFAULT_TIMEOUT_MS
                     ) -> VerificationResult:
    """Does a dominated equilibrium exist on the scenario-A topology?

    The query conjoins: the algorithm's fixed point for the multipath
    user, the TCP fixed point for the single-path user, sharp-loss
    saturation of both links, and a feasible alternative allocation
    giving the multipath user no less and the TCP user at least 1%
    more.  A model is a concrete topology whose equilibrium wastes
    capacity on the two-hop path — Section III's non-Pareto-optimality
    — and the witness records it; unsat proves the algorithm admits no
    such equilibrium anywhere in the bounded ranges (OLIA keeps the
    two-hop path at the probing floor, so nothing is wasted).
    """
    started = time.perf_counter()
    z3 = require_z3()
    scenario = make_two_link_scenario("np")
    x0, x1, x2 = z3.Reals("np_x0 np_x1 np_x2")

    solver = _solver(timeout_ms)
    solver.add(scenario.constraints)
    solver.add(model.fixed_point_constraints(scenario.paths, [x0, x1],
                                             tag="np"))
    solver.add(x2 == scenario.tcp_paths.tcp[0])
    solver.add(scenario.saturation_constraints([x0, x1], x2))

    # An alternative allocation: feasible on the same links, multipath
    # user no worse, TCP user at least 1% better.
    z0, z1, z2 = z3.Reals("np_z0 np_z1 np_z2")
    solver.add(z0 >= 0, z1 >= 0, z2 >= 0)
    y1, y2 = scenario.link_loads([z0, z1], z2)
    solver.add(y1 <= scenario.c1, y2 <= scenario.c2)
    solver.add(z0 + z1 >= x0 + x1)
    solver.add(z2 >= x2 * (1 + z3.RealVal("1/100")))

    verdict = _verdict(solver)
    witness = None
    if verdict == "sat":
        witness = _model_values(solver.model(), {
            "capacity_link1": scenario.c1, "capacity_link2": scenario.c2,
            "loss_link1": scenario.p1, "loss_link2": scenario.p2,
            "rtt_multipath": scenario.paths.rtt[0],
            "rtt_tcp": scenario.tcp_paths.rtt[0],
            "eq_private": x0, "eq_shared": x1, "eq_tcp": x2,
            "alt_private": z0, "alt_shared": z1, "alt_tcp": z2,
        })
    return _finish(
        "non-pareto", model, verdict, started=started,
        detail_certified=(
            "dominated equilibrium exists (witness topology extracted)"
            if model.claim_expectations["non-pareto"] == "sat" else
            "no dominated equilibrium in the bounded scenario ranges"),
        detail_refuted=(
            "no dominated equilibrium found, contradicting the claim"
            if model.claim_expectations["non-pareto"] == "sat" else
            "found a dominated equilibrium the model should exclude"),
        witness=witness)


# -- claim: uniqueness -------------------------------------------------------

def check_uniqueness(model: ConstraintModel, *, n_routes: int = 2,
                     timeout_ms: int = DEFAULT_TIMEOUT_MS
                     ) -> VerificationResult:
    """Is the fixed point unique over the declared parameter ranges?

    Two copies of the fixed-point conditions (distinct auxiliary-
    variable tags) share one set of path variables; the query asks for
    a point where the copies differ by more than ``UNIQUENESS_GAP``
    relative to the best-path rate.  Unsat over the whole range box is
    what entitles the sampled cross-check to call ``solve_fixed_point``
    output *the* equilibrium.
    """
    started = time.perf_counter()
    z3 = require_z3()
    paths = make_paths("uq", n_routes)
    xa = [z3.Real(f"uq_xa{r}") for r in range(n_routes)]
    xb = [z3.Real(f"uq_xb{r}") for r in range(n_routes)]

    solver = _solver(timeout_ms)
    solver.add(paths.constraints)
    solver.add(model.fixed_point_constraints(paths, xa, tag="uqa"))
    solver.add(model.fixed_point_constraints(paths, xb, tag="uqb"))
    gap = zmax(paths.tcp) * UNIQUENESS_GAP
    solver.add(z3.Or(*[z3.Or(a - b > gap, b - a > gap)
                       for a, b in zip(xa, xb)]))

    verdict = _verdict(solver)
    witness = None
    if verdict == "sat":        # refutation — keep the point for debug
        named = {}
        for r in range(n_routes):
            named[f"p{r}"] = paths.p[r]
            named[f"rtt{r}"] = paths.rtt[r]
            named[f"xa{r}"] = xa[r]
            named[f"xb{r}"] = xb[r]
        witness = _model_values(solver.model(), named)
    return _finish(
        "uniqueness", model, verdict, started=started,
        detail_certified=(
            f"fixed point unique over the declared ranges "
            f"({n_routes} routes)"),
        detail_refuted="two distinct fixed points found",
        witness=witness)


# -- claim: cwnd-bounds ------------------------------------------------------

def check_cwnd_bounds(model: ConstraintModel, *,
                      horizon: int = CWND_HORIZON,
                      timeout_ms: int = DEFAULT_TIMEOUT_MS
                      ) -> VerificationResult:
    """Does the window ever leave the DES loss-model bounds?

    Unrolls ``horizon`` RTTs of the two-path window dynamics.  At each
    step the solver adversarially picks whether a loss occurs, the
    peer path's window, and (where the model declares one) auxiliary
    terms like OLIA's ``alpha``.  The transition mirrors
    :class:`repro.core.base.MultipathController`: increase floored at
    ``min_cwnd`` (as ``increase_on_ack`` does), multiplicative
    decrease floored at ``min_cwnd``.  The violation asks for a
    reachable window below the floor or above
    ``w0 + k * max_increase_per_rtt``; unsat certifies the bounds.
    """
    started = time.perf_counter()
    z3 = require_z3()
    solver = _solver(timeout_ms)
    constraints: List[object] = []

    rtt = bounded_real("cw_rtt", *RTT_RANGE, constraints)
    rtt2 = bounded_real("cw_rtt2", *RTT_RANGE, constraints)
    floor = z3.RealVal(model.min_cwnd)
    windows = [bounded_real("cw_w0", *WINDOW_RANGE, constraints)]
    violations = []
    for k in range(horizon):
        w = windows[-1]
        v = bounded_real(f"cw_v{k}", *WINDOW_RANGE, constraints)
        loss = z3.Bool(f"cw_loss{k}")
        inc = model.per_rtt_increase(w, v, rtt, rtt2, constraints,
                                     tag=f"cw{k}")
        dec = model.loss_decrease_factor(w, v, rtt, rtt2)
        grown = w + inc
        shrunk = w * (1 - dec)
        w_next = z3.Real(f"cw_w{k + 1}")
        constraints.append(w_next == z3.If(
            loss,
            z3.If(shrunk >= floor, shrunk, floor),
            z3.If(grown >= floor, grown, floor)))
        windows.append(w_next)
        bound = windows[0] + (k + 1) * z3.RealVal(
            model.max_increase_per_rtt)
        violations.append(z3.Or(w_next < floor, w_next > bound))

    solver.add(constraints)
    solver.add(z3.Or(*violations))

    verdict = _verdict(solver)
    witness = None
    if verdict == "sat":        # refutation — extract the trajectory
        witness = _model_values(solver.model(), {
            f"w{k}": w for k, w in enumerate(windows)})
    return _finish(
        "cwnd-bounds", model, verdict, started=started,
        detail_certified=(
            f"window within [min_cwnd, w0 + k*"
            f"{model.max_increase_per_rtt}] for every loss pattern "
            f"over {horizon} RTTs"),
        detail_refuted="found a loss pattern driving the window out "
                       "of bounds",
        witness=witness)


_CHECKERS = {
    "non-pareto": check_non_pareto,
    "uniqueness": check_uniqueness,
    "cwnd-bounds": check_cwnd_bounds,
}


# -- certified fixed points (the cross-check hook) ---------------------------

def certified_fixed_point(model, p: Sequence[float],
                          rtt: Sequence[float], *,
                          timeout_ms: int = DEFAULT_TIMEOUT_MS,
                          **params) -> List[float]:
    """Solve the model's fixed-point conditions at a concrete point.

    ``model`` is a :class:`ConstraintModel` or an algorithm name
    (resolved through the registry's ``smt`` layer with ``params``).
    The losses and RTTs are pinned to exact rationals and the solver
    produces the rate vector satisfying the algorithm's conditions —
    the SMT layer's answer to the same question
    ``solve_fixed_point`` answers numerically, which the cross-check
    suite compares on sampled points.

    Raises :class:`Z3Unavailable` without z3 and ``RuntimeError`` if
    the conditions are unsatisfiable at the point (an encoding bug).
    """
    z3 = require_z3()
    if not isinstance(model, ConstraintModel):
        model = get_model(model, **params)
    paths = make_paths("cfp", len(p), p_values=list(p),
                       rtt_values=list(rtt))
    x = [z3.Real(f"cfp_x{r}") for r in range(len(p))]
    solver = _solver(timeout_ms)
    solver.add(paths.constraints)
    solver.add(model.fixed_point_constraints(paths, x, tag="cfp"))
    verdict = _verdict(solver)
    if verdict != "sat":
        raise RuntimeError(
            f"fixed-point conditions of {model.name!r} are {verdict} "
            f"at p={list(p)}, rtt={list(rtt)}")
    values = _model_values(solver.model(),
                           {f"x{r}": var for r, var in enumerate(x)})
    return [values[f"x{r}"] for r in range(len(p))]


def get_model(algorithm: str, **params) -> ConstraintModel:
    """Build an algorithm's constraint model through the registry."""
    from ..core import registry
    return registry.make_smt_model(algorithm, **params)


# -- the driver --------------------------------------------------------------

def run_verification(algorithms: Optional[Iterable[str]] = None,
                     claims: Optional[Iterable[str]] = None, *,
                     timeout_ms: int = DEFAULT_TIMEOUT_MS
                     ) -> List[VerificationResult]:
    """Machine-check claims across the registry's ``smt``-capable specs.

    Without arguments: every registered spec with an ``smt`` layer,
    every claim its model declares.  Explicitly named algorithms or
    claims that do not apply yield ``skip`` results instead of being
    silently dropped.  Without z3 every entry is a ``skip`` — the
    degradation contract shared with the compiled-kernel extra.
    """
    from ..core import registry

    claim_list = list(claims) if claims is not None else list(CLAIM_NAMES)
    for claim in claim_list:
        if claim not in CLAIM_NAMES:
            raise ValueError(
                f"unknown claim {claim!r}; known: "
                f"{', '.join(CLAIM_NAMES)}")

    if algorithms is not None:
        specs = [registry.get_spec(name) for name in algorithms]
    else:
        specs = [spec for spec in registry.algorithm_specs()
                 if spec.has_smt]

    results: List[VerificationResult] = []
    for spec in specs:
        if not spec.has_smt:
            results.extend(VerificationResult(
                claim=claim, algorithm=spec.name, status="skip",
                detail="algorithm declares no smt layer")
                for claim in claim_list)
            continue
        try:
            model = spec.make_smt()
        except Z3Unavailable as exc:
            results.extend(VerificationResult(
                claim=claim, algorithm=spec.name, status="skip",
                detail=str(exc)) for claim in claim_list)
            continue
        for claim in claim_list:
            if not model.supports_claim(claim):
                results.append(VerificationResult(
                    claim=claim, algorithm=spec.name, status="skip",
                    detail="claim not declared by this model"))
                continue
            try:
                results.append(_CHECKERS[claim](model,
                                                timeout_ms=timeout_ms))
            except Z3Unavailable as exc:
                results.append(VerificationResult(
                    claim=claim, algorithm=spec.name, status="skip",
                    detail=str(exc)))
    return results
