"""Constraint models for TCP, LIA and OLIA (BALIA lives in its own file).

Each model is the *relational* form of an equilibrium allocation rule in
:mod:`repro.fluid.equilibrium`: instead of computing rates from
``(p, rtt)``, it constrains a rate vector to satisfy the algorithm's
fixed-point conditions, so the solver can quantify over topologies.
Divisions are rewritten as polynomial side constraints on auxiliary
variables (``inv · d == 1`` instead of ``1/d``) to keep every query
inside the nlsat-decidable nonlinear-real fragment.

BALIA's model (:class:`repro.core.balia.BaliaModel`) is defined next to
its controller/fluid/allocation code — the registry's one-file-algorithm
pattern — and only *registered* through the same ``smt_factory`` hook as
the models here.
"""

from __future__ import annotations

from typing import List

from .base import ConstraintModel, require_z3
from .encoding import zmax, zmin


class TcpModel(ConstraintModel):
    """Single-path TCP Reno (applied uncoupled to each route).

    The fixed point is the square-root law itself: ``x_r = t_r`` where
    ``t_r`` is the path's TCP-rate variable (already polynomially
    defined by the encoding).  Per-RTT window growth is exactly one
    packet (+1/w per ACK, w ACKs per RTT) and a loss halves the window.
    """

    name = "tcp"
    claim_expectations = {"uniqueness": "unsat", "cwnd-bounds": "unsat"}
    max_increase_per_rtt = 1.0
    max_decrease_factor = 0.5

    def fixed_point_constraints(self, paths, x, tag: str = "fp"
                                ) -> List[object]:
        constraints: List[object] = []
        for rate, t in zip(x, paths.tcp):
            constraints.append(rate == t)
        return constraints

    def per_rtt_increase(self, w, v, rtt, rtt2, constraints, tag="step"):
        z3 = require_z3()
        return z3.RealVal(1)


class LiaModel(ConstraintModel):
    """LIA, Eq. (2): windows proportional to ``1/p_r``, total = best TCP.

    Fixed point (the relational form of
    :func:`repro.fluid.equilibrium.lia_allocation`)::

        x_r · rtt_r · p_r · D == best,   D = Σ_q 1/(rtt_q · p_q)

    with ``best = max_q t_q`` and one auxiliary inverse variable per
    route (``inv_q · rtt_q · p_q == 1``) standing in for the division.

    Window dynamics: the per-ACK increase is
    ``min(max_i(w_i/rtt_i²) / (Σ_i w_i/rtt_i)², 1/w)`` (RFC 6356's cap
    at TCP's own increase), so over one RTT the window grows by
    ``min(w·M/S², 1) ≤ 1`` packet.
    """

    name = "lia"
    claim_expectations = {
        "non-pareto": "sat",
        "uniqueness": "unsat",
        "cwnd-bounds": "unsat",
    }
    max_increase_per_rtt = 1.0
    max_decrease_factor = 0.5

    def fixed_point_constraints(self, paths, x, tag: str = "fp"
                                ) -> List[object]:
        z3 = require_z3()
        constraints: List[object] = []
        best = zmax(paths.tcp)
        inverses = []
        for r, (p, rtt) in enumerate(zip(paths.p, paths.rtt)):
            inv = z3.Real(f"{tag}_lia_inv{r}")
            constraints.append(inv > 0)
            constraints.append(inv * rtt * p == 1)
            inverses.append(inv)
        denom = z3.Sum(inverses)
        for rate, p, rtt in zip(x, paths.p, paths.rtt):
            constraints.append(rate >= 0)
            constraints.append(rate * rtt * p * denom == best)
        return constraints

    def per_rtt_increase(self, w, v, rtt, rtt2, constraints, tag="step"):
        z3 = require_z3()
        m = zmax([w / (rtt * rtt), v / (rtt2 * rtt2)])
        s = w / rtt + v / rtt2
        return zmin([w * m / (s * s), z3.RealVal(1)])


class OliaModel(ConstraintModel):
    """OLIA per Theorem 1: best paths only, equal split among ties.

    Fixed point (relational
    :func:`repro.fluid.equilibrium.olia_allocation`): a tie boolean per
    route, ``b_r ⇔ t_r ≥ best·(1 − tol)``, and

    * tied-best routes: ``x_r · n_best == best`` (equal split),
    * others: ``x_r == floor`` (the probing rate, 0 by default),

    with ``n_best = Σ_r [b_r]``.  The booleans are *determined* by the
    path variables, which is exactly what makes the uniqueness claim
    hold.

    Window dynamics: per-ACK increase ``(w/rtt²)/S² + α/w`` where the
    ``α`` term redistributes between best and max-window paths; its
    magnitude is at most ``1/(2·n_paths) ≤ 1/2``, so over one RTT the
    window grows by ``w²/(rtt²S²) + α ≤ 1 + 1/2``.  The model leaves
    ``α`` an adversarial free variable in ``[-1/2, 1/2]`` — the
    inter-loss counters selecting its sign are not part of the
    two-window abstraction — so the certified cap covers every
    schedule of OLIA's path-probing behaviour.
    """

    name = "olia"
    claim_expectations = {
        "non-pareto": "unsat",      # the contrast with LIA: no such
        "uniqueness": "unsat",      # dominated equilibrium exists
        "cwnd-bounds": "unsat",
    }
    max_increase_per_rtt = 1.5
    max_decrease_factor = 0.5

    def __init__(self, floor: float = 0.0,
                 tie_tolerance: float = 1e-6) -> None:
        if floor is None:
            floor = 0.0
        self.floor = float(floor)
        self.tie_tolerance = float(tie_tolerance)

    def fixed_point_constraints(self, paths, x, tag: str = "fp"
                                ) -> List[object]:
        z3 = require_z3()
        constraints: List[object] = []
        best = zmax(paths.tcp)
        ties = []
        for r, t in enumerate(paths.tcp):
            b = z3.Bool(f"{tag}_olia_best{r}")
            constraints.append(
                b == (t >= best * (1 - self.tie_tolerance)))
            ties.append(b)
        n_best = z3.Sum([z3.If(b, z3.RealVal(1), z3.RealVal(0))
                         for b in ties])
        for rate, b in zip(x, ties):
            constraints.append(rate >= 0)
            constraints.append(
                z3.If(b, rate * n_best == best, rate == self.floor))
        return constraints

    def per_rtt_increase(self, w, v, rtt, rtt2, constraints, tag="step"):
        z3 = require_z3()
        alpha = z3.Real(f"{tag}_olia_alpha")
        constraints.append(alpha >= z3.RealVal("-1/2"))
        constraints.append(alpha <= z3.RealVal("1/2"))
        s = w / rtt + v / rtt2
        kelly = (w / rtt) * (w / rtt) / (s * s)
        return kelly + alpha
