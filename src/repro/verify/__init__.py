"""SMT verification layer: machine-checked equilibrium claims.

The paper's core results are *existence* claims — LIA admits equilibria
that are not Pareto-optimal, OLIA/BALIA allocations satisfy their
fixed-point conditions — and until this package every check in the repo
was observational: sweep a grid of points and assert the numbers agree.
Following the CCAC idiom (Arun et al., "Toward formally verifying
congestion control behavior"), this package instead encodes each
algorithm's equilibrium conditions as z3 constraints and asks the
solver to *prove* them over bounded parameter ranges — covering regions
no sweep reaches, or to produce a concrete counterexample topology when
an existence claim is satisfiable.

Verification is the fourth layer of the cross-layer algorithm registry
(packet, fluid, equilibrium, **smt**): an
:class:`~repro.core.registry.AlgorithmSpec` may carry an ``smt_factory``
building a :class:`~repro.verify.base.ConstraintModel`, and
``python -m repro verify`` machine-checks three claims per capable
algorithm:

* ``non-pareto`` — LIA has equilibria that are not Pareto-optimal
  (satisfiability of "LIA fixed point on the scenario-A topology and
  another feasible allocation dominates it"; the witness is a concrete
  topology + allocation).  The OLIA leg of the same encoding is
  *unsatisfiable* — the contrast the paper draws.
* ``uniqueness`` — the fixed point is unique given route losses and
  RTTs, over the whole declared parameter range (unsat of "two distinct
  fixed points"), so the damped solver's output is *the* fixed point,
  not one of several.
* ``cwnd-bounds`` — a bounded-horizon unrolling of the window dynamics
  stays inside the DES engine's loss-model bounds (floor at
  ``min_cwnd``, per-RTT increase cap) for *every* loss sequence.

z3 is an optional extra, exactly like the compiled DES kernels: the
package imports without it, every entry point degrades to an explicit
skip (:data:`Z3_AVAILABLE`, :class:`Z3Unavailable`), and the test suite
skips rather than fails.  Install with ``pip install z3-solver``.
"""

from .base import (
    Z3_AVAILABLE,
    ConstraintModel,
    VerificationResult,
    Z3Unavailable,
    require_z3,
)
from .claims import (
    CLAIM_NAMES,
    certified_fixed_point,
    check_cwnd_bounds,
    check_non_pareto,
    check_uniqueness,
    run_verification,
)
from .report import format_results, format_witness

__all__ = [
    "Z3_AVAILABLE",
    "Z3Unavailable",
    "require_z3",
    "ConstraintModel",
    "VerificationResult",
    "CLAIM_NAMES",
    "run_verification",
    "certified_fixed_point",
    "check_non_pareto",
    "check_uniqueness",
    "check_cwnd_bounds",
    "format_results",
    "format_witness",
]
