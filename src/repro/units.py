"""Unit conventions and conversions used throughout the library.

The paper (and this reproduction) works in three natural units:

* **packets** — congestion windows and queue lengths, where one packet is
  one maximum segment (MSS) of 1500 bytes;
* **seconds** — time, RTTs, simulation clocks;
* **packets per second** — rates.  Link capacities quoted in Mbps are
  converted with :func:`mbps_to_pps`.

Keeping a single internal unit system means the TCP loss-throughput
formula ``x = sqrt(2/p) / rtt`` (packets/s) can be compared directly with
measured goodputs from the packet-level simulator.
"""

from __future__ import annotations

#: Maximum segment size in bytes (the paper's testbed uses 1500-byte MSS).
MSS_BYTES = 1500

#: Maximum segment size in bits.
MSS_BITS = MSS_BYTES * 8

#: Size of a pure ACK segment in bytes (only used for reporting; ACKs
#: travel on an uncongested reverse path in the simulator).
ACK_BYTES = 40


def mbps_to_pps(mbps: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a rate in megabits per second to packets (MSS) per second."""
    return mbps * 1e6 / (mss_bytes * 8)


def pps_to_mbps(pps: float, mss_bytes: int = MSS_BYTES) -> float:
    """Convert a rate in packets (MSS) per second to megabits per second."""
    return pps * mss_bytes * 8 / 1e6


def bytes_to_packets(nbytes: float, mss_bytes: int = MSS_BYTES) -> int:
    """Number of MSS-sized packets needed to carry ``nbytes`` of payload."""
    if nbytes <= 0:
        return 0
    return int(-(-nbytes // mss_bytes))  # ceiling division


def ms(value: float) -> float:
    """Milliseconds to seconds (readability helper for experiment configs)."""
    return value * 1e-3
