"""Closed-form fixed points and optima for the paper's scenarios."""

from . import scenario_a, scenario_b, scenario_c
from .optimum import OptimumResult, proportional_fair
from .roots import (
    RootError,
    bisect_increasing,
    positive_real_roots,
    unique_positive_root,
)
from .tcp import loss_for_rate, tcp_rate, window_for_loss

__all__ = [
    "scenario_a",
    "scenario_b",
    "scenario_c",
    "tcp_rate",
    "loss_for_rate",
    "window_for_loss",
    "unique_positive_root",
    "positive_real_roots",
    "bisect_increasing",
    "RootError",
    "proportional_fair",
    "OptimumResult",
]
