"""Positive real-root helpers for the scenario fixed-point polynomials.

The fixed-point analyses of Appendices A and B reduce to finding the
unique positive root of low-degree polynomials (a cubic for scenarios A
and C, a quadratic and a quintic for scenario B).  We locate roots with
``numpy.roots`` and validate uniqueness/positivity, falling back to
bisection when numerical noise produces near-real pairs.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np


class RootError(ValueError):
    """Raised when a polynomial does not have the expected positive root."""


def positive_real_roots(coeffs: Sequence[float],
                        imag_tol: float = 1e-9) -> list[float]:
    """All positive real roots of the polynomial with given coefficients.

    ``coeffs`` are in ``numpy.roots`` order (highest degree first).
    """
    roots = np.roots(coeffs)
    found = []
    for root in roots:
        if abs(root.imag) < imag_tol * max(1.0, abs(root.real)) \
                and root.real > 0:
            found.append(float(root.real))
    return sorted(found)


def unique_positive_root(coeffs: Sequence[float]) -> float:
    """The unique positive real root; raises :class:`RootError` otherwise."""
    roots = positive_real_roots(coeffs)
    if not roots:
        raise RootError(f"no positive real root for coefficients {coeffs}")
    if len(roots) > 1:
        # Collapse numerically identical duplicates before complaining.
        distinct = [roots[0]]
        for root in roots[1:]:
            if abs(root - distinct[-1]) > 1e-9 * max(1.0, abs(root)):
                distinct.append(root)
        if len(distinct) > 1:
            raise RootError(
                f"expected one positive root, found {distinct} for {coeffs}")
        roots = distinct
    return roots[0]


def bisect_increasing(fn: Callable[[float], float], lo: float, hi: float,
                      iterations: int = 200) -> float:
    """Root of an increasing function ``fn`` on ``[lo, hi]`` by bisection.

    Used for the monotone fixed-point equations (e.g. Eq. 10 of the
    paper), where monotonicity guarantees uniqueness without relying on
    polynomial form.
    """
    f_lo, f_hi = fn(lo), fn(hi)
    if f_lo > 0 or f_hi < 0:
        raise RootError(
            f"no sign change on [{lo}, {hi}]: f(lo)={f_lo}, f(hi)={f_hi}")
    for _ in range(iterations):
        mid = 0.5 * (lo + hi)
        if fn(mid) < 0:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)
