"""Generic proportional-fair optimum with probing cost (NUM solver).

The paper's per-scenario "theoretical optimum with probing cost" curves
come from hand-derived allocations (Appendices A-B).  This module solves
the same problem on *arbitrary* topologies::

    maximize    sum_u log(sum_{r in R_u} x_r)
    subject to  sum_{r ni l} x_r <= C_l        for every link l
                x_r >= floor_r                 (1 MSS per RTT probing)

via SLSQP, reusing the :class:`~repro.fluid.network.FluidNetwork`
structure (capacities are taken from each link's loss model).  It is used
to cross-check the closed forms and to compute optimum baselines for
topologies without a closed form (e.g. FatTrees).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.fluid.network import FluidNetwork


@dataclass
class OptimumResult:
    """Solution of the proportional-fair problem."""

    rates: np.ndarray
    user_totals: np.ndarray
    success: bool
    message: str

    def total(self) -> float:
        return float(np.sum(self.rates))


def proportional_fair(network: FluidNetwork, *,
                      floor_packets: float = 1.0,
                      x0: np.ndarray | None = None) -> OptimumResult:
    """Proportional-fair rates with a per-route probing floor.

    ``floor_packets`` is the minimum window in packets; route ``r`` must
    carry at least ``floor_packets / rtt_r``.  Raises ``ValueError`` if
    the floors alone violate a capacity constraint.
    """
    n_routes = network.n_routes
    rtts = network.rtt_array()
    floor = (floor_packets / rtts if floor_packets > 0
             else np.zeros(n_routes))
    capacities = np.array([network.loss_model(l).capacity
                           for l in range(network.n_links)])
    if np.any(network.link_rates(floor) > capacities + 1e-12):
        raise ValueError("probing floors alone exceed a link capacity")

    # Incidence matrix A[l, r] = 1 if route r crosses link l.
    incidence = np.zeros((network.n_links, n_routes))
    for route, links in enumerate(network.links_of_route):
        for link in links:
            incidence[link, route] = 1.0

    user_masks = []
    for routes in network.routes_of_user:
        mask = np.zeros(n_routes)
        mask[routes] = 1.0
        user_masks.append(mask)
    user_matrix = np.vstack(user_masks)

    def objective(x: np.ndarray) -> float:
        totals = user_matrix @ x
        return -float(np.sum(np.log(np.maximum(totals, 1e-12))))

    def gradient(x: np.ndarray) -> np.ndarray:
        totals = np.maximum(user_matrix @ x, 1e-12)
        return -(user_matrix.T @ (1.0 / totals))

    constraints = [{
        "type": "ineq",
        "fun": lambda x: capacities - incidence @ x,
        "jac": lambda x: -incidence,
    }]
    bounds = [(f, None) for f in floor]
    if x0 is None:
        # Start from an even split of each link's slack capacity.
        x0 = np.maximum(floor, capacities.min() / max(n_routes, 1) * 0.5)

    result = optimize.minimize(
        objective, x0, jac=gradient, bounds=bounds,
        constraints=constraints, method="SLSQP",
        options={"maxiter": 500, "ftol": 1e-10})
    rates = np.maximum(result.x, floor)
    return OptimumResult(rates=rates,
                         user_totals=network.user_totals(rates),
                         success=bool(result.success),
                         message=str(result.message))
