"""Closed-form analysis of Scenario C (Section III-C).

N1 multipath users connect to a private AP1 (per-user capacity ``C1``)
and to a shared AP2 (capacity ``N2*C2``) where N2 single-path TCP users
live.  All RTTs are equal.

For ``C1/C2 > 1/(2 + N1/N2)`` (AP1 less congested, ``p1 < p2``), LIA's
fixed point gives ``z = sqrt(p1/p2)`` as the unique positive root of::

    z^3 + (N1/N2) z^2 + z - C2/C1 = 0

with normalized throughputs ``(x1+x2)/C1 = 1 + z^2`` for multipath users
and ``y/C2 = 1 - (N1 C1)/(N2 C2) z^2`` for single-path users — the
multipath users grab AP2 bandwidth they do not need (problem P2).

Below the threshold (``p1 > p2``) every user ends with the same rate
``C1 + (C2 - C1)/(1 + N1/N2)`` (equal to ``(C1+C2)/2`` when N1 = N2,
as stated in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass

from .roots import unique_positive_root
from .tcp import loss_for_rate


@dataclass
class ScenarioCResult:
    """Per-user rates and losses for one scenario C setting."""

    n1: int
    n2: int
    c1: float
    c2: float
    rtt: float
    x1: float          # multipath rate over AP1
    x2: float          # multipath rate over AP2
    y: float           # single-path rate
    p1: float          # loss probability at AP1
    p2: float          # loss probability at AP2

    @property
    def multipath_normalized(self) -> float:
        """``(x1+x2)/C1``, the paper's normalized multipath throughput."""
        return (self.x1 + self.x2) / self.c1

    @property
    def singlepath_normalized(self) -> float:
        """``y/C2``."""
        return self.y / self.c2


def lia_threshold(n1: int, n2: int) -> float:
    """``C1/C2`` below which LIA users no longer dominate AP2."""
    return 1.0 / (2.0 + n1 / n2)


def lia_fixed_point(n1: int, n2: int, c1: float, c2: float,
                    rtt: float) -> ScenarioCResult:
    """LIA equilibrium of scenario C (both regimes)."""
    _validate(n1, n2, c1, c2, rtt)
    ratio_users = n1 / n2
    if c1 / c2 > lia_threshold(n1, n2):
        # AP1 is the better path: p1 < p2, z = sqrt(p1/p2) in (0, 1].
        z = unique_positive_root([1.0, ratio_users, 1.0, -c2 / c1])
        x1 = c1
        x2 = c1 * z * z
        y = c2 - ratio_users * c1 * z * z
        total = c1 * (1.0 + z * z)     # = sqrt(2/p1)/rtt
        p1 = loss_for_rate(total, rtt)
        p2 = p1 / (z * z)
    else:
        # AP2 is the better path: p1 > p2, u = sqrt(p1/p2) >= 1.
        u_sq = (c2 - c1) / (c1 * (1.0 + ratio_users))
        total = c1 * (1.0 + u_sq)      # = sqrt(2/p2)/rtt
        x1 = c1
        x2 = total - c1
        y = total
        p2 = loss_for_rate(total, rtt)
        p1 = p2 * u_sq
    return ScenarioCResult(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt,
                           x1=x1, x2=x2, y=y, p1=p1, p2=p2)


def fair_allocation(n1: int, n2: int, c1: float, c2: float) -> tuple[float,
                                                                     float]:
    """Idealised proportionally fair rates (no probing traffic).

    Multipath users use AP2 only when pooling helps (``C1 < pooled``);
    otherwise they keep to AP1 and single-path users keep all of AP2.
    Returns ``(multipath_rate, singlepath_rate)``.
    """
    pooled = (n1 * c1 + n2 * c2) / (n1 + n2)
    if c1 < pooled:
        return pooled, pooled
    return c1, c2


def optimum_with_probing(n1: int, n2: int, c1: float, c2: float,
                         rtt: float) -> ScenarioCResult:
    """Optimum with 1-packet-per-RTT probing (Appendix B, Case 1 logic)."""
    _validate(n1, n2, c1, c2, rtt)
    probe = 1.0 / rtt
    pooled = (n1 * c1 + n2 * c2) / (n1 + n2)
    if pooled >= c1 + probe:
        # Pooling helps: every user converges to the fair share.
        multipath, single = pooled, pooled
        x2 = pooled - c1
    else:
        # AP2 cannot help the multipath users: park at the probing floor.
        x2 = probe
        multipath = c1 + probe
        single = c2 - (n1 / n2) * probe
    if single <= 0:
        raise ValueError("probing traffic saturates AP2 in this setting")
    p1 = loss_for_rate(c1 if c1 > 0 else probe, rtt)
    p2 = loss_for_rate(single, rtt)
    return ScenarioCResult(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt,
                           x1=multipath - x2, x2=x2, y=single, p1=p1, p2=p2)


def olia_prediction(n1: int, n2: int, c1: float, c2: float,
                    rtt: float) -> ScenarioCResult:
    """OLIA's predicted equilibrium (Theorem 1 + probing floor).

    When AP1 alone serves the multipath users at least as well as AP2
    serves the TCP users, OLIA parks its AP2 subflow at the probing floor
    (Theorems 1 and 4); otherwise it pools towards the fair share —
    i.e. the optimum with probing cost.
    """
    return optimum_with_probing(n1, n2, c1, c2, rtt)


def _validate(n1: int, n2: int, c1: float, c2: float, rtt: float) -> None:
    if n1 <= 0 or n2 <= 0:
        raise ValueError("user counts must be positive")
    if c1 <= 0 or c2 <= 0:
        raise ValueError("capacities must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")
