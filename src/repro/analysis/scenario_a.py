"""Closed-form analysis of Scenario A (Section III-A, Appendix A).

N1 *type1* users each have a private high-speed AP and download from a
streaming server whose access link has capacity ``N1*C1``; they may open a
second MPTCP subflow through a shared AP of capacity ``N2*C2``, which also
serves N2 single-path *type2* users.  All RTTs are equal.

With LIA, writing ``z = sqrt(p1/p2)``, the capacity constraints and the
LIA fixed point (Eq. 2) give Eq. (10)::

    z + (N1/N2) * z^2 / (1 + 2 z^2) = C2 / C1

Type1 users always obtain ``C1`` (their bottleneck is the server), so
upgrading them to MPTCP brings them nothing, while type2 users drop to
``y = z * C1`` — problem P1.

The *theoretical optimum with probing cost* sends one packet per RTT on
the shared AP: ``y = C2 - (N1/N2)/rtt``; OLIA achieves this by Theorem 1.

All capacities are per-user values in packets/s; rates returned are
per-user packets/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from .roots import bisect_increasing
from .tcp import loss_for_rate


@dataclass
class ScenarioAResult:
    """Per-user rates and loss probabilities for one scenario A setting."""

    n1: int
    n2: int
    c1: float
    c2: float
    rtt: float
    x1: float           # type1 rate over the private AP
    x2: float           # type1 rate over the shared AP
    y: float            # type2 rate
    p1: float           # loss probability at the server access link
    p2: float           # loss probability at the shared AP

    @property
    def type1_normalized(self) -> float:
        """Normalized type1 throughput ``(x1+x2)/C1``."""
        return (self.x1 + self.x2) / self.c1

    @property
    def type2_normalized(self) -> float:
        """Normalized type2 throughput ``y/C2``."""
        return self.y / self.c2

    def shared_ap_load(self) -> float:
        """Aggregate load offered to the shared AP (pkt/s)."""
        return self.n1 * self.x2 + self.n2 * self.y


def lia_fixed_point(n1: int, n2: int, c1: float, c2: float,
                    rtt: float) -> ScenarioAResult:
    """LIA equilibrium of scenario A via Eq. (10).

    Returns per-user rates; only the ratios ``C1/C2`` and ``N1/N2``
    determine the normalized throughputs, but absolute values fix the
    loss probabilities.
    """
    _validate(n1, n2, c1, c2, rtt)
    ratio_users = n1 / n2
    target = c2 / c1

    def eq10(z: float) -> float:
        return z + ratio_users * z * z / (1.0 + 2.0 * z * z) - target

    # eq10 is increasing in z; bracket generously.
    z = bisect_increasing(eq10, 1e-12, max(10.0 * target, 10.0))
    p1 = loss_for_rate(c1, rtt)      # C1 = sqrt(2/p1)/rtt
    p2 = p1 / (z * z)
    x2 = c1 * z * z / (2.0 * z * z + 1.0)   # x2 = C1 / (2 + p2/p1)
    x1 = c1 - x2
    y = z * c1
    return ScenarioAResult(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt,
                           x1=x1, x2=x2, y=y, p1=p1, p2=p2)


def optimum_with_probing(n1: int, n2: int, c1: float, c2: float,
                         rtt: float) -> ScenarioAResult:
    """Theoretical optimum with probing cost (Appendix A.2).

    The shared AP cannot help type1 users, so an optimal window-based
    algorithm parks the second subflow at the 1-packet-per-RTT floor.
    """
    _validate(n1, n2, c1, c2, rtt)
    probe = 1.0 / rtt
    x2 = probe
    # The type1 total remains capped at C1 by the server access link.
    x1 = max(c1 - x2, 0.0)
    y = c2 - (n1 / n2) * probe
    if y <= 0:
        raise ValueError(
            "probing traffic alone saturates the shared AP; "
            "increase c2*rtt or reduce n1/n2")
    p1 = loss_for_rate(c1, rtt)
    p2 = loss_for_rate(y, rtt)
    return ScenarioAResult(n1=n1, n2=n2, c1=c1, c2=c2, rtt=rtt,
                           x1=x1, x2=x2, y=y, p1=p1, p2=p2)


def olia_prediction(n1: int, n2: int, c1: float, c2: float,
                    rtt: float) -> ScenarioAResult:
    """OLIA's predicted equilibrium.

    By Theorem 1 OLIA uses only the best path.  A type1 user's shared-AP
    path crosses both the server link and the shared AP (loss
    ``p1 + p2 > p1``), so it is never best: OLIA sends only probing
    traffic there, matching the optimum with probing cost.
    """
    return optimum_with_probing(n1, n2, c1, c2, rtt)


def _validate(n1: int, n2: int, c1: float, c2: float, rtt: float) -> None:
    if n1 <= 0 or n2 <= 0:
        raise ValueError("user counts must be positive")
    if c1 <= 0 or c2 <= 0:
        raise ValueError("capacities must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")
