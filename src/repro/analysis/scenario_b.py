"""Closed-form analysis of Scenario B (Section III-B, Appendix B).

Four ISPs: X, Y, Z, T.  N Blue users download from servers in Z over two
paths (via X and via Y); N Red users download from servers in T, either
over Y only (single-path) or additionally over a path that crosses both X
and T (multipath, the "upgrade").  Only links X and T are bottlenecks,
with aggregate capacities ``CX`` and ``CT``; all RTTs are equal.

Rates per user: Blue sends ``x1`` via X and ``x2`` via T; Red sends
``y1`` on the dashed X+T path and ``y2`` via Y (which also lands on T).
Capacity constraints: ``CX = N (x1 + y1)`` and ``CT = N (x2 + y1 + y2)``.

With LIA and Red upgraded, Appendix B reduces the fixed point to

* ``CX/CT < 5/9`` — ``z = pX/pT > 1`` root of
  ``2 z^2 + z (5 - 2 CT/CX) + 2 - 3 CT/CX = 0``;
* ``CX/CT > 5/9`` — ``s = sqrt(pX/pT) < 1`` root of
  ``s^5 + s^4 + s^3 (3-R) + s^2 (2-R) + s (2-R) - 2R = 0`` with
  ``R = CT/CX``.

The headline result (Table I): upgrading Red *lowers everyone's rate*.
With the optimum-with-probing (Eqs. 11-14) — and hence with OLIA — the
drop is only the probing overhead ``N/rtt`` packets/s.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import scenario_c
from .roots import unique_positive_root
from .tcp import loss_for_rate


@dataclass
class ScenarioBResult:
    """Per-user rates (pkt/s) for one scenario B configuration."""

    n_users: int        # users per class (NB = NR = N)
    cx: float           # aggregate capacity of ISP X (pkt/s)
    ct: float           # aggregate capacity of ISP T (pkt/s)
    rtt: float
    x1: float           # Blue via X
    x2: float           # Blue via T
    y1: float           # Red via the dashed X+T path (0 if single-path)
    y2: float           # Red via Y (lands on T)
    p_x: float          # loss probability at X
    p_t: float          # loss probability at T

    @property
    def blue_rate(self) -> float:
        """Per-user Blue throughput."""
        return self.x1 + self.x2

    @property
    def red_rate(self) -> float:
        """Per-user Red throughput."""
        return self.y1 + self.y2

    @property
    def aggregate(self) -> float:
        """Aggregate throughput over all 2N users (pkt/s)."""
        return self.n_users * (self.blue_rate + self.red_rate)

    @property
    def blue_normalized(self) -> float:
        """The paper's Fig. 4 normalisation ``N (x1+x2) / CT``."""
        return self.n_users * self.blue_rate / self.ct

    @property
    def red_normalized(self) -> float:
        """``N (y1+y2) / CT``."""
        return self.n_users * self.red_rate / self.ct


#: ``CX/CT`` at which the LIA fixed point switches polynomial branch.
BRANCH_THRESHOLD = 5.0 / 9.0


def lia_multipath(n_users: int, cx: float, ct: float,
                  rtt: float) -> ScenarioBResult:
    """LIA equilibrium with Red users upgraded to MPTCP (Appendix B.1)."""
    _validate(n_users, cx, ct, rtt)
    ratio = ct / cx
    if cx / ct < BRANCH_THRESHOLD:
        # p_X > p_T: z = pX/pT is the root > 1 of the quadratic.
        z = _quadratic_root(ratio)
        # Total TCP-equivalent rate on the best (T-side) path.
        s_t = ct / (n_users * (z / (1.0 + z) + 1.0))
        x1 = s_t / (1.0 + z)
        x2 = s_t * z / (1.0 + z)
        y1 = s_t / (2.0 + z)
        y2 = (1.0 + z) * y1
        p_t = loss_for_rate(s_t, rtt)
        p_x = z * p_t
    else:
        # p_T > p_X: s = sqrt(pX/pT) < 1 is the positive quintic root.
        s = unique_positive_root(
            [1.0, 1.0, 3.0 - ratio, 2.0 - ratio, 2.0 - ratio, -2.0 * ratio])
        s_x = ct / (n_users * (s * s / (1.0 + s * s) + s))
        x1 = s_x / (1.0 + s * s)
        x2 = s_x * s * s / (1.0 + s * s)
        y1 = s_x * s / (2.0 + s * s)
        y2 = (1.0 + s * s) * y1
        p_x = loss_for_rate(s_x, rtt)
        p_t = p_x / (s * s)
    return ScenarioBResult(n_users=n_users, cx=cx, ct=ct, rtt=rtt,
                           x1=x1, x2=x2, y1=y1, y2=y2, p_x=p_x, p_t=p_t)


def lia_singlepath(n_users: int, cx: float, ct: float,
                   rtt: float) -> ScenarioBResult:
    """LIA equilibrium with Red users on Y only.

    Structurally identical to scenario C: Blue are the multipath users
    with a "private" AP (X, per-user capacity CX/N) and a shared AP (T,
    per-user capacity CT/N); Red are the single-path users.
    """
    _validate(n_users, cx, ct, rtt)
    inner = scenario_c.lia_fixed_point(
        n1=n_users, n2=n_users, c1=cx / n_users, c2=ct / n_users, rtt=rtt)
    return ScenarioBResult(n_users=n_users, cx=cx, ct=ct, rtt=rtt,
                           x1=inner.x1, x2=inner.x2, y1=0.0, y2=inner.y,
                           p_x=inner.p1, p_t=inner.p2)


def optimum_singlepath(n_users: int, cx: float, ct: float,
                       rtt: float) -> ScenarioBResult:
    """Optimum with probing cost, Red on Y only (Eqs. 11-12)."""
    _validate(n_users, cx, ct, rtt)
    probe = 1.0 / rtt
    cx_user, ct_user = cx / n_users, ct / n_users
    pooled = (cx_user + ct_user) / 2.0
    blue = max(cx_user + probe, pooled)
    red = min(ct_user - probe, pooled)
    x2 = blue - cx_user
    if red <= 0:
        raise ValueError("probing traffic saturates ISP T in this setting")
    return ScenarioBResult(
        n_users=n_users, cx=cx, ct=ct, rtt=rtt,
        x1=cx_user, x2=x2, y1=0.0, y2=red,
        p_x=loss_for_rate(cx_user, rtt), p_t=loss_for_rate(red, rtt))


def optimum_multipath(n_users: int, cx: float, ct: float,
                      rtt: float) -> ScenarioBResult:
    """Optimum with probing cost, Red upgraded (Eqs. 13-14).

    Red's extra path shares the T bottleneck with its Y path, so the
    upgrade can only add probing overhead: every user loses about
    ``probe/2`` compared to :func:`optimum_singlepath`.
    """
    _validate(n_users, cx, ct, rtt)
    probe = 1.0 / rtt
    cx_user, ct_user = cx / n_users, ct / n_users
    pooled = (cx_user + ct_user) / 2.0
    blue = max(cx_user, pooled - probe / 2.0)
    red = min(ct_user - probe, pooled - probe / 2.0)
    if red <= 0:
        raise ValueError("probing traffic saturates ISP T in this setting")
    x1 = cx_user - probe
    x2 = blue - x1
    y1 = probe
    y2 = red - y1
    return ScenarioBResult(
        n_users=n_users, cx=cx, ct=ct, rtt=rtt,
        x1=x1, x2=x2, y1=y1, y2=y2,
        p_x=loss_for_rate(cx_user, rtt), p_t=loss_for_rate(red, rtt))


#: OLIA achieves the optimum with probing cost (Theorem 1 + 1-MSS floor).
olia_singlepath = optimum_singlepath
olia_multipath = optimum_multipath


def _quadratic_root(ratio: float) -> float:
    """Root > 1 of ``2 z^2 + z (5 - 2 ratio) + 2 - 3 ratio`` (Appendix B.1)."""
    roots = unique_positive_root([2.0, 5.0 - 2.0 * ratio, 2.0 - 3.0 * ratio])
    return roots


def _validate(n_users: int, cx: float, ct: float, rtt: float) -> None:
    if n_users <= 0:
        raise ValueError("n_users must be positive")
    if cx <= 0 or ct <= 0:
        raise ValueError("capacities must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")
