"""The TCP loss-throughput formula and its inverses.

The paper relies throughout on the classic square-root law (reference
[22]): a regular TCP connection over a path with loss probability ``p``
and round-trip time ``rtt`` achieves ``x = sqrt(2/p) / rtt`` packets per
second.  These helpers convert between rates, losses and windows.
"""

from __future__ import annotations

import math


def tcp_rate(loss_prob: float, rtt: float) -> float:
    """Throughput ``sqrt(2/p)/rtt`` in packets per second."""
    if loss_prob <= 0:
        raise ValueError("loss probability must be positive")
    if rtt <= 0:
        raise ValueError("rtt must be positive")
    return math.sqrt(2.0 / loss_prob) / rtt


def loss_for_rate(rate: float, rtt: float) -> float:
    """Loss probability at which TCP sustains ``rate`` (inverse formula)."""
    if rate <= 0 or rtt <= 0:
        raise ValueError("rate and rtt must be positive")
    return 2.0 / (rate * rtt) ** 2


def window_for_loss(loss_prob: float) -> float:
    """Mean window ``sqrt(2/p)`` in packets."""
    if loss_prob <= 0:
        raise ValueError("loss probability must be positive")
    return math.sqrt(2.0 / loss_prob)
