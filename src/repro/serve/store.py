"""Persistent content-hash result store with an in-memory LRU front.

Grown out of the ``RunSpec.content_hash()`` cache pattern in
``experiments/sweep.py``: entries are small pickles named ``<key>.pkl``
in a flat directory, written atomically (tmpfile + rename via
``repro.util.atomics``) so concurrent writers — other processes, other
hosts on a shared filesystem — can race on the same key and readers
still only ever observe complete entries.  ``SweepRunner`` reads and
writes through this class, so a serve store and a sweep cache pointed
at the same directory share results.

On top of the disk layer:

* an **in-memory LRU** (``memory_entries``) absorbs the hot set without
  a stat+open per hit;
* an optional **disk size bound** (``max_entries``) evicts the
  oldest-mtime entries once the directory outgrows it;
* **corrupt/truncated entries** read as misses, are deleted so the next
  writer lands a clean entry, and are counted;
* :class:`StoreStats` tracks hits (memory vs disk), misses, writes,
  evictions, corrupt entries, and the age of disk hits.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Optional
import os
import time

from ..util.atomics import MISSING, atomic_pickle, load_pickle

__all__ = ["MISSING", "ResultStore", "StoreStats"]


@dataclass
class StoreStats:
    """Running counters over a :class:`ResultStore`'s lifetime."""

    hits: int = 0
    memory_hits: int = 0
    misses: int = 0
    writes: int = 0
    evictions: int = 0
    corrupt: int = 0
    hit_age_seconds: float = 0.0

    @property
    def disk_hits(self) -> int:
        return self.hits - self.memory_hits

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    @property
    def mean_hit_age_seconds(self) -> float:
        return self.hit_age_seconds / self.disk_hits if self.disk_hits else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "writes": self.writes,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "hit_rate": self.hit_rate,
            "mean_hit_age_seconds": self.mean_hit_age_seconds,
        }


class ResultStore:
    """Content-keyed persistent store: ``get``/``put`` by hash string.

    Parameters
    ----------
    directory : path-like
        Flat directory of ``<key>.pkl`` entries; created on first write.
    max_entries : int, optional
        Disk size bound.  ``None`` (the default) never evicts — the
        right choice for sweep caches, which are resume journals.  When
        set, a put that pushes the directory past the bound evicts the
        oldest-mtime entries back down to it (approximate under
        concurrent writers, re-synced by a directory scan each sweep).
    memory_entries : int
        In-memory LRU capacity in front of the disk layer; ``0``
        disables it (every hit is a disk read).
    """

    def __init__(self, directory: "str | os.PathLike", *,
                 max_entries: Optional[int] = None,
                 memory_entries: int = 4096) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be >= 1 or None")
        if memory_entries < 0:
            raise ValueError("memory_entries must be >= 0")
        self.directory = Path(directory)
        self.max_entries = max_entries
        self.memory_entries = memory_entries
        self.stats = StoreStats()
        self._memory: "OrderedDict[str, Any]" = OrderedDict()
        self._disk_count: Optional[int] = None

    # -- paths ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    # -- reads ------------------------------------------------------------------
    def get(self, key: str, default: Any = MISSING) -> Any:
        """Fetch ``key``; ``default`` on a miss.

        Memory first, then disk.  A disk entry that fails to unpickle is
        deleted (so a recompute can land a clean entry) and counted in
        ``stats.corrupt``; the call reports a miss.
        """
        if key in self._memory:
            self._memory.move_to_end(key)
            self.stats.hits += 1
            self.stats.memory_hits += 1
            return self._memory[key]
        path = self.path_for(key)
        value = load_pickle(path, MISSING)
        if value is MISSING:
            if path.exists():
                # Present but unreadable: torn or corrupt.  Delete it so
                # the recompute's write is not mistaken for still-bad.
                self.stats.corrupt += 1
                try:
                    os.unlink(path)
                except OSError:
                    pass
            self.stats.misses += 1
            return default
        self.stats.hits += 1
        try:
            self.stats.hit_age_seconds += max(
                0.0, time.time() - path.stat().st_mtime)
        except OSError:
            pass
        self._remember(key, value)
        return value

    # -- writes -----------------------------------------------------------------
    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key``; ``True`` when it hit the disk.

        Always lands in the memory LRU.  The disk write is best-effort
        (an unpicklable value or a full disk degrades to memory-only).
        """
        self._remember(key, value)
        path = self.path_for(key)
        was_new = not path.exists()
        if not atomic_pickle(path, value):
            return False
        self.stats.writes += 1
        if self.max_entries is not None:
            if self._disk_count is not None and was_new:
                self._disk_count += 1
            self._maybe_evict()
        return True

    # -- internals --------------------------------------------------------------
    def _remember(self, key: str, value: Any) -> None:
        if self.memory_entries == 0:
            return
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    def _maybe_evict(self) -> None:
        """Keep the disk entry count within ``max_entries``.

        The cached count drifts under concurrent writers; every sweep
        re-syncs it from a real directory scan, so the bound holds up to
        one put's worth of slack per process.
        """
        if self._disk_count is None:
            self._disk_count = sum(
                1 for _ in self.directory.glob("*.pkl"))
        if self._disk_count <= self.max_entries:
            return
        entries = []
        for path in self.directory.glob("*.pkl"):
            try:
                entries.append((path.stat().st_mtime, path))
            except OSError:
                continue
        self._disk_count = len(entries)
        if self._disk_count <= self.max_entries:
            return
        entries.sort()
        for _, path in entries[:self._disk_count - self.max_entries]:
            try:
                os.unlink(path)
            except OSError:
                continue
            self.stats.evictions += 1
            self._disk_count -= 1
