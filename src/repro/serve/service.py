"""The allocation-query service: admission, batching, dedup, memoization.

A query names a topology (links with loss models, users with a registry
algorithm, routes with RTTs) plus solver parameters, and asks for the
equilibrium allocation — exactly one point of the K-dimension of
:func:`~repro.fluid.equilibrium.solve_fixed_point_batch`.  The service
exploits that:

* queries are **validated at admission** against the algorithm registry
  (unknown algorithm or bad params fail fast, before any batching);
* a query whose content hash is **in the store** returns immediately;
* an identical query already **in flight** shares the same future
  instead of being solved twice;
* the rest **coalesce**: queries with the same *structure* (route
  incidence, loss-model families, solver knobs) accumulate for at most
  ``batch_window`` seconds or ``max_batch`` entries, then solve as one
  ``solve_fixed_point_batch`` call on an executor thread.  Per-user
  algorithms may differ across the batch — a
  :class:`~repro.fluid.equilibrium.PerPointRuleSet` evaluates each
  point's own rule row-wise, keeping every row bitwise identical to a
  standalone ``solve_fixed_point`` call.

``run_server`` wraps the in-process :class:`AllocationService` in a
newline-delimited-JSON TCP protocol for out-of-process clients.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Any, Dict, List, Optional, Tuple

from ..core.registry import get_spec
from ..fluid.equilibrium import (
    PerPointRuleSet,
    solve_fixed_point,
    solve_fixed_point_batch,
)
from ..fluid.loss import PowerLoss, RedLoss, SharpLoss
from ..fluid.network import FluidNetwork
from .store import MISSING, ResultStore

__all__ = [
    "LinkSpec",
    "UserSpec",
    "RouteSpec",
    "AllocationQuery",
    "AllocationService",
    "solve_query",
    "run_server",
]

_LOSS_MODELS = ("power", "sharp", "red")


@lru_cache(maxsize=1024)
def _cached_rule(algorithm: str, params: Tuple[Tuple[str, Any], ...]):
    """One allocation rule per (algorithm, params) — rules are pure
    functions of ``(p, rtt)``, so sharing them across queries is safe
    and makes same-algorithm batch rows group for vectorization."""
    return get_spec(algorithm).make_allocation(**dict(params))


@dataclass(frozen=True)
class LinkSpec:
    """One link: capacity in packets/s plus a loss-model family."""

    capacity: float
    model: str = "sharp"
    p_at_capacity: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.capacity > 0:
            raise ValueError(f"capacity must be > 0, got {self.capacity}")
        if self.model not in _LOSS_MODELS:
            raise ValueError(
                f"model must be one of {_LOSS_MODELS}, got {self.model!r}")
        if self.p_at_capacity is not None and not self.p_at_capacity > 0:
            raise ValueError("p_at_capacity must be > 0 when given")

    def build(self):
        if self.model == "power":
            if self.p_at_capacity is None:
                return PowerLoss(self.capacity)
            return PowerLoss(self.capacity, p_at_capacity=self.p_at_capacity)
        if self.model == "sharp":
            if self.p_at_capacity is None:
                return SharpLoss(self.capacity)
            return SharpLoss(self.capacity, p_at_capacity=self.p_at_capacity)
        if self.p_at_capacity is None:
            return RedLoss(self.capacity)
        return RedLoss(self.capacity, p_max=self.p_at_capacity)


@dataclass(frozen=True)
class UserSpec:
    """One user: a registry algorithm name plus keyword params."""

    algorithm: str = "tcp"
    params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        # Canonical key order so two spellings of the same params hash
        # (and therefore dedup/memoize) identically.
        object.__setattr__(
            self, "params", tuple(sorted(tuple(self.params))))


@dataclass(frozen=True)
class RouteSpec:
    """One route: owning user, link ids traversed, round-trip time."""

    user: int
    links: Tuple[int, ...]
    rtt: float

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        if not self.links:
            raise ValueError("a route must traverse at least one link")
        if not self.rtt > 0:
            raise ValueError(f"rtt must be > 0, got {self.rtt}")


@dataclass(frozen=True)
class AllocationQuery:
    """A complete equilibrium-allocation question.

    ``content_hash()`` identifies the query exactly (memoization key);
    ``structure_key()`` identifies everything ``solve_fixed_point_batch``
    requires to be shared across a batch — route incidence, loss-model
    families, and solver knobs — while capacities, RTTs, loss knobs,
    and per-user algorithms are free to vary point by point.
    """

    links: Tuple[LinkSpec, ...]
    users: Tuple[UserSpec, ...]
    routes: Tuple[RouteSpec, ...]
    floor_packets: float = 1.0
    damping: float = 0.15
    tol: float = 1e-8
    max_iter: int = 20000

    def __post_init__(self) -> None:
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "users", tuple(self.users))
        object.__setattr__(self, "routes", tuple(self.routes))
        if not self.links or not self.users or not self.routes:
            raise ValueError(
                "a query needs at least one link, user, and route")
        for route in self.routes:
            if not 0 <= route.user < len(self.users):
                raise ValueError(
                    f"route user {route.user} out of range "
                    f"(have {len(self.users)} users)")
            for link in route.links:
                if not 0 <= link < len(self.links):
                    raise ValueError(
                        f"route link {link} out of range "
                        f"(have {len(self.links)} links)")

    # -- identity ---------------------------------------------------------------
    def content_hash(self) -> str:
        return hashlib.sha256(repr(self).encode()).hexdigest()

    def structure_key(self) -> Tuple:
        return (
            tuple((r.user, r.links) for r in self.routes),
            tuple(link.model for link in self.links),
            self.floor_packets, self.damping, self.tol, self.max_iter,
        )

    # -- materialization --------------------------------------------------------
    def to_network(self) -> FluidNetwork:
        net = FluidNetwork()
        for link in self.links:
            net.add_link(link.build())
        for user in range(len(self.users)):
            net.add_user()
        for route in self.routes:
            net.add_route(route.user, list(route.links), route.rtt)
        return net

    def user_rules(self) -> List[Any]:
        """Registry admission: one equilibrium rule per user, or raise.

        Rules are shared across queries via :func:`_cached_rule`: two
        users running the same algorithm with the same params get the
        *same* rule object, which is what lets a heterogeneous batch's
        :class:`~repro.fluid.equilibrium.PerPointRuleSet` group their
        rows into one vectorized call instead of K scalar ones.
        """
        return [_cached_rule(user.algorithm, user.params)
                for user in self.users]

    # -- wire format ------------------------------------------------------------
    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "AllocationQuery":
        links = tuple(
            LinkSpec(capacity=float(item["capacity"]),
                     model=item.get("model", "sharp"),
                     p_at_capacity=item.get("p_at_capacity"))
            for item in payload["links"])
        users = tuple(
            UserSpec(algorithm=item.get("algorithm", "tcp"),
                     params=tuple((item.get("params") or {}).items()))
            for item in payload["users"])
        routes = tuple(
            RouteSpec(user=int(item["user"]),
                      links=tuple(int(li) for li in item["links"]),
                      rtt=float(item["rtt"]))
            for item in payload["routes"])
        return cls(links=links, users=users, routes=routes,
                   floor_packets=float(payload.get("floor_packets", 1.0)),
                   damping=float(payload.get("damping", 0.15)),
                   tol=float(payload.get("tol", 1e-8)),
                   max_iter=int(payload.get("max_iter", 20000)))


def _result_dict(net: FluidNetwork, point) -> Dict[str, Any]:
    return {
        "rates": [float(x) for x in point.rates],
        "user_totals": [float(t) for t in net.user_totals(point.rates)],
        "route_loss": [float(p) for p in point.route_loss],
        "iterations": int(point.iterations),
        "converged": bool(point.converged),
        "residual": float(point.residual),
    }


def solve_query(query: AllocationQuery) -> Dict[str, Any]:
    """Sequential baseline: one ``solve_fixed_point`` call per query.

    Batched service responses are bitwise identical to this (same rule,
    same damped iteration; the batch path is a contract-tested K=1
    generalization).
    """
    rules = query.user_rules()
    net = query.to_network()
    result = solve_fixed_point(
        net, dict(enumerate(rules)), floor_packets=query.floor_packets,
        damping=query.damping, tol=query.tol, max_iter=query.max_iter)
    return _result_dict(net, result)


def _solve_batch(entries: List[Tuple[AllocationQuery, List[Any]]]
                 ) -> List[Dict[str, Any]]:
    """Solve one structure-homogeneous batch (runs on an executor)."""
    if len(entries) == 1:
        return [solve_query(entries[0][0])]
    networks = [query.to_network() for query, _ in entries]
    n_users = len(entries[0][0].users)
    rules = {
        user: PerPointRuleSet([entry_rules[user]
                               for _, entry_rules in entries])
        for user in range(n_users)
    }
    first = entries[0][0]
    batch = solve_fixed_point_batch(
        networks, rules, floor_packets=first.floor_packets,
        damping=first.damping, tol=first.tol, max_iter=first.max_iter)
    return [_result_dict(networks[k], batch.result(k))
            for k in range(len(entries))]


@dataclass
class _Pending:
    key: str
    query: AllocationQuery
    rules: List[Any]
    future: "asyncio.Future" = field(repr=False, default=None)


class AllocationService:
    """In-process async facade over the batched equilibrium solver.

    Parameters
    ----------
    store : ResultStore, optional
        Memoization store; ``None`` disables memoization (every query
        solves, subject to in-flight dedup).
    batch_window : float
        Seconds a pending group waits for company before solving.
    max_batch : int
        Batch K cap; a group reaching it solves immediately.
    executor : concurrent.futures.Executor, optional
        Where batch solves run; the service owns a 2-thread pool when
        not given.
    """

    def __init__(self, store: Optional[ResultStore] = None, *,
                 batch_window: float = 0.002, max_batch: int = 128,
                 executor=None) -> None:
        if not batch_window >= 0:
            raise ValueError("batch_window must be >= 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.store = store
        self.batch_window = batch_window
        self.max_batch = max_batch
        self._executor = executor or ThreadPoolExecutor(max_workers=2)
        self._own_executor = executor is None
        self._pending: Dict[Tuple, List[_Pending]] = {}
        self._timers: Dict[Tuple, asyncio.TimerHandle] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._tasks: set = set()
        # Counters for the load harness / BENCH_serve report.
        self.admitted = 0
        self.store_hits = 0
        self.dedup_hits = 0
        self.batch_histogram: Dict[int, int] = {}

    # -- the query path ---------------------------------------------------------
    async def query(self, query: AllocationQuery) -> Dict[str, Any]:
        """Answer one allocation query (await-able, memoized, batched)."""
        rules = query.user_rules()  # admission: raises on bad algorithm
        key = query.content_hash()
        if self.store is not None:
            value = self.store.get(key, MISSING)
            if value is not MISSING:
                self.store_hits += 1
                return value
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.dedup_hits += 1
            return await asyncio.shield(inflight)
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        self._inflight[key] = future
        self.admitted += 1
        skey = query.structure_key()
        group = self._pending.setdefault(skey, [])
        group.append(_Pending(key, query, rules, future))
        if len(group) >= self.max_batch:
            self._fire(skey)
        elif skey not in self._timers:
            self._timers[skey] = loop.call_later(
                self.batch_window, self._fire, skey)
        return await asyncio.shield(future)

    def _fire(self, skey: Tuple) -> None:
        timer = self._timers.pop(skey, None)
        if timer is not None:
            timer.cancel()
        group = self._pending.pop(skey, None)
        if not group:
            return
        task = asyncio.get_running_loop().create_task(
            self._solve_group(group))
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _solve_group(self, group: List[_Pending]) -> None:
        size = len(group)
        self.batch_histogram[size] = self.batch_histogram.get(size, 0) + 1
        loop = asyncio.get_running_loop()
        entries = [(item.query, item.rules) for item in group]
        try:
            results = await loop.run_in_executor(
                self._executor, _solve_batch, entries)
        except Exception as exc:
            for item in group:
                self._inflight.pop(item.key, None)
                if not item.future.done():
                    item.future.set_exception(exc)
            return
        for item, result in zip(group, results):
            if self.store is not None:
                self.store.put(item.key, result)
            self._inflight.pop(item.key, None)
            if not item.future.done():
                item.future.set_result(result)

    # -- bookkeeping ------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        batches = sum(self.batch_histogram.values())
        solved = sum(size * count
                     for size, count in self.batch_histogram.items())
        return {
            "admitted": self.admitted,
            "store_hits": self.store_hits,
            "dedup_hits": self.dedup_hits,
            "batches": batches,
            "solved": solved,
            "mean_batch_size": solved / batches if batches else 0.0,
            "max_batch_size": max(self.batch_histogram, default=0),
            "batch_histogram": {
                str(size): count
                for size, count in sorted(self.batch_histogram.items())},
        }

    async def drain(self) -> None:
        """Flush pending groups and wait for in-flight solves."""
        for skey in list(self._pending):
            self._fire(skey)
        while self._tasks:
            await asyncio.gather(*list(self._tasks),
                                 return_exceptions=True)

    def close(self) -> None:
        if self._own_executor:
            self._executor.shutdown(wait=False)


# -- TCP front-end ---------------------------------------------------------------
async def _handle_client(service: AllocationService,
                         reader: asyncio.StreamReader,
                         writer: asyncio.StreamWriter) -> None:
    while True:
        line = await reader.readline()
        if not line:
            break
        try:
            payload = json.loads(line)
            if payload.get("op") == "stats":
                response = {"ok": True, "result": service.stats()}
            else:
                query = AllocationQuery.from_dict(payload)
                response = {"ok": True,
                            "result": await service.query(query)}
        except Exception as exc:  # protocol boundary: report, don't die
            response = {"ok": False,
                        "error": f"{type(exc).__name__}: {exc}"}
        writer.write((json.dumps(response) + "\n").encode())
        try:
            await writer.drain()
        except ConnectionError:
            break
    writer.close()


async def run_server(host: str = "127.0.0.1", port: int = 8642, *,
                     service: Optional[AllocationService] = None,
                     store_dir: "str | None" = None,
                     batch_window: float = 0.002,
                     max_batch: int = 128,
                     ready: Optional["asyncio.Event"] = None) -> None:
    """Serve newline-delimited-JSON allocation queries forever.

    One JSON object per line in (an :meth:`AllocationQuery.from_dict`
    payload, or ``{"op": "stats"}``), one ``{"ok": bool, ...}`` object
    per line out.
    """
    if service is None:
        store = (ResultStore(store_dir)
                 if store_dir is not None else None)
        service = AllocationService(
            store, batch_window=batch_window, max_batch=max_batch)

    async def handler(reader, writer):
        await _handle_client(service, reader, writer)

    server = await asyncio.start_server(handler, host, port)
    if ready is not None:
        ready.set()
    async with server:
        await server.serve_forever()
