"""Always-on allocation-query serving layer.

``python -m repro serve`` runs a long-lived asyncio service answering
"given this topology and this coupled-CC algorithm, what equilibrium
allocation results?" queries.  Concurrent queries coalesce into single
:func:`~repro.fluid.equilibrium.solve_fixed_point_batch` calls (the
batched solver's K-dimension is free concurrency) and results memoize
through a persistent content-hash store shared with ``SweepRunner``.
"""

from .store import MISSING, ResultStore, StoreStats
from .service import (
    AllocationQuery,
    AllocationService,
    LinkSpec,
    RouteSpec,
    UserSpec,
    run_server,
    solve_query,
)
from .loadgen import LoadGenConfig, run_loadgen, write_report

__all__ = [
    "MISSING",
    "ResultStore",
    "StoreStats",
    "AllocationQuery",
    "AllocationService",
    "LinkSpec",
    "RouteSpec",
    "UserSpec",
    "run_server",
    "solve_query",
    "LoadGenConfig",
    "run_loadgen",
    "write_report",
]
