"""Seeded load generator: replay ~1M allocation queries, measure serving.

Three measured phases against one persistent store directory:

* **sequential baseline** — a handful of cold queries through plain
  ``solve_fixed_point`` (via :func:`~repro.serve.service.solve_query`),
  giving the un-batched, un-memoized cost per query;
* **cold latency phase** — a stream of *unique* queries at high
  concurrency against a cold store: every query really solves, so the
  measured qps-vs-baseline speedup isolates the K-dimension batching
  win and the p50/p99 reflect the batch window + solve;
* **warm replay** — the identical stream against the now-warm store
  (through a *fresh* :class:`~repro.serve.store.ResultStore`, so hits
  come off disk, proving persistence): the p50 improvement is the
  memoization win;
* **hot-set replay** — the ~1M-query production-shaped stream: a
  small hot set and a bounded cold pool mixed with configurable skew
  (``hot_fraction``), randomized topologies/algorithms drawn through
  :class:`~repro.topology.generator.GeneratorConfig` ranges with the
  full registry algorithm mix (wVegas included), reported as overall
  qps / latency percentiles / hit rate / batch-size histogram.

Everything is seeded: query ``i`` of a phase is a pure function of
``(seed, phase, i)``, which is also what lets the warm phase replay the
cold stream exactly without holding a million query objects in memory.
"""

from __future__ import annotations

import asyncio
import json
import os
import platform
import random
import tempfile
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.registry import get_spec
from ..topology.generator import GeneratorConfig
from ..units import mbps_to_pps
from .service import (
    AllocationQuery,
    AllocationService,
    LinkSpec,
    RouteSpec,
    UserSpec,
    solve_query,
)
from .store import ResultStore

__all__ = ["LoadGenConfig", "run_loadgen", "write_report"]

#: Default algorithm mix: the loss-based spectrum plus delay-based
#: wVegas, proving the service is generic over the registry.
_DEFAULT_MIX = (
    ("lia", 0.25),
    ("olia", 0.2),
    ("balia", 0.2),
    ("wvegas", 0.2),
    ("tcp", 0.15),
)


def smoke_mode() -> bool:
    """True when ``REPRO_BENCH_SMOKE=1`` caps the load-generator sizes."""
    return os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")


@dataclass(frozen=True)
class LoadGenConfig:
    """Knobs of the load harness (see module docs for the phases)."""

    queries: int = 1_000_000
    latency_queries: int = 20_000
    concurrency: int = 128
    hot_set: int = 64
    cold_pool: int = 4096
    hot_fraction: float = 0.25
    seed: int = 1
    batch_window: float = 0.002
    max_batch: int = 128
    baseline_samples: int = 64
    max_store_entries: int = 1 << 17
    generator: GeneratorConfig = field(
        default_factory=lambda: GeneratorConfig(
            n_flows=64, n_links=8, algorithm_mix=_DEFAULT_MIX))

    def __post_init__(self) -> None:
        if self.queries < 1 or self.latency_queries < 1:
            raise ValueError("query counts must be >= 1")
        if self.concurrency < 1:
            raise ValueError("concurrency must be >= 1")
        if not 0.0 <= self.hot_fraction <= 1.0:
            raise ValueError("hot_fraction must be in [0, 1]")
        if self.hot_set < 1 or self.cold_pool < 1:
            raise ValueError("hot_set and cold_pool must be >= 1")

    def smoke(self) -> "LoadGenConfig":
        """The CI-smoke-sized variant of this config."""
        return replace(
            self, queries=min(self.queries, 4000),
            latency_queries=min(self.latency_queries, 256),
            concurrency=min(self.concurrency, 64),
            hot_set=min(self.hot_set, 16),
            cold_pool=min(self.cold_pool, 256),
            baseline_samples=min(self.baseline_samples, 12),
            max_batch=min(self.max_batch, 64))


# -- query synthesis --------------------------------------------------------------
def _equilibrium_mix(mix: Sequence[Tuple[str, float]]
                     ) -> Tuple[List[str], List[float]]:
    """The subset of the algorithm mix the equilibrium layer can serve."""
    names: List[str] = []
    weights: List[float] = []
    for name, weight in mix:
        spec = get_spec(name)
        if not spec.has_equilibrium or spec.required_params("equilibrium"):
            continue
        names.append(spec.name)
        weights.append(weight)
    if not names:
        raise ValueError(
            "algorithm mix has no equilibrium-capable entries")
    return names, weights


def _random_query(rng: random.Random, config: LoadGenConfig,
                  names: List[str], weights: List[float],
                  n_tcp: int) -> AllocationQuery:
    """One scenario-A-shaped query: an AP pair, one mp user, n_tcp TCPs."""
    gen = config.generator
    links = (
        LinkSpec(capacity=mbps_to_pps(rng.uniform(*gen.capacity_mbps)),
                 model="sharp"),
        LinkSpec(capacity=mbps_to_pps(rng.uniform(*gen.capacity_mbps)),
                 model="power", p_at_capacity=0.02),
    )
    algorithm = rng.choices(names, weights=weights)[0]
    users = ((UserSpec(algorithm=algorithm),)
             + tuple(UserSpec("tcp") for _ in range(n_tcp)))
    routes = [
        RouteSpec(0, (0,), rng.uniform(*gen.base_rtt)),
        RouteSpec(0, (1,), rng.uniform(*gen.base_rtt)),
    ]
    for i in range(n_tcp):
        routes.append(RouteSpec(1 + i, (1,), rng.uniform(*gen.base_rtt)))
    return AllocationQuery(links=links, users=users, routes=tuple(routes))


def _phase_rng(config: LoadGenConfig, phase: str, index: int) -> random.Random:
    return random.Random(f"{config.seed}/{phase}/{index}")


def _latency_query(config: LoadGenConfig, names, weights,
                   index: int) -> AllocationQuery:
    """Unique query ``index`` of the cold/warm latency stream.

    One fixed structure (three TCP users) so every in-flight wave
    coalesces into a single batch — the clean K-dimension measurement;
    the hot-set replay exercises the multi-structure case.
    """
    rng = _phase_rng(config, "latency", index)
    return _random_query(rng, config, names, weights, n_tcp=3)


def _build_pools(config: LoadGenConfig, names, weights
                 ) -> Tuple[List[AllocationQuery], List[AllocationQuery]]:
    hot = [_random_query(_phase_rng(config, "hot", i), config, names,
                         weights, n_tcp=(i % 3) + 2)
           for i in range(config.hot_set)]
    pool = [_random_query(_phase_rng(config, "pool", i), config, names,
                          weights, n_tcp=(i % 3) + 2)
            for i in range(config.cold_pool)]
    return hot, pool


# -- measured replay --------------------------------------------------------------
async def _replay(service: AllocationService,
                  make_query: Callable[[int], AllocationQuery],
                  n: int, concurrency: int) -> Tuple[np.ndarray, float]:
    latencies = np.zeros(n)
    indices = iter(range(n))

    async def worker() -> None:
        for i in indices:
            query = make_query(i)
            t0 = time.perf_counter()
            await service.query(query)
            latencies[i] = time.perf_counter() - t0

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(concurrency)))
    await service.drain()
    return latencies, time.perf_counter() - start


def _phase_stats(latencies: np.ndarray, wall: float) -> Dict[str, float]:
    return {
        "queries": int(len(latencies)),
        "wall_seconds": float(wall),
        "qps": float(len(latencies) / wall),
        "p50_ms": float(np.percentile(latencies, 50) * 1e3),
        "p99_ms": float(np.percentile(latencies, 99) * 1e3),
        "mean_ms": float(latencies.mean() * 1e3),
    }


async def _run(config: LoadGenConfig, store_dir: str) -> Dict:
    names, weights = _equilibrium_mix(config.generator.algorithm_mix)
    memory_entries = config.cold_pool + config.hot_set + 64

    # Sequential baseline: the cost of answering queries one at a time.
    baseline_queries = [
        _random_query(_phase_rng(config, "baseline", i), config, names,
                      weights, n_tcp=3)
        for i in range(config.baseline_samples)]
    start = time.perf_counter()
    for query in baseline_queries:
        solve_query(query)
    baseline_wall = time.perf_counter() - start
    baseline = {
        "samples": config.baseline_samples,
        "wall_seconds": float(baseline_wall),
        "qps": float(config.baseline_samples / baseline_wall),
        "mean_ms": float(baseline_wall / config.baseline_samples * 1e3),
    }

    def latency_query(i: int) -> AllocationQuery:
        return _latency_query(config, names, weights, i)

    # Cold latency phase: unique queries, cold store — every query
    # solves, so qps/baseline isolates the batching win.
    cold_store = ResultStore(store_dir, max_entries=config.max_store_entries,
                             memory_entries=memory_entries)
    service = AllocationService(cold_store, batch_window=config.batch_window,
                                max_batch=config.max_batch)
    latencies, wall = await _replay(service, latency_query,
                                    config.latency_queries,
                                    config.concurrency)
    cold = _phase_stats(latencies, wall)
    cold["speedup_vs_sequential"] = cold["qps"] / baseline["qps"]
    cold_service = service.stats()
    service.close()

    # Warm replay: the same stream through a *fresh* store object on the
    # same directory — hits come off disk, proving persistence.
    warm_store = ResultStore(store_dir, max_entries=config.max_store_entries,
                             memory_entries=memory_entries)
    service = AllocationService(warm_store, batch_window=config.batch_window,
                                max_batch=config.max_batch)
    latencies, wall = await _replay(service, latency_query,
                                    config.latency_queries,
                                    config.concurrency)
    warm = _phase_stats(latencies, wall)
    warm["hit_rate"] = warm_store.stats.hit_rate
    warm["p50_improvement"] = (cold["p50_ms"] / warm["p50_ms"]
                               if warm["p50_ms"] > 0 else float("inf"))
    service.close()

    # Hot-set replay: the production-shaped ~1M-query stream.
    hot, pool = _build_pools(config, names, weights)

    def replay_query(i: int) -> AllocationQuery:
        rng = _phase_rng(config, "replay", i)
        if rng.random() < config.hot_fraction:
            return hot[rng.randrange(len(hot))]
        return pool[rng.randrange(len(pool))]

    replay_store = ResultStore(store_dir,
                               max_entries=config.max_store_entries,
                               memory_entries=memory_entries)
    service = AllocationService(replay_store,
                                batch_window=config.batch_window,
                                max_batch=config.max_batch)
    latencies, wall = await _replay(service, replay_query, config.queries,
                                    config.concurrency)
    replay = _phase_stats(latencies, wall)
    replay["hit_rate"] = replay_store.stats.hit_rate
    replay["speedup_vs_sequential"] = replay["qps"] / baseline["qps"]
    replay_service = service.stats()
    service.close()

    # Bitwise check: served results equal the sequential solver exactly.
    check_store = ResultStore(store_dir, memory_entries=0)
    bitwise = True
    for i in range(min(4, config.latency_queries)):
        query = latency_query(i)
        served = check_store.get(query.content_hash())
        bitwise = bitwise and served == solve_query(query)

    return {
        "benchmark": "serve",
        "smoke": smoke_mode(),
        "python": platform.python_version(),
        "config": {
            "queries": config.queries,
            "latency_queries": config.latency_queries,
            "concurrency": config.concurrency,
            "hot_set": config.hot_set,
            "cold_pool": config.cold_pool,
            "hot_fraction": config.hot_fraction,
            "seed": config.seed,
            "batch_window": config.batch_window,
            "max_batch": config.max_batch,
            "algorithm_mix": [[name, weight]
                              for name, weight in zip(names, weights)],
        },
        "sequential_baseline": baseline,
        "cold": {**cold, "service": cold_service},
        "warm": warm,
        "replay": {**replay, "service": replay_service},
        "store": replay_store.stats.as_dict(),
        "bitwise_equal": bool(bitwise),
    }


def run_loadgen(config: Optional[LoadGenConfig] = None, *,
                store_dir: "str | None" = None,
                smoke: Optional[bool] = None) -> Dict:
    """Run the full harness; returns the ``BENCH_serve.json`` payload.

    ``store_dir=None`` uses a throwaway temporary directory (the normal
    benchmarking mode: the cold phase must actually be cold).  ``smoke``
    defaults to the ``REPRO_BENCH_SMOKE`` environment toggle.
    """
    config = config or LoadGenConfig()
    if smoke if smoke is not None else smoke_mode():
        config = config.smoke()
    if store_dir is not None:
        return asyncio.run(_run(config, store_dir))
    with tempfile.TemporaryDirectory(prefix="repro-serve-") as tmp:
        return asyncio.run(_run(config, tmp))


def format_report(report: Dict) -> str:
    """Human-readable phase table of a :func:`run_loadgen` report."""
    baseline = report["sequential_baseline"]
    cold, warm, replay = report["cold"], report["warm"], report["replay"]
    lines = [
        "phase       queries      qps    p50 ms    p99 ms   notes",
        f"baseline  {baseline['samples']:>9} {baseline['qps']:>8.1f} "
        f"{baseline['mean_ms']:>9.3f} {'-':>9}   sequential "
        f"solve_fixed_point",
        f"cold      {cold['queries']:>9} {cold['qps']:>8.1f} "
        f"{cold['p50_ms']:>9.3f} {cold['p99_ms']:>9.3f}   "
        f"{cold['speedup_vs_sequential']:.1f}x vs sequential, mean "
        f"batch {cold['service']['mean_batch_size']:.1f}",
        f"warm      {warm['queries']:>9} {warm['qps']:>8.1f} "
        f"{warm['p50_ms']:>9.3f} {warm['p99_ms']:>9.3f}   "
        f"p50 {warm['p50_improvement']:.1f}x better, hit rate "
        f"{warm['hit_rate']:.3f}",
        f"replay    {replay['queries']:>9} {replay['qps']:>8.1f} "
        f"{replay['p50_ms']:>9.3f} {replay['p99_ms']:>9.3f}   "
        f"hit rate {replay['hit_rate']:.3f}, "
        f"{replay['speedup_vs_sequential']:.1f}x vs sequential",
        f"bitwise_equal: {report['bitwise_equal']}",
    ]
    return "\n".join(lines)


def write_report(report: Dict, output_path: str) -> None:
    """Write ``BENCH_serve.json``."""
    with open(output_path, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
