"""Command-line interface: regenerate any table or figure of the paper.

Usage::

    python -m repro list
    python -m repro run fig1b table1 ...
    python -m repro run all --fast --jobs 4
    python -m repro algorithms [--check]
    python -m repro verify [--algorithm NAME] [--claim NAME]
    python -m repro bench

Every experiment prints its paper-style result table to stdout.  With
``--fast`` the simulated experiments run at reduced duration (useful for
smoke checks); without it they use the benchmark defaults.  ``--jobs N``
fans sweep-shaped experiments out over N worker processes and
``--backend {loop,batch}`` selects how fluid sweeps are solved and
integrated (one point at a time vs one vectorized batch) — neither
changes any number in the tables.  ``--resume DIR`` caches every sweep
point under DIR so an interrupted run picks up where it stopped, and
``--shard I/N`` computes only every N-th point (cells owned by other
shards print as PENDING until their shard has run against the same
``--resume`` directory); ``--shard steal`` claims cache-missing points
dynamically through lock files in the resume directory, so any number
of concurrent runs balance a grid of unevenly expensive points.
``algorithms`` prints each registered algorithm's per-layer support
(packet / fluid / equilibrium / smt, from the cross-layer registry in
``repro.core.registry``) and with ``--check`` runs a tiny scenario-A
workload per algorithm per supported layer (the CI algorithm matrix);
``verify`` machine-checks the paper's equilibrium claims with z3 (the
SMT layer; needs the optional ``z3-solver`` extra — without it every
check reports as skipped and the verb exits 0);
``run --algorithm NAME`` overrides the algorithm of the experiments
that take one, and ``scale --algorithms LIST`` replaces the generated
workloads' algorithm mix.
``bench`` measures the hot paths and writes ``BENCH_sweep.json``;
``scale`` runs generated large-topology workloads (100 to 10k+ flows,
``python -m repro scale --preset medium``) through the DES engine on
every scheduler backend and writes ``BENCH_scale.json`` (see
docs/PERFORMANCE.md and docs/REPRODUCING.md).
``--claim-ttl SECONDS`` (on ``run``, ``scale`` and the sweep fabric
verbs) reaps abandoned ``.claim`` lock files older than the TTL, so a
hard-killed ``--shard steal`` run never parks points forever; the
single-host default stays ``None`` (claims outlive crashes until
released) while the distributed fabric defaults to a finite TTL.
``sweep serve`` / ``sweep work`` / ``sweep bench`` run the distributed
sweep fabric: a coordinator that owns a grid manifest and leases point
batches over newline-delimited JSON, workers that execute and stream
results back, and the 1-vs-2-vs-4-worker scaling benchmark behind
``BENCH_dist.json`` (see docs/ARCHITECTURE.md, "The distributed sweep
fabric").
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Callable, Dict

from .experiments import (
    ablation,
    calibration,
    fattree,
    responsiveness,
    rtt_heterogeneity,
    scale,
    scenario_a,
    scenario_b,
    scenario_c,
    shortflows,
    traces,
)


def _sim_kwargs(fast: bool, slow: dict, quick: dict) -> dict:
    return quick if fast else slow


#: Experiments that honour ``run --algorithm``, mapped to the
#: analytical layer each one constructs the algorithm in.  This is the
#: single source both for applying the override in :func:`_experiments`
#: and for the fail-up-front layer validation in :func:`main`.
ALGORITHM_EXPERIMENTS = {
    "rtt-sweep": "equilibrium",     # solve_fixed_point per ratio
    "stability": "fluid",           # integrates the dynamics
    "responsiveness": "fluid",      # integrates the dynamics
}


def _experiments(fast: bool, jobs: int = 1, backend: str = "loop",
                 cache_dir=None, shard=None,
                 algorithm: str | None = None,
                 claim_ttl: float | None = None
                 ) -> Dict[str, Callable[[], object]]:
    """Experiment name -> zero-argument callable returning a table.

    ``algorithm`` overrides the congestion-control algorithm of the
    experiments listed in :data:`ALGORITHM_EXPERIMENTS`; names resolve
    through the cross-layer registry.
    """
    # Keep the ``**algo``/``**algos`` usage below in lockstep with
    # ALGORITHM_EXPERIMENTS — main() validates the override against
    # exactly those experiments' layers.
    algo = {} if algorithm is None else {"algorithm": algorithm}
    algos = {} if algorithm is None else {"algorithms": (algorithm,)}
    sim = dict(duration=20.0, warmup=10.0) if not fast else \
        dict(duration=8.0, warmup=5.0)
    tree = dict(k=8, duration=2.0, warmup=0.75) if not fast else \
        dict(k=4, duration=1.5, warmup=0.5)
    dyn = dict(k=4, duration=12.0, warmup=1.0) if not fast else \
        dict(k=4, duration=5.0, warmup=1.0)
    trace_len = 90.0 if not fast else 30.0
    # Everything dispatched through SweepRunner accepts the queue knobs.
    sweep = dict(jobs=jobs, cache_dir=cache_dir, shard=shard,
                 claim_ttl=claim_ttl)
    return {
        "fig1b": lambda: scenario_a.figure1_table(simulate_lia=True, **sim),
        "fig1c": lambda: scenario_a.figure1_table(),
        "fig4": lambda: scenario_b.figure4_table(),
        "table1": lambda: scenario_b.table_1_2("lia", **sim),
        "table2": lambda: scenario_b.table_1_2("olia", **sim),
        "fig5b": lambda: scenario_c.figure5b_table(),
        "fig5cd": lambda: scenario_c.figure5cd_table(simulate_lia=True,
                                                     **sim),
        "fig7-8": lambda: traces.figure7_8_table(duration=trace_len),
        "fig9-10": lambda: scenario_a.figure9_10_table(
            n1_values=(10, 30), c1_over_c2=(0.75, 1.5), **sim, **sweep),
        "fig11-12": lambda: scenario_c.figure11_12_table(
            n1_values=(10, 30), c1_over_c2=(1.0, 2.0), **sim, **sweep),
        "fig13a": lambda: fattree.figure13a_table(
            subflow_counts=(2, 4, 8) if not fast else (2, 4), **tree,
            **sweep),
        "fig13b": lambda: fattree.figure13b_table(
            n_subflows=8 if not fast else 4, **tree, **sweep),
        "fig14": lambda: shortflows.figure14_table(**dyn, **sweep),
        "table3": lambda: shortflows.table3(**dyn, **sweep),
        "fig17": lambda: scenario_b.figure17_table(),
        "ablation-epsilon": lambda: ablation.epsilon_sweep_table(
            backend=backend, **sweep),
        "ablation-alpha": lambda: ablation.flappiness_table(
            duration=trace_len,
            seeds=(1, 2, 3) if not fast else (1,), **sweep),
        "ablation-queue": lambda: ablation.queue_discipline_table(
            **sim, **sweep),
        "responsiveness": lambda: responsiveness
            .capacity_drop_settling_table(**algos),
        "stability": lambda: responsiveness.stability_table(
            backend=backend, **algo),
        "rtt-sweep": lambda: rtt_heterogeneity.rtt_sweep_table(
            backend=backend, **sweep, **algo),
        "rtt-criterion": rtt_heterogeneity.best_path_criterion_table,
        "calibration": lambda: calibration.formula_validation_table(
            duration=40.0 if not fast else 15.0,
            warmup=15.0 if not fast else 8.0),
    }


def _parse_names(text):
    """Split a comma-separated ``--foo a,b,c`` option into a tuple.

    ``None`` (option absent) passes through; blanks are dropped, so an
    empty/whitespace value becomes the empty tuple and the command can
    reject it with a clear message.  Shared by every list-valued option
    so singular/plural conventions stay uniform across subcommands.
    """
    if text is None:
        return None
    return tuple(part.strip() for part in text.split(",") if part.strip())


def _parse_shard(text: str):
    """Parse ``--shard I/N`` (or ``--shard steal``)."""
    if text == "steal":
        return "steal"
    try:
        index, count = text.split("/")
        shard = (int(index), int(count))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected INDEX/COUNT (e.g. 0/4) or 'steal', got {text!r}")
    if shard[1] < 1 or not 0 <= shard[0] < shard[1]:
        raise argparse.ArgumentTypeError(
            f"need 0 <= INDEX < COUNT, got {text!r}")
    return shard


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduce tables/figures of 'MPTCP is not "
                    "Pareto-Optimal' (Khalili et al.)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one or more experiments")
    run.add_argument("experiments", nargs="+",
                     help="experiment names (or 'all')")
    run.add_argument("--fast", action="store_true",
                     help="reduced durations for a quick smoke run")
    run.add_argument("--jobs", type=int, default=1, metavar="N",
                     help="worker processes for sweep-shaped experiments "
                          "(default: 1, i.e. in-process)")
    run.add_argument("--backend", choices=("loop", "batch"),
                     default="loop",
                     help="fluid sweep solve/integration backend (results "
                          "are identical; batch is faster)")
    run.add_argument("--algorithm", default=None, metavar="NAME",
                     help="override the congestion-control algorithm of "
                          "the experiments that take one (rtt-sweep, "
                          "stability, responsiveness); any name from "
                          "'python -m repro algorithms'")
    run.add_argument("--resume", metavar="DIR", default=None,
                     help="cache every sweep point under DIR; re-running "
                          "with the same DIR skips completed points "
                          "(resumable sweeps)")
    run.add_argument("--shard", metavar="I/N", type=_parse_shard,
                     default=None,
                     help="compute only sweep points with index %% N == I "
                          "('steal' claims cache-missing points "
                          "dynamically via lock files instead — best "
                          "when point costs vary wildly); requires "
                          "--resume so the shards can merge their "
                          "results")
    run.add_argument("--claim-ttl", type=float, default=None,
                     metavar="SECONDS",
                     help="reap .claim lock files older than SECONDS "
                          "as abandoned by a dead run (default: never "
                          "— claims persist until released)")
    scale_cmd = sub.add_parser(
        "scale",
        help="run generated scale workloads and write BENCH_scale.json")
    scale_cmd.add_argument("--preset", dest="presets", action="append",
                           choices=sorted(scale.PRESETS),
                           metavar="NAME",
                           help="generator preset to run (repeatable; "
                                f"default: medium; known: "
                                f"{', '.join(sorted(scale.PRESETS))})")
    scale_cmd.add_argument("--engine-backends", dest="engine_backends",
                           default="heap,wheel,auto", metavar="LIST",
                           help="comma-separated engine event-scheduler "
                                "backends to compare on the preset grid "
                                "(default: heap,wheel,auto; formerly "
                                "--schedulers)")
    scale_cmd.add_argument("--families", default=None, metavar="LIST",
                           help="comma-separated scenario families to "
                                "run as finite-transfer sections (known: "
                                "dual_lte, handover, wifi_lte, wired; "
                                "default: none)")
    scale_cmd.add_argument("--schedulers", metavar="LIST",
                           default="minrtt,roundrobin,redundant,qaware",
                           help="comma-separated packet schedulers for "
                                "the family sections (registry axis; "
                                "default: minrtt,roundrobin,redundant,"
                                "qaware)")
    scale_cmd.add_argument("--duration", type=float, default=None,
                           metavar="SECONDS",
                           help="simulated measurement window (default: "
                                "per-preset, see experiments/scale.py)")
    scale_cmd.add_argument("--warmup", type=float, default=None,
                           metavar="SECONDS",
                           help="simulated warmup excluded from goodput "
                                "stats (default: per-preset)")
    scale_cmd.add_argument("--max-flows", type=int, default=None,
                           metavar="N",
                           help="cap the generated flow population "
                                "(links shrink in step)")
    scale_cmd.add_argument("--algorithms", default=None, metavar="LIST",
                           help="comma-separated registry names replacing "
                                "the presets' algorithm mix at equal "
                                "weights (e.g. 'balia,tcp'; default: the "
                                "preset mix)")
    scale_cmd.add_argument("--seed", type=int, default=1,
                           help="generator seed (default: 1)")
    scale_cmd.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="worker processes for the preset/family "
                                "grids (default: 1)")
    scale_cmd.add_argument("--resume", metavar="DIR", default=None,
                           help="cache every grid point under DIR "
                                "(resumable/sharded, as for 'run')")
    scale_cmd.add_argument("--shard", metavar="I/N", type=_parse_shard,
                           default=None,
                           help="compute only this shard of the grid "
                                "(or 'steal'); requires --resume")
    scale_cmd.add_argument("--claim-ttl", type=float, default=None,
                           metavar="SECONDS",
                           help="reap .claim lock files older than "
                                "SECONDS as abandoned (default: never)")
    scale_cmd.add_argument("--output", default="BENCH_scale.json",
                           metavar="PATH",
                           help="where to write the JSON report "
                                "(default: ./BENCH_scale.json)")
    scale_cmd.add_argument("--smoke", action="store_true",
                           help="capped sizes (same as "
                                "REPRO_BENCH_SMOKE=1)")
    algorithms_cmd = sub.add_parser(
        "algorithms",
        help="print each registered algorithm's per-layer support "
             "(packet / fluid / equilibrium / smt)")
    algorithms_cmd.add_argument(
        "--check", action="store_true",
        help="also run the algorithm-matrix smoke: a tiny scenario-A "
             "workload per registered algorithm per supported layer "
             "(non-zero exit on any failure; CI runs this)")
    verify_cmd = sub.add_parser(
        "verify",
        help="machine-check the paper's equilibrium claims with z3 "
             "(the registry's smt layer; skips cleanly without the "
             "optional z3-solver extra)")
    verify_cmd.add_argument(
        "--algorithm", action="append", default=None, metavar="NAME",
        help="restrict to this algorithm (repeatable; default: every "
             "smt-capable spec)")
    verify_cmd.add_argument(
        "--claim", action="append", default=None, metavar="NAME",
        help="restrict to this claim (repeatable; known: non-pareto, "
             "uniqueness, cwnd-bounds; default: all a model declares)")
    verify_cmd.add_argument(
        "--timeout", type=float, default=120.0, metavar="SECONDS",
        help="per-query solver timeout (default: 120)")
    bench = sub.add_parser(
        "bench", help="measure hot paths and write BENCH_sweep.json")
    bench.add_argument("--output", default="BENCH_sweep.json",
                       metavar="PATH",
                       help="where to write the JSON report "
                            "(default: ./BENCH_sweep.json)")
    bench.add_argument("--smoke", action="store_true",
                       help="capped sizes (same as REPRO_BENCH_SMOKE=1)")
    serve_cmd = sub.add_parser(
        "serve",
        help="run the always-on allocation-query service (or, with "
             "--loadgen, the million-query load harness writing "
             "BENCH_serve.json)")
    serve_cmd.add_argument("--host", default="127.0.0.1",
                           help="bind address (default: 127.0.0.1)")
    serve_cmd.add_argument("--port", type=int, default=8642,
                           help="TCP port for the JSON-lines protocol "
                                "(default: 8642)")
    serve_cmd.add_argument("--store", metavar="DIR", default=None,
                           help="persistent result-store directory "
                                "(default: .repro-serve-store when "
                                "serving; a throwaway temp dir under "
                                "--loadgen so the cold phase is cold)")
    serve_cmd.add_argument("--batch-window", type=float, default=0.002,
                           metavar="SECONDS",
                           help="how long a pending batch waits for "
                                "company (default: 0.002)")
    serve_cmd.add_argument("--max-batch", type=int, default=128,
                           metavar="K",
                           help="batch K cap; a full batch solves "
                                "immediately (default: 128)")
    serve_cmd.add_argument("--loadgen", action="store_true",
                           help="run the seeded load harness instead of "
                                "serving: replay the query stream and "
                                "write the BENCH_serve.json report")
    serve_cmd.add_argument("--queries", type=int, default=None, metavar="N",
                           help="loadgen hot-set replay length "
                                "(default: 1000000)")
    serve_cmd.add_argument("--concurrency", type=int, default=None,
                           metavar="N",
                           help="loadgen concurrent clients "
                                "(default: 128)")
    serve_cmd.add_argument("--seed", type=int, default=1,
                           help="loadgen stream seed (default: 1)")
    serve_cmd.add_argument("--output", default="BENCH_serve.json",
                           metavar="PATH",
                           help="loadgen report path "
                                "(default: ./BENCH_serve.json)")
    serve_cmd.add_argument("--smoke", action="store_true",
                           help="capped sizes (same as "
                                "REPRO_BENCH_SMOKE=1)")

    sweep_cmd = sub.add_parser(
        "sweep",
        help="distributed sweep fabric: coordinator (serve), worker "
             "(work), live progress (status) and the scaling benchmark "
             "(bench) behind BENCH_dist.json")
    sweep_sub = sweep_cmd.add_subparsers(dest="sweep_command",
                                         required=True)
    fabric_serve = sweep_sub.add_parser(
        "serve",
        help="run the coordinator: own the grid manifest, lease point "
             "batches to workers over newline-delimited JSON, write "
             "results into the shared cache, reap dead workers")
    fabric_serve.add_argument("--cache-dir", required=True, metavar="DIR",
                              help="shared content-hash cache the sweep "
                                   "completes into (the SweepRunner "
                                   "--resume layout; restarting with the "
                                   "same DIR resumes)")
    fabric_serve.add_argument("--host", default="0.0.0.0",
                              help="bind address (default: 0.0.0.0 — "
                                   "workers are usually remote)")
    fabric_serve.add_argument("--port", type=int, default=None,
                              help="TCP port (default: 8653; 0 picks an "
                                   "ephemeral port and prints it)")
    fabric_serve.add_argument("--spill", metavar="DIR", default=None,
                              help="load the grid from a write_shards "
                                   "spill directory instead of the "
                                   "family-grid options below")
    fabric_serve.add_argument("--families", default=None, metavar="LIST",
                              help="comma-separated scenario families "
                                   "(default: wired,dual_lte,wifi_lte,"
                                   "handover)")
    fabric_serve.add_argument("--schedulers", default=None, metavar="LIST",
                              help="comma-separated packet schedulers "
                                   "(default: minrtt,roundrobin,"
                                   "redundant,qaware)")
    fabric_serve.add_argument("--algorithms", default=None, metavar="LIST",
                              help="comma-separated algorithms (default: "
                                   "lia,olia,balia,ewtcp,tcp)")
    fabric_serve.add_argument("--seeds", type=int, default=None,
                              metavar="N",
                              help="seeds per grid cell (default: 125 — "
                                   "the full 10k-point grid at the "
                                   "default axes)")
    fabric_serve.add_argument("--claim-ttl", type=float, default=None,
                              metavar="SECONDS",
                              help="claim-file TTL advertised to "
                                   "workers (default: 300 — finite in "
                                   "distributed mode so a hard-killed "
                                   "worker never parks points forever)")
    fabric_serve.add_argument("--lease-size", type=int, default=None,
                              metavar="K",
                              help="points per lease (default: 8)")
    fabric_serve.add_argument("--heartbeat-timeout", type=float,
                              default=None, metavar="SECONDS",
                              help="requeue a worker's leases after this "
                                   "much silence (default: 30)")
    fabric_serve.add_argument("--fresh", dest="resume",
                              action="store_false",
                              help="ignore completed points already in "
                                   "the cache (default: resume them)")
    fabric_work = sweep_sub.add_parser(
        "work",
        help="run a worker: register with a coordinator, lease point "
             "batches, execute, stream results back; reconnects with "
             "backoff when the coordinator goes away")
    fabric_work.add_argument("--connect", required=True,
                             metavar="HOST:PORT",
                             help="the coordinator (bare HOST uses the "
                                  "default port 8653)")
    fabric_work.add_argument("--jobs", type=int, default=1, metavar="N",
                             help="local worker processes per lease "
                                  "(default: 1, in-process)")
    fabric_work.add_argument("--cache-dir", metavar="DIR", default=None,
                             help="optional shared-filesystem cache: "
                                  "serve already-cached points without "
                                  "recomputing and take .claim files "
                                  "against concurrent local runs")
    fabric_work.add_argument("--claim-ttl", type=float, default=None,
                             metavar="SECONDS",
                             help="override the coordinator-advertised "
                                  "claim TTL (only with --cache-dir)")
    fabric_work.add_argument("--name", default=None,
                             help="worker name in coordinator status "
                                  "output (default: host-pid)")
    fabric_work.add_argument("--reconnect", type=int, default=5,
                             metavar="N",
                             help="connection attempts before giving up "
                                  "(default: 5)")
    fabric_work.add_argument("--reconnect-delay", type=float, default=0.5,
                             metavar="SECONDS",
                             help="base of the exponential reconnect "
                                  "backoff (default: 0.5)")
    fabric_status = sweep_sub.add_parser(
        "status",
        help="print a serving coordinator's merged progress/ETA view")
    fabric_status.add_argument("--connect", required=True,
                               metavar="HOST:PORT",
                               help="the coordinator to query")
    fabric_bench = sweep_sub.add_parser(
        "bench",
        help="run the end-to-end scaling benchmark (single-host "
             "reference, then the fabric at each worker count; bitwise "
             "merge check) and write BENCH_dist.json")
    fabric_bench.add_argument("--output", default="BENCH_dist.json",
                              metavar="PATH",
                              help="where to write the JSON report "
                                   "(default: ./BENCH_dist.json)")
    fabric_bench.add_argument("--workers", default="1,2,4", metavar="LIST",
                              help="comma-separated worker counts "
                                   "(default: 1,2,4; smoke caps at 2)")
    fabric_bench.add_argument("--seeds", type=int, default=None,
                              metavar="N",
                              help="seeds per grid cell (default: 125 "
                                   "full / 12 smoke)")
    fabric_bench.add_argument("--smoke", action="store_true",
                              help="tiny grid and <=2 workers (same as "
                                   "REPRO_BENCH_SMOKE=1)")
    return parser


def _fabric_progress(status: dict) -> None:
    """One coordinator progress line (the merged live view)."""
    rate = status.get("points_per_sec")
    eta = status.get("eta_seconds")
    alive = sum(1 for w in status["workers"].values() if w["alive"])
    line = (f"[{status['completed']}/{status['total']} points, "
            f"{len(status['workers'])} worker(s) ({alive} alive)")
    if rate:
        line += f", {rate:.1f} pts/s"
    if eta:
        line += f", eta {eta:.0f}s"
    if status["reassigned_points"]:
        line += f", {status['reassigned_points']} reassigned"
    print(line + "]", flush=True)


def _sweep_fabric(args) -> int:
    """The ``sweep`` verb: serve / work / status / bench."""
    import asyncio
    import json

    from .dist import (DEFAULT_PORT, JsonLineConnection, SweepCoordinator,
                       SweepWorker, parse_hostport)
    from .dist import bench as dist_bench

    if args.sweep_command == "serve":
        from .experiments.sweep import load_all_specs
        if args.spill is not None:
            try:
                specs = load_all_specs(args.spill)
            except (OSError, ValueError) as exc:
                print(str(exc), file=sys.stderr)
                return 2
        else:
            try:
                specs = dist_bench.build_dist_grid(
                    families=_parse_names(args.families)
                    or dist_bench.DIST_FAMILIES,
                    schedulers=_parse_names(args.schedulers)
                    or dist_bench.DIST_SCHEDULERS,
                    algorithms=_parse_names(args.algorithms)
                    or dist_bench.DIST_ALGORITHMS,
                    seeds=args.seeds or dist_bench.DEFAULT_SEEDS)
            except (KeyError, ValueError) as exc:
                print(str(exc.args[0] if exc.args else exc),
                      file=sys.stderr)
                return 2
        knobs = {}
        if args.claim_ttl is not None:
            knobs["claim_ttl"] = args.claim_ttl
        if args.lease_size is not None:
            knobs["lease_size"] = args.lease_size
        if args.heartbeat_timeout is not None:
            knobs["heartbeat_timeout"] = args.heartbeat_timeout
        coordinator = SweepCoordinator(
            specs, args.cache_dir, resume=args.resume,
            on_progress=_fabric_progress, **knobs)
        port = DEFAULT_PORT if args.port is None else args.port
        print(f"sweep coordinator: {len(specs)} points "
              f"({coordinator.resumed_points} already in "
              f"{args.cache_dir}); serving on {args.host}:"
              f"{port or '<ephemeral>'} (Ctrl-C stops; restarting with "
              "the same --cache-dir resumes)", flush=True)
        try:
            stats = asyncio.run(coordinator.serve(
                args.host, port,
                ready=lambda p: print(f"[listening on port {p}]",
                                      flush=True)))
        except KeyboardInterrupt:
            print("\n[coordinator stopped; completed points are in "
                  f"{args.cache_dir}]")
            return 130
        print(f"[grid complete: {stats['completed']}/{stats['total']} "
              f"points, {stats['results_received']} received, "
              f"{stats['resumed_points']} resumed, "
              f"{stats['reassigned_points']} reassigned, "
              f"{stats['dead_workers']} dead worker(s)]")
        return 0

    if args.sweep_command == "work":
        try:
            host, port = parse_hostport(args.connect, DEFAULT_PORT)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        if args.jobs < 1:
            print(f"--jobs must be >= 1 (got {args.jobs})",
                  file=sys.stderr)
            return 2
        worker = SweepWorker(host, port, jobs=args.jobs,
                             cache_dir=args.cache_dir,
                             claim_ttl=args.claim_ttl, name=args.name,
                             reconnect_attempts=args.reconnect,
                             reconnect_delay=args.reconnect_delay)
        summary = worker.run()
        print(f"[worker {summary.name}: {summary.points} point(s) "
              f"({summary.computed} computed, {summary.cache_hits} from "
              f"cache) over {summary.leases} lease(s) in "
              f"{summary.wall_seconds:.1f}s; {summary.reason}]")
        if summary.reason != "done":
            print(f"worker gave up: {summary.reason} (after "
                  f"{summary.reconnects} failed connection attempt(s))",
                  file=sys.stderr)
            return 1
        return 0

    if args.sweep_command == "status":
        try:
            host, port = parse_hostport(args.connect, DEFAULT_PORT)
            with JsonLineConnection(host, port, timeout=10.0) as conn:
                status = conn.request("status")
        except (OSError, ValueError) as exc:
            print(f"cannot query {args.connect}: {exc}", file=sys.stderr)
            return 1
        status.pop("ok", None)
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0

    # bench
    out_dir = os.path.dirname(os.path.abspath(args.output))
    if not os.path.isdir(out_dir):
        print(f"cannot write report: no such directory {out_dir}",
              file=sys.stderr)
        return 2
    try:
        worker_counts = tuple(int(n) for n in _parse_names(args.workers))
    except ValueError:
        print(f"--workers must be a comma-separated list of counts, "
              f"got {args.workers!r}", file=sys.stderr)
        return 2
    if not worker_counts or min(worker_counts) < 1:
        print(f"--workers needs counts >= 1, got {args.workers!r}",
              file=sys.stderr)
        return 2
    started = time.time()
    report = dist_bench.run_dist_bench(
        smoke=args.smoke or None, worker_counts=worker_counts,
        seeds=args.seeds)
    print(f"[sweep bench: {time.time() - started:.1f}s]")
    dist_bench.write_report(report, args.output)
    print(f"[report written to {args.output}]")
    if not report["bitwise_equal"]:
        print("merged distributed results are NOT bitwise-equal to the "
              "single-host reference", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name in _experiments(fast=False):
            print(name)
        return 0

    if args.command == "algorithms":
        from .experiments.algorithms import (
            layer_support_table,
            scheduler_check_table,
            scheduler_smoke_check,
            scheduler_support_table,
            smoke_check,
            smoke_check_table,
        )
        print(layer_support_table())
        print()
        print(scheduler_support_table())
        if not args.check:
            return 0
        started = time.time()
        checks = smoke_check()
        print()
        print(smoke_check_table(checks))
        print(f"[algorithm matrix: {time.time() - started:.1f}s]")
        started = time.time()
        scheduler_checks = scheduler_smoke_check()
        print()
        print(scheduler_check_table(scheduler_checks))
        print(f"[scheduler matrix: {time.time() - started:.1f}s]")
        failed = [c for c in checks if c.status == "FAIL"]
        for check in failed:      # name every failing cell on stderr
            print(f"FAIL: {check.algorithm}/{check.layer}: "
                  f"{check.detail}", file=sys.stderr)
        sched_failed = [c for c in scheduler_checks if c.status == "FAIL"]
        for check in sched_failed:
            print(f"FAIL: {check.scheduler}x{check.algorithm}: "
                  f"{check.detail}", file=sys.stderr)
        return 1 if failed or sched_failed else 0

    if args.command == "verify":
        from .verify import Z3_AVAILABLE, format_results
        from .verify.claims import run_verification
        started = time.time()
        try:
            results = run_verification(
                algorithms=args.algorithm, claims=args.claim,
                timeout_ms=int(args.timeout * 1000))
        except (KeyError, ValueError) as exc:
            print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
            return 2
        print(format_results(results))
        print(f"[verify: {time.time() - started:.1f}s]")
        if not Z3_AVAILABLE:
            print("note: z3-solver is not installed; every check was "
                  "skipped (pip install z3-solver)")
            return 0
        bad = [r for r in results if not r.ok]
        for result in bad:
            print(f"{result.status.upper()}: {result.algorithm}/"
                  f"{result.claim}: {result.detail}", file=sys.stderr)
        return 1 if bad else 0

    if args.command == "scale":
        out_dir = os.path.dirname(os.path.abspath(args.output))
        if not os.path.isdir(out_dir):
            print(f"cannot write report: no such directory {out_dir}",
                  file=sys.stderr)
            return 2
        if args.jobs < 1:
            print(f"--jobs must be >= 1 (got {args.jobs})",
                  file=sys.stderr)
            return 2
        if args.shard is not None and args.resume is None:
            print("--shard requires --resume DIR: the shared cache is "
                  "how the shards' results are merged", file=sys.stderr)
            return 2
        backends = _parse_names(args.engine_backends) or ()
        schedulers = _parse_names(args.schedulers) or ()
        families = _parse_names(args.families) or ()
        algorithms = _parse_names(args.algorithms)
        started = time.time()
        try:
            report = scale.scale_report(
                args.presets or ["medium"], backends=backends,
                families=families, schedulers=schedulers,
                duration=args.duration, warmup=args.warmup,
                max_flows=args.max_flows, algorithms=algorithms,
                seed=args.seed,
                smoke=args.smoke or None, jobs=args.jobs,
                cache_dir=args.resume, shard=args.shard,
                claim_ttl=args.claim_ttl)
        except (KeyError, ValueError) as exc:
            message = exc.args[0] if exc.args else str(exc)
            print(str(message), file=sys.stderr)
            return 2
        print(scale.report_table(report))
        if report.get("families"):
            print(scale.family_table(report))
        print(f"[scale: {time.time() - started:.1f}s]")
        scale.write_report(report, args.output)
        print(f"[report written to {args.output}]")
        return 0

    if args.command == "serve":
        import asyncio

        import dataclasses

        from .serve import LoadGenConfig, run_loadgen, run_server, \
            write_report
        from .serve.loadgen import format_report as serve_format
        if args.loadgen:
            out_dir = os.path.dirname(os.path.abspath(args.output))
            if not os.path.isdir(out_dir):
                print(f"cannot write report: no such directory {out_dir}",
                      file=sys.stderr)
                return 2
            overrides = {"seed": args.seed,
                         "batch_window": args.batch_window,
                         "max_batch": args.max_batch}
            if args.queries is not None:
                overrides["queries"] = args.queries
            if args.concurrency is not None:
                overrides["concurrency"] = args.concurrency
            config = dataclasses.replace(LoadGenConfig(), **overrides)
            started = time.time()
            report = run_loadgen(config, store_dir=args.store,
                                 smoke=args.smoke or None)
            print(serve_format(report))
            print(f"[serve loadgen: {time.time() - started:.1f}s]")
            write_report(report, args.output)
            print(f"[report written to {args.output}]")
            return 0
        store_dir = args.store or ".repro-serve-store"
        print(f"serving allocation queries on {args.host}:{args.port} "
              f"(store: {store_dir}; one JSON query per line, "
              f"{{\"op\": \"stats\"}} for counters; Ctrl-C stops)")
        try:
            asyncio.run(run_server(
                args.host, args.port, store_dir=store_dir,
                batch_window=args.batch_window, max_batch=args.max_batch))
        except KeyboardInterrupt:
            print("\n[serve: stopped]")
        return 0

    if args.command == "bench":
        from .benchreport import format_report, run_bench
        out_dir = os.path.dirname(os.path.abspath(args.output))
        if not os.path.isdir(out_dir):
            print(f"cannot write report: no such directory {out_dir}",
                  file=sys.stderr)
            return 2
        report = run_bench(args.output, smoke=args.smoke or None)
        print(format_report(report))
        print(f"[report written to {args.output}]")
        return 0

    if args.command == "sweep":
        return _sweep_fabric(args)

    if args.jobs < 1:
        print(f"--jobs must be >= 1 (got {args.jobs})", file=sys.stderr)
        return 2
    if args.shard is not None and args.resume is None and (
            args.shard == "steal" or args.shard[1] > 1):
        print("--shard requires --resume DIR: the shared cache is how the "
              "shards' results are merged", file=sys.stderr)
        return 2
    registry = _experiments(args.fast, jobs=args.jobs, backend=args.backend,
                            cache_dir=args.resume, shard=args.shard,
                            algorithm=args.algorithm,
                            claim_ttl=args.claim_ttl)
    names = list(registry) if "all" in args.experiments \
        else args.experiments
    unknown = [n for n in names if n not in registry]
    if unknown:
        known = ", ".join(registry)
        print(f"unknown experiment(s): {', '.join(unknown)}\n"
              f"known: {known}", file=sys.stderr)
        return 2
    if args.algorithm is not None:
        from .core.registry import get_spec
        try:
            spec = get_spec(args.algorithm)   # loud list on typos
        except KeyError as exc:
            print(str(exc.args[0] if exc.args else exc), file=sys.stderr)
            return 2
        # Which layers the override must be constructible in depends on
        # the *selected* experiments: fail up front (not minutes into
        # `run all`), but only for layers actually needed, so partial-
        # layer user specs keep working where they can.
        affected = [n for n in names if n in ALGORITHM_EXPERIMENTS]
        if not affected:
            print(f"note: --algorithm {args.algorithm} has no effect — "
                  "none of the selected experiments take an algorithm "
                  f"({', '.join(sorted(ALGORITHM_EXPERIMENTS))})",
                  file=sys.stderr)
        needed = sorted({ALGORITHM_EXPERIMENTS[n] for n in affected})
        missing = [layer for layer in needed if not spec.supports(layer)]
        required = sorted({param for layer in needed
                           if spec.supports(layer)
                           for param in spec.required_params(layer)})
        if missing or required:
            why = (f"has no {'/'.join(missing)} layer" if missing else
                   f"requires parameter(s) {', '.join(required)}")
            print(f"--algorithm {args.algorithm}: the algorithm {why}, "
                  f"but {', '.join(affected)} needs the "
                  f"{'/'.join(needed)} layer constructible by name",
                  file=sys.stderr)
            return 2
    for name in names:
        started = time.time()
        table = registry[name]()
        elapsed = time.time() - started
        print(table)
        print(f"[{name}: {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
