"""Distributed sweep fabric: coordinator/worker mode for 10k-point grids.

The single-host :class:`~repro.experiments.sweep.SweepRunner` tops out
at one machine's cores; this package spreads the same content-hash-
cached sweep across N hosts with nothing but a TCP port and (optionally)
a shared cache directory:

* :mod:`repro.dist.protocol` — the newline-delimited-JSON wire protocol
  and the synchronous client connection;
* :mod:`repro.dist.coordinator` — owns the spec manifest, leases point
  batches, reaps dead workers, merges live progress
  (``python -m repro sweep serve``);
* :mod:`repro.dist.worker` — lease/execute/report loop with reconnect
  (``python -m repro sweep work``);
* :mod:`repro.dist.bench` — the end-to-end scaling benchmark behind
  ``BENCH_dist.json`` (``python -m repro sweep bench``).

See docs/ARCHITECTURE.md ("The distributed sweep fabric") for the lease
lifecycle and the safety argument.
"""

from .coordinator import (DEFAULT_CLAIM_TTL, DEFAULT_PORT,
                          CoordinatorThread, SweepCoordinator)
from .protocol import (PROTOCOL_VERSION, JsonLineConnection, ProtocolError,
                       decode_payload, encode_payload, parse_hostport)
from .worker import SweepWorker, WorkerSummary

__all__ = [
    "DEFAULT_CLAIM_TTL",
    "DEFAULT_PORT",
    "PROTOCOL_VERSION",
    "CoordinatorThread",
    "JsonLineConnection",
    "ProtocolError",
    "SweepCoordinator",
    "SweepWorker",
    "WorkerSummary",
    "decode_payload",
    "encode_payload",
    "parse_hostport",
]
