"""The distributed-sweep benchmark: a real 10k-point grid over N workers.

``python -m repro sweep bench`` runs the fabric end-to-end and writes
``BENCH_dist.json``, gated in CI by ``check_bench.py --dist``:

1. build the grid — family x packet scheduler x algorithm x seed, the
   exact cross product the wild-measurement studies in PAPERS.md demand
   and which has never been run through a single-host sweep (4 families
   x 4 schedulers x 5 packet-capable algorithms x 125 seeds = 10000
   points at the default sizes);
2. run a **single-host reference** through a plain in-memory
   :class:`~repro.experiments.sweep.SweepRunner` — the ground truth the
   merged distributed results must equal bitwise;
3. for each requested worker count, start a coordinator on an ephemeral
   localhost port plus N real ``python -m repro sweep work`` worker
   *processes* (the same entry point multi-host deployments use), wait
   for the grid to drain, and merge the shared cache back into result
   order;
4. report points/s per worker count, scaling vs one worker,
   per-added-worker efficiency, reassignment/duplicate counters, and a
   single ``bitwise_equal`` verdict (pickle-bytes equality of every
   merged point against the reference).

The grid's point function is :func:`run_dist_point`, which strips the
wall-clock fields off :class:`~repro.experiments.scale.FamilyRun` —
``build_seconds``/``wall_seconds``/``events_per_sec`` are real
measurements that differ run to run, so a bitwise gate over them would
only test pickle round-tripping.  Everything kept (event counts,
transfer statistics, link dynamics) is deterministic given the seed.

``cpu_count`` lands in the report and any multi-worker run on a machine
with fewer cores than workers is flagged ``core_limited``: the scaling
floor is about the fabric, not about pretending a 1-core container has
2 cores, so ``check_bench.py --dist`` skips (never fails) the floor for
such runs, exactly like the ``auto_vs_wheel_stale`` skip.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..experiments.runner import RunSpec
from ..experiments.scale import run_family_point
from ..experiments.sweep import SweepRunner
from ..serve.store import MISSING, ResultStore
from .coordinator import DEFAULT_CLAIM_TTL, CoordinatorThread, SweepCoordinator

__all__ = [
    "DIST_ALGORITHMS",
    "DIST_FAMILIES",
    "DIST_SCHEDULERS",
    "build_dist_grid",
    "merge_results",
    "run_dist_bench",
    "run_dist_point",
]

#: The full-grid axes: every scenario family, every packet scheduler,
#: every algorithm with a packet layer (wvegas excluded: its delay
#: dynamics need longer horizons than the grid budget allows per point).
DIST_FAMILIES = ("wired", "dual_lte", "wifi_lte", "handover")
DIST_SCHEDULERS = ("minrtt", "roundrobin", "redundant", "qaware")
DIST_ALGORITHMS = ("lia", "olia", "balia", "ewtcp", "tcp")

#: 4 families x 4 schedulers x 5 algorithms x 125 seeds = 10000 points.
DEFAULT_SEEDS = 125

#: Per-point size: small enough that a 10k grid is tens of minutes on a
#: few cores, big enough that each point runs the real DES engine
#: through connection setup, transfers and (family-dependent) dynamics.
DIST_MAX_FLOWS = 2
DIST_HORIZON = 6.0

#: Smoke variant (REPRO_BENCH_SMOKE=1 / --smoke): 2x2x2x12 = 96 points.
SMOKE_FAMILIES = ("wired", "dual_lte")
SMOKE_SCHEDULERS = ("minrtt", "redundant")
SMOKE_ALGORITHMS = ("olia", "lia")
SMOKE_SEEDS = 12

DEFAULT_WORKER_COUNTS = (1, 2, 4)


def run_dist_point(*, family: str, scheduler: str, algorithm: str,
                   seed: int, max_flows: int = DIST_MAX_FLOWS,
                   horizon: float = DIST_HORIZON) -> Dict[str, Any]:
    """One grid point: a family run with wall-clock fields stripped.

    Module-level so :class:`RunSpec` can pickle it by reference; returns
    a plain dict of the deterministic ``FamilyRun`` fields (see module
    docstring for why timing fields are dropped).
    """
    run = run_family_point(family=family, scheduler=scheduler,
                           algorithm=algorithm, backend="auto",
                           horizon=horizon, max_flows=max_flows,
                           seed=seed)
    return {
        "family": run.family,
        "scheduler": run.scheduler,
        "algorithm": run.algorithm,
        "n_flows": run.n_flows,
        "n_links": run.n_links,
        "seed": run.seed,
        "events": run.events,
        "transfers_total": run.transfers_total,
        "transfers_completed": run.transfers_completed,
        "transfer_mean_s": run.transfer_mean_s,
        "transfer_p50_s": run.transfer_p50_s,
        "transfer_p90_s": run.transfer_p90_s,
        "link_changes": run.link_changes,
        "handovers": run.handovers,
    }


def build_dist_grid(*, families: Sequence[str] = DIST_FAMILIES,
                    schedulers: Sequence[str] = DIST_SCHEDULERS,
                    algorithms: Sequence[str] = DIST_ALGORITHMS,
                    seeds: int = DEFAULT_SEEDS,
                    max_flows: int = DIST_MAX_FLOWS,
                    horizon: float = DIST_HORIZON) -> List[RunSpec]:
    """The grid in canonical result order (family-major, seed-minor)."""
    return [
        RunSpec.make(run_dist_point, family=family, scheduler=scheduler,
                     algorithm=algorithm, seed=seed,
                     max_flows=max_flows, horizon=horizon)
        for family in families
        for scheduler in schedulers
        for algorithm in algorithms
        for seed in range(1, seeds + 1)
    ]


def merge_results(specs: Sequence[RunSpec], cache_dir) -> List[Any]:
    """Assemble the result list a completed fabric run left in the cache.

    Purely a read: a missing entry means the fabric lost a point, which
    is exactly the failure the bench exists to catch, so it raises
    instead of recomputing.
    """
    store = ResultStore(cache_dir, memory_entries=0)
    merged = []
    for index, spec in enumerate(specs):
        value = store.get(spec.content_hash(), MISSING)
        if value is MISSING:
            raise RuntimeError(
                f"fabric lost point {index} ({dict(spec.kwargs)}, seed="
                f"{spec.seed}): no cache entry under {store.directory}")
        merged.append(value)
    return merged


def _spawn_worker(port: int, *, jobs: int = 1) -> subprocess.Popen:
    """Start a real ``python -m repro sweep work`` worker process."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parents[2])
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "sweep", "work",
         "--connect", f"127.0.0.1:{port}", "--jobs", str(jobs)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)


def _run_fabric(specs: Sequence[RunSpec], n_workers: int, *,
                log: Callable[[str], None]) -> Dict[str, Any]:
    """One fabric run on a fresh cache; returns the per-run report row."""
    with tempfile.TemporaryDirectory(prefix="repro-dist-") as cache_dir:
        coordinator = SweepCoordinator(
            specs, cache_dir, claim_ttl=DEFAULT_CLAIM_TTL, resume=False)
        thread = CoordinatorThread(coordinator)
        port = thread.start()
        started = time.time()
        procs = [_spawn_worker(port) for _ in range(n_workers)]
        failures = []
        for proc in procs:
            _out, err = proc.communicate()
            if proc.returncode != 0:
                failures.append(
                    f"worker exited {proc.returncode}: "
                    f"{err.decode(errors='replace')[-500:]}")
        stats = thread.result()
        wall = time.time() - started
        if failures:
            raise RuntimeError(
                f"{len(failures)}/{n_workers} workers failed: "
                + "; ".join(failures))
        if not stats["done"]:
            raise RuntimeError(
                f"coordinator stopped with {stats['completed']}/"
                f"{stats['total']} points complete")
        merged = merge_results(specs, cache_dir)
        fabric_wall = stats["wall_seconds"] or wall
        log(f"  {n_workers} worker(s): {len(specs)} points in "
            f"{fabric_wall:.1f}s ({len(specs) / fabric_wall:.1f} pts/s)")
        return {
            "workers": n_workers,
            "wall_seconds": fabric_wall,
            "points_per_sec": len(specs) / fabric_wall,
            "completed": stats["completed"],
            "reassigned_points": stats["reassigned_points"],
            "duplicate_results": stats["duplicate_results"],
            "dead_workers": stats["dead_workers"],
            "leases_granted": stats["leases_granted"],
            "core_limited": (os.cpu_count() or 1) < n_workers,
            "_merged": merged,
        }


def run_dist_bench(*, smoke: Optional[bool] = None,
                   worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
                   seeds: Optional[int] = None,
                   log: Callable[[str], None] = print) -> Dict[str, Any]:
    """Run the full bench (see module docstring); return the report."""
    if smoke is None:
        smoke = bool(os.environ.get("REPRO_BENCH_SMOKE"))
    if smoke:
        grid = dict(families=SMOKE_FAMILIES, schedulers=SMOKE_SCHEDULERS,
                    algorithms=SMOKE_ALGORITHMS,
                    seeds=seeds or SMOKE_SEEDS)
        worker_counts = [n for n in worker_counts if n <= 2] or [1, 2]
    else:
        grid = dict(families=DIST_FAMILIES, schedulers=DIST_SCHEDULERS,
                    algorithms=DIST_ALGORITHMS,
                    seeds=seeds or DEFAULT_SEEDS)
    specs = build_dist_grid(**grid)
    log(f"distributed sweep bench: {len(specs)} points "
        f"({'smoke' if smoke else 'full'} grid), workers {list(worker_counts)}")

    log("  single-host reference (in-memory SweepRunner)...")
    ref_started = time.time()
    reference = SweepRunner(jobs=1).run(specs)
    ref_wall = time.time() - ref_started
    reference_blobs = [pickle.dumps(value) for value in reference]
    log(f"  reference: {len(specs)} points in {ref_wall:.1f}s "
        f"({len(specs) / ref_wall:.1f} pts/s)")

    runs: Dict[str, Dict[str, Any]] = {}
    bitwise_equal = True
    for n_workers in worker_counts:
        row = _run_fabric(specs, n_workers, log=log)
        merged = row.pop("_merged")
        row["bitwise_equal"] = all(
            pickle.dumps(value) == blob
            for value, blob in zip(merged, reference_blobs))
        bitwise_equal = bitwise_equal and row["bitwise_equal"]
        runs[str(n_workers)] = row
    base = runs.get("1")
    for key, row in runs.items():
        if base is not None and key != "1":
            row["scaling_vs_1"] = (
                row["points_per_sec"] / base["points_per_sec"])
            row["efficiency"] = row["scaling_vs_1"] / row["workers"]

    return {
        "benchmark": "dist",
        "smoke": smoke,
        "python": sys.version.split()[0],
        "cpu_count": os.cpu_count() or 1,
        "grid": {
            "points": len(specs),
            "families": list(grid["families"]),
            "schedulers": list(grid["schedulers"]),
            "algorithms": list(grid["algorithms"]),
            "seeds": grid["seeds"],
            "max_flows": DIST_MAX_FLOWS,
            "horizon": DIST_HORIZON,
        },
        "reference": {
            "wall_seconds": ref_wall,
            "points_per_sec": len(specs) / ref_wall,
        },
        "workers": runs,
        "bitwise_equal": bitwise_equal,
    }


def write_report(report: Dict[str, Any], path) -> None:
    Path(path).write_text(json.dumps(report, indent=2, sort_keys=True)
                          + "\n")
