"""Wire protocol of the distributed sweep fabric.

The coordinator and its workers speak the same newline-delimited-JSON
idiom as the allocation-query service (:mod:`repro.serve.service`): one
JSON object per line in, one ``{"ok": bool, ...}`` object per line out,
every error reported in-band instead of killing the connection.  On top
of that, sweep points and their results — arbitrary picklable Python
objects — travel as base64-encoded pickles inside JSON string fields,
so the framing stays line-oriented and debuggable with ``nc``.

Ops (all requests carry ``"op"``):

``register``
    ``{"op": "register", "name": str, "jobs": int, "protocol": int}`` →
    ``worker_id``, grid ``total``, ``lease_size``,
    ``heartbeat_interval``, ``claim_ttl``.
``lease``
    ``{"op": "lease", "worker_id": str, "max_points": int}`` →
    ``lease_id`` plus ``points`` (list of ``{"index", "spec"}`` with the
    spec base64-pickled); an empty list carries either ``done: true``
    (grid complete — exit) or ``retry_after`` seconds (everything is
    leased out — heartbeat and ask again).
``result``
    ``{"op": "result", "worker_id": str, "index": int, "hash": str,
    "payload": str, "from_cache": bool}`` → ack with ``done`` flag.
    The hash is the point's ``RunSpec.content_hash()``; the coordinator
    rejects a result whose hash does not match its manifest (a worker
    running a different grid revision).
``heartbeat``
    ``{"op": "heartbeat", "worker_id": str}`` → ack with ``done``;
    liveness for the coordinator's reaper.  Any op from a worker counts
    as a heartbeat — this one exists for idle/waiting workers.
``status``
    ``{"op": "status"}`` → the merged progress/ETA view (works from any
    connection; ``python -m repro sweep status`` is just this op).
``goodbye``
    ``{"op": "goodbye", "worker_id": str}`` → ack; outstanding leases
    return to the queue immediately instead of waiting for the reaper.
"""

from __future__ import annotations

import base64
import json
import pickle
import socket
from typing import Any, Dict, Optional

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "JsonLineConnection",
    "encode_payload",
    "decode_payload",
    "parse_hostport",
]

#: Bumped on incompatible wire changes; register fails on a mismatch so
#: a stale worker checkout dies loudly instead of corrupting a sweep.
PROTOCOL_VERSION = 1


class ProtocolError(RuntimeError):
    """The peer answered, but with an in-band error (``ok: false``)."""


def encode_payload(obj: Any) -> str:
    """Pickle ``obj`` into a JSON-safe base64 string."""
    return base64.b64encode(pickle.dumps(obj)).decode("ascii")


def decode_payload(text: str) -> Any:
    """Inverse of :func:`encode_payload`."""
    return pickle.loads(base64.b64decode(text.encode("ascii")))


def parse_hostport(text: str, default_port: int = 8653) -> "tuple[str, int]":
    """Parse ``HOST:PORT`` (or bare ``HOST``) into a (host, port) pair."""
    host, sep, port_text = text.rpartition(":")
    if not sep:
        return text, default_port
    try:
        port = int(port_text)
    except ValueError:
        raise ValueError(
            f"expected HOST:PORT with a numeric port, got {text!r}")
    if not 0 < port < 65536:
        raise ValueError(f"port must be in [1, 65535], got {port}")
    return host or "127.0.0.1", port


class JsonLineConnection:
    """Synchronous client side of the JSON-lines protocol (the worker).

    One persistent TCP connection, strict request/response: the
    coordinator treats the connection itself as a liveness signal, so a
    worker keeps it open for its whole lifetime and an EOF tells the
    coordinator to requeue that worker's leases immediately.
    """

    def __init__(self, host: str, port: int, *,
                 timeout: Optional[float] = 60.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def request(self, op: str, **fields: Any) -> Dict[str, Any]:
        """Send one op and return the decoded ``ok: true`` response.

        Raises :class:`ProtocolError` on an in-band error and
        ``ConnectionError`` when the coordinator went away mid-exchange
        (the worker's reconnect loop catches the latter).
        """
        payload = dict(fields)
        payload["op"] = op
        try:
            self._file.write((json.dumps(payload) + "\n").encode())
            self._file.flush()
            line = self._file.readline()
        except OSError as exc:
            raise ConnectionError(
                f"lost the coordinator during {op!r}: {exc}") from exc
        if not line:
            raise ConnectionError(
                f"coordinator closed the connection during {op!r}")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ProtocolError(
                f"undecodable response to {op!r}: {line[:200]!r}") from exc
        if not isinstance(response, dict) or not response.get("ok", False):
            error = response.get("error") if isinstance(response, dict) \
                else repr(response)
            raise ProtocolError(f"{op} rejected: {error}")
        return response

    def close(self) -> None:
        for closer in (self._file.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "JsonLineConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
