"""The sweep coordinator: lease out a grid, reap the dead, merge progress.

``python -m repro sweep serve`` runs one of these.  The coordinator owns
the spec manifest (an ordered list of :class:`RunSpec` points and their
content hashes) and the shared ``cache_dir``; workers own nothing but
CPU.  The division of labor keeps every correctness property in the
places that already guarantee it:

* **completion is the cache entry**, not coordinator state: a point is
  done exactly when ``<hash>.pkl`` is on disk (written atomically
  through :class:`~repro.serve.store.ResultStore`), which is the same
  layout a single-host :class:`~repro.experiments.sweep.SweepRunner`
  resumes from — so a killed coordinator restarted on the same
  ``cache_dir`` loses zero completed points, and the final merged
  result list is assembled by any unsharded runner;
* **leases are an optimization**, not a lock: they keep workers off
  each other's points, but a reassigned point racing its presumed-dead
  original owner is harmless because results are content-addressed and
  written atomically (exactly the ``O_EXCL`` claim-file / ``claim_ttl``
  argument ``shard="steal"`` already makes — see
  docs/ARCHITECTURE.md);
* **liveness is the connection plus heartbeats**: a worker holds one
  TCP connection for its lifetime, so an EOF requeues its outstanding
  leases immediately (covers ``kill -9`` on the same network), and a
  periodic reaper requeues leases whose worker has not been heard from
  for ``heartbeat_timeout`` seconds (covers vanished hosts and network
  partitions).

The coordinator answers a ``status`` op with the merged live view —
done/total, aggregate and per-worker points/s, an ETA — aggregating the
per-worker progress exactly like :class:`SweepProgress` ticks do for a
single-host run.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Set

from ..experiments.runner import RunSpec
from ..serve.store import MISSING, ResultStore
from .protocol import PROTOCOL_VERSION, decode_payload, encode_payload

__all__ = [
    "DEFAULT_CLAIM_TTL",
    "DEFAULT_HEARTBEAT_INTERVAL",
    "DEFAULT_HEARTBEAT_TIMEOUT",
    "DEFAULT_LEASE_SIZE",
    "DEFAULT_PORT",
    "CoordinatorThread",
    "SweepCoordinator",
]

DEFAULT_PORT = 8653

#: Points handed out per lease.  Big enough to amortize a round trip
#: over sub-100ms points, small enough that a dying worker strands at
#: most a few seconds of work per lease.
DEFAULT_LEASE_SIZE = 8

#: Cadence the coordinator asks workers to report at (it is sent back in
#: the register response; workers also implicitly heartbeat with every
#: lease/result op).
DEFAULT_HEARTBEAT_INTERVAL = 2.0

#: Seconds of silence after which a worker is presumed dead and its
#: leases are requeued.  Must comfortably exceed both the heartbeat
#: interval and the slowest single point (a worker cannot talk while
#: executing one).
DEFAULT_HEARTBEAT_TIMEOUT = 30.0

#: Default ``claim_ttl`` in distributed mode: finite, so a hard-killed
#: worker's stale ``.claim`` files (shared-filesystem deployments) never
#: park points forever.  Single-host ``SweepRunner`` keeps its
#: ``None``-by-default; the CLI surfaces ``--claim-ttl`` everywhere.
DEFAULT_CLAIM_TTL = 300.0


@dataclass
class _WorkerState:
    worker_id: str
    name: str
    jobs: int
    connected_at: float
    last_seen: float
    alive: bool = True
    completed: int = 0
    cache_hits: int = 0
    first_result_at: Optional[float] = None
    last_result_at: Optional[float] = None

    def points_per_sec(self) -> Optional[float]:
        if self.completed < 2 or self.first_result_at is None:
            return None
        span = (self.last_result_at or 0.0) - self.first_result_at
        return (self.completed - 1) / span if span > 0 else None


@dataclass
class _Lease:
    lease_id: str
    worker_id: str
    granted_at: float
    outstanding: Set[int] = field(default_factory=set)


class SweepCoordinator:
    """Own a sweep's spec manifest and hand its points out over TCP.

    Parameters
    ----------
    specs : sequence of RunSpec
        The full grid, in result order (the manifest).
    cache_dir : path-like
        Shared content-hash cache; completed points are written here
        (atomic rename via :class:`ResultStore`) and resumed from here.
    claim_ttl : float, optional
        Advertised to workers for their local ``.claim`` reaping in
        shared-filesystem deployments; finite by default in
        distributed mode (:data:`DEFAULT_CLAIM_TTL`).
    lease_size : int
        Points per lease (workers may ask for fewer).
    heartbeat_timeout : float
        Silence after which a worker's leases are requeued.
    resume : bool
        Scan ``cache_dir`` for already-completed points before serving
        (the default); ``False`` recomputes everything (entries are
        overwritten, never duplicated).
    on_progress : callable, optional
        Called with the :meth:`status` dict roughly once per
        ``progress_interval`` seconds while points complete.
    """

    def __init__(self, specs: Sequence[RunSpec],
                 cache_dir, *,
                 claim_ttl: Optional[float] = DEFAULT_CLAIM_TTL,
                 lease_size: int = DEFAULT_LEASE_SIZE,
                 heartbeat_interval: float = DEFAULT_HEARTBEAT_INTERVAL,
                 heartbeat_timeout: float = DEFAULT_HEARTBEAT_TIMEOUT,
                 resume: bool = True,
                 on_progress: Optional[Callable[[dict], None]] = None,
                 progress_interval: float = 5.0) -> None:
        self.specs = list(specs)
        if not self.specs:
            raise ValueError("a coordinator needs at least one spec")
        if lease_size < 1:
            raise ValueError("lease_size must be >= 1")
        if heartbeat_timeout <= heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must exceed heartbeat_interval "
                f"(got {heartbeat_timeout} <= {heartbeat_interval})")
        self.hashes = [spec.content_hash() for spec in self.specs]
        self.store = ResultStore(cache_dir, memory_entries=0)
        self.claim_ttl = claim_ttl
        self.lease_size = lease_size
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.on_progress = on_progress
        self.progress_interval = progress_interval

        self._completed: Set[int] = set()
        self._queue: "deque[int]" = deque()
        self._leases: Dict[str, _Lease] = {}
        self._workers: Dict[str, _WorkerState] = {}
        self._ids = itertools.count(1)
        self._done_event: Optional[asyncio.Event] = None
        self._open_connections = 0
        self.bound_port: Optional[int] = None

        # Stats counters (exposed via stats()/status(), mirrored into
        # BENCH_dist.json by the bench harness).
        self.resumed_points = 0
        self.results_received = 0
        self.duplicate_results = 0
        self.reassigned_points = 0
        self.dead_workers = 0
        self.leases_granted = 0
        self.started_at: Optional[float] = None
        self.finished_at: Optional[float] = None

        if resume:
            self._scan_cache()
        self._queue.extend(i for i in range(len(self.specs))
                           if i not in self._completed)

    # -- resume -----------------------------------------------------------------
    def _scan_cache(self) -> None:
        """Mark points whose result already sits in the shared cache.

        Reading through :meth:`ResultStore.get` gives torn-entry healing
        for free: a truncated/corrupt ``<hash>.pkl`` (a writer that died
        mid-crash on a non-atomic filesystem) reads as a miss, is
        deleted, and the point is simply recomputed.
        """
        for index, key in enumerate(self.hashes):
            if self.store.get(key, MISSING) is not MISSING:
                self._completed.add(index)
        self.resumed_points = len(self._completed)
        if len(self._completed) == len(self.specs):
            self.finished_at = time.time()

    # -- queue/lease bookkeeping ------------------------------------------------
    @property
    def total(self) -> int:
        return len(self.specs)

    @property
    def done(self) -> bool:
        return len(self._completed) == len(self.specs)

    def _requeue(self, lease: _Lease, *, reason: str) -> int:
        """Return a lease's unfinished points to the queue head."""
        stranded = sorted(lease.outstanding - self._completed)
        for index in reversed(stranded):
            self._queue.appendleft(index)
        self.reassigned_points += len(stranded)
        lease.outstanding.clear()
        self._leases.pop(lease.lease_id, None)
        return len(stranded)

    def _drop_worker(self, worker_id: str, *, reason: str) -> int:
        """Requeue every lease a worker holds and mark it gone."""
        stranded = 0
        for lease in [lease for lease in self._leases.values()
                      if lease.worker_id == worker_id]:
            stranded += self._requeue(lease, reason=reason)
        state = self._workers.get(worker_id)
        if state is not None and state.alive:
            state.alive = False
            if reason == "heartbeat-timeout":
                self.dead_workers += 1
        return stranded

    def _mark_complete(self, index: int, worker_id: Optional[str],
                       from_cache: bool) -> None:
        self._completed.add(index)
        for lease in self._leases.values():
            lease.outstanding.discard(index)
        state = self._workers.get(worker_id) if worker_id else None
        now = time.time()
        if state is not None:
            state.completed += 1
            state.cache_hits += int(from_cache)
            if state.first_result_at is None:
                state.first_result_at = now
            state.last_result_at = now
        if self.done:
            self.finished_at = now
            if self._done_event is not None:
                self._done_event.set()

    # -- op handlers ------------------------------------------------------------
    def _op_register(self, payload: dict) -> dict:
        protocol = payload.get("protocol")
        if protocol != PROTOCOL_VERSION:
            raise ValueError(
                f"protocol version mismatch: worker speaks {protocol!r}, "
                f"coordinator speaks {PROTOCOL_VERSION} (mixed checkouts?)")
        worker_id = f"w{next(self._ids)}"
        now = time.time()
        self._workers[worker_id] = _WorkerState(
            worker_id=worker_id,
            name=str(payload.get("name") or worker_id),
            jobs=int(payload.get("jobs", 1)),
            connected_at=now, last_seen=now)
        return {
            "worker_id": worker_id,
            "total": self.total,
            "completed": len(self._completed),
            "lease_size": self.lease_size,
            "heartbeat_interval": self.heartbeat_interval,
            "claim_ttl": self.claim_ttl,
            "protocol": PROTOCOL_VERSION,
        }

    def _op_lease(self, payload: dict) -> dict:
        state = self._require_worker(payload)
        if self.done:
            return {"points": [], "done": True}
        limit = min(self.lease_size,
                    int(payload.get("max_points", self.lease_size)))
        indices: List[int] = []
        while self._queue and len(indices) < max(limit, 1):
            index = self._queue.popleft()
            if index not in self._completed:
                indices.append(index)
        if not indices:
            # Everything is leased out: the worker waits for either a
            # reaped lease or the done flag.
            return {"points": [], "done": False,
                    "retry_after": self.heartbeat_interval / 2}
        if self.started_at is None:
            self.started_at = time.time()
        lease = _Lease(lease_id=f"l{next(self._ids)}",
                       worker_id=state.worker_id,
                       granted_at=time.time(),
                       outstanding=set(indices))
        self._leases[lease.lease_id] = lease
        self.leases_granted += 1
        return {
            "lease_id": lease.lease_id,
            "done": False,
            "remaining": self.total - len(self._completed),
            "points": [{"index": index,
                        "hash": self.hashes[index],
                        "spec": encode_payload(self.specs[index])}
                       for index in indices],
        }

    def _op_result(self, payload: dict) -> dict:
        state = self._require_worker(payload)
        index = int(payload["index"])
        if not 0 <= index < self.total:
            raise ValueError(
                f"result index {index} out of range (grid has "
                f"{self.total} points)")
        reported = payload.get("hash")
        if reported != self.hashes[index]:
            raise ValueError(
                f"result hash mismatch at point {index}: worker computed "
                f"{reported!r}, manifest says {self.hashes[index]!r} — "
                "the worker is running a different grid or code revision")
        if index in self._completed:
            # A reassigned point's original owner came back: the result
            # is identical by construction (content-addressed, pure
            # function), so acknowledge and count it.
            self.duplicate_results += 1
            return {"done": self.done, "duplicate": True}
        value = decode_payload(payload["payload"])
        self.store.put(self.hashes[index], value)
        self.results_received += 1
        self._mark_complete(index, state.worker_id,
                            bool(payload.get("from_cache", False)))
        return {"done": self.done, "duplicate": False}

    def _op_heartbeat(self, payload: dict) -> dict:
        self._require_worker(payload)
        return {"done": self.done,
                "completed": len(self._completed), "total": self.total}

    def _op_goodbye(self, payload: dict) -> dict:
        state = self._require_worker(payload, touch=False)
        stranded = self._drop_worker(state.worker_id, reason="goodbye")
        return {"requeued": stranded, "done": self.done}

    def _require_worker(self, payload: dict, *,
                        touch: bool = True) -> _WorkerState:
        worker_id = payload.get("worker_id")
        state = self._workers.get(worker_id)
        if state is None:
            raise ValueError(
                f"unknown worker_id {worker_id!r}: register first "
                "(or the coordinator restarted — reconnect)")
        if touch:
            state.last_seen = time.time()
            state.alive = True
        return state

    # -- merged progress view ---------------------------------------------------
    def status(self) -> dict:
        """The merged live progress/ETA view (the ``status`` op)."""
        now = time.time()
        done = len(self._completed)
        leased = len({index for lease in self._leases.values()
                      for index in lease.outstanding})
        rate = None
        if self.started_at is not None and self.results_received > 0:
            end = self.finished_at if self.done else now
            span = end - self.started_at
            rate = self.results_received / span if span > 0 else None
        remaining = self.total - done
        eta = (remaining / rate) if rate and remaining else None
        workers = {
            state.worker_id: {
                "name": state.name,
                "jobs": state.jobs,
                "alive": state.alive,
                "completed": state.completed,
                "cache_hits": state.cache_hits,
                "points_per_sec": state.points_per_sec(),
                "last_seen_age": round(now - state.last_seen, 3),
            }
            for state in self._workers.values()
        }
        return {
            "total": self.total,
            "completed": done,
            "queued": len(self._queue),
            "leased": leased,
            "done": self.done,
            "points_per_sec": rate,
            "eta_seconds": eta,
            "resumed_points": self.resumed_points,
            "results_received": self.results_received,
            "duplicate_results": self.duplicate_results,
            "reassigned_points": self.reassigned_points,
            "dead_workers": self.dead_workers,
            "leases_granted": self.leases_granted,
            "workers": workers,
        }

    def stats(self) -> dict:
        """Counters for the bench report (superset-free status slice)."""
        status = self.status()
        status["wall_seconds"] = (
            None if self.started_at is None or self.finished_at is None
            else self.finished_at - self.started_at)
        return status

    # -- the server -------------------------------------------------------------
    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        self._open_connections += 1
        connection_workers: Set[str] = set()
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    payload = json.loads(line)
                    op = payload.get("op")
                    handler = {
                        "register": self._op_register,
                        "lease": self._op_lease,
                        "result": self._op_result,
                        "heartbeat": self._op_heartbeat,
                        "goodbye": self._op_goodbye,
                        "status": lambda _payload: self.status(),
                    }.get(op)
                    if handler is None:
                        raise ValueError(f"unknown op {op!r}")
                    response = {"ok": True, **handler(payload)}
                    if op == "register":
                        connection_workers.add(response["worker_id"])
                except Exception as exc:  # protocol boundary: stay up
                    response = {"ok": False,
                                "error": f"{type(exc).__name__}: {exc}"}
                writer.write((json.dumps(response) + "\n").encode())
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        except asyncio.CancelledError:
            pass   # server shutting down with this connection open
        finally:
            self._open_connections -= 1
            # The connection IS the worker's liveness on a healthy
            # network: requeue its leases right away rather than waiting
            # out the heartbeat timeout (which still covers partitions).
            if not self.done:
                for worker_id in connection_workers:
                    self._drop_worker(worker_id, reason="disconnect")
            writer.close()

    async def _reap_loop(self) -> None:
        last_progress = 0.0
        while True:
            await asyncio.sleep(
                min(self.heartbeat_interval, self.progress_interval) / 2)
            now = time.time()
            if not self.done:
                # No reaping once the grid is complete: workers idling
                # through the linger window are draining, not dead.
                for state in list(self._workers.values()):
                    if state.alive and \
                            now - state.last_seen > self.heartbeat_timeout:
                        self._drop_worker(state.worker_id,
                                          reason="heartbeat-timeout")
            if self.on_progress is not None and \
                    now - last_progress >= self.progress_interval:
                last_progress = now
                self.on_progress(self.status())

    async def serve(self, host: str = "127.0.0.1",
                    port: int = DEFAULT_PORT, *,
                    ready: Optional[Callable[[int], None]] = None,
                    linger: float = 3.0) -> dict:
        """Serve the grid until every point is complete; return stats.

        ``ready`` is called with the bound port once listening (``port``
        may be 0 for an ephemeral port — tests and the bench use this).
        After the last result lands the coordinator lingers up to
        ``linger`` seconds so workers polling for the ``done`` flag get
        their answer, then closes.
        """
        loop = asyncio.get_running_loop()
        self._done_event = asyncio.Event()
        self._stop_event = asyncio.Event()
        self._loop = loop
        if self.done:
            self._done_event.set()
        server = await asyncio.start_server(
            self._handle_connection, host, port)
        self.bound_port = server.sockets[0].getsockname()[1]
        if ready is not None:
            ready(self.bound_port)
        reaper = asyncio.ensure_future(self._reap_loop())
        try:
            done_wait = asyncio.ensure_future(self._done_event.wait())
            stop_wait = asyncio.ensure_future(self._stop_event.wait())
            await asyncio.wait({done_wait, stop_wait},
                               return_when=asyncio.FIRST_COMPLETED)
            done_wait.cancel()
            stop_wait.cancel()
            if self.done:
                # Grace window: let connected workers observe done=true.
                deadline = loop.time() + linger
                while self._open_connections and loop.time() < deadline:
                    await asyncio.sleep(0.05)
        finally:
            reaper.cancel()
            server.close()
            await server.wait_closed()
        if self.on_progress is not None:
            self.on_progress(self.status())
        return self.stats()

    def request_stop(self) -> None:
        """Thread-safe: make :meth:`serve` return (simulates a kill)."""
        loop = getattr(self, "_loop", None)
        if loop is not None and not loop.is_closed():
            loop.call_soon_threadsafe(self._stop_event.set)


class CoordinatorThread:
    """Run a coordinator's asyncio server on a background thread.

    The bench harness and the fault-injection tests drive coordinators
    this way: ``start()`` returns the bound (possibly ephemeral) port,
    ``stop()`` simulates killing the coordinator, ``result()`` joins and
    returns the final stats dict.
    """

    def __init__(self, coordinator: SweepCoordinator,
                 host: str = "127.0.0.1", port: int = 0) -> None:
        self.coordinator = coordinator
        self.host = host
        self.port = port
        self._stats: Optional[dict] = None
        self._error: Optional[BaseException] = None
        self._thread = None

    def start(self, timeout: float = 10.0) -> int:
        import threading
        ready = threading.Event()
        bound: List[int] = []

        def note_port(port: int) -> None:
            bound.append(port)
            ready.set()

        def main() -> None:
            try:
                self._stats = asyncio.run(self.coordinator.serve(
                    self.host, self.port, ready=note_port))
            except BaseException as exc:   # surfaced by result()
                self._error = exc
                ready.set()

        self._thread = threading.Thread(target=main, daemon=True,
                                        name="sweep-coordinator")
        self._thread.start()
        if not ready.wait(timeout) or not bound:
            raise RuntimeError(
                "coordinator failed to start"
                + (f": {self._error}" if self._error else ""))
        self.port = bound[0]
        return self.port

    def stop(self) -> None:
        self.coordinator.request_stop()

    def result(self, timeout: float = 60.0) -> dict:
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise RuntimeError("coordinator thread did not stop")
        if self._error is not None:
            raise self._error
        return self._stats
