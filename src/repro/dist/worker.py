"""The sweep worker: lease points, execute them, stream results back.

``python -m repro sweep work --connect HOST:PORT`` runs one of these.
A worker owns no state worth preserving — every completed point is
streamed back to the coordinator (which writes it into the shared cache
through the atomic-rename path) before the worker asks for more, so a
worker killed at any instant strands at most one lease of in-flight
points, which the coordinator requeues.

Two optional fast paths when the worker shares a filesystem with the
coordinator (``--cache-dir`` pointing at the same directory):

* a point already in the cache is sent back as ``from_cache`` without
  recomputation — this is how a worker "re-enters the steal path": the
  cache layout and ``.claim`` files are exactly the single-host
  :class:`~repro.experiments.sweep.SweepRunner` ones, so distributed
  and local runs interleave safely on one cache;
* an ``O_EXCL`` ``.claim`` file (with the coordinator-advertised
  ``claim_ttl``) is taken around each compute, keeping a concurrent
  *local* ``shard="steal"`` runner off points the fabric is executing.

Neither path is required for correctness: leases keep fabric workers
disjoint, and every write is content-addressed + atomic, so the worst
case of any race is one redundant compute of a pure function.
"""

from __future__ import annotations

import os
import socket
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, List, Optional, Tuple

from ..experiments.runner import RunSpec
from ..serve.store import MISSING, ResultStore
from ..util.atomics import release_claim, try_claim
from .protocol import (PROTOCOL_VERSION, JsonLineConnection,
                       decode_payload, encode_payload)

__all__ = ["SweepWorker", "WorkerSummary"]


@dataclass
class WorkerSummary:
    """What one :meth:`SweepWorker.run` call accomplished."""

    name: str
    computed: int = 0
    cache_hits: int = 0
    leases: int = 0
    reconnects: int = 0
    wall_seconds: float = 0.0
    #: ``"done"`` (grid complete), ``"coordinator-gone"`` (reconnect
    #: attempts exhausted before the grid finished), or ``"stopped"``.
    reason: str = "done"

    @property
    def points(self) -> int:
        return self.computed + self.cache_hits


def _execute_spec(spec: RunSpec) -> Any:
    """Top-level for picklability under ProcessPoolExecutor."""
    return spec.execute()


class SweepWorker:
    """Lease-execute-report loop against one coordinator.

    Parameters
    ----------
    host, port : str, int
        The coordinator (``parse_hostport`` turns ``HOST:PORT`` into
        this pair).
    jobs : int
        Local execution parallelism; ``>1`` fans each lease out over a
        ``ProcessPoolExecutor`` (specs are picklable by construction).
    cache_dir : path-like, optional
        Shared-filesystem fast path (see module docstring).  ``None``
        (the default, and how the bench runs) streams everything over
        TCP — the workers need nothing but the coordinator's address.
    claim_ttl : float, optional
        Overrides the coordinator-advertised TTL for local ``.claim``
        files; only meaningful with ``cache_dir``.
    reconnect_attempts : int
        Connection attempts (initial connect and after each drop)
        before giving up with reason ``"coordinator-gone"``.
    reconnect_delay : float
        Base of the exponential backoff between attempts.
    """

    def __init__(self, host: str, port: int, *,
                 jobs: int = 1,
                 cache_dir=None,
                 claim_ttl: Optional[float] = None,
                 name: Optional[str] = None,
                 reconnect_attempts: int = 5,
                 reconnect_delay: float = 0.5,
                 on_progress: Optional[Callable[[dict], None]] = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if reconnect_attempts < 1:
            raise ValueError("reconnect_attempts must be >= 1")
        self.host = host
        self.port = port
        self.jobs = jobs
        self.store = (ResultStore(cache_dir, memory_entries=0)
                      if cache_dir is not None else None)
        self.claim_ttl = claim_ttl
        self.name = name or f"{socket.gethostname()}-{os.getpid()}"
        self.reconnect_attempts = reconnect_attempts
        self.reconnect_delay = reconnect_delay
        self.on_progress = on_progress
        self._stop = False

    def stop(self) -> None:
        """Finish the current point, say goodbye, and return."""
        self._stop = True

    # -- execution --------------------------------------------------------------
    def _execute_points(self, points: List[dict],
                        pool: Optional[ProcessPoolExecutor],
                        ) -> List[Tuple[dict, Any, bool]]:
        """Run a lease's points; (point, value, from_cache) triples."""
        todo: List[Tuple[dict, RunSpec]] = []
        out: List[Tuple[dict, Any, bool]] = []
        for point in points:
            spec = decode_payload(point["spec"])
            if self.store is not None:
                cached = self.store.get(point["hash"], MISSING)
                if cached is not MISSING:
                    out.append((point, cached, True))
                    continue
            todo.append((point, spec))
        claims: List[Path] = []
        if self.store is not None:
            for point, _spec in todo:
                claim = self.store.directory / f"{point['hash']}.claim"
                if try_claim(claim, ttl=self.claim_ttl,
                             payload=f"dist-worker={self.name}\n"):
                    claims.append(claim)
                # A refused claim means a local steal-mode runner is on
                # this point right now; the lease is still ours, and a
                # duplicate compute of a pure function is harmless, so
                # proceed either way.
        try:
            if pool is not None and len(todo) > 1:
                values = list(pool.map(_execute_spec,
                                       [spec for _, spec in todo]))
            else:
                values = [spec.execute() for _, spec in todo]
        finally:
            for claim in claims:
                release_claim(claim)
        for (point, _spec), value in zip(todo, values):
            if self.store is not None:
                self.store.put(point["hash"], value)
            out.append((point, value, False))
        return out

    # -- the loop ---------------------------------------------------------------
    def run(self) -> WorkerSummary:
        """Work until the grid is done or the coordinator stays gone."""
        summary = WorkerSummary(name=self.name)
        start = time.time()
        pool = (ProcessPoolExecutor(max_workers=self.jobs)
                if self.jobs > 1 else None)
        try:
            while not self._stop:
                conn = self._connect(summary)
                if conn is None:
                    summary.reason = "coordinator-gone"
                    break
                try:
                    done = self._serve_connection(conn, summary, pool)
                except ConnectionError:
                    # Coordinator dropped mid-exchange (killed, or our
                    # worker_id was reaped after a restart): register
                    # afresh.  Our old leases get requeued server-side.
                    continue
                if done:
                    summary.reason = "done"
                    break
            else:
                summary.reason = "stopped"
        finally:
            if pool is not None:
                pool.shutdown()
            summary.wall_seconds = time.time() - start
        return summary

    def _connect(self, summary: WorkerSummary,
                 ) -> Optional[JsonLineConnection]:
        """Dial with exponential backoff; count drops as reconnects."""
        for attempt in range(self.reconnect_attempts):
            if attempt:
                time.sleep(self.reconnect_delay * (2 ** (attempt - 1)))
            try:
                return JsonLineConnection(self.host, self.port)
            except OSError:
                summary.reconnects += 1
        return None

    def _serve_connection(self, conn: JsonLineConnection,
                          summary: WorkerSummary,
                          pool: Optional[ProcessPoolExecutor]) -> bool:
        """One connection's lifetime; ``True`` when the grid finished."""
        try:
            hello = conn.request("register", name=self.name,
                                 jobs=self.jobs,
                                 protocol=PROTOCOL_VERSION)
            worker_id = hello["worker_id"]
            if self.claim_ttl is None:
                self.claim_ttl = hello.get("claim_ttl")
            heartbeat_interval = float(
                hello.get("heartbeat_interval", 2.0))
            last_beat = time.time()
            while not self._stop:
                lease = conn.request("lease", worker_id=worker_id,
                                     max_points=hello.get("lease_size", 8))
                if lease.get("done"):
                    return True
                points = lease.get("points", [])
                if not points:
                    time.sleep(float(lease.get("retry_after", 1.0)))
                    resp = conn.request("heartbeat", worker_id=worker_id)
                    last_beat = time.time()
                    if resp.get("done"):
                        return True
                    continue
                summary.leases += 1
                done = False
                for point, value, from_cache in self._execute_points(
                        points, pool):
                    resp = conn.request(
                        "result", worker_id=worker_id,
                        index=point["index"], hash=point["hash"],
                        payload=encode_payload(value),
                        from_cache=from_cache)
                    last_beat = time.time()
                    if from_cache:
                        summary.cache_hits += 1
                    else:
                        summary.computed += 1
                    if self.on_progress is not None:
                        self.on_progress({"worker": self.name,
                                          "points": summary.points,
                                          "done": resp.get("done", False)})
                    done = done or bool(resp.get("done"))
                if done:
                    return True
                if time.time() - last_beat > heartbeat_interval:
                    conn.request("heartbeat", worker_id=worker_id)
                    last_beat = time.time()
            try:
                conn.request("goodbye", worker_id=worker_id)
            except Exception:
                pass
            return False
        finally:
            conn.close()
