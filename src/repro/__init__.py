"""repro — reproduction of "MPTCP is not Pareto-Optimal" (Khalili et al.).

The package is organised in layers:

* :mod:`repro.core` — the congestion-control algorithms themselves
  (OLIA, LIA, and baselines), independent of any simulator.
* :mod:`repro.fluid` — the paper's fluid model (differential inclusion),
  used to verify Theorems 1, 3 and 4 numerically.
* :mod:`repro.analysis` — closed-form fixed points and the "theoretical
  optimum with probing cost" for scenarios A, B and C.
* :mod:`repro.sim` — a packet-level discrete-event simulator standing in
  for the paper's Linux testbed and the htsim simulator.
* :mod:`repro.topology` — scenario and FatTree topology builders.
* :mod:`repro.experiments` — runners that regenerate every table and
  figure of the evaluation.

Quickstart::

    from repro.experiments.traces import run_two_path_trace

    result = run_two_path_trace(algorithm="olia", competing=(5, 10))
    print(result.summary())
"""

from . import units
from .core import (
    AlgorithmSpec,
    BaliaController,
    CoupledController,
    EwtcpController,
    LiaController,
    MultipathController,
    OliaController,
    RenoController,
    SubflowState,
    available_algorithms,
    get_spec,
    make_allocation_rule,
    make_controller,
    make_fluid_algorithm,
)

__version__ = "1.0.0"

__all__ = [
    "units",
    "MultipathController",
    "SubflowState",
    "OliaController",
    "LiaController",
    "RenoController",
    "CoupledController",
    "EwtcpController",
    "BaliaController",
    "AlgorithmSpec",
    "get_spec",
    "available_algorithms",
    "make_controller",
    "make_fluid_algorithm",
    "make_allocation_rule",
    "__version__",
]
