"""Build config for the optional compiled DES kernels.

The repo is pure-python by default (``PYTHONPATH=src``); this setup
script exists to build the one optional C extension,
``repro.sim._kernels``, in place::

    python setup.py build_ext --inplace

which drops the shared object next to ``src/repro/sim/engine.py``.
Everything degrades gracefully when the extension is absent — the
pure-python scheduler and engine are the reference implementations —
so building is an optional speed-up, never a requirement (CI runs one
job with the build deliberately skipped to enforce that).
"""

from setuptools import Extension, find_packages, setup

setup(
    name="repro",
    version="0.6.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    ext_modules=[
        Extension(
            "repro.sim._kernels",
            sources=["src/repro/sim/_kernels.c"],
            extra_compile_args=["-O2"],
        ),
    ],
)
