#!/usr/bin/env python3
"""Responsiveness demo: congestion moves, OLIA follows.

The paper motivates OLIA's alpha term with responsiveness: when path
quality changes, the algorithm must re-balance quickly (Section IV).
Here a two-path user (think WiFi + cellular) starts with a clean path 1;
at t=45s a burst of 8 TCP flows congests path 1, so the user should
shift its traffic to path 2.

Run:  python examples/wireless_handover.py
"""

import random

from repro.sim import BulkTransfer, MptcpConnection, Simulator, WindowTracer
from repro.topology import build_two_path


def mean_windows(tracer, t_from, t_to):
    rows = [w for t, w in zip(tracer.times, tracer.windows)
            if t_from <= t < t_to]
    if not rows:
        return 0.0, 0.0
    return (sum(r[0] for r in rows) / len(rows),
            sum(r[1] for r in rows) / len(rows))


def run(algorithm: str) -> None:
    sim = Simulator()
    rng = random.Random(7)
    topo = build_two_path(sim, rng, capacity_mbps=10.0)
    # Steady background: 3 TCP flows on each path.
    for path_index in (0, 1):
        for i in range(3):
            bulk = BulkTransfer(sim, "tcp", [topo.tcp_paths[path_index]],
                                start_time=rng.uniform(0, 1),
                                name=f"bg{path_index}.{i}")
            bulk.start()
    conn = MptcpConnection(sim, algorithm, topo.mptcp_paths)
    tracer = WindowTracer(sim, conn, period=0.25)
    conn.start(1.0)
    tracer.start()
    # The congestion burst arrives on path 1 at t=45.
    for i in range(8):
        burst = BulkTransfer(sim, "tcp", [topo.tcp_paths[0]],
                             start_time=45.0 + 0.1 * i, name=f"burst{i}")
        burst.start()
    sim.run(until=90.0)

    before = mean_windows(tracer, 25.0, 45.0)
    after = mean_windows(tracer, 65.0, 90.0)
    print(f"\n{algorithm.upper()}:")
    print(f"  windows before burst (t in [25,45)): "
          f"w1={before[0]:5.2f}  w2={before[1]:5.2f}")
    print(f"  windows after burst  (t in [65,90)): "
          f"w1={after[0]:5.2f}  w2={after[1]:5.2f}")
    shift = (after[1] - after[0]) - (before[1] - before[0])
    print(f"  traffic shift towards path 2: {shift:+.2f} packets of window")


def main() -> None:
    print("Congestion burst hits path 1 at t=45s; the multipath user")
    print("should re-balance towards path 2.")
    for algorithm in ("olia", "lia"):
        run(algorithm)


if __name__ == "__main__":
    main()
