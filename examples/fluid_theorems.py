#!/usr/bin/env python3
"""Fluid model: watch Theorems 1, 3 and 4 hold numerically.

Builds the scenario of Section V (a two-path OLIA user competing with
TCP users), integrates the differential-inclusion dynamics, and checks:

* Theorem 1 — only best paths carry traffic; the total equals the TCP
  rate on the best path;
* Theorem 3 — the KKT certificate of the utility V* holds (Pareto
  optimality), and fails for LIA;
* Theorem 4 — V(x(t)) increases monotonically along the trajectory.

Run:  python examples/fluid_theorems.py
"""

import numpy as np

from repro.fluid import (
    FluidNetwork,
    PowerLoss,
    integrate,
    kkt_report,
    solve_fixed_point,
    v_utility,
    verify_theorem1,
)


def build():
    net = FluidNetwork()
    ap1 = net.add_link(PowerLoss(capacity=800.0, p_at_capacity=0.02),
                       name="AP1")
    ap2 = net.add_link(PowerLoss(capacity=800.0, p_at_capacity=0.02),
                       name="AP2")
    mp = net.add_user("mp")
    net.add_route(mp, [ap1], rtt=0.1)
    net.add_route(mp, [ap2], rtt=0.1)
    rules = {mp: "olia"}
    for i in range(3):
        user = net.add_user(f"tcp{i}")
        net.add_route(user, [ap2], rtt=0.1)
        rules[user] = "tcp"
    return net, rules


def main() -> None:
    net, rules = build()
    print(net.describe())

    print("\n-- Theorem 1: OLIA fixed point uses only best paths")
    fp = solve_fixed_point(net, rules, floor_packets=1.0)
    print(f"rates: {np.round(fp.rates, 1)}")
    print(f"route losses: {np.round(fp.route_loss, 4)}")
    for name, holds in verify_theorem1(net, fp.rates).items():
        print(f"  {name}: {holds}")

    print("\n-- Theorem 3: KKT Pareto certificate (OLIA vs LIA)")
    report = kkt_report(net, fp.rates, tol=0.1)
    print(f"  OLIA: pareto-optimal = {report.is_pareto_optimal} "
          f"(max violation {report.max_violation:.3f})")
    lia_rules = dict(rules)
    lia_rules[0] = "lia"
    lia_fp = solve_fixed_point(net, lia_rules, floor_packets=1.0)
    lia_report = kkt_report(net, lia_fp.rates, tol=0.1)
    print(f"  LIA:  pareto-optimal = {lia_report.is_pareto_optimal} "
          f"(max complementarity {lia_report.max_complementarity:.3f})")

    print("\n-- Theorem 4: V(x(t)) along the OLIA trajectory")
    traj = integrate(net, rules, t_end=30.0, dt=2e-3, floor_packets=0.0,
                     x0=np.full(net.n_routes, 5.0))
    values = [v_utility(net, x) for x in traj.rates]
    for frac in (0.0, 0.25, 0.5, 0.75, 1.0):
        i = min(int(frac * (len(values) - 1)), len(values) - 1)
        print(f"  t={traj.times[i]:5.1f}s  V = {values[i]:.6f}")
    print(f"  monotone non-decreasing: "
          f"{bool(np.all(np.diff(values) >= -1e-6))}")


if __name__ == "__main__":
    main()
