#!/usr/bin/env python3
"""Quickstart: run OLIA and LIA on a two-path topology and compare.

This is the paper's illustrative example (Section IV-C, Figures 7-8):
a two-path MPTCP user shares bottleneck 1 with 5 TCP flows and
bottleneck 2 with 10 TCP flows.  OLIA should retreat from the congested
second path while LIA keeps transmitting there.

Run:  python examples/quickstart.py
"""

from repro.experiments.traces import run_two_path_trace


def main() -> None:
    print("Two-path MPTCP (asymmetric: 5 vs 10 competing TCP flows)")
    print("=" * 60)
    for algorithm in ("olia", "lia"):
        trace = run_two_path_trace(algorithm, competing=(5, 10),
                                   duration=60.0)
        w1, w2 = trace.mean_windows
        print(f"\n{algorithm.upper()}:")
        print(f"  mean window, good path:      {w1:6.2f} packets")
        print(f"  mean window, congested path: {w2:6.2f} packets")
        print(f"  window imbalance:            {trace.window_imbalance():.2f}")
        if algorithm == "olia":
            # Show a slice of the alpha trace: the opportunistic term at
            # work (non-zero means traffic is being re-forwarded).
            nonzero = sum(1 for row in trace.alphas
                          if any(a != 0 for a in row))
            print(f"  alpha active in {nonzero}/{len(trace.alphas)} samples")
    print("\nExpected: OLIA's congested-path window sits near the 1-MSS")
    print("probing floor; LIA's stays visibly higher (paper Fig. 8).")


if __name__ == "__main__":
    main()
