#!/usr/bin/env python3
"""Scenario A: does upgrading users to MPTCP hurt the others?

Reproduces the paper's headline result (problem P1, Figures 1 and 9):
N1 streaming-server clients add an MPTCP subflow through a shared AP
used by N2 regular TCP users.  The upgrade gains the upgraded users
nothing (they are server-limited) but, under LIA, costs the TCP users
up to half their throughput.  OLIA avoids the damage.

Run:  python examples/scenario_a_upgrade_study.py
"""

from repro.analysis import scenario_a as theory
from repro.experiments import scenario_a
from repro.units import mbps_to_pps


def main() -> None:
    n2, c1_mbps, c2_mbps, rtt = 10, 1.0, 1.0, 0.15
    print("Scenario A: N2=10 TCP users behind a shared 10 Mb/s AP;")
    print("N1 MPTCP users add a subflow through that AP.\n")
    header = (f"{'N1/N2':>6} | {'type2 theory':>12} | {'type2 LIA':>10} | "
              f"{'type2 OLIA':>10} | {'optimum':>8}")
    print(header)
    print("-" * len(header))
    for n1 in (10, 20, 30):
        fixed_point = theory.lia_fixed_point(
            n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(c2_mbps),
            rtt=rtt)
        optimum = theory.optimum_with_probing(
            n1=n1, n2=n2, c1=mbps_to_pps(c1_mbps), c2=mbps_to_pps(c2_mbps),
            rtt=rtt)
        lia = scenario_a.simulate("lia", n1=n1, n2=n2, c1_mbps=c1_mbps,
                                  c2_mbps=c2_mbps, duration=20.0,
                                  warmup=10.0)
        olia = scenario_a.simulate("olia", n1=n1, n2=n2, c1_mbps=c1_mbps,
                                   c2_mbps=c2_mbps, duration=20.0,
                                   warmup=10.0)
        print(f"{n1 / n2:>6.1f} | {fixed_point.type2_normalized:>12.2f} | "
              f"{lia.type2_normalized:>10.2f} | "
              f"{olia.type2_normalized:>10.2f} | "
              f"{optimum.type2_normalized:>8.2f}")
    print("\ntype1 users get normalized throughput 1.0 in every cell —")
    print("the upgrade buys them nothing while LIA taxes type2 users.")


if __name__ == "__main__":
    main()
