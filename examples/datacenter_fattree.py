#!/usr/bin/env python3
"""Data-center FatTree: MPTCP subflow sweep (paper Fig. 13(a)).

A permutation workload on a k=4 FatTree (16 hosts): every host sends a
long-lived flow to a distinct host.  Single-path TCP collides on ECMP
paths; MPTCP with enough subflows uses nearly all the capacity, and
OLIA matches LIA because every path is equally good here.

Run:  python examples/datacenter_fattree.py
"""

from repro.experiments import fattree


def main() -> None:
    print("FatTree k=4 (16 hosts, 20 switches), permutation traffic")
    print("=" * 58)
    tcp = fattree.run_permutation("tcp", k=4, duration=2.0, warmup=1.0)
    print(f"\nregular TCP:        {tcp.percent_of_optimal:5.1f}% of optimal")
    for n_subflows in (2, 3, 4):
        for algorithm in ("lia", "olia"):
            run = fattree.run_permutation(
                algorithm, n_subflows=n_subflows, k=4, duration=2.0,
                warmup=1.0)
            print(f"{algorithm.upper():4} x{n_subflows} subflows: "
                  f"{run.percent_of_optimal:7.1f}% of optimal "
                  f"(core utilization {run.core_utilization:.2f})")
    print("\nWorst-flow comparison (fairness, paper Fig. 13(b)):")
    olia = fattree.run_permutation("olia", n_subflows=4, k=4,
                                   duration=2.0, warmup=1.0)
    print(f"  TCP worst flow:  {min(tcp.ranked()):5.1f}% of line rate")
    print(f"  OLIA worst flow: {min(olia.ranked()):5.1f}% of line rate")


if __name__ == "__main__":
    main()
