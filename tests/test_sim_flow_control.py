"""Tests for receive-window limitation and dynamic subflow management.

Both features are named in the paper's conclusion as factors for future
experiments ("receive window limitations", "discarding bad paths from
the set of available paths").
"""

import pytest

from repro.sim import (
    DropTailQueue,
    Link,
    MptcpConnection,
    PathSpec,
    Simulator,
    TcpSubflow,
)
from repro.core import RenoController


def fat_link(sim, mbps=10.0, delay=0.01):
    """A link whose buffer is roughly one bandwidth-delay product."""
    bdp = max(int(mbps * 1e6 / 12_000 * 2 * delay), 20)
    return Link(sim, rate_bps=mbps * 1e6, delay=delay,
                queue=DropTailQueue(limit=bdp))


class TestReceiveWindow:
    def test_rcv_wnd_caps_throughput(self):
        """Goodput is limited to rcv_wnd / RTT despite spare capacity."""
        sim = Simulator()
        link = fat_link(sim, mbps=100.0, delay=0.05)  # RTT ~100 ms
        ctrl = RenoController()
        flow = TcpSubflow(sim, (link,), 0.05, ctrl, key=0,
                          rcv_wnd_packets=10)
        flow.start(0.0)
        sim.run(until=20.0)
        goodput = flow.acked_packets / 20.0
        # 10 packets per ~100 ms RTT = ~100 pkt/s.
        assert goodput == pytest.approx(100.0, rel=0.15)

    def test_unlimited_by_default(self):
        sim = Simulator()
        link = fat_link(sim, mbps=100.0, delay=0.05)
        ctrl = RenoController()
        flow = TcpSubflow(sim, (link,), 0.05, ctrl, key=0)
        flow.start(0.0)
        sim.run(until=20.0)
        assert flow.acked_packets / 20.0 > 300.0

    def test_in_flight_never_exceeds_rcv_wnd(self):
        sim = Simulator()
        link = fat_link(sim, mbps=100.0, delay=0.05)
        ctrl = RenoController()
        flow = TcpSubflow(sim, (link,), 0.05, ctrl, key=0,
                          rcv_wnd_packets=5)
        flow.start(0.0)
        violations = []

        def watch():
            if flow.in_flight > 5:
                violations.append(flow.in_flight)
            if sim.now < 5.0:
                sim.schedule(0.01, watch)

        sim.schedule(0.1, watch)
        sim.run(until=6.0)
        assert violations == []

    def test_invalid_rcv_wnd(self):
        sim = Simulator()
        link = fat_link(sim)
        with pytest.raises(ValueError):
            TcpSubflow(sim, (link,), 0.01, RenoController(), key=0,
                       rcv_wnd_packets=0)


class TestSubflowStop:
    def test_stop_detaches_and_halts(self):
        sim = Simulator()
        link = fat_link(sim)
        ctrl = RenoController()
        flow = TcpSubflow(sim, (link,), 0.01, ctrl, key=0)
        flow.start(0.0)
        sim.run(until=1.0)
        acked = flow.acked_packets
        flow.stop()
        sim.run(until=3.0)
        assert flow.acked_packets <= acked + 5  # in-flight stragglers only
        assert 0 not in ctrl.subflows

    def test_stop_is_idempotent(self):
        sim = Simulator()
        link = fat_link(sim)
        ctrl = RenoController()
        flow = TcpSubflow(sim, (link,), 0.01, ctrl, key=0)
        flow.start(0.0)
        sim.run(until=0.5)
        flow.stop()
        flow.stop()  # must not raise


class TestDynamicSubflows:
    def test_add_subflow_mid_connection(self):
        """A second path added at t=5 roughly doubles the goodput."""
        sim = Simulator()
        l1, l2 = fat_link(sim, mbps=5.0), fat_link(sim, mbps=5.0)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01)])
        conn.start(0.0)
        sim.run(until=5.0)
        acked_phase1 = conn.acked_packets
        rate1 = acked_phase1 / 5.0
        conn.add_subflow(PathSpec((l2,), 0.01))
        assert len(conn.subflows) == 2
        sim.run(until=10.0)
        rate2 = (conn.acked_packets - acked_phase1) / 5.0
        assert rate2 > 1.5 * rate1

    def test_added_subflow_uses_multipath_ssthresh(self):
        sim = Simulator()
        l1, l2 = fat_link(sim), fat_link(sim)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01)])
        new = conn.add_subflow(PathSpec((l2,), 0.01))
        assert new.min_ssthresh == 1.0

    def test_remove_subflow_keeps_counters(self):
        sim = Simulator()
        l1, l2 = fat_link(sim), fat_link(sim)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01),
                                             PathSpec((l2,), 0.01)])
        conn.start(0.0)
        sim.run(until=3.0)
        total_before = conn.acked_packets
        victim = conn.subflows[1]
        conn.remove_subflow(victim)
        assert len(conn.subflows) == 1
        assert conn.acked_packets >= total_before
        sim.run(until=6.0)
        # The surviving path keeps making progress.
        assert conn.acked_packets > total_before

    def test_remove_foreign_subflow_rejected(self):
        sim = Simulator()
        l1 = fat_link(sim)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01)])
        other = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01)])
        with pytest.raises(ValueError):
            conn.remove_subflow(other.subflows[0])

    def test_keys_unique_after_add_remove_cycles(self):
        sim = Simulator()
        l1, l2 = fat_link(sim), fat_link(sim)
        conn = MptcpConnection(sim, "olia", [PathSpec((l1,), 0.01)])
        conn.start(0.0)
        for _ in range(3):
            new = conn.add_subflow(PathSpec((l2,), 0.01))
            sim.run(until=sim.now + 0.5)
            conn.remove_subflow(new)
        keys = [sf.key for sf in conn.subflows]
        assert len(keys) == len(set(keys))
