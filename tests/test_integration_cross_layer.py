"""Cross-layer integration tests: analysis vs fluid vs packet simulator.

The strongest evidence that the reproduction is self-consistent is that
three independent implementations of the same model — closed forms,
fluid fixed points, and the packet simulator — agree on the paper's
scenarios.
"""

import pytest

from repro.analysis import scenario_a as closed_a
from repro.analysis import scenario_c as closed_c
from repro.experiments import scenario_a as sim_a
from repro.experiments import scenario_c as sim_c
from repro.fluid import FluidNetwork, SharpLoss, solve_fixed_point
from repro.units import mbps_to_pps


class TestScenarioAThreeWay:
    """Closed form vs fluid solver vs packet sim on scenario A."""

    N1, N2 = 10, 10
    C1_MBPS = C2_MBPS = 1.0
    RTT = 0.15

    @pytest.fixture(scope="class")
    def closed(self):
        return closed_a.lia_fixed_point(
            n1=self.N1, n2=self.N2, c1=mbps_to_pps(self.C1_MBPS),
            c2=mbps_to_pps(self.C2_MBPS), rtt=self.RTT)

    @pytest.fixture(scope="class")
    def fluid(self):
        net = FluidNetwork()
        server = net.add_link(
            SharpLoss(capacity=self.N1 * mbps_to_pps(self.C1_MBPS)))
        shared = net.add_link(
            SharpLoss(capacity=self.N2 * mbps_to_pps(self.C2_MBPS)))
        rules = {}
        for i in range(self.N1):
            user = net.add_user(f"t1.{i}")
            net.add_route(user, [server], rtt=self.RTT)
            net.add_route(user, [server, shared], rtt=self.RTT)
            rules[user] = "lia"
        for i in range(self.N2):
            user = net.add_user(f"t2.{i}")
            net.add_route(user, [shared], rtt=self.RTT)
            rules[user] = "tcp"
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        return net, result

    @pytest.fixture(scope="class")
    def packet(self):
        return sim_a.simulate("lia", n1=self.N1, n2=self.N2,
                              c1_mbps=self.C1_MBPS, c2_mbps=self.C2_MBPS,
                              duration=15.0, warmup=10.0)

    def test_type2_rate_consistent(self, closed, fluid, packet):
        net, result = fluid
        totals = result.user_totals(net)
        fluid_type2 = float(totals[self.N1:].mean()) \
            / mbps_to_pps(self.C2_MBPS)
        assert closed.type2_normalized == pytest.approx(fluid_type2,
                                                        abs=0.15)
        assert closed.type2_normalized == pytest.approx(
            packet.type2_normalized, abs=0.15)

    def test_all_report_type2_suppression(self, closed, fluid, packet):
        net, result = fluid
        totals = result.user_totals(net)
        fluid_type2 = float(totals[self.N1:].mean()) \
            / mbps_to_pps(self.C2_MBPS)
        for value in (closed.type2_normalized, fluid_type2,
                      packet.type2_normalized):
            assert value < 0.9  # all three see problem P1


class TestScenarioCThreeWay:
    N1, N2 = 10, 10
    C1_MBPS = C2_MBPS = 1.0
    RTT = 0.15

    def test_singlepath_rate_consistent(self):
        closed = closed_c.lia_fixed_point(
            n1=self.N1, n2=self.N2, c1=mbps_to_pps(self.C1_MBPS),
            c2=mbps_to_pps(self.C2_MBPS), rtt=self.RTT)
        packet = sim_c.simulate("lia", n1=self.N1, n2=self.N2,
                                c1_mbps=self.C1_MBPS,
                                c2_mbps=self.C2_MBPS,
                                duration=15.0, warmup=10.0)
        assert closed.singlepath_normalized == pytest.approx(
            packet.singlepath_normalized, abs=0.15)

    def test_olia_vs_optimum_consistent(self):
        """The packet OLIA lands between LIA and the optimum."""
        opt = closed_c.optimum_with_probing(
            n1=self.N1, n2=self.N2, c1=mbps_to_pps(self.C1_MBPS),
            c2=mbps_to_pps(self.C2_MBPS), rtt=self.RTT)
        lia = sim_c.simulate("lia", n1=self.N1, n2=self.N2,
                             c1_mbps=self.C1_MBPS, c2_mbps=self.C2_MBPS,
                             duration=15.0, warmup=10.0)
        olia = sim_c.simulate("olia", n1=self.N1, n2=self.N2,
                              c1_mbps=self.C1_MBPS, c2_mbps=self.C2_MBPS,
                              duration=15.0, warmup=10.0)
        assert lia.singlepath_normalized < olia.singlepath_normalized
        assert olia.singlepath_normalized < opt.singlepath_normalized \
            * 1.05


class TestFluidVsPacketWindows:
    def test_two_path_window_split_matches_fluid(self):
        """Fig. 8 setup: the packet-level LIA window split on good vs
        congested path tracks the fluid LIA allocation."""
        from repro.experiments.traces import run_two_path_trace
        from repro.fluid import integrate

        # Packet level.
        trace = run_two_path_trace("lia", competing=(5, 10),
                                   capacity_mbps=10.0, duration=60.0)
        w_good, w_bad = trace.mean_windows
        packet_split = w_bad / (w_good + w_bad)

        # Fluid level (same structure).
        cap = mbps_to_pps(10.0)
        net = FluidNetwork()
        l1 = net.add_link(SharpLoss(capacity=cap))
        l2 = net.add_link(SharpLoss(capacity=cap))
        mp = net.add_user("mp")
        net.add_route(mp, [l1], rtt=0.15)
        net.add_route(mp, [l2], rtt=0.15)
        rules = {mp: "lia"}
        for i in range(5):
            u = net.add_user(f"a{i}")
            net.add_route(u, [l1], rtt=0.15)
            rules[u] = "tcp"
        for i in range(10):
            u = net.add_user(f"b{i}")
            net.add_route(u, [l2], rtt=0.15)
            rules[u] = "tcp"
        result = solve_fixed_point(net, rules, floor_packets=1.0)
        fluid_split = result.rates[1] / (result.rates[0]
                                         + result.rates[1])
        assert packet_split == pytest.approx(float(fluid_split), abs=0.15)
