"""Tests for the allocation-query service (repro.serve.service)."""

import asyncio
import json

import pytest

from repro.serve.service import (
    AllocationQuery,
    AllocationService,
    LinkSpec,
    RouteSpec,
    UserSpec,
    run_server,
    solve_query,
)
from repro.serve.store import ResultStore


def _query(algorithm="olia", capacity=1000.0, rtt=0.1, tcp_rtt=0.12,
           **solver):
    return AllocationQuery(
        links=(LinkSpec(capacity=capacity, model="sharp"),
               LinkSpec(capacity=capacity * 1.2, model="power",
                        p_at_capacity=0.02)),
        users=(UserSpec(algorithm=algorithm), UserSpec("tcp")),
        routes=(RouteSpec(0, (0,), rtt), RouteSpec(0, (1,), rtt * 1.3),
                RouteSpec(1, (1,), tcp_rtt)),
        **solver)


def _run(coro):
    return asyncio.run(coro)


class TestQueryValidation:
    def test_unknown_algorithm_fails_at_admission(self):
        query = _query(algorithm="definitely-not-registered")

        async def go():
            service = AllocationService()
            try:
                with pytest.raises(KeyError):
                    await service.query(query)
            finally:
                service.close()

        _run(go())

    def test_bad_route_indices_rejected(self):
        with pytest.raises(ValueError):
            AllocationQuery(links=(LinkSpec(100.0),),
                            users=(UserSpec(),),
                            routes=(RouteSpec(5, (0,), 0.1),))
        with pytest.raises(ValueError):
            AllocationQuery(links=(LinkSpec(100.0),),
                            users=(UserSpec(),),
                            routes=(RouteSpec(0, (3,), 0.1),))

    def test_bad_loss_model_rejected(self):
        with pytest.raises(ValueError):
            LinkSpec(100.0, model="bernoulli")

    def test_content_hash_canonicalizes_param_order(self):
        a = UserSpec("olia", params=(("a", 1), ("b", 2)))
        b = UserSpec("olia", params=(("b", 2), ("a", 1)))
        assert a == b

    def test_structure_key_ignores_capacities_and_rtts(self):
        a = _query(capacity=500.0, rtt=0.05)
        b = _query(capacity=900.0, rtt=0.2)
        assert a.structure_key() == b.structure_key()
        assert a.content_hash() != b.content_hash()

    def test_structure_key_varies_with_solver_knobs(self):
        assert _query().structure_key() \
            != _query(damping=0.1).structure_key()

    def test_from_dict_roundtrip(self):
        query = _query()
        payload = {
            "links": [{"capacity": link.capacity, "model": link.model,
                       "p_at_capacity": link.p_at_capacity}
                      for link in query.links],
            "users": [{"algorithm": user.algorithm,
                       "params": dict(user.params)}
                      for user in query.users],
            "routes": [{"user": r.user, "links": list(r.links),
                        "rtt": r.rtt} for r in query.routes],
        }
        assert AllocationQuery.from_dict(payload).content_hash() \
            == query.content_hash()


class TestBatchingAndDedup:
    def test_concurrent_same_structure_queries_coalesce(self):
        queries = [_query(algorithm="lia", capacity=400.0 + 40 * i,
                          rtt=0.05 + 0.01 * i)
                   for i in range(8)]

        async def go():
            service = AllocationService(batch_window=0.01, max_batch=64)
            try:
                results = await asyncio.gather(
                    *(service.query(q) for q in queries))
                await service.drain()
                return service.stats(), results
            finally:
                service.close()

        stats, results = _run(go())
        assert stats["admitted"] == 8
        assert stats["batches"] == 1
        assert stats["max_batch_size"] == 8
        assert all(r["converged"] for r in results)

    def test_batch_results_bitwise_equal_sequential(self):
        queries = [_query(algorithm=algo, capacity=cap)
                   for algo in ("lia", "olia", "balia", "wvegas", "tcp")
                   for cap in (500.0, 800.0)]

        async def go():
            service = AllocationService(batch_window=0.01, max_batch=64)
            try:
                results = await asyncio.gather(
                    *(service.query(q) for q in queries))
                await service.drain()
                return service.stats(), results
            finally:
                service.close()

        stats, results = _run(go())
        assert stats["batches"] == 1      # one structure, one batch
        for query, served in zip(queries, results):
            assert served == solve_query(query)

    def test_max_batch_fires_immediately(self):
        queries = [_query(capacity=300.0 + i) for i in range(6)]

        async def go():
            service = AllocationService(batch_window=60.0, max_batch=3)
            try:
                results = await asyncio.gather(
                    *(service.query(q) for q in queries))
                await service.drain()
                return service.stats(), results
            finally:
                service.close()

        stats, results = _run(go())
        # A one-minute window would hang forever if the size cap did
        # not flush; reaching here at all proves it fired.
        assert stats["batches"] == 2
        assert stats["batch_histogram"] == {"3": 2}
        assert len(results) == 6

    def test_different_structures_do_not_mix(self):
        a = _query()                       # 2 users
        b = AllocationQuery(               # 1 user: different incidence
            links=(LinkSpec(500.0),), users=(UserSpec("tcp"),),
            routes=(RouteSpec(0, (0,), 0.1),))

        async def go():
            service = AllocationService(batch_window=0.01)
            try:
                await asyncio.gather(service.query(a), service.query(b))
                await service.drain()
                return service.stats()
            finally:
                service.close()

        stats = _run(go())
        assert stats["batches"] == 2
        assert stats["batch_histogram"] == {"1": 2}

    def test_identical_inflight_queries_share_one_solve(self):
        query = _query()

        async def go():
            service = AllocationService(batch_window=0.01)
            try:
                results = await asyncio.gather(
                    *(service.query(query) for _ in range(5)))
                await service.drain()
                return service.stats(), results
            finally:
                service.close()

        stats, results = _run(go())
        assert stats["admitted"] == 1
        assert stats["dedup_hits"] == 4
        assert all(r == results[0] for r in results)


class TestMemoization:
    def test_store_hit_skips_the_solver(self, tmp_path):
        query = _query()
        store = ResultStore(tmp_path)

        async def go():
            service = AllocationService(store, batch_window=0.001)
            try:
                first = await service.query(query)
                again = await service.query(query)
                return service.stats(), first, again
            finally:
                service.close()

        stats, first, again = _run(go())
        assert stats["admitted"] == 1
        assert stats["store_hits"] == 1
        assert first == again

    def test_memoized_result_survives_service_restart(self, tmp_path):
        query = _query()

        async def fill():
            service = AllocationService(ResultStore(tmp_path),
                                        batch_window=0.001)
            try:
                return await service.query(query)
            finally:
                service.close()

        async def reuse():
            service = AllocationService(ResultStore(tmp_path),
                                        batch_window=0.001)
            try:
                result = await service.query(query)
                return service.stats(), result
            finally:
                service.close()

        first = _run(fill())
        stats, second = _run(reuse())
        assert stats["store_hits"] == 1
        assert stats["admitted"] == 0
        assert first == second == solve_query(query)


class TestServer:
    def test_json_lines_roundtrip_and_stats(self):
        query = _query()
        payload = {
            "links": [{"capacity": link.capacity, "model": link.model,
                       "p_at_capacity": link.p_at_capacity}
                      for link in query.links],
            "users": [{"algorithm": user.algorithm} for user in query.users],
            "routes": [{"user": r.user, "links": list(r.links),
                        "rtt": r.rtt} for r in query.routes],
        }

        async def go():
            import socket
            with socket.socket() as probe:
                probe.bind(("127.0.0.1", 0))
                port = probe.getsockname()[1]
            service = AllocationService(batch_window=0.001)
            ready = asyncio.Event()
            server = asyncio.ensure_future(
                run_server("127.0.0.1", port, service=service,
                           ready=ready))
            await asyncio.wait_for(ready.wait(), timeout=10)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port)
                writer.write((json.dumps(payload) + "\n").encode())
                writer.write((json.dumps({"op": "stats"}) + "\n").encode())
                await writer.drain()
                answer = json.loads(await reader.readline())
                stats = json.loads(await reader.readline())
                bad = dict(payload, users=[{"algorithm": "nope"}] * 2)
                writer.write((json.dumps(bad) + "\n").encode())
                await writer.drain()
                error = json.loads(await reader.readline())
                writer.close()
                return answer, stats, error
            finally:
                server.cancel()
                try:
                    await server
                except (asyncio.CancelledError, Exception):
                    pass
                service.close()

        answer, stats, error = _run(go())
        assert answer["ok"] and answer["result"] == solve_query(query)
        assert stats["ok"] and stats["result"]["admitted"] == 1
        assert not error["ok"] and "nope" in error["error"]
