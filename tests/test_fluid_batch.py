"""Property tests for the batched fluid integrator.

The contract of :class:`~repro.fluid.BatchFluidIntegrator` is strict:
stacking K sweep points into one (K, n_routes) state matrix must produce
*bitwise-identical* trajectories to integrating the K points one at a
time.  Every test here builds randomised scenarios from a seeded
generator and asserts exact equality (``np.array_equal``), not mere
closeness.
"""

import numpy as np
import pytest

from repro.fluid import (
    BatchFluidIntegrator,
    BatchFluidNetwork,
    FluidNetwork,
    LossModel,
    PowerLoss,
    RedLoss,
    SharpLoss,
    integrate,
    integrate_batch,
)

ALGORITHMS = ("olia", "lia", "tcp", "ewtcp", "coupled")


def random_scenario_batch(rng, n_points, *, loss_family="power"):
    """K networks sharing a topology drawn from ``rng``.

    Topology (user/route/link structure) is shared across the batch —
    that is the batching contract — while capacities, loss parameters
    and RTTs differ per point.
    """
    n_tcp = int(rng.integers(1, 4))
    n_mp_routes = int(rng.integers(2, 4))
    networks = []
    for _ in range(n_points):
        net = FluidNetwork()
        links = []
        for _ in range(n_mp_routes):
            capacity = float(rng.uniform(50.0, 900.0))
            if loss_family == "red":
                model = RedLoss(capacity=capacity,
                                p_max=float(rng.uniform(0.05, 0.3)))
            elif loss_family == "sharp":
                model = SharpLoss(capacity=capacity)
            else:
                model = PowerLoss(capacity=capacity,
                                  p_at_capacity=float(
                                      rng.uniform(0.005, 0.05)))
            links.append(net.add_link(model))
        mp = net.add_user("mp")
        for link in links:
            net.add_route(mp, [link], rtt=float(rng.uniform(0.02, 0.4)))
        shared_rtt = float(rng.uniform(0.02, 0.4))
        for i in range(n_tcp):
            user = net.add_user(f"tcp{i}")
            net.add_route(user, [links[-1]], rtt=shared_rtt)
        networks.append(net)
    rules = {0: str(rng.choice(ALGORITHMS))}
    for i in range(n_tcp):
        rules[1 + i] = "tcp"
    return networks, rules


class TestBitwiseEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_k8_random_scenarios_match_sequential(self, seed):
        """K=8 batched integration == 8 sequential 1-D integrations,
        bit for bit (the PR's core property)."""
        rng = np.random.default_rng(seed)
        networks, rules = random_scenario_batch(rng, 8)
        batch = integrate_batch(networks, rules, t_end=0.5, dt=1e-3)
        for k, net in enumerate(networks):
            solo = integrate(net, rules, t_end=0.5, dt=1e-3)
            assert np.array_equal(batch.times, solo.times)
            assert np.array_equal(batch.trajectory(k).rates, solo.rates)

    @pytest.mark.parametrize("loss_family", ["sharp", "red"])
    def test_other_loss_families(self, loss_family):
        rng = np.random.default_rng(7)
        networks, rules = random_scenario_batch(rng, 4,
                                                loss_family=loss_family)
        batch = integrate_batch(networks, rules, t_end=0.3, dt=1e-3)
        for k, net in enumerate(networks):
            solo = integrate(net, rules, t_end=0.3, dt=1e-3)
            assert np.array_equal(batch.trajectory(k).rates, solo.rates)

    def test_unknown_loss_model_falls_back_scalar(self):
        """A custom LossModel class uses the per-point fallback loop and
        still matches the sequential path exactly."""

        class StepLoss(LossModel):
            def __init__(self, capacity):
                self.capacity = capacity

            def __call__(self, rate):
                return 0.0 if rate < self.capacity else 0.5

        networks = []
        for capacity in (100.0, 200.0, 400.0):
            net = FluidNetwork()
            link = net.add_link(StepLoss(capacity))
            user = net.add_user()
            net.add_route(user, [link], rtt=0.1)
            networks.append(net)
        batch = integrate_batch(networks, "tcp", t_end=0.2, dt=1e-3)
        for k, net in enumerate(networks):
            solo = integrate(net, "tcp", t_end=0.2, dt=1e-3)
            assert np.array_equal(batch.trajectory(k).rates, solo.rates)

    def test_explicit_x0_matches(self):
        rng = np.random.default_rng(3)
        networks, rules = random_scenario_batch(rng, 5)
        n_routes = networks[0].n_routes
        x0 = rng.uniform(1.0, 500.0, size=(5, n_routes))
        batch = integrate_batch(networks, rules, t_end=0.3, dt=1e-3, x0=x0)
        for k, net in enumerate(networks):
            solo = integrate(net, rules, t_end=0.3, dt=1e-3, x0=x0[k])
            assert np.array_equal(batch.trajectory(k).rates, solo.rates)

    def test_mixed_per_user_algorithms(self):
        rng = np.random.default_rng(11)
        networks, _ = random_scenario_batch(rng, 4)
        rules = {user: ALGORITHMS[user % len(ALGORITHMS)]
                 for user in range(networks[0].n_users)}
        batch = integrate_batch(networks, rules, t_end=0.3, dt=1e-3)
        for k, net in enumerate(networks):
            solo = integrate(net, rules, t_end=0.3, dt=1e-3)
            assert np.array_equal(batch.trajectory(k).rates, solo.rates)


class TestBatchApi:
    def test_trajectory_shapes(self):
        rng = np.random.default_rng(5)
        networks, rules = random_scenario_batch(rng, 3)
        batch = integrate_batch(networks, rules, t_end=0.2, dt=1e-3,
                                record_every=50)
        assert batch.n_points == 3
        assert batch.rates.shape[1] == 3
        assert batch.rates.shape[2] == networks[0].n_routes
        assert batch.rates.shape[0] == len(batch.times)
        assert batch.final_rates.shape == (3, networks[0].n_routes)
        assert len(batch.trajectories()) == 3

    def test_tail_average_per_point(self):
        rng = np.random.default_rng(6)
        networks, rules = random_scenario_batch(rng, 3)
        batch = integrate_batch(networks, rules, t_end=0.2, dt=1e-3)
        tails = batch.tail_average()
        for k in range(3):
            assert np.allclose(tails[k], batch.trajectory(k).tail_average())

    def test_topology_mismatch_rejected(self):
        net_a = FluidNetwork()
        link = net_a.add_link(PowerLoss(capacity=100.0))
        user = net_a.add_user()
        net_a.add_route(user, [link], rtt=0.1)
        net_b = FluidNetwork()
        link_b = net_b.add_link(PowerLoss(capacity=100.0))
        user_b = net_b.add_user()
        net_b.add_route(user_b, [link_b], rtt=0.1)
        net_b.add_route(user_b, [link_b], rtt=0.2)
        with pytest.raises(ValueError):
            BatchFluidNetwork([net_a, net_b])

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError):
            BatchFluidNetwork([])

    def test_invalid_arguments(self):
        net = FluidNetwork()
        link = net.add_link(PowerLoss(capacity=100.0))
        user = net.add_user()
        net.add_route(user, [link], rtt=0.1)
        with pytest.raises(ValueError):
            BatchFluidIntegrator([net], "tcp", dt=-1.0)
        with pytest.raises(ValueError):
            BatchFluidIntegrator([net], "tcp", record_every=0)
        with pytest.raises(ValueError):
            integrate_batch([net], "tcp", t_end=0.0)
        with pytest.raises(ValueError):
            integrate_batch([net], "tcp", t_end=1.0,
                            x0=np.ones((3, 1)))

    def test_x0_shape_validation(self):
        rng = np.random.default_rng(9)
        networks, rules = random_scenario_batch(rng, 2)
        with pytest.raises(ValueError):
            integrate_batch(networks, rules, t_end=0.1,
                            x0=np.ones(networks[0].n_routes))


class TestUserTotals:
    def test_user_totals_matches_manual_sum(self):
        """The vectorised user_totals (np.add.at) equals the per-route
        Python loop it replaced."""
        rng = np.random.default_rng(4)
        networks, rules = random_scenario_batch(rng, 1)
        solo = integrate(networks[0], rules, t_end=0.2, dt=1e-3)
        totals = solo.user_totals()
        expected = np.zeros_like(totals)
        for route, user in enumerate(networks[0].user_of_route):
            expected[:, user] += solo.rates[:, route]
        assert np.array_equal(totals, expected)
        assert totals.shape == (solo.rates.shape[0], networks[0].n_users)
