"""Tests for the parallel sweep runner, RunSpec and measure validation."""

import pytest

from repro.experiments.ablation import flappiness_point
from repro.experiments.rtt_heterogeneity import rtt_sweep_point
from repro.experiments.runner import RunSpec, measure
from repro.experiments.sweep import SweepRunner
from repro.sim.engine import Simulator


def _rtt_specs():
    return [RunSpec.make(rtt_sweep_point, algorithm="olia", base_rtt=0.1,
                         ratio=ratio, n_tcp=2)
            for ratio in (0.5, 1.0, 2.0, 4.0)]


def _seeded_specs():
    """DES points whose results depend on their seeds."""
    return [RunSpec.make(flappiness_point, algorithm="olia",
                         capacity_mbps=10.0, duration=3.0, seed=seed)
            for seed in (1, 2, 3, 4)]


class TestRunSpec:
    def test_content_hash_ignores_kwarg_order(self):
        a = RunSpec.make(rtt_sweep_point, algorithm="olia", base_rtt=0.1,
                         ratio=1.0, n_tcp=2)
        b = RunSpec.make(rtt_sweep_point, ratio=1.0, n_tcp=2,
                         base_rtt=0.1, algorithm="olia")
        assert a == b
        assert a.content_hash() == b.content_hash()

    def test_content_hash_sensitive_to_args_and_seed(self):
        base = RunSpec.make(rtt_sweep_point, algorithm="olia",
                            base_rtt=0.1, ratio=1.0, n_tcp=2)
        other = RunSpec.make(rtt_sweep_point, algorithm="lia",
                             base_rtt=0.1, ratio=1.0, n_tcp=2)
        seeded = RunSpec.make(rtt_sweep_point, algorithm="olia",
                              base_rtt=0.1, ratio=1.0, n_tcp=2, seed=3)
        assert base.content_hash() != other.content_hash()
        assert base.content_hash() != seeded.content_hash()

    def test_rejects_non_module_level_functions(self):
        with pytest.raises(ValueError):
            RunSpec.make(lambda: None)

        def nested():
            return None

        with pytest.raises(ValueError):
            RunSpec.make(nested)

    def test_execute_injects_seed(self):
        spec = RunSpec.make(flappiness_point, algorithm="olia",
                            capacity_mbps=10.0, duration=2.0, seed=5)
        again = spec.execute()
        assert again == flappiness_point(algorithm="olia",
                                         capacity_mbps=10.0,
                                         duration=2.0, seed=5)

    def test_derived_seed_is_stable_and_content_dependent(self):
        a = RunSpec.make(rtt_sweep_point, ratio=1.0)
        b = RunSpec.make(rtt_sweep_point, ratio=1.0)
        c = RunSpec.make(rtt_sweep_point, ratio=2.0)
        assert a.derived_seed(0) == b.derived_seed(0)
        assert a.derived_seed(0) != c.derived_seed(0)
        assert a.derived_seed(0) != a.derived_seed(1)


class TestSweepRunnerDeterminism:
    def test_jobs2_matches_jobs1_order_fixed_seed(self):
        """The PR's regression criterion: a pool of 2 workers returns the
        exact same results in the exact same order as in-process runs."""
        serial = SweepRunner(jobs=1).run(_seeded_specs())
        parallel = SweepRunner(jobs=2).run(_seeded_specs())
        assert parallel == serial

    def test_jobs2_matches_jobs1_fluid_sweep(self):
        serial = SweepRunner(jobs=1).run(_rtt_specs())
        parallel = SweepRunner(jobs=2).run(_rtt_specs())
        assert parallel == serial

    def test_single_point_runs_in_process(self):
        specs = _rtt_specs()[:1]
        assert SweepRunner(jobs=4).run(specs) == \
            SweepRunner(jobs=1).run(specs)

    def test_invalid_jobs(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)


class TestSweepRunnerCache:
    def test_second_run_is_all_hits(self, tmp_path):
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        first = runner.run(_rtt_specs())
        assert runner.cache_misses == 4
        again = SweepRunner(jobs=1, cache_dir=tmp_path)
        second = again.run(_rtt_specs())
        assert again.cache_hits == 4
        assert again.cache_misses == 0
        assert second == first

    def test_pool_run_populates_cache(self, tmp_path):
        runner = SweepRunner(jobs=2, cache_dir=tmp_path)
        first = runner.run(_seeded_specs())
        again = SweepRunner(jobs=2, cache_dir=tmp_path)
        second = again.run(_seeded_specs())
        assert again.cache_hits == 4
        assert second == first

    def test_partial_cache_only_recomputes_missing(self, tmp_path):
        specs = _rtt_specs()
        SweepRunner(jobs=1, cache_dir=tmp_path).run(specs[:2])
        runner = SweepRunner(jobs=1, cache_dir=tmp_path)
        results = runner.run(specs)
        assert runner.cache_hits == 2
        assert runner.cache_misses == 2
        assert results == SweepRunner(jobs=1).run(specs)

    def test_no_cache_dir_recomputes(self):
        runner = SweepRunner(jobs=1)
        runner.run(_rtt_specs()[:1])
        runner.run(_rtt_specs()[:1])
        assert runner.cache_hits == 0
        assert runner.cache_misses == 2


class TestSweepRunnerMap:
    def test_map_preserves_point_order(self):
        runner = SweepRunner(jobs=1)
        points = [dict(algorithm="olia", base_rtt=0.1, ratio=r, n_tcp=2)
                  for r in (2.0, 0.5, 1.0)]
        results = runner.map(rtt_sweep_point, points)
        assert [row[0] for row in results] == [2.0, 0.5, 1.0]

    def test_map_base_seed_derives_per_point_seeds(self):
        runner = SweepRunner(jobs=1)
        points = [dict(algorithm="olia", capacity_mbps=10.0, duration=2.0)
                  for _ in range(2)]
        results = runner.map(flappiness_point, points, base_seed=7)
        # Identical points derive identical seeds -> identical results.
        assert results[0] == results[1]
        other = runner.map(flappiness_point, points, base_seed=8)
        assert other != results


class TestMeasureValidation:
    def test_warmup_must_be_smaller_than_duration(self):
        sim = Simulator()
        with pytest.raises(ValueError, match="warmup"):
            measure(sim, {}, [], warmup=5.0, duration=5.0)
        with pytest.raises(ValueError, match="warmup"):
            measure(sim, {}, [], warmup=10.0, duration=2.0)

    def test_valid_warmup_still_accepted(self):
        sim = Simulator()
        result = measure(sim, {}, [], warmup=0.5, duration=1.0)
        assert result.duration == 1.0
